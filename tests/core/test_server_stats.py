"""Tests for NDP server statistics and concurrent serving."""

import threading

import numpy as np
import pytest

from repro.core import NDPServer, ndp_contour
from repro.filters import contour_grid
from repro.io import write_vgf
from repro.rpc import InProcessTransport, RPCClient
from repro.storage import MemoryBackend, ObjectStore, S3FileSystem

from tests.conftest import make_sphere_grid


@pytest.fixture
def setup():
    store = ObjectStore(MemoryBackend())
    store.create_bucket("sim")
    fs = S3FileSystem(store, "sim")
    grid = make_sphere_grid(14)
    fs.write_object("s.vgf", write_vgf(grid, codec="lz4"))
    server = NDPServer(fs)
    return grid, server


class TestServerStats:
    def test_starts_at_zero(self, setup):
        _, server = setup
        client = RPCClient(InProcessTransport(server.dispatch))
        stats = client.call("server_stats")
        assert stats["prefilter_calls"] == 0
        assert stats["reduction_ratio"] == 0.0

    def test_counts_accumulate(self, setup):
        _, server = setup
        client = RPCClient(InProcessTransport(server.dispatch))
        for v in (3.0, 4.0, 5.0):
            ndp_contour(client, "s.vgf", "r", [v])
        stats = client.call("server_stats")
        assert stats["prefilter_calls"] == 3
        assert stats["raw_bytes_scanned"] == 3 * 14**3 * 4
        assert stats["wire_bytes_sent"] > 0
        assert stats["selected_points"] > 0
        assert stats["reduction_ratio"] > 1.0

    def test_threshold_and_slice_counted(self, setup):
        grid, server = setup
        client = RPCClient(InProcessTransport(server.dispatch))
        client.call("prefilter_threshold", "s.vgf", "r", 0.0, 2.0)
        coord = grid.origin[2] + 3.0 * grid.spacing[2]
        client.call("prefilter_slice", "s.vgf", "r", 2, coord)
        assert client.call("server_stats")["prefilter_calls"] == 2


class TestConcurrentServing:
    def test_parallel_clients_over_tcp(self, setup):
        """Multiple clients offloading simultaneously get correct results
        and consistent accounting."""
        grid, server = setup
        expected = {
            v: contour_grid(grid, "r", [v]).points for v in (2.5, 3.5, 4.5, 5.5)
        }
        listener = server.serve_tcp()
        errors: list = []

        def worker(value):
            try:
                client = RPCClient.connect_tcp(listener.host, listener.port)
                for _ in range(3):
                    pd, _ = ndp_contour(client, "s.vgf", "r", [value])
                    if not np.array_equal(pd.points, expected[value]):
                        errors.append(f"mismatch at {value}")
                client.close()
            except Exception as exc:  # noqa: BLE001 - surfacing to main thread
                errors.append(repr(exc))

        try:
            threads = [
                threading.Thread(target=worker, args=(v,)) for v in expected
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join(timeout=60)
            assert not errors, errors
            client = RPCClient.connect_tcp(listener.host, listener.port)
            stats = client.call("server_stats")
            assert stats["prefilter_calls"] == 4 * 3
            client.close()
        finally:
            listener.stop()
