"""Unit tests for the threshold and slice pre/post splits."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.core import (
    decode_selection,
    encode_selection,
    postfilter_slice,
    postfilter_threshold,
    prefilter_slice,
    prefilter_threshold,
)
from repro.errors import FilterError
from repro.filters import ThresholdPoints, slice_grid
from repro.grid import DataArray, UniformGrid

from tests.conftest import make_sphere_grid, make_wave_grid


class TestThresholdSplit:
    def test_bit_exact_against_stock(self):
        grid = make_sphere_grid(14)
        stock = ThresholdPoints("r", 2.0, 5.0)
        stock.set_input_data(grid)
        expected = stock.output()
        recon = postfilter_threshold(prefilter_threshold(grid, "r", 2.0, 5.0))
        assert np.array_equal(expected.points, recon.points)
        assert expected.point_data.get("r") == recon.point_data.get("r")

    def test_survives_wire(self):
        grid = make_wave_grid(12)
        sel = prefilter_threshold(grid, "f", -0.2, 0.4)
        sel2 = decode_selection(encode_selection(sel, payload_codec="lz4"))
        pd = postfilter_threshold(sel2)
        assert pd.num_points == sel.count

    def test_empty_range(self):
        grid = make_sphere_grid(8)
        pd = postfilter_threshold(prefilter_threshold(grid, "r", 1e6, 2e6))
        assert pd.num_points == 0

    def test_selection_is_result_set(self):
        """Thresholding ships exactly its answer: nothing extra."""
        grid = make_sphere_grid(10)
        sel = prefilter_threshold(grid, "r", 0.0, 3.0)
        arr = grid.point_data.get("r").values
        assert np.array_equal(np.nonzero((arr >= 0.0) & (arr <= 3.0))[0], sel.ids)


class TestSliceSplit:
    @pytest.mark.parametrize("axis", [0, 1, 2])
    def test_bit_exact_between_planes(self, axis):
        grid = make_wave_grid(14)
        coord = grid.origin[axis] + 5.3 * grid.spacing[axis]
        expected = slice_grid(grid, axis, coord, ["f"])
        sel = prefilter_slice(grid, "f", axis, coord)
        recon = postfilter_slice(sel, axis, coord)
        assert np.array_equal(expected.points, recon.points)
        assert expected.point_data.get("f") == recon.point_data.get("f")

    def test_exact_plane_hit_ships_one_plane(self):
        grid = make_wave_grid(12)
        coord = grid.origin[2] + 4 * grid.spacing[2]
        sel = prefilter_slice(grid, "f", 2, coord)
        assert sel.count == 12 * 12  # a single plane

    def test_between_planes_ships_two(self):
        grid = make_wave_grid(12)
        coord = grid.origin[2] + 4.5 * grid.spacing[2]
        sel = prefilter_slice(grid, "f", 2, coord)
        assert sel.count == 2 * 12 * 12

    def test_selectivity_is_two_over_n(self):
        grid = make_wave_grid(20)
        coord = grid.origin[0] + 7.5 * grid.spacing[0]
        sel = prefilter_slice(grid, "f", 0, coord)
        assert sel.selectivity == pytest.approx(2 / 20)

    def test_wrong_plane_guard(self):
        grid = make_wave_grid(12)
        sel = prefilter_slice(grid, "f", 2, grid.origin[2] + 2.5 * grid.spacing[2])
        with pytest.raises(FilterError, match="planes"):
            postfilter_slice(sel, 2, grid.origin[2] + 8.5 * grid.spacing[2])

    def test_survives_wire(self):
        grid = make_wave_grid(10)
        coord = grid.origin[1] + 3.25 * grid.spacing[1]
        sel = decode_selection(
            encode_selection(prefilter_slice(grid, "f", 1, coord), payload_codec="gzip")
        )
        expected = slice_grid(grid, 1, coord, ["f"])
        recon = postfilter_slice(sel, 1, coord)
        assert expected.point_data.get("f") == recon.point_data.get("f")


class TestThresholdSplitProperty:
    @given(
        field=arrays(
            dtype=np.float32,
            shape=st.tuples(st.integers(2, 6), st.integers(2, 6), st.integers(2, 6)),
            elements=st.floats(-5, 5, allow_nan=False, width=32),
        ),
        lo=st.floats(-4, 0, allow_nan=False),
        width=st.floats(0, 4, allow_nan=False),
    )
    @settings(max_examples=60, deadline=None)
    def test_equivalence(self, field, lo, width):
        nz, ny, nx = field.shape
        grid = UniformGrid((nx, ny, nz))
        grid.point_data.add(DataArray("f", field.reshape(-1)))
        stock = ThresholdPoints("f", lo, lo + width)
        stock.set_input_data(grid)
        expected = stock.output()
        sel = decode_selection(
            encode_selection(prefilter_threshold(grid, "f", lo, lo + width))
        )
        recon = postfilter_threshold(sel)
        assert np.array_equal(expected.points, recon.points)
        assert expected.point_data.get("f") == recon.point_data.get("f")


class TestSliceSplitProperty:
    @given(
        field=arrays(
            dtype=np.float32,
            shape=st.tuples(st.integers(3, 6), st.integers(3, 6), st.integers(3, 6)),
            elements=st.floats(-100, 100, allow_nan=False, width=32),
        ),
        axis=st.integers(0, 2),
        frac=st.floats(0, 1, allow_nan=False),
    )
    @settings(max_examples=60, deadline=None)
    def test_equivalence(self, field, axis, frac):
        nz, ny, nx = field.shape
        grid = UniformGrid((nx, ny, nz))
        grid.point_data.add(DataArray("f", field.reshape(-1)))
        coord = grid.origin[axis] + frac * (grid.dims[axis] - 1) * grid.spacing[axis]
        expected = slice_grid(grid, axis, coord, ["f"])
        sel = decode_selection(encode_selection(prefilter_slice(grid, "f", axis, coord)))
        recon = postfilter_slice(sel, axis, coord)
        assert np.array_equal(expected.points, recon.points)
        assert expected.point_data.get("f") == recon.point_data.get("f")
