"""Tests for region-of-interest contouring and its offload."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.core import NDPServer, ndp_contour, postfilter_contour, prefilter_contour
from repro.core.interesting import roi_cell_mask
from repro.filters import contour_grid
from repro.grid import Bounds, DataArray, RectilinearGrid, UniformGrid
from repro.io import write_vgf
from repro.rpc import InProcessTransport, RPCClient
from repro.storage import MemoryBackend, ObjectStore, S3FileSystem

from tests.conftest import make_sphere_grid, make_wave_grid


class TestRoiCellMask:
    def test_full_box_selects_everything(self):
        grid = make_sphere_grid(8)
        mask = roi_cell_mask(grid, grid.bounds)
        assert mask.all()

    def test_empty_intersection(self):
        grid = make_sphere_grid(8)
        mask = roi_cell_mask(grid, Bounds(100, 200, 100, 200, 100, 200))
        assert not mask.any()

    def test_half_box(self):
        grid = UniformGrid((9, 9, 9))
        mask = roi_cell_mask(grid, Bounds(0, 4, 0, 8, 0, 8))
        assert mask.shape == (8, 8, 8)
        assert mask[:, :, :4].all()
        assert not mask[:, :, 4:].any()

    def test_rectilinear(self):
        grid = RectilinearGrid([0, 1, 5, 6], [0, 1, 2], [0, 1, 2])
        mask = roi_cell_mask(grid, Bounds(0, 2, 0, 2, 0, 2))
        # Only cells between x=0..1 qualify (the 1..5 cell pokes out).
        assert mask[:, :, 0].all()
        assert not mask[:, :, 1:].any()


class TestRoiContour:
    def test_geometry_confined_to_box(self):
        grid = make_sphere_grid(20)
        roi = Bounds(0, 10, 0, 20, 0, 20)
        pd = contour_grid(grid, "r", [6.0], roi=roi)
        assert pd.num_points > 0
        assert pd.points[:, 0].max() <= 10.0

    def test_subset_of_full_contour(self):
        grid = make_wave_grid(16)
        roi = Bounds(2, 8, 0, 7, 3, 10)
        full = {tuple(p) for p in contour_grid(grid, "f", [0.0]).points.round(9)}
        sub = {tuple(p) for p in contour_grid(grid, "f", [0.0], roi=roi).points.round(9)}
        assert sub and sub <= full

    def test_roi_composes_with_cell_mask(self):
        grid = make_sphere_grid(12)
        nc = 11
        half = np.zeros((nc, nc, nc), dtype=bool)
        half[: nc // 2] = True
        both = contour_grid(grid, "r", [4.0], cell_mask=half, roi=grid.bounds)
        only_mask = contour_grid(grid, "r", [4.0], cell_mask=half)
        assert np.array_equal(both.points, only_mask.points)

    def test_2d_roi(self):
        from tests.conftest import make_2d_grid

        grid = make_2d_grid(16, 12)
        roi = Bounds(0, 7, 0, 11, -1, 1)
        pd = contour_grid(grid, "f", [0.0], roi=roi)
        if pd.num_points:
            assert pd.points[:, 0].max() <= 7.0


class TestRoiOffload:
    def test_selection_shrinks(self):
        grid = make_wave_grid(16)
        roi = Bounds(2, 8, 0, 7, 3, 10)
        assert (
            prefilter_contour(grid, "f", [0.0], roi=roi).count
            < prefilter_contour(grid, "f", [0.0]).count
        )

    def test_bit_exact_reconstruction(self):
        grid = make_wave_grid(18)
        roi = Bounds(2, 9, -1, 6, 3, 11)
        values = [0.0, 0.4]
        full = contour_grid(grid, "f", values, roi=roi)
        sel = prefilter_contour(grid, "f", values, roi=roi)
        recon = postfilter_contour(sel, values, roi=roi)
        assert np.array_equal(full.points, recon.points)
        assert np.array_equal(full.polys.connectivity, recon.polys.connectivity)

    def test_edge_mode_with_roi(self):
        grid = make_wave_grid(14)
        sel_all = prefilter_contour(grid, "f", [0.0], mode="edge")
        # A box centred on a known crossing, smaller than the domain.
        cx, cy, cz = grid.point_ids_to_coords([sel_all.ids[sel_all.count // 2]])[0]
        roi = Bounds(cx - 2, cx + 2, cy - 2, cy + 2, cz - 2, cz + 2)
        sel = prefilter_contour(grid, "f", [0.0], mode="edge", roi=roi)
        assert 0 < sel.count < sel_all.count

    def test_over_rpc(self):
        grid = make_wave_grid(16)
        store = ObjectStore(MemoryBackend())
        store.create_bucket("sim")
        fs = S3FileSystem(store, "sim")
        fs.write_object("g.vgf", write_vgf(grid, codec="lz4"))
        client = RPCClient(InProcessTransport(NDPServer(fs).dispatch))
        roi = Bounds(2, 8, 0, 7, 3, 10)
        pd, stats = ndp_contour(client, "g.vgf", "f", [0.0], roi=roi)
        expected = contour_grid(grid, "f", [0.0], roi=roi)
        assert np.array_equal(expected.points, pd.points)
        _, full_stats = ndp_contour(client, "g.vgf", "f", [0.0])
        assert stats["wire_bytes"] < full_stats["wire_bytes"]


class TestRoiProperty:
    @given(
        field=arrays(
            dtype=np.float32,
            shape=st.tuples(st.integers(3, 7), st.integers(3, 7), st.integers(3, 7)),
            elements=st.floats(-5, 5, allow_nan=False, width=32),
        ),
        box=st.tuples(
            st.floats(0, 3), st.floats(3.2, 7),
            st.floats(0, 3), st.floats(3.2, 7),
            st.floats(0, 3), st.floats(3.2, 7),
        ),
        values=st.lists(st.floats(-4, 4, allow_nan=False), min_size=1,
                        max_size=2, unique=True),
    )
    @settings(max_examples=80, deadline=None)
    def test_roi_reconstruction_bit_exact(self, field, box, values):
        nz, ny, nx = field.shape
        grid = UniformGrid((nx, ny, nz))
        grid.point_data.add(DataArray("f", field.reshape(-1)))
        roi = Bounds(box[0], box[1], box[2], box[3], box[4], box[5])
        full = contour_grid(grid, "f", values, roi=roi)
        sel = prefilter_contour(grid, "f", values, roi=roi)
        recon = postfilter_contour(sel, values, roi=roi)
        assert np.array_equal(full.points, recon.points)
        assert np.array_equal(full.polys.connectivity, recon.polys.connectivity)
