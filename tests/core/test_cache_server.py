"""Server-level tests for storage-side caching, single-flight, and batch ROI.

Covers the caching subsystem end to end: warm sweeps skip store reads,
replies stay bit-identical to a cold server, overwrites invalidate via
the store version token, Testbed phase charging stays honest on hits,
``prefilter_batch`` reads each object once and forwards ROIs, and the
TCP listener's threads coalesce a stampede into one store read.
"""

import threading

import numpy as np
import pytest

from repro.core import NDPServer, ndp_batch, ndp_contour
from repro.core.prefetch import NDPPrefetcher
from repro.filters import contour_grid
from repro.grid import Bounds, DataArray, UniformGrid
from repro.io import write_vgf
from repro.rpc import InProcessTransport, RPCClient
from repro.storage import MemoryBackend, ObjectStore, S3FileSystem
from repro.storage.netsim import Testbed

from tests.conftest import make_sphere_grid, make_wave_grid


class CountingBackend(MemoryBackend):
    """MemoryBackend that counts data-plane GETs (reads of object bytes)."""

    def __init__(self, read_delay: float = 0.0):
        super().__init__()
        self._count_lock = threading.Lock()
        self.get_calls = 0
        self.read_delay = read_delay

    def get(self, bucket, key, offset, length):
        with self._count_lock:
            self.get_calls += 1
        if self.read_delay:
            threading.Event().wait(self.read_delay)
        return super().get(bucket, key, offset, length)


def make_env(grid, key="g.vgf", codec="lz4", **server_kwargs):
    backend = CountingBackend()
    store = ObjectStore(backend)
    store.create_bucket("sim")
    fs = S3FileSystem(store, "sim")
    fs.write_object(key, write_vgf(grid, codec=codec))
    backend.get_calls = 0
    return backend, fs, NDPServer(fs, **server_kwargs)


CACHED = dict(cache_bytes=64 * 2**20, selection_cache_bytes=16 * 2**20)


class TestArrayCache:
    def test_warm_sweep_skips_store_reads(self):
        grid = make_sphere_grid(14)
        backend, _, server = make_env(grid, **CACHED)
        client = RPCClient(InProcessTransport(server.dispatch))

        client.call("prefilter_contour", "g.vgf", "r", [3.0])
        cold_reads = backend.get_calls
        assert cold_reads >= 1
        for v in (4.0, 5.0, 6.0):  # new values: selection misses, array hits
            client.call("prefilter_contour", "g.vgf", "r", [v])
        assert backend.get_calls == cold_reads

        stats = client.call("server_stats")
        assert stats["array_cache"]["hits"] == 3
        assert stats["array_cache"]["misses"] == 1
        assert stats["selection_cache"]["misses"] == 4

    def test_warm_replies_bit_identical_to_cold_server(self):
        grid = make_wave_grid(16)
        _, _, warm_server = make_env(grid, **CACHED)
        warm = RPCClient(InProcessTransport(warm_server.dispatch))
        warm.call("prefilter_contour", "g.vgf", "f", [0.0])  # prime

        _, _, cold_server = make_env(grid)
        cold = RPCClient(InProcessTransport(cold_server.dispatch))

        for values in ([0.2], [0.0], [0.0, 0.4]):
            pd_warm, _ = ndp_contour(warm, "g.vgf", "f", values)
            pd_cold, _ = ndp_contour(cold, "g.vgf", "f", values)
            assert np.array_equal(pd_warm.points, pd_cold.points)
            assert np.array_equal(
                pd_warm.polys.connectivity, pd_cold.polys.connectivity
            )

    def test_identical_request_hits_selection_cache(self):
        grid = make_sphere_grid(12)
        backend, _, server = make_env(grid, **CACHED)
        client = RPCClient(InProcessTransport(server.dispatch))
        first = client.call("prefilter_contour", "g.vgf", "r", [4.0])
        second = client.call("prefilter_contour", "g.vgf", "r", [4.0])
        assert first == second
        stats = client.call("server_stats")
        assert stats["selection_cache"]["hits"] == 1
        assert stats["requests"] == 2  # hits still count as served requests

    def test_value_order_is_canonicalized_in_the_key(self):
        grid = make_wave_grid(12)
        _, _, server = make_env(grid, **CACHED)
        client = RPCClient(InProcessTransport(server.dispatch))
        client.call("prefilter_contour", "g.vgf", "f", [0.0, 0.4])
        client.call("prefilter_contour", "g.vgf", "f", [0.4, 0.0])
        assert client.call("server_stats")["selection_cache"]["hits"] == 1

    def test_overwrite_invalidates_via_version_token(self):
        grid = make_sphere_grid(10)
        backend, fs, server = make_env(grid, **CACHED)
        client = RPCClient(InProcessTransport(server.dispatch))
        before, _ = ndp_contour(client, "g.vgf", "r", [4.0])

        shifted = make_sphere_grid(10)
        arr = shifted.point_data.get("r")
        shifted.point_data.add(DataArray("r", arr.values + 1.0))
        fs.write_object("g.vgf", write_vgf(shifted, codec="lz4"))

        after, _ = ndp_contour(client, "g.vgf", "r", [4.0])
        expected = contour_grid(shifted, "r", [4.0])
        assert np.array_equal(after.points, expected.points)
        assert not np.array_equal(before.points, after.points)

    def test_threshold_and_slice_cached_too(self):
        grid = make_sphere_grid(12)
        backend, _, server = make_env(grid, **CACHED)
        client = RPCClient(InProcessTransport(server.dispatch))
        client.call("prefilter_threshold", "g.vgf", "r", 0.0, 3.0)
        reads = backend.get_calls
        client.call("prefilter_threshold", "g.vgf", "r", 0.0, 3.0)
        client.call("prefilter_slice", "g.vgf", "r", 2, 5.0)
        client.call("prefilter_slice", "g.vgf", "r", 2, 5.0)
        assert backend.get_calls == reads  # array block read exactly once
        stats = client.call("server_stats")
        assert stats["selection_cache"]["hits"] == 2

    def test_read_array_and_statistics_share_the_cache(self):
        grid = make_sphere_grid(12)
        backend, _, server = make_env(grid, cache_bytes=64 * 2**20)
        client = RPCClient(InProcessTransport(server.dispatch))
        client.call("read_array", "g.vgf", "r")
        reads = backend.get_calls
        client.call("array_statistics", "g.vgf", "r", 16)
        client.call("probe_selectivity", "g.vgf", "r", [4.0])
        client.call("render_contour", "g.vgf", "r", [4.0], 64, 48)
        assert backend.get_calls == reads


class TestTestbedHonesty:
    def make_tb_env(self, **server_kwargs):
        tb = Testbed()
        backend = CountingBackend()
        store = ObjectStore(backend, device=tb.ssd)
        store.create_bucket("sim")
        fs = S3FileSystem(store, "sim")
        fs.write_object("g.vgf", write_vgf(make_sphere_grid(14), codec="gzip"))
        tb.reset()
        server = NDPServer(fs, testbed=tb, **server_kwargs)
        return tb, RPCClient(InProcessTransport(server.dispatch))

    def test_array_hit_skips_read_and_decompress_charges(self):
        tb, client = self.make_tb_env(cache_bytes=64 * 2**20)
        client.call("prefilter_contour", "g.vgf", "r", [4.0])
        cold_time = tb.clock.now
        cold_ssd = tb.ssd.total_bytes
        client.call("prefilter_contour", "g.vgf", "r", [5.0])
        warm_time = tb.clock.now - cold_time
        assert tb.ssd.total_bytes == cold_ssd  # no new simulated SSD bytes
        # Warm request pays scan + wire compress only; the gzip read +
        # decompress dominate the cold load.
        assert warm_time < cold_time / 2

    def test_selection_hit_charges_nothing(self):
        tb, client = self.make_tb_env(**CACHED)
        client.call("prefilter_contour", "g.vgf", "r", [4.0])
        t0 = tb.clock.now
        client.call("prefilter_contour", "g.vgf", "r", [4.0])
        assert tb.clock.now == t0

    def test_cold_server_still_charges_every_request(self):
        tb, client = self.make_tb_env()  # caches disabled
        client.call("prefilter_contour", "g.vgf", "r", [4.0])
        t1 = tb.clock.now
        client.call("prefilter_contour", "g.vgf", "r", [4.0])
        assert tb.clock.now > t1


class TestBatch:
    def test_batch_reads_each_object_once_even_uncached(self):
        grid = make_wave_grid(14)
        grid.point_data.add(DataArray("g", grid.point_data.get("f").values * 2.0))
        backend, _, server = make_env(grid)  # caches off
        client = RPCClient(InProcessTransport(server.dispatch))
        requests = [
            {"kind": "contour", "array": "f", "values": [0.0]},
            {"kind": "contour", "array": "f", "values": [0.3]},
            {"kind": "threshold", "array": "f", "lower": 0.0, "upper": 1.0},
            {"kind": "contour", "array": "g", "values": [0.0]},
        ]
        client.call("prefilter_batch", "g.vgf", requests)
        per_load = backend.get_calls
        backend.get_calls = 0
        # 4 requests over 2 distinct arrays: exactly 2 loads.
        client.call("prefilter_batch", "g.vgf", requests)
        assert backend.get_calls == per_load
        single = CountingBackend()
        store = ObjectStore(single)
        store.create_bucket("sim")
        fs2 = S3FileSystem(store, "sim")
        fs2.write_object("g.vgf", write_vgf(grid, codec="lz4"))
        single.get_calls = 0
        NDPServer(fs2).prefilter_contour("g.vgf", "f", [0.0])
        one_load = single.get_calls
        assert per_load == 2 * one_load

    def test_batch_roi_equals_direct_call(self):
        """Regression: ``prefilter_batch`` used to drop contour ROIs."""
        grid = make_wave_grid(16)
        _, _, server = make_env(grid)
        client = RPCClient(InProcessTransport(server.dispatch))
        roi = Bounds(2, 8, 0, 7, 3, 10)

        direct, direct_stats = ndp_contour(client, "g.vgf", "f", [0.0], roi=roi)
        [(batched, batch_stats)] = ndp_batch(
            client, "g.vgf",
            [{"kind": "contour", "array": "f", "values": [0.0], "roi": roi}],
        )
        assert np.array_equal(direct.points, batched.points)
        assert np.array_equal(
            direct.polys.connectivity, batched.polys.connectivity
        )
        assert batch_stats["selected_points"] == direct_stats["selected_points"]

        # And the ROI genuinely restricts: the whole-domain result is bigger.
        [(whole, _)] = ndp_batch(
            client, "g.vgf", [{"kind": "contour", "array": "f", "values": [0.0]}]
        )
        assert whole.num_points > batched.num_points

    def test_batch_roi_as_plain_list(self):
        grid = make_wave_grid(16)
        _, _, server = make_env(grid)
        client = RPCClient(InProcessTransport(server.dispatch))
        roi = [2, 8, 0, 7, 3, 10]
        [(batched, _)] = ndp_batch(
            client, "g.vgf",
            [{"kind": "contour", "array": "f", "values": [0.0], "roi": roi}],
        )
        expected = contour_grid(grid, "f", [0.0], roi=Bounds(*roi))
        assert np.array_equal(expected.points, batched.points)

    def test_prefetcher_forwards_roi(self):
        """Regression: ``NDPPrefetcher._issue`` could not pass an ROI."""
        grid = make_wave_grid(16)
        _, _, server = make_env(grid)
        client = RPCClient(InProcessTransport(server.dispatch))
        roi = Bounds(2, 8, 0, 7, 3, 10)
        requests = [
            {"key": "g.vgf", "kind": "contour", "array": "f",
             "values": [0.0], "roi": roi},
        ]
        [(key, pd, stats)] = list(NDPPrefetcher(client, requests, depth=1))
        expected = contour_grid(grid, "f", [0.0], roi=roi)
        assert key == "g.vgf"
        assert np.array_equal(expected.points, pd.points)
        assert stats["selected_points"] < grid.num_points


class TestConcurrencySingleFlight:
    def test_stampede_over_tcp_reads_store_once(self):
        """Many threads hammering one (key, array) through ``serve_tcp``
        produce exactly one store read, correct results on every thread,
        and consistent ``server_stats`` counters."""
        grid = make_sphere_grid(14)
        # A slow store makes the stampede window real: every thread
        # arrives while the first load is still in flight.
        backend = CountingBackend(read_delay=0.05)
        store = ObjectStore(backend)
        store.create_bucket("sim")
        fs = S3FileSystem(store, "sim")
        fs.write_object("g.vgf", write_vgf(grid, codec="lz4"))

        # Cold reference: how many GETs one uncached load costs.
        probe_backend = CountingBackend()
        probe_store = ObjectStore(probe_backend)
        probe_store.create_bucket("sim")
        probe_fs = S3FileSystem(probe_store, "sim")
        probe_fs.write_object("g.vgf", write_vgf(grid, codec="lz4"))
        probe_backend.get_calls = 0
        NDPServer(probe_fs).prefilter_contour("g.vgf", "r", [4.0])
        one_load = probe_backend.get_calls
        assert one_load >= 1

        backend.get_calls = 0
        server = NDPServer(fs, **CACHED)
        listener = server.serve_tcp()
        expected = contour_grid(grid, "r", [4.0])
        n_threads = 8
        barrier = threading.Barrier(n_threads)
        results: list = [None] * n_threads
        errors: list = []

        def worker(i: int) -> None:
            try:
                client = RPCClient.connect_tcp(listener.host, listener.port)
                try:
                    barrier.wait(5.0)
                    pd, _stats = ndp_contour(client, "g.vgf", "r", [4.0])
                    results[i] = pd
                finally:
                    client.close()
            except Exception as exc:  # pragma: no cover - failure reporting
                errors.append(exc)

        threads = [
            threading.Thread(target=worker, args=(i,)) for i in range(n_threads)
        ]
        try:
            for t in threads:
                t.start()
            for t in threads:
                t.join(30.0)
        finally:
            listener.stop()

        assert not errors
        # Single-flight: the store was read exactly once for all N threads.
        assert backend.get_calls == one_load
        for pd in results:
            assert pd is not None
            assert np.array_equal(expected.points, pd.points)

        stats = server.server_stats()
        assert stats["requests"] == n_threads
        assert stats["prefilter_calls"] == n_threads
        sel = stats["selection_cache"]
        assert sel["misses"] == 1
        assert sel["hits"] + sel["coalesced"] == n_threads - 1
        arr = stats["array_cache"]
        assert arr["misses"] == 1
        assert arr["hits"] + arr["coalesced"] == 0  # all folded into selection
        # Every request was accounted, scanned bytes reflect N requests.
        assert stats["raw_bytes_scanned"] == n_threads * 14**3 * 4

    def test_health_reports_cache_fields(self):
        grid = make_sphere_grid(10)
        _, _, server = make_env(grid, **CACHED)
        client = RPCClient(InProcessTransport(server.dispatch))
        ndp_contour(client, "g.vgf", "r", [4.0])
        report = client.call("health")
        assert report["array_cache"]["enabled"] is True
        assert report["array_cache"]["entries"] == 1
        assert report["selection_cache"]["enabled"] is True
        uncached = NDPServer(S3FileSystem(ObjectStore(MemoryBackend()), "sim"))
        assert uncached.health()["array_cache"] == {"enabled": False}
