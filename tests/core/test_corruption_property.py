"""Property: a single at-rest bit flip can never silently change geometry.

For any seeded single-bit corruption of the stored object, one of two
things must happen on an offloaded contour:

* the pipeline **heals** — the corruption is caught by a checksum, the
  client re-reads (or falls back), and the resulting geometry is
  bit-identical to the uncorrupted baseline; or
* the pipeline **fails loudly** — a typed :class:`ReproError` reaches
  the caller.

What must never happen is the third outcome: a clean return with
different geometry.  That is the integrity contract in one sentence.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.core import NDPServer, ndp_contour
from repro.errors import ReproError
from repro.io import write_vgf
from repro.rpc import InProcessTransport, RPCClient
from repro.storage import MemoryBackend, ObjectStore, S3FileSystem

from tests.conftest import make_sphere_grid
from tests.faults import BitFlip, FaultSchedule, FaultyBackend

pytestmark = pytest.mark.chaos

_BLOB = write_vgf(make_sphere_grid(8), codec="gzip")
_VALUES = [3.0]


def _baseline():
    store = ObjectStore(MemoryBackend())
    store.create_bucket("sim")
    fs = S3FileSystem(store, "sim")
    fs.write_object("g.vgf", _BLOB)
    client = RPCClient(InProcessTransport(NDPServer(fs).dispatch))
    pd, _ = ndp_contour(client, "g.vgf", "r", _VALUES)
    return pd


_BASELINE = _baseline()


def _corrupted_client(seed: int) -> tuple[FaultyBackend, RPCClient]:
    store = ObjectStore(MemoryBackend())
    store.create_bucket("sim")
    S3FileSystem(store, "sim").write_object("g.vgf", _BLOB)
    backend = FaultyBackend(store, FaultSchedule([BitFlip(seed)]))
    server = NDPServer(S3FileSystem(backend, "sim"))
    return backend, RPCClient(InProcessTransport(server.dispatch))


@given(seed=st.integers(min_value=0, max_value=2**32 - 1))
@settings(max_examples=40, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
def test_bit_flip_is_detected_or_harmless(seed):
    backend, client = _corrupted_client(seed)
    try:
        pd, _ = ndp_contour(client, "g.vgf", "r", _VALUES)
    except ReproError:
        return  # detected loudly: the contract holds
    # Healed (transient flip + checksum + re-read) or the flip landed in
    # bytes the read never consumed: geometry must be bit-identical.
    np.testing.assert_array_equal(pd.points, _BASELINE.points)
    np.testing.assert_array_equal(pd.triangles(), _BASELINE.triangles())


@given(seed=st.integers(min_value=0, max_value=2**32 - 1))
@settings(max_examples=15, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
def test_transient_flip_in_consumed_bytes_is_counted(seed):
    """When the flipped read was actually consumed and healed, the server
    accounted for it: either the integrity counter moved, a typed error
    surfaced, or the flip landed outside the consumed byte range."""
    backend, client = _corrupted_client(seed)
    try:
        ndp_contour(client, "g.vgf", "r", _VALUES)
    except ReproError:
        return
    health = client.call("health")
    if backend.reads > 1:
        # A re-read happened, so the first read must have failed a check.
        assert health["integrity_failures"] >= 1
