"""Tests for the probe endpoint and the adaptive contour client."""

import numpy as np
import pytest

from repro.core import NDPServer
from repro.core.planner import AdaptiveContourClient
from repro.filters import contour_grid
from repro.grid import DataArray, UniformGrid
from repro.io import write_vgf
from repro.rpc import InProcessTransport, RPCClient
from repro.storage import MemoryBackend, ObjectStore, S3FileSystem
from repro.storage.netsim import Testbed

from tests.conftest import make_sphere_grid


@pytest.fixture
def setup():
    store = ObjectStore(MemoryBackend())
    store.create_bucket("sim")
    fs = S3FileSystem(store, "sim")
    # Sparse workload: a thin spherical shell crosses the contour.
    sparse = make_sphere_grid(16)
    fs.write_object("sparse.vgf", write_vgf(sparse, codec="raw"))
    # Dense workload: noise crossing zero everywhere.
    dense = UniformGrid((16, 16, 16))
    rng = np.random.default_rng(2)
    dense.point_data.add(DataArray("r", rng.normal(size=16**3).astype(np.float32)))
    fs.write_object("dense.vgf", write_vgf(dense, codec="raw"))
    server = NDPServer(fs)
    client = RPCClient(InProcessTransport(server.dispatch))
    remote = S3FileSystem(store, "sim")
    return {"sparse": sparse, "dense": dense}, client, remote


class TestProbeEndpoint:
    def test_probe_reports_selectivity(self, setup):
        grids, client, _ = setup
        probe = client.call("probe_selectivity", "sparse.vgf", "r", [5.0], "cell-closure")
        assert 0 < probe["selectivity"] < 0.3
        assert probe["raw_bytes"] == 16**3 * 4
        assert probe["total_points"] == 16**3
        assert probe["wire_bytes"] < probe["raw_bytes"]

    def test_probe_matches_local_prefilter(self, setup):
        from repro.core import prefilter_contour

        grids, client, _ = setup
        probe = client.call("probe_selectivity", "sparse.vgf", "r", [5.0], "cell-closure")
        sel = prefilter_contour(grids["sparse"], "r", [5.0])
        assert probe["selected_points"] == sel.count

    def test_dense_field_probes_near_one(self, setup):
        _, client, _ = setup
        probe = client.call("probe_selectivity", "dense.vgf", "r", [0.0], "cell-closure")
        assert probe["selectivity"] > 0.9


class TestAdaptiveClient:
    def test_routes_sparse_to_ndp(self, setup):
        grids, client, remote = setup
        adaptive = AdaptiveContourClient(client, remote, Testbed())
        pd, info = adaptive.contour("sparse.vgf", "r", [5.0])
        assert info["route"] == "ndp"
        expected = contour_grid(grids["sparse"], "r", [5.0])
        assert np.array_equal(expected.points, pd.points)

    def test_routes_dense_to_baseline(self, setup):
        grids, client, remote = setup
        adaptive = AdaptiveContourClient(client, remote, Testbed())
        pd, info = adaptive.contour("dense.vgf", "r", [0.0])
        assert info["route"] == "baseline"
        expected = contour_grid(grids["dense"], "r", [0.0])
        assert np.array_equal(expected.points, pd.points)

    def test_probe_cached_per_configuration(self, setup):
        _, client, remote = setup
        probes = []
        original = client.call

        def counting(method, *args):
            if method == "probe_selectivity":
                probes.append(args)
            return original(method, *args)

        client.call = counting
        adaptive = AdaptiveContourClient(client, remote, Testbed())
        for _ in range(4):
            adaptive.contour("sparse.vgf", "r", [5.0])
        assert len(probes) == 1  # one probe, many loads
        adaptive.contour("sparse.vgf", "r", [6.0])
        assert len(probes) == 2  # new values -> new probe

    def test_decision_exposed(self, setup):
        _, client, remote = setup
        adaptive = AdaptiveContourClient(client, remote, Testbed())
        decision = adaptive.decision_for("sparse.vgf", "r", [5.0])
        assert decision.use_ndp
        assert decision.predicted_speedup > 1.0
