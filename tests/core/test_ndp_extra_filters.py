"""Integration tests for the threshold/slice/batch NDP endpoints."""

import numpy as np
import pytest

from repro.core import NDPServer, ndp_batch, ndp_contour, ndp_slice, ndp_threshold
from repro.filters import ThresholdPoints, contour_grid, slice_grid
from repro.io import write_vgf
from repro.rpc import InProcessTransport, RPCClient
from repro.storage import MemoryBackend, ObjectStore, S3FileSystem

from tests.conftest import make_wave_grid


@pytest.fixture
def setup():
    store = ObjectStore(MemoryBackend())
    store.create_bucket("sim")
    fs = S3FileSystem(store, "sim")
    grid = make_wave_grid(14)
    fs.write_object("wave.vgf", write_vgf(grid, codec="lz4"))
    server = NDPServer(fs)
    client = RPCClient(InProcessTransport(server.dispatch))
    return grid, client


class TestThresholdEndpoint:
    def test_matches_local(self, setup):
        grid, client = setup
        pd, stats = ndp_threshold(client, "wave.vgf", "f", 0.0, 0.5)
        stock = ThresholdPoints("f", 0.0, 0.5)
        stock.set_input_data(grid)
        expected = stock.output()
        assert np.array_equal(expected.points, pd.points)
        assert stats["selected_points"] == pd.num_points

    def test_wire_smaller_than_raw(self, setup):
        _, client = setup
        _, stats = ndp_threshold(client, "wave.vgf", "f", 0.4, 0.5)
        assert stats["wire_bytes"] < stats["raw_bytes"]


class TestSliceEndpoint:
    @pytest.mark.parametrize("axis", [0, 1, 2])
    def test_matches_local(self, setup, axis):
        grid, client = setup
        coord = grid.origin[axis] + 6.4 * grid.spacing[axis]
        pd, stats = ndp_slice(client, "wave.vgf", "f", axis, coord)
        expected = slice_grid(grid, axis, coord, ["f"])
        assert np.array_equal(expected.points, pd.points)
        assert expected.point_data.get("f") == pd.point_data.get("f")
        # a slice ships at most two planes
        assert stats["selected_points"] <= 2 * 14 * 14


class TestBatchEndpoint:
    def test_mixed_batch(self, setup):
        grid, client = setup
        coord = grid.origin[2] + 3.5 * grid.spacing[2]
        requests = [
            {"kind": "contour", "array": "f", "values": [0.0]},
            {"kind": "threshold", "array": "f", "lower": 0.5, "upper": 1.0},
            {"kind": "slice", "array": "f", "axis": 2, "coordinate": coord},
        ]
        results = ndp_batch(client, "wave.vgf", requests)
        assert len(results) == 3
        (contour_pd, _), (thresh_pd, _), (slice_pd, _) = results
        expected_contour = contour_grid(grid, "f", [0.0])
        assert np.array_equal(expected_contour.points, contour_pd.points)
        assert thresh_pd.verts.num_cells == thresh_pd.num_points
        assert np.allclose(slice_pd.points[:, 2], coord)

    def test_single_round_trip(self, setup):
        """The batch endpoint must issue exactly one RPC call."""
        grid, client = setup
        calls = []
        original = client._transport.request

        def counting(payload):
            calls.append(len(payload))
            return original(payload)

        client._transport.request = counting
        ndp_batch(
            client,
            "wave.vgf",
            [
                {"kind": "contour", "array": "f", "values": [0.0]},
                {"kind": "contour", "array": "f", "values": [0.5]},
            ],
        )
        assert len(calls) == 1

    def test_unknown_kind(self, setup):
        _, client = setup
        from repro.errors import RPCRemoteError

        with pytest.raises(RPCRemoteError, match="kind"):
            client.call("prefilter_batch", "wave.vgf", [{"kind": "nope"}])

    def test_batch_equals_individual(self, setup):
        grid, client = setup
        batch = ndp_batch(
            client, "wave.vgf", [{"kind": "contour", "array": "f", "values": [0.2]}]
        )
        single, _ = ndp_contour(client, "wave.vgf", "f", [0.2])
        assert np.array_equal(batch[0][0].points, single.points)
