"""Unit tests for the contour pre-filter."""

import numpy as np
import pytest

from repro.core import prefilter_contour
from repro.core.prefilter import ContourPreFilter, selection_rate
from repro.errors import FilterError
from repro.grid import PointSelection

from tests.conftest import make_2d_grid, make_sphere_grid, make_wave_grid


class TestPrefilterFunction:
    def test_returns_selection(self):
        grid = make_sphere_grid(12)
        sel = prefilter_contour(grid, "r", [4.0])
        assert isinstance(sel, PointSelection)
        assert 0 < sel.count < grid.num_points
        assert sel.array_name == "r"
        assert sel.dims == grid.dims

    def test_values_match_grid(self):
        grid = make_sphere_grid(10)
        sel = prefilter_contour(grid, "r", [3.0])
        arr = grid.point_data.get("r").values
        assert np.array_equal(sel.values, arr[sel.ids])

    def test_edge_mode_subset_of_closure(self):
        grid = make_wave_grid(16)
        edge = prefilter_contour(grid, "f", [0.0], mode="edge")
        closure = prefilter_contour(grid, "f", [0.0], mode="cell-closure")
        assert set(edge.ids) <= set(closure.ids)
        assert closure.count <= 8 * edge.count  # same order of magnitude

    def test_unknown_mode(self):
        with pytest.raises(FilterError, match="mode"):
            prefilter_contour(make_sphere_grid(6), "r", [1.0], mode="bogus")

    def test_no_crossings_empty_selection(self):
        grid = make_sphere_grid(8)
        sel = prefilter_contour(grid, "r", [1e9])
        assert sel.count == 0

    def test_multi_value_union(self):
        grid = make_wave_grid(14)
        s1 = prefilter_contour(grid, "f", [0.0])
        s2 = prefilter_contour(grid, "f", [0.5])
        both = prefilter_contour(grid, "f", [0.0, 0.5])
        assert set(both.ids) == set(s1.ids) | set(s2.ids)

    def test_2d_grid(self):
        # A dense random field crosses zero at almost every edge, so the
        # selection may legitimately cover the whole grid.
        grid = make_2d_grid(14, 11)
        sel = prefilter_contour(grid, "f", [0.0])
        assert 0 < sel.count <= grid.num_points
        # An extreme value selects (almost) nothing.
        assert prefilter_contour(grid, "f", [1e9]).count == 0

    def test_sphere_selectivity_scales_with_surface(self):
        """Selection size tracks the isosurface area (r^2), not volume."""
        grid = make_sphere_grid(32)
        small = prefilter_contour(grid, "r", [5.0]).count
        large = prefilter_contour(grid, "r", [10.0]).count
        ratio = large / small
        assert 2.5 < ratio < 6.0  # (10/5)^2 = 4, up to lattice effects


class TestSelectionRate:
    def test_permillage_units(self):
        grid = make_sphere_grid(16)
        rate = selection_rate(grid, "r", [5.0])
        sel = prefilter_contour(grid, "r", [5.0], mode="edge")
        assert rate == pytest.approx(1000.0 * sel.count / grid.num_points)

    def test_uses_edge_mode(self):
        """Fig. 6's statistic counts edge-incident points, not the closure."""
        grid = make_wave_grid(12)
        rate = selection_rate(grid, "f", [0.0])
        closure = prefilter_contour(grid, "f", [0.0]).permillage
        assert rate <= closure


class TestPreFilterPipeline:
    def test_pipeline_form(self):
        grid = make_sphere_grid(10)
        pre = ContourPreFilter("r", [3.0])
        pre.set_input_data(grid)
        sel = pre.output()
        assert sel == prefilter_contour(grid, "r", [3.0])

    def test_mode_setter(self):
        grid = make_sphere_grid(10)
        pre = ContourPreFilter("r", [3.0])
        pre.set_input_data(grid)
        n_closure = pre.output().count
        pre.set_mode("edge")
        n_edge = pre.output().count
        assert n_edge <= n_closure
        assert pre.mode == "edge"

    def test_bad_mode_rejected(self):
        with pytest.raises(FilterError):
            ContourPreFilter("r", [1.0], mode="nope")
        pre = ContourPreFilter("r", [1.0])
        with pytest.raises(FilterError):
            pre.set_mode("nope")

    def test_unconfigured(self):
        pre = ContourPreFilter()
        pre.set_input_data(make_sphere_grid(6))
        with pytest.raises(FilterError, match="array name"):
            pre.update()
        pre.set_array_name("r")
        with pytest.raises(FilterError, match="values"):
            pre.update()

    def test_wrong_input_type(self):
        pre = ContourPreFilter("r", [1.0])
        pre.set_input_data(3.14)
        with pytest.raises(FilterError, match="UniformGrid"):
            pre.update()

    def test_values_normalized(self):
        pre = ContourPreFilter("r", [0.9, 0.1, 0.9])
        assert pre.values == (0.1, 0.9)
