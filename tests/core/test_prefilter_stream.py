"""The fused streaming pre-filter must be byte-identical to materializing.

:func:`~repro.core.prefilter.prefilter_contour_stream` consumes decoded
buffers chunk-by-chunk; these tests drive it across codecs, chunk sizes
(down to one layer), selection modes, grid shapes (incl. 2-D), dtypes,
NaN-bearing fields, and rectilinear axes, always comparing against the
materializing :func:`~repro.core.prefilter.prefilter_contour`.  A second
class asserts the NDP server's fused hot path produces replies
byte-identical (CRC included) to the legacy server path.
"""

import numpy as np
import pytest

from repro.compression import get_codec
from repro.core.ndp_server import NDPServer
from repro.core.prefilter import prefilter_contour, prefilter_contour_stream
from repro.errors import FilterError, FormatError
from repro.grid.array import DataArray
from repro.grid.rectilinear import RectilinearGrid
from repro.grid.uniform import UniformGrid
from repro.io.vgf import write_vgf
from repro.rpc import RPCClient, pack
from repro.rpc.transport import InProcessTransport
from repro.storage import MemoryBackend, ObjectStore, S3FileSystem

VALUES = (-0.5, 0.0, 0.7)


def same_selection(a, b) -> bool:
    """Byte-identical geometry (NaN-safe, unlike PointSelection.__eq__)."""
    return (
        a.dims == b.dims
        and np.array_equal(a.ids, b.ids)
        and a.values.dtype == b.values.dtype
        and a.values.tobytes() == b.values.tobytes()
    )


def make_grid(dims, dtype=np.float32, nan_every=0, seed=0):
    nx, ny, nz = dims
    rng = np.random.default_rng(seed)
    f = rng.normal(size=(nz, ny, nx)).astype(dtype)
    if nan_every:
        f.ravel()[::nan_every] = np.nan
    grid = UniformGrid(dims, (0, 0, 0), (1, 1, 1))
    grid.point_data.add(DataArray("s", f.reshape(-1)))
    return grid, f


class TestStreamEquivalence:
    @pytest.mark.parametrize("dims", [(7, 5, 9), (4, 4, 1), (3, 3, 2),
                                      (16, 16, 16), (1, 6, 6), (2, 2, 2)])
    @pytest.mark.parametrize("mode", ["cell-closure", "edge"])
    @pytest.mark.parametrize("codec_name", ["raw", "gzip"])
    def test_matches_materializing(self, dims, mode, codec_name):
        grid, f = make_grid(dims, nan_every=37)
        ref = prefilter_contour(grid, "s", VALUES, mode=mode)
        codec = get_codec(codec_name)
        stored = codec.compress(f.tobytes())
        for chunk_layers in (0, 1, 2, 5):
            got = prefilter_contour_stream(
                codec.iter_decompress(stored), dims, f.dtype, "s", VALUES,
                mode=mode, chunk_layers=chunk_layers,
            )
            assert same_selection(got, ref), (dims, mode, codec_name, chunk_layers)

    @pytest.mark.parametrize("dtype", [np.float32, np.float64, np.int32])
    def test_dtype_preserved(self, dtype):
        dims = (6, 5, 7)
        grid, f = make_grid(dims, dtype=dtype)
        ref = prefilter_contour(grid, "s", [0.1])
        got = prefilter_contour_stream(
            [f.tobytes()], dims, dtype, "s", [0.1], chunk_layers=2
        )
        assert got.values.dtype == np.dtype(dtype)
        assert same_selection(got, ref)

    def test_rectilinear_axes_carried(self):
        axes = (np.linspace(0, 1, 6), np.linspace(0, 2, 4),
                np.cumsum(np.random.default_rng(2).random(5)))
        grid = RectilinearGrid(*axes)
        f = np.random.default_rng(2).normal(size=(5, 4, 6)).astype(np.float32)
        grid.point_data.add(DataArray("s", f.reshape(-1)))
        ref = prefilter_contour(grid, "s", [0.1])
        got = prefilter_contour_stream(
            [f.tobytes()], (6, 4, 5), np.float32, "s", [0.1],
            axes=axes, chunk_layers=2,
        )
        assert got == ref  # full equality, axes included (no NaN here)

    def test_arbitrary_chunk_splits(self):
        # The byte stream need not align to layers or even elements.
        dims = (6, 4, 5)
        grid, f = make_grid(dims, seed=3)
        ref = prefilter_contour(grid, "s", VALUES)
        raw = f.tobytes()
        for step in (1, 7, 13, 64):
            chunks = [raw[i : i + step] for i in range(0, len(raw), step)]
            got = prefilter_contour_stream(
                chunks, dims, np.float32, "s", VALUES, chunk_layers=1
            )
            assert same_selection(got, ref), step

    def test_truncated_stream_raises(self):
        dims = (6, 4, 5)
        _, f = make_grid(dims, seed=4)
        raw = f.tobytes()
        for bad in (raw[:-4], raw[:-1], raw[: len(raw) // 2], b""):
            with pytest.raises(FormatError):
                prefilter_contour_stream(
                    [bad], dims, np.float32, "s", [0.1], chunk_layers=2
                )

    def test_oversized_stream_raises(self):
        dims = (6, 4, 5)
        _, f = make_grid(dims, seed=5)
        raw = f.tobytes()
        for extra in (b"\x00", raw[:12], b"x"):
            with pytest.raises(FormatError):
                prefilter_contour_stream(
                    [raw, extra], dims, np.float32, "s", [0.1], chunk_layers=2
                )

    def test_bad_mode_rejected(self):
        dims = (4, 4, 4)
        _, f = make_grid(dims, seed=6)
        with pytest.raises(FilterError):
            prefilter_contour_stream(
                [f.tobytes()], dims, np.float32, "s", [0.1], mode="nope"
            )


class TestServerFusedPath:
    @pytest.fixture()
    def fs(self):
        store = ObjectStore(MemoryBackend())
        store.create_bucket("sim")
        fs = S3FileSystem(store, "sim")
        grid, _ = make_grid((11, 9, 13), seed=7)
        for codec in ("raw", "gzip"):
            fs.write_object(f"x_{codec}.vgf", write_vgf(grid, codec=codec))
        return fs

    @pytest.mark.parametrize("codec", ["raw", "gzip"])
    @pytest.mark.parametrize("mode", ["cell-closure", "edge"])
    def test_fused_reply_byte_identical_to_legacy(self, fs, codec, mode):
        replies = []
        for fused in (True, False):
            server = NDPServer(fs, fused_streaming=fused)
            client = RPCClient(InProcessTransport(server.dispatch))
            for encoding in ("auto", "ids", "bitmap"):
                replies.append(
                    client.call(
                        "prefilter_contour", f"x_{codec}.vgf", "s",
                        list(VALUES), mode, encoding, "gzip",
                    )
                )
        half = len(replies) // 2
        for fused_reply, legacy_reply in zip(replies[:half], replies[half:]):
            # Same bytes on the wire, same integrity stamp.
            assert pack(dict(fused_reply)) == pack(dict(legacy_reply))
            assert fused_reply["crc"] == legacy_reply["crc"]

    def test_fallbacks_still_serve(self, fs):
        # ROI, caches, and batches route around the fused path and work.
        server = NDPServer(fs, cache_bytes=1 << 20,
                           selection_cache_bytes=1 << 20)
        client = RPCClient(InProcessTransport(server.dispatch))
        roi_reply = client.call(
            "prefilter_contour", "x_gzip.vgf", "s", [0.0], "cell-closure",
            "auto", "lz4", [2, 8, 2, 8, 2, 8],
        )
        assert roi_reply["stats"]["selected_points"] > 0
        batch = client.call("prefilter_batch", "x_gzip.vgf", [
            {"kind": "contour", "array": "s", "values": [0.0]},
            {"kind": "threshold", "array": "s", "lower": 0.0, "upper": 1.0},
        ])
        assert len(batch) == 2

    def test_fused_and_legacy_against_direct_prefilter(self, fs):
        # Both server paths agree with calling the library directly.
        from repro.core.encoding import decode_selection
        from repro.io.vgf import read_vgf

        grid = read_vgf(fs.read_object("x_gzip.vgf"))
        ref = prefilter_contour(grid, "s", list(VALUES))
        for fused in (True, False):
            server = NDPServer(fs, fused_streaming=fused)
            client = RPCClient(InProcessTransport(server.dispatch))
            reply = client.call(
                "prefilter_contour", "x_gzip.vgf", "s", list(VALUES),
            )
            assert same_selection(decode_selection(reply), ref)
