"""Hypothesis property test of the paper's core invariant.

For arbitrary scalar fields and contour-value sets, reconstructing the
contour from the pre-filtered sparse selection must be bit-identical to
contouring the full array (DESIGN.md §5 invariant 1).  This is the
property that makes offloading *correct*, not just fast.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.core import (
    decode_selection,
    encode_selection,
    postfilter_contour,
    prefilter_contour,
)
from repro.filters import contour_grid
from repro.grid import DataArray, UniformGrid


def build_grid(field3d):
    nz, ny, nx = field3d.shape
    grid = UniformGrid((nx, ny, nz))
    grid.point_data.add(DataArray("f", field3d.reshape(-1)))
    return grid


field_elements = st.floats(
    min_value=-10.0, max_value=10.0, allow_nan=False, allow_infinity=False, width=32
)

fields_3d = arrays(
    dtype=np.float32,
    shape=st.tuples(
        st.integers(2, 7), st.integers(2, 7), st.integers(2, 7)
    ),
    elements=field_elements,
)

fields_2d = arrays(
    dtype=np.float32,
    shape=st.tuples(st.just(1), st.integers(2, 10), st.integers(2, 10)),
    elements=field_elements,
)

value_sets = st.lists(
    st.floats(min_value=-9.5, max_value=9.5, allow_nan=False, width=32),
    min_size=1,
    max_size=3,
    unique=True,
)


def check_equivalence(field, values):
    grid = build_grid(field)
    full = contour_grid(grid, "f", values)
    sel = prefilter_contour(grid, "f", values)
    # Ship through the wire encoding too: the property must hold for what
    # the client actually receives.
    sel2 = decode_selection(encode_selection(sel))
    recon = postfilter_contour(sel2, values)
    assert np.array_equal(full.points, recon.points)
    assert np.array_equal(full.polys.connectivity, recon.polys.connectivity)
    assert np.array_equal(full.lines.connectivity, recon.lines.connectivity)
    cv_full = full.point_data.get("contour_value")
    cv_recon = recon.point_data.get("contour_value")
    assert cv_full == cv_recon


@given(field=fields_3d, values=value_sets)
@settings(max_examples=120, deadline=None)
def test_3d_reconstruction_bit_exact(field, values):
    check_equivalence(field, values)


@given(field=fields_2d, values=value_sets)
@settings(max_examples=80, deadline=None)
def test_2d_reconstruction_bit_exact(field, values):
    check_equivalence(field, values)


@given(
    field=arrays(
        dtype=np.float32,
        shape=st.tuples(st.integers(2, 5), st.integers(2, 5), st.integers(2, 5)),
        elements=st.integers(0, 4).map(float),
    ),
    values=st.lists(
        st.sampled_from([0.0, 1.0, 2.0, 3.0, 4.0]), min_size=1, max_size=2, unique=True
    ),
)
@settings(max_examples=80, deadline=None)
def test_quantized_fields_with_exact_hits(field, values):
    """Plateaus and exact value hits are the degenerate cases most likely
    to break mask-based reconstruction."""
    check_equivalence(field, values)


@given(
    field=fields_3d,
    values=value_sets,
    axis_seed=st.integers(0, 2**31 - 1),
)
@settings(max_examples=60, deadline=None)
def test_rectilinear_reconstruction_bit_exact(field, values, axis_seed):
    """The invariant holds on rectilinear grids too (paper future work)."""
    from repro.grid import RectilinearGrid

    nz, ny, nx = field.shape
    rng = np.random.default_rng(axis_seed)
    grid = RectilinearGrid(
        np.cumsum(rng.uniform(0.1, 2.0, nx)),
        np.cumsum(rng.uniform(0.1, 2.0, ny)),
        np.cumsum(rng.uniform(0.1, 2.0, nz)),
    )
    grid.point_data.add(DataArray("f", field.reshape(-1)))
    full = contour_grid(grid, "f", values)
    sel = decode_selection(encode_selection(prefilter_contour(grid, "f", values)))
    recon = postfilter_contour(sel, values)
    assert np.array_equal(full.points, recon.points)
    assert np.array_equal(full.polys.connectivity, recon.polys.connectivity)


@given(field=fields_3d, values=value_sets)
@settings(max_examples=60, deadline=None)
def test_selection_soundness(field, values):
    """DESIGN.md invariant 4: the selection contains every point incident
    to an interesting edge, with the true value at each."""
    from repro.core.interesting import interesting_point_mask

    grid = build_grid(field)
    sel = prefilter_contour(grid, "f", values)
    mask = interesting_point_mask(field.astype(np.float64), values)
    needed = np.nonzero(mask.reshape(-1))[0]
    assert set(needed) <= set(sel.ids)
    arr = grid.point_data.get("f").values
    assert np.array_equal(sel.values, arr[sel.ids])
