"""Unit tests for pipeline splitting."""

import numpy as np
import pytest

from repro.core import split_contour_filter
from repro.core.split import SplitContourPipeline
from repro.errors import PipelineError
from repro.filters import ContourFilter, contour_grid
from repro.pipeline import TrivialProducer

from tests.conftest import make_sphere_grid, make_wave_grid


class TestSplitContourFilter:
    def test_config_inherited(self):
        contour = ContourFilter("v02", [0.1, 0.5])
        pre, post = split_contour_filter(contour)
        assert pre.array_name == "v02"
        assert pre.values == (0.1, 0.5)
        assert post.values == (0.1, 0.5)

    def test_mode_forwarded(self):
        pre, _ = split_contour_filter(ContourFilter("a", [1.0]), mode="edge")
        assert pre.mode == "edge"

    def test_unconfigured_rejected(self):
        with pytest.raises(PipelineError, match="array name"):
            split_contour_filter(ContourFilter())
        with pytest.raises(PipelineError, match="values"):
            split_contour_filter(ContourFilter("a"))

    def test_composition_equals_original(self):
        grid = make_wave_grid(16)
        contour = ContourFilter("f", [-0.2, 0.4])
        contour.set_input_data(grid)
        expected = contour.output()

        pre, post = split_contour_filter(contour)
        pre.set_input_data(grid)
        post.set_input_data(pre.output())
        result = post.output()
        assert np.array_equal(expected.points, result.points)
        assert np.array_equal(expected.polys.connectivity, result.polys.connectivity)


class TestSplitContourPipeline:
    def _build(self, grid, values=(0.1,)):
        source = TrivialProducer(grid)
        contour = ContourFilter("r", list(values))
        contour.set_input_connection(0, source)
        return source, contour

    def test_run_local_matches_stock(self):
        grid = make_sphere_grid(14)
        source, contour = self._build(grid, [4.0])
        split = SplitContourPipeline(source, contour)
        result = split.run_local()
        expected = contour_grid(grid, "r", [4.0])
        assert np.array_equal(expected.points, result.points)

    def test_two_phase_execution(self):
        grid = make_sphere_grid(12)
        source, contour = self._build(grid, [3.0])
        split = SplitContourPipeline(source, contour)
        selection = split.run_storage_side()
        assert 0 < selection.count < grid.num_points
        split.deliver(selection)
        result = split.run_client_side()
        assert result.triangles().shape[0] > 0

    def test_requires_direct_connection(self):
        grid = make_sphere_grid(8)
        source = TrivialProducer(grid)
        other = TrivialProducer(grid)
        contour = ContourFilter("r", [1.0])
        contour.set_input_connection(0, other)
        with pytest.raises(PipelineError, match="connected directly"):
            SplitContourPipeline(source, contour)

    def test_source_update_propagates(self):
        grid = make_sphere_grid(10)
        source, contour = self._build(grid, [3.0])
        split = SplitContourPipeline(source, contour)
        sel1 = split.run_storage_side()
        source.set_data(make_sphere_grid(12))
        sel2 = split.run_storage_side()
        assert sel1.dims == (10, 10, 10)
        assert sel2.dims == (12, 12, 12)
