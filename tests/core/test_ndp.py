"""Integration-style unit tests for the NDP server/client pair."""

import numpy as np
import pytest

from repro.core import NDPContourSource, NDPServer, ndp_contour, postfilter_contour
from repro.core.encoding import decode_selection
from repro.errors import PipelineError, RPCRemoteError
from repro.filters import contour_grid
from repro.io import write_vgf
from repro.rpc import InProcessTransport, RPCClient
from repro.storage import MemoryBackend, ObjectStore, S3FileSystem

from tests.conftest import make_sphere_grid, make_wave_grid


@pytest.fixture
def setup():
    store = ObjectStore(MemoryBackend())
    store.create_bucket("sim")
    fs = S3FileSystem(store, "sim")
    grids = {"sphere": make_sphere_grid(12), "wave": make_wave_grid(14)}
    fs.write_object("sphere.vgf", write_vgf(grids["sphere"], codec="gzip",
                                            meta={"timestep": 0}))
    fs.write_object("wave.vgf", write_vgf(grids["wave"], codec="lz4"))
    server = NDPServer(fs)
    client = RPCClient(InProcessTransport(server.dispatch))
    return grids, server, client


class TestServerEndpoints:
    def test_list_objects(self, setup):
        _, _, client = setup
        assert client.call("list_objects", "") == ["sphere.vgf", "wave.vgf"]

    def test_describe(self, setup):
        _, _, client = setup
        desc = client.call("describe", "sphere.vgf")
        assert desc["dims"] == [12, 12, 12]
        assert desc["meta"] == {"timestep": 0}
        assert desc["arrays"][0]["name"] == "r"
        assert desc["arrays"][0]["codec"] == "gzip"

    def test_prefilter_contour(self, setup):
        grids, _, client = setup
        encoded = client.call(
            "prefilter_contour", "sphere.vgf", "r", [4.0], "cell-closure", "auto"
        )
        sel = decode_selection(encoded)
        assert sel.count > 0
        stats = encoded["stats"]
        assert stats["raw_bytes"] == grids["sphere"].point_data.get("r").nbytes
        assert 0 < stats["wire_bytes"] < stats["raw_bytes"]
        assert stats["selected_points"] == sel.count

    def test_read_array_fallback(self, setup):
        grids, _, client = setup
        reply = client.call("read_array", "wave.vgf", "f")
        values = np.frombuffer(reply["values"], dtype=np.dtype(reply["dtype"]))
        assert np.array_equal(values, grids["wave"].point_data.get("f").values)

    def test_missing_key_is_remote_error(self, setup):
        _, _, client = setup
        with pytest.raises(RPCRemoteError):
            client.call("prefilter_contour", "nope.vgf", "r", [1.0], "cell-closure", "auto")

    def test_missing_array_is_remote_error(self, setup):
        _, _, client = setup
        with pytest.raises(RPCRemoteError):
            client.call("prefilter_contour", "sphere.vgf", "zzz", [1.0], "cell-closure", "auto")


class TestNDPContourSource:
    def test_pipeline_source(self, setup):
        grids, _, client = setup
        source = NDPContourSource(client, "sphere.vgf", "r", [4.0])
        sel = source.output()
        assert sel.array_name == "r"
        assert source.last_stats is not None

    def test_end_to_end_equals_local(self, setup):
        grids, _, client = setup
        pd, stats = ndp_contour(client, "wave.vgf", "f", [0.0, 0.5])
        expected = contour_grid(grids["wave"], "f", [0.0, 0.5])
        assert np.array_equal(expected.points, pd.points)
        assert np.array_equal(expected.polys.connectivity, pd.polys.connectivity)
        assert stats["codec"] == "lz4"

    def test_unconfigured(self):
        with pytest.raises(PipelineError):
            NDPContourSource().update()

    def test_missing_values(self, setup):
        _, _, client = setup
        source = NDPContourSource(client, "sphere.vgf", "r")
        with pytest.raises(PipelineError, match="values"):
            source.update()

    def test_reconfigure(self, setup):
        _, _, client = setup
        source = NDPContourSource(client, "sphere.vgf", "r", [3.0])
        n1 = source.output().count
        source.set_values([5.0])
        n2 = source.output().count
        assert n1 != n2


class TestOverTCP:
    def test_full_path_over_sockets(self, setup):
        grids, server, _ = setup
        listener = server.serve_tcp()
        try:
            client = RPCClient.connect_tcp(listener.host, listener.port)
            pd, stats = ndp_contour(client, "sphere.vgf", "r", [4.0])
            expected = contour_grid(grids["sphere"], "r", [4.0])
            assert np.array_equal(expected.points, pd.points)
            client.close()
        finally:
            listener.stop()


class TestTestbedCharging:
    def test_server_charges_phases(self):
        from repro.storage.netsim import Testbed

        tb = Testbed()
        store = ObjectStore(MemoryBackend(), device=tb.ssd)
        store.create_bucket("sim")
        fs = S3FileSystem(store, "sim")
        fs.write_object("g.vgf", write_vgf(make_sphere_grid(12), codec="gzip"))
        tb.reset()
        server = NDPServer(fs, testbed=tb)
        client = RPCClient(InProcessTransport(server.dispatch))
        client.call("prefilter_contour", "g.vgf", "r", [4.0], "cell-closure", "auto")
        assert tb.clock.now > 0
        assert tb.ssd.total_bytes > 0
