"""Unit tests for interesting-edge analysis."""

import numpy as np
import pytest

from repro.core import (
    active_cell_mask,
    cell_closure_point_mask,
    interesting_point_mask,
)
from repro.core.interesting import point_mask_to_cell_complete
from repro.errors import FilterError
from repro.grid.cells import structured_edges


def brute_force_point_mask(field, values):
    """Reference implementation via explicit edge enumeration."""
    nz, ny, nx = field.shape
    flat = field.reshape(-1)
    a, b = structured_edges((nx, ny, nz))
    mask = np.zeros(flat.size, dtype=bool)
    for v in np.atleast_1d(values):
        ia = flat[a] >= v
        ib = flat[b] >= v
        cross = ia != ib
        mask[a[cross]] = True
        mask[b[cross]] = True
    return mask.reshape(nz, ny, nx)


class TestInterestingPointMask:
    def test_matches_brute_force_3d(self, rng):
        field = rng.normal(size=(6, 7, 8))
        for values in ([0.0], [-0.5, 0.5], [0.1, 0.3, 0.9]):
            fast = interesting_point_mask(field, values)
            slow = brute_force_point_mask(field, values)
            assert np.array_equal(fast, slow)

    def test_matches_brute_force_2d(self, rng):
        field = rng.normal(size=(1, 9, 10))  # degenerate z
        fast = interesting_point_mask(field, [0.0])
        slow = brute_force_point_mask(field, [0.0])
        assert np.array_equal(fast, slow)

    def test_paper_fig3_semantics(self):
        """An edge is interesting iff one end >= v and the other < v."""
        field = np.array([[[4.0, 5.0, 6.0]]])  # 1x1x3 line
        mask = interesting_point_mask(field, [5.0])
        # Edge (4,5): 4 < 5 <= 5 -> interesting.  Edge (5,6): both >= 5.
        assert mask.reshape(-1).tolist() == [True, True, False]

    def test_constant_field_empty(self):
        assert not interesting_point_mask(np.ones((4, 4, 4)), [0.5]).any()

    def test_multi_value_is_union(self, rng):
        field = rng.normal(size=(5, 5, 5))
        m1 = interesting_point_mask(field, [0.2])
        m2 = interesting_point_mask(field, [-0.4])
        both = interesting_point_mask(field, [0.2, -0.4])
        assert np.array_equal(both, m1 | m2)

    def test_rejects_bad_shapes(self):
        with pytest.raises(FilterError):
            interesting_point_mask(np.zeros((4, 4)), [0.5])


class TestActiveCellMask:
    def test_mixed_cells_only(self):
        field = np.zeros((2, 2, 3))
        field[:, :, 2] = 1.0  # second cell straddles 0.5, first does not
        active = active_cell_mask(field, [0.5])
        assert active.shape == (1, 1, 2)
        assert active.tolist() == [[[False, True]]]

    def test_2d_cells(self, rng):
        field = rng.normal(size=(1, 5, 6))
        active = active_cell_mask(field, [0.0])
        assert active.shape == (1, 4, 5)

    def test_exact_value_classification(self):
        # A corner exactly at the value classifies as inside (>= v).
        field = np.zeros((2, 2, 2))
        field[:, :, 1] = 0.5
        assert active_cell_mask(field, [0.5]).all()
        field[:, :, 0] = 0.5  # all inside now
        assert not active_cell_mask(field, [0.5]).any()

    def test_agrees_with_point_mask(self, rng):
        """Every active cell must touch interesting points, and every
        interesting point must touch an active cell."""
        field = rng.normal(size=(6, 6, 6))
        active = active_cell_mask(field, [0.0])
        closure = cell_closure_point_mask(field, [0.0])
        interesting = interesting_point_mask(field, [0.0])
        assert (interesting & ~closure).sum() == 0  # closure superset


class TestCellClosure:
    def test_contains_interesting_points(self, rng):
        field = rng.normal(size=(7, 6, 5))
        for values in ([0.0], [-1.0, 0.5]):
            closure = cell_closure_point_mask(field, values)
            interesting = interesting_point_mask(field, values)
            assert not (interesting & ~closure).any()

    def test_every_closure_point_touches_active_cell(self, rng):
        field = rng.normal(size=(5, 5, 5))
        closure = cell_closure_point_mask(field, [0.0])
        active = active_cell_mask(field, [0.0])
        # Rebuild closure from active by scattering; must match exactly.
        rebuilt = np.zeros_like(closure)
        cz, cy, cx = active.shape
        for dz in (0, 1):
            for dy in (0, 1):
                for dx in (0, 1):
                    rebuilt[dz : dz + cz, dy : dy + cy, dx : dx + cx] |= active
        assert np.array_equal(closure, rebuilt)

    def test_2d_closure(self, rng):
        field = rng.normal(size=(1, 6, 7))
        closure = cell_closure_point_mask(field, [0.0])
        assert closure.shape == field.shape
        assert closure.any()


class TestCellComplete:
    def test_all_present(self):
        mask = np.ones((3, 3, 3), dtype=bool)
        assert point_mask_to_cell_complete(mask).all()

    def test_one_missing_point_blocks_its_cells(self):
        mask = np.ones((3, 3, 3), dtype=bool)
        mask[1, 1, 1] = False  # center point: corner of all 8 cells
        complete = point_mask_to_cell_complete(mask)
        assert not complete.any()

    def test_corner_missing_blocks_one_cell(self):
        mask = np.ones((3, 3, 3), dtype=bool)
        mask[0, 0, 0] = False
        complete = point_mask_to_cell_complete(mask)
        assert complete.sum() == 7
        assert not complete[0, 0, 0]

    def test_2d(self):
        mask = np.ones((1, 3, 3), dtype=bool)
        mask[0, 0, 0] = False
        complete = point_mask_to_cell_complete(mask)
        assert complete.shape == (1, 2, 2)
        assert complete.sum() == 3

    def test_closure_cells_are_complete(self, rng):
        """The defining property: cells active for the contour are complete
        under the closure point mask."""
        field = rng.normal(size=(6, 6, 6))
        closure = cell_closure_point_mask(field, [0.3])
        active = active_cell_mask(field, [0.3])
        complete = point_mask_to_cell_complete(closure)
        assert not (active & ~complete).any()

    def test_rejects_bad_rank(self):
        with pytest.raises(FilterError):
            point_mask_to_cell_complete(np.ones((3, 3), dtype=bool))


def brute_force_cell_mask_f64(field, values):
    """Per-value active-cell reference with explicit float64 semantics."""
    f = np.asarray(field, dtype=np.float64)
    lo = hi = f
    for axis in range(3):
        if f.shape[axis] > 1:
            a, b = [slice(None)] * 3, [slice(None)] * 3
            a[axis], b[axis] = slice(None, -1), slice(1, None)
            lo = np.minimum(lo[tuple(a)], lo[tuple(b)])
            hi = np.maximum(hi[tuple(a)], hi[tuple(b)])
    active = np.zeros(lo.shape, dtype=bool)
    for v in values:
        active |= (hi >= np.float64(v)) & (lo < np.float64(v))
    return active


class TestSinglePassClassification:
    """The single-pass interval-index scan must match the per-value
    float64 reference bit-for-bit — including NaN, integer dtypes, and
    float32 fields against values float32 cannot represent."""

    def _check(self, field, values):
        f64 = np.asarray(field, dtype=np.float64)
        assert np.array_equal(
            interesting_point_mask(field, values),
            brute_force_point_mask(f64, [np.float64(v) for v in values]),
        )
        assert np.array_equal(
            active_cell_mask(field, values),
            brute_force_cell_mask_f64(field, values),
        )

    @pytest.mark.parametrize("dtype", [np.float32, np.float64, np.int32,
                                       np.int64, np.uint16])
    def test_matches_per_value_reference(self, rng, dtype):
        field = (rng.normal(scale=100, size=(6, 7, 8))).astype(dtype)
        self._check(field, [-120.0, -3.5, 0.0, 17.0, 99.9])

    def test_nan_points_never_interesting(self, rng):
        field = rng.normal(size=(6, 6, 6)).astype(np.float32)
        field.ravel()[::11] = np.nan
        self._check(field, [-0.5, 0.0, 0.5])
        # And no NaN point is itself flagged: a NaN endpoint classifies
        # like -inf on both sides, but its *neighbour* may still cross.
        mask = interesting_point_mask(field, [0.0])
        assert np.array_equal(mask, brute_force_point_mask(
            field.astype(np.float64), [np.float64(0.0)]))

    def test_float32_unrepresentable_values(self, rng):
        # 0.1 and friends have no exact float32; classification must
        # still follow float64 comparison semantics exactly.
        field = rng.normal(size=(5, 5, 5)).astype(np.float32)
        values = [0.1, 0.3, -0.7, 1e-40]
        self._check(field, values)

    def test_float32_threshold_adjacent_points(self):
        # Points sitting exactly at, just below, and just above a value
        # that float32 rounds — the nastiest case for native thresholds.
        v = 0.1  # float64 0.1 > float32 0.1
        f32 = np.float32(v)
        pts = np.array(
            [f32, np.nextafter(f32, np.float32(np.inf)),
             np.nextafter(f32, np.float32(-np.inf)), 0.0, 1.0,
             np.float32(np.nan), np.float32(np.inf), np.float32(-np.inf)],
            dtype=np.float32,
        )
        field = np.tile(pts, 16)[:125].reshape(5, 5, 5)
        self._check(field, [v])

    def test_values_beyond_float32_range(self, rng):
        # 1e40 overflows float32; classification must treat it as "above
        # every finite float32", not wrap or error.
        field = rng.normal(scale=1e30, size=(4, 4, 4)).astype(np.float32)
        field[0, 0, 0] = np.float32(np.inf)
        field[1, 1, 1] = np.float32(-np.inf)
        self._check(field, [-1e40, 0.0, 1e40])

    def test_many_values_uint16_path(self, rng):
        # >= 256 intervals forces the uint16 accumulator.
        field = rng.normal(size=(4, 5, 6))
        values = np.linspace(-2.5, 2.5, 300).tolist()
        self._check(field, values)

    def test_single_value_boolean_path(self, rng):
        field = rng.normal(size=(5, 5, 5)).astype(np.float32)
        self._check(field, [0.25])
