"""Unit tests for the NDP prefetcher."""

import threading

import numpy as np
import pytest

from repro.core import NDPServer, ndp_contour
from repro.core.prefetch import NDPPrefetcher
from repro.errors import ReproError, RPCRemoteError
from repro.io import write_vgf
from repro.rpc import InProcessTransport, RPCClient
from repro.storage import MemoryBackend, ObjectStore, S3FileSystem

from tests.conftest import make_sphere_grid, make_wave_grid


@pytest.fixture
def setup():
    store = ObjectStore(MemoryBackend())
    store.create_bucket("sim")
    fs = S3FileSystem(store, "sim")
    grids = {}
    for i, n in enumerate((10, 12, 14)):
        grid = make_sphere_grid(n)
        grids[f"ts{i}.vgf"] = grid
        fs.write_object(f"ts{i}.vgf", write_vgf(grid, codec="lz4"))
    server = NDPServer(fs)
    client = RPCClient(InProcessTransport(server.dispatch))
    return grids, client


class TestPrefetcher:
    def test_results_in_order(self, setup):
        grids, client = setup
        requests = [
            {"key": key, "kind": "contour", "array": "r", "values": [3.0]}
            for key in sorted(grids)
        ]
        keys = [key for key, _, _ in NDPPrefetcher(client, requests)]
        assert keys == sorted(grids)

    def test_results_match_individual_calls(self, setup):
        grids, client = setup
        requests = [
            {"key": key, "kind": "contour", "array": "r", "values": [3.0]}
            for key in sorted(grids)
        ]
        for key, pd, stats in NDPPrefetcher(client, requests, depth=2):
            expected, _ = ndp_contour(client, key, "r", [3.0])
            assert np.array_equal(expected.points, pd.points), key
            assert stats is not None

    def test_mixed_kinds(self, setup):
        grids, client = setup
        key = sorted(grids)[0]
        grid = grids[key]
        coord = grid.origin[2] + 4.0 * grid.spacing[2]
        requests = [
            {"key": key, "kind": "contour", "array": "r", "values": [3.0]},
            {"key": key, "kind": "threshold", "array": "r", "lower": 0.0, "upper": 2.0},
            {"key": key, "kind": "slice", "array": "r", "axis": 2, "coordinate": coord},
        ]
        results = list(NDPPrefetcher(client, requests))
        assert len(results) == 3
        assert results[0][1].polys.num_cells > 0       # triangles
        assert results[1][1].verts.num_cells > 0       # vertices
        assert np.allclose(results[2][1].points[:, 2], coord)

    def test_depth_one_still_complete(self, setup):
        grids, client = setup
        requests = [
            {"key": key, "kind": "contour", "array": "r", "values": [2.5]}
            for key in sorted(grids)
        ]
        assert len(list(NDPPrefetcher(client, requests, depth=1))) == 3

    def test_depth_larger_than_requests(self, setup):
        grids, client = setup
        requests = [
            {"key": sorted(grids)[0], "kind": "contour", "array": "r", "values": [2.5]}
        ]
        assert len(list(NDPPrefetcher(client, requests, depth=10))) == 1

    def test_empty_requests(self, setup):
        _, client = setup
        assert list(NDPPrefetcher(client, [])) == []

    def test_validation(self, setup):
        _, client = setup
        with pytest.raises(ReproError, match="depth"):
            NDPPrefetcher(client, [], depth=0)
        with pytest.raises(ReproError, match="key"):
            NDPPrefetcher(client, [{"kind": "contour"}])
        with pytest.raises(ReproError, match="kind"):
            NDPPrefetcher(client, [{"key": "k", "kind": "blur"}])

    def test_remote_error_propagates(self, setup):
        _, client = setup
        requests = [
            {"key": "missing.vgf", "kind": "contour", "array": "r", "values": [1.0]}
        ]
        with pytest.raises(RPCRemoteError):
            list(NDPPrefetcher(client, requests))

    def test_over_tcp_with_overlap(self, setup):
        """The real use: a socket server + lookahead."""
        grids, client_unused = setup
        store = ObjectStore(MemoryBackend())
        store.create_bucket("sim")
        fs = S3FileSystem(store, "sim")
        for key, grid in grids.items():
            fs.write_object(key, write_vgf(grid, codec="lz4"))
        listener = NDPServer(fs).serve_tcp()
        try:
            client = RPCClient.connect_tcp(listener.host, listener.port)
            requests = [
                {"key": key, "kind": "contour", "array": "r", "values": [3.0]}
                for key in sorted(grids)
            ]
            results = list(NDPPrefetcher(client, requests, depth=2))
            assert [k for k, _, _ in results] == sorted(grids)
            client.close()
        finally:
            listener.stop()


class CountingClient:
    """Counts calls; calls after the first block until ``release`` is set.

    Lets a test park the prefetcher's worker thread on a known request so
    an early ``close()`` provably cancels the queued lookahead instead of
    racing it to completion.
    """

    def __init__(self, inner, release):
        self._inner = inner
        self._release = release
        self.calls = 0

    def call(self, method, *params):
        self.calls += 1
        if self.calls > 1:
            self._release.wait(timeout=10.0)
        return self._inner.call(method, *params)


class TestLifecycle:
    def _requests(self, grids):
        return [
            {"key": key, "kind": "contour", "array": "r", "values": [3.0]}
            for key in sorted(grids)
        ] + [
            {"key": sorted(grids)[0], "kind": "contour", "array": "r",
             "values": [2.5]}
        ]

    def test_early_close_cancels_pending_lookahead(self, setup):
        grids, inner = setup
        release = threading.Event()
        client = CountingClient(inner, release)
        # depth 3 on 4 requests: after one yield, one call is parked on
        # the event and two more futures sit queued behind it.
        pf = NDPPrefetcher(client, self._requests(grids), depth=3)
        it = iter(pf)
        key, pd, _ = next(it)
        assert key == sorted(grids)[0] and pd.num_points > 0
        pf.close()
        release.set()
        # The queued futures were cancelled: only the yielded request and
        # the one already running ever reached the client.
        assert client.calls == 2
        assert pf._active == []
        with pytest.raises(StopIteration):
            next(it)

    def test_generator_abandonment_reaps_on_gc(self, setup):
        grids, inner = setup
        release = threading.Event()
        release.set()
        client = CountingClient(inner, release)
        pf = NDPPrefetcher(client, self._requests(grids), depth=2)
        it = iter(pf)
        next(it)
        assert len(pf._active) == 1
        it.close()  # what del/GC does: GeneratorExit runs the finally
        assert pf._active == []

    def test_full_drain_leaves_no_active_state(self, setup):
        grids, client = setup
        pf = NDPPrefetcher(client, self._requests(grids))
        assert len(list(pf)) == 4
        assert pf._active == []
        pf.close()  # idempotent after a clean drain

    def test_context_manager_closes(self, setup):
        grids, inner = setup
        release = threading.Event()
        client = CountingClient(inner, release)
        with NDPPrefetcher(client, self._requests(grids), depth=3) as pf:
            next(iter(pf))
        release.set()
        assert pf._active == []
        assert client.calls == 2
