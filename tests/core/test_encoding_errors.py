"""The selection-decode error channel: corrupt encodings must fail loudly.

Every malformed wire shape a selection reply can take — truncated or
oversized bitmaps, set padding bits, misaligned or short delta payloads,
malformed axes — must surface as :class:`~repro.errors.FormatError`,
never as a silently different geometry.  Each corruption is asserted
twice: decoding the dict locally, and decoding it after a real TCP RPC
round trip (the reply is deliberately *unstamped*, so the decoder's own
validation — not the checksum — is what catches it, matching what an
old or checksum-disabled peer would experience).
"""

import numpy as np
import pytest

from repro.core.encoding import _pack_ids, decode_selection, encode_selection
from repro.errors import FormatError, SelectionError
from repro.grid import PointSelection
from repro.rpc import RPCClient, RPCServer

DIMS = (5, 5, 5)  # 125 points: not a multiple of 8, so the bitmap has pad bits


def make_sel(with_axes: bool = False) -> PointSelection:
    ids = np.array([0, 3, 17, 42, 101, 124], dtype=np.int64)
    values = (ids * 0.25).astype(np.float32)
    axes = None
    if with_axes:
        axes = tuple(np.linspace(0.0, 1.0, d) for d in DIMS)
    return PointSelection(DIMS, (0, 0, 0), (1, 1, 1), "f", ids, values,
                          axes=axes)


def make_ids_sel() -> PointSelection:
    # Deltas of 300/600 force a 2-byte delta width, so a one-byte chop
    # genuinely misaligns the payload (1-byte deltas can't misalign).
    ids = np.array([0, 300, 900], dtype=np.int64)
    values = (ids * 0.25).astype(np.float32)
    return PointSelection((10, 10, 10), (0, 0, 0), (1, 1, 1), "f", ids, values)


def _corrupt(encoded: dict, kind: str) -> dict:
    """Apply one named wire-level corruption to an encoded selection."""
    out = {
        k: bytes(v) if isinstance(v, (bytes, bytearray, memoryview)) else v
        for k, v in encoded.items()
    }
    if kind == "bitmap_truncated":
        out["bitmap"] = out["bitmap"][:-1]
    elif kind == "bitmap_oversized":
        out["bitmap"] = out["bitmap"] + b"\x00"
    elif kind == "bitmap_padding_bit":
        # Point 127 of a 125-point grid: a bit past the last real point.
        body, last = out["bitmap"][:-1], out["bitmap"][-1]
        out["bitmap"] = body + bytes([last | 0x01])
    elif kind == "ids_misaligned":
        out["id_deltas"] = out["id_deltas"] + b"\x01"
    elif kind == "ids_short":
        width = int(out["id_width"])
        out["id_deltas"] = out["id_deltas"][: -width or None]
    elif kind == "values_misaligned":
        out["values"] = out["values"][:-1]
    elif kind == "axes_misaligned":
        out["axes"] = [bytes(out["axes"][0])[:-3]] + [
            bytes(a) for a in out["axes"][1:]
        ]
    elif kind == "axes_wrong_length":
        out["axes"] = [bytes(out["axes"][0]) + np.float64(9.0).tobytes()] + [
            bytes(a) for a in out["axes"][1:]
        ]
    else:
        raise AssertionError(f"unknown corruption {kind!r}")
    return out


BITMAP_KINDS = ("bitmap_truncated", "bitmap_oversized", "bitmap_padding_bit")
IDS_KINDS = ("ids_misaligned", "ids_short", "values_misaligned")
AXES_KINDS = ("axes_misaligned", "axes_wrong_length")


def _encoded_for(kind: str) -> dict:
    if kind in BITMAP_KINDS:
        return encode_selection(make_sel(), method="bitmap")
    if kind in AXES_KINDS:
        return encode_selection(make_sel(with_axes=True), method="ids")
    return encode_selection(make_ids_sel(), method="ids")


ALL_KINDS = BITMAP_KINDS + IDS_KINDS + AXES_KINDS


class TestLocalDecode:
    @pytest.mark.parametrize("kind", ALL_KINDS)
    def test_corruption_raises_format_error(self, kind):
        with pytest.raises(FormatError):
            decode_selection(_corrupt(_encoded_for(kind), kind))

    def test_control_decodes_clean(self):
        # The uncorrupted twin of every case above decodes fine.
        for with_axes in (False, True):
            sel = make_sel(with_axes=with_axes)
            for method in ("ids", "bitmap"):
                assert np.array_equal(
                    decode_selection(encode_selection(sel, method=method)).ids,
                    sel.ids,
                )

    def test_bitmap_popcount_mismatch(self):
        # Flipping a clear bit *inside* the grid changes the popcount,
        # which must disagree with the declared count.
        enc = {
            k: bytes(v) if isinstance(v, (bytes, bytearray, memoryview)) else v
            for k, v in encode_selection(make_sel(), method="bitmap").items()
        }
        body = bytearray(enc["bitmap"])
        body[1] |= 0x40  # point 9, not selected by make_sel
        enc["bitmap"] = bytes(body)
        with pytest.raises(FormatError, match="set bits"):
            decode_selection(enc)

    def test_pack_ids_rejects_non_monotonic(self):
        # Unsorted/duplicate ids would wrap to huge unsigned deltas and
        # decode as plausible garbage; the encoder must refuse instead.
        for bad in ([5, 3], [2, 2], [7, 1, 9]):
            with pytest.raises(SelectionError, match="strictly increasing"):
                _pack_ids(np.asarray(bad, dtype=np.int64))


class TestAcrossRPC:
    """The same corruptions produced server-side and decoded client-side,
    over a real TCP socket — the error channel survives the wire."""

    @pytest.fixture(scope="class")
    def tcp_client(self):
        def reply(kind: str) -> dict:
            if kind == "clean":
                return encode_selection(make_sel(), method="ids")
            return _corrupt(_encoded_for(kind), kind)

        srv = RPCServer({"reply": reply})
        from repro.rpc.transport import TCPServerTransport

        listener = TCPServerTransport(srv.dispatch).start()
        cli = RPCClient.connect_tcp(listener.host, listener.port)
        yield cli
        cli.close()
        listener.stop()

    @pytest.mark.parametrize("kind", ALL_KINDS)
    def test_corruption_raises_format_error(self, tcp_client, kind):
        encoded = tcp_client.call("reply", kind)
        with pytest.raises(FormatError):
            decode_selection(encoded)

    def test_clean_reply_round_trips(self, tcp_client):
        sel = decode_selection(tcp_client.call("reply", "clean"))
        assert np.array_equal(sel.ids, make_sel().ids)
