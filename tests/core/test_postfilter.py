"""Unit tests for the contour post-filter: exact reconstruction."""

import numpy as np
import pytest

from repro.core import postfilter_contour, prefilter_contour
from repro.core.postfilter import ContourPostFilter
from repro.errors import FilterError
from repro.filters import contour_grid

from tests.conftest import make_2d_grid, make_sphere_grid, make_wave_grid


def assert_identical(full, recon):
    assert np.array_equal(full.points, recon.points)
    assert np.array_equal(full.polys.offsets, recon.polys.offsets)
    assert np.array_equal(full.polys.connectivity, recon.polys.connectivity)
    assert np.array_equal(full.lines.connectivity, recon.lines.connectivity)
    assert full.point_data.get("contour_value") == recon.point_data.get("contour_value")


class TestExactEquivalence:
    """DESIGN.md invariant 1: postfilter(prefilter(x)) == contour(x)."""

    def test_sphere_single_value(self):
        grid = make_sphere_grid(16)
        full = contour_grid(grid, "r", [5.0])
        recon = postfilter_contour(prefilter_contour(grid, "r", [5.0]), [5.0])
        assert_identical(full, recon)

    def test_wave_multi_value(self):
        grid = make_wave_grid(20)
        values = [-0.5, 0.0, 0.7]
        full = contour_grid(grid, "f", values)
        recon = postfilter_contour(prefilter_contour(grid, "f", values), values)
        assert_identical(full, recon)

    def test_2d(self):
        grid = make_2d_grid(18, 13)
        values = [-0.3, 0.4]
        full = contour_grid(grid, "f", values)
        recon = postfilter_contour(prefilter_contour(grid, "f", values), values)
        assert_identical(full, recon)

    def test_2d_other_planes(self):
        from repro.grid import DataArray, UniformGrid

        for dims in ((1, 10, 12), (10, 1, 12)):
            grid = UniformGrid(dims)
            rng = np.random.default_rng(5)
            grid.point_data.add(DataArray("f", rng.normal(size=grid.num_points)))
            full = contour_grid(grid, "f", [0.0])
            recon = postfilter_contour(prefilter_contour(grid, "f", [0.0]), [0.0])
            assert_identical(full, recon)

    def test_nonstandard_origin_spacing(self):
        grid = make_wave_grid(14)  # has origin (0.5,-1,2), spacing (.7,1.1,.9)
        full = contour_grid(grid, "f", [0.2])
        recon = postfilter_contour(prefilter_contour(grid, "f", [0.2]), [0.2])
        assert_identical(full, recon)

    def test_empty_contour(self):
        grid = make_sphere_grid(8)
        sel = prefilter_contour(grid, "r", [1e9])
        recon = postfilter_contour(sel, [1e9])
        assert recon.num_points == 0

    def test_integer_valued_field_exact_hits(self):
        """Values exactly equal to the contour value (t=0 interpolation)."""
        from repro.grid import DataArray, UniformGrid

        rng = np.random.default_rng(11)
        grid = UniformGrid((10, 10, 10))
        grid.point_data.add(
            DataArray("v", rng.integers(0, 6, 1000).astype(np.float32))
        )
        full = contour_grid(grid, "v", [3.0])
        recon = postfilter_contour(prefilter_contour(grid, "v", [3.0]), [3.0])
        assert_identical(full, recon)

    def test_edge_mode_is_approximate_but_close(self):
        """The paper-stat 'edge' selection may drop some cells; the result
        must be a subset of the exact contour, never spurious geometry."""
        grid = make_wave_grid(16)
        full = contour_grid(grid, "f", [0.0])
        sel = prefilter_contour(grid, "f", [0.0], mode="edge")
        recon = postfilter_contour(sel, [0.0])
        full_pts = {tuple(p) for p in full.points.round(9)}
        recon_pts = {tuple(p) for p in recon.points.round(9)}
        assert recon_pts <= full_pts
        # Edge mode under-covers (incomplete cells are skipped): this is
        # exactly why cell-closure is the default mode.
        assert 0 < len(recon_pts) < len(full_pts)


class TestPostFilterPipeline:
    def test_pipeline_form(self):
        grid = make_sphere_grid(12)
        sel = prefilter_contour(grid, "r", [4.0])
        post = ContourPostFilter([4.0])
        post.set_input_data(sel)
        assert_identical(contour_grid(grid, "r", [4.0]), post.output())

    def test_unconfigured(self):
        post = ContourPostFilter()
        post.set_input_data(prefilter_contour(make_sphere_grid(8), "r", [2.0]))
        with pytest.raises(FilterError, match="values"):
            post.update()

    def test_wrong_input_type(self):
        post = ContourPostFilter([1.0])
        post.set_input_data("junk")
        with pytest.raises(FilterError, match="PointSelection"):
            post.update()
