"""Unit tests for selection wire encodings."""

import numpy as np
import pytest

from repro.core import decode_selection, encode_selection, wire_size
from repro.core.prefilter import prefilter_contour
from repro.errors import FormatError
from repro.grid import PointSelection
from repro.rpc import pack, unpack

from tests.conftest import make_sphere_grid


def make_sel(ids, n=1000, dims=(10, 10, 10)):
    ids = np.asarray(sorted(ids), dtype=np.int64)
    values = (ids * 0.5).astype(np.float32)
    return PointSelection(dims, (0, 0, 0), (1, 1, 1), "f", ids, values)


class TestRoundTrips:
    @pytest.mark.parametrize("method", ["ids", "bitmap", "auto"])
    def test_round_trip(self, method):
        sel = make_sel([0, 7, 8, 500, 999])
        assert decode_selection(encode_selection(sel, method)) == sel

    @pytest.mark.parametrize("method", ["ids", "bitmap", "auto"])
    def test_empty_selection(self, method):
        sel = make_sel([])
        assert decode_selection(encode_selection(sel, method)) == sel

    @pytest.mark.parametrize("method", ["ids", "bitmap"])
    def test_full_selection(self, method):
        sel = make_sel(range(1000))
        assert decode_selection(encode_selection(sel, method)) == sel

    def test_real_prefilter_output(self):
        grid = make_sphere_grid(14)
        sel = prefilter_contour(grid, "r", [4.0])
        for method in ("ids", "bitmap", "auto"):
            assert decode_selection(encode_selection(sel, method)) == sel

    def test_msgpack_transportable(self):
        """Encodings must survive the RPC serialization layer."""
        grid = make_sphere_grid(12)
        sel = prefilter_contour(grid, "r", [3.0])
        encoded = encode_selection(sel)
        assert decode_selection(unpack(pack(encoded))) == sel

    def test_float64_values(self):
        ids = np.array([1, 5], dtype=np.int64)
        sel = PointSelection(
            (10, 10, 10), (0, 0, 0), (1, 1, 1), "f", ids,
            np.array([1.5, 2.5], dtype=np.float64),
        )
        out = decode_selection(encode_selection(sel))
        assert out.values.dtype == np.float64
        assert out == sel


class TestIdDeltaWidths:
    def test_narrow_deltas_use_uint8(self):
        sel = make_sel(range(0, 500, 2))  # deltas of 2
        enc = encode_selection(sel, "ids")
        assert enc["id_width"] == 1

    def test_wide_deltas_use_wider_ints(self):
        sel = make_sel([0, 999], dims=(10, 10, 10))
        enc = encode_selection(sel, "ids")
        assert enc["id_width"] == 2

    def test_huge_grid_deltas(self):
        dims = (500, 500, 500)
        ids = np.array([0, 500 * 500 * 499], dtype=np.int64)
        sel = PointSelection(dims, (0, 0, 0), (1, 1, 1), "f", ids,
                             np.zeros(2, dtype=np.float32))
        enc = encode_selection(sel, "ids")
        assert enc["id_width"] == 4
        assert decode_selection(enc) == sel


class TestAuto:
    def test_auto_prefers_ids_when_sparse(self):
        sel = make_sel([3, 500])
        assert encode_selection(sel, "auto")["method"] == "ids"

    def test_auto_prefers_bitmap_when_dense(self):
        sel = make_sel(range(0, 1000, 2))
        enc = encode_selection(sel, "auto")
        # 500 points: ids cost >= 500 B deltas + values; bitmap is 125 B + values.
        assert enc["method"] == "bitmap"

    def test_auto_never_larger_than_either(self):
        for ids in ([1, 2, 3], range(0, 1000, 3), range(200)):
            sel = make_sel(ids)
            auto = wire_size(encode_selection(sel, "auto"))
            assert auto <= wire_size(encode_selection(sel, "ids"))
            assert auto <= wire_size(encode_selection(sel, "bitmap"))


class TestPayloadCodec:
    @pytest.mark.parametrize("payload_codec", ["raw", "lz4", "gzip"])
    @pytest.mark.parametrize("method", ["ids", "bitmap", "auto"])
    def test_round_trip_compressed_payload(self, method, payload_codec):
        grid = make_sphere_grid(12)
        sel = prefilter_contour(grid, "r", [4.0])
        enc = encode_selection(sel, method, payload_codec=payload_codec)
        assert decode_selection(enc) == sel

    def test_compression_shrinks_wire(self):
        grid = make_sphere_grid(16)
        sel = prefilter_contour(grid, "r", [5.0])
        raw = wire_size(encode_selection(sel, "auto"))
        lz4 = wire_size(encode_selection(sel, "auto", payload_codec="lz4"))
        assert lz4 < raw

    def test_codec_recorded(self):
        sel = make_sel([1, 5])
        enc = encode_selection(sel, "ids", payload_codec="lz4")
        assert enc["payload_codec"] == "lz4"
        assert "payload_codec" not in encode_selection(sel, "ids")

    def test_msgpack_transportable_compressed(self):
        grid = make_sphere_grid(12)
        sel = prefilter_contour(grid, "r", [3.0])
        enc = encode_selection(sel, payload_codec="gzip")
        assert decode_selection(unpack(pack(enc))) == sel

    def test_corrupt_compressed_payload(self):
        sel = make_sel(range(100))
        enc = encode_selection(sel, "ids", payload_codec="gzip")
        enc["values"] = b"not gzip"
        from repro.errors import CodecError
        with pytest.raises(CodecError):
            decode_selection(enc)


class TestWireSize:
    def test_counts_payload_bytes(self):
        sel = make_sel(range(100))
        enc = encode_selection(sel, "ids")
        assert wire_size(enc) >= len(enc["values"]) + len(enc["id_deltas"])

    def test_sparse_much_smaller_than_dense(self):
        grid = make_sphere_grid(20)
        sel = prefilter_contour(grid, "r", [5.0])
        raw_bytes = grid.point_data.get("r").nbytes
        assert wire_size(encode_selection(sel)) < raw_bytes / 4


class TestMalformed:
    def test_unknown_method(self):
        sel = make_sel([1])
        with pytest.raises(FormatError):
            encode_selection(sel, "blocks3000")
        enc = encode_selection(sel)
        enc["method"] = "bogus"
        with pytest.raises(FormatError, match="method"):
            decode_selection(enc)

    def test_missing_field(self):
        enc = encode_selection(make_sel([1]))
        del enc["dims"]
        with pytest.raises(FormatError):
            decode_selection(enc)

    def test_count_mismatch(self):
        enc = encode_selection(make_sel([1, 2]))
        enc["count"] = 5
        with pytest.raises(FormatError):
            decode_selection(enc)

    def test_bitmap_popcount_mismatch(self):
        enc = encode_selection(make_sel([1, 2]), "bitmap")
        enc["count"] = 1
        with pytest.raises(FormatError):
            decode_selection(enc)

    def test_bad_width(self):
        enc = encode_selection(make_sel([1, 2]), "ids")
        enc["id_width"] = 3
        with pytest.raises(FormatError, match="width"):
            decode_selection(enc)

    def test_out_of_range_ids_rejected(self):
        enc = encode_selection(make_sel([1, 2]), "ids")
        enc["id_first"] = 10**9
        with pytest.raises(FormatError, match="invalid"):
            decode_selection(enc)


class TestReplyChecksum:
    """The pre-filter reply stamp: attach, verify, tamper, compat."""

    def _encoded(self):
        from repro.core.encoding import attach_checksum

        sel = make_sel([0, 7, 8, 500, 999])
        return attach_checksum(encode_selection(sel, "ids"))

    def test_stamped_reply_round_trips(self):
        sel = make_sel([0, 7, 8, 500, 999])
        from repro.core.encoding import attach_checksum

        assert decode_selection(attach_checksum(encode_selection(sel, "ids"))) == sel

    def test_stamp_fields_present(self):
        from repro.io.checksum import DEFAULT_ALGO

        encoded = self._encoded()
        assert isinstance(encoded["crc"], int)
        assert encoded["crc_algo"] == DEFAULT_ALGO

    def test_tampered_payload_detected(self):
        from repro.errors import IntegrityError

        encoded = self._encoded()
        payload = bytearray(encoded["id_deltas"])
        payload[0] ^= 0x01
        encoded["id_deltas"] = bytes(payload)
        with pytest.raises(IntegrityError, match="encoded selection reply"):
            decode_selection(encoded)

    def test_tampered_metadata_detected(self):
        from repro.errors import IntegrityError

        encoded = self._encoded()
        encoded["count"] = encoded["count"] + 1
        with pytest.raises(IntegrityError):
            decode_selection(encoded)

    def test_tampered_stamp_itself_detected(self):
        from repro.errors import IntegrityError

        encoded = self._encoded()
        encoded["crc"] ^= 0xDEADBEEF
        with pytest.raises(IntegrityError):
            decode_selection(encoded)

    def test_unstamped_replies_still_decode(self):
        """Wire compat: replies from checksum-free servers verify nothing."""
        sel = make_sel([1, 2, 3])
        encoded = encode_selection(sel, "ids")
        assert "crc" not in encoded
        assert decode_selection(encoded) == sel

    def test_stamp_survives_msgpack_round_trip(self):
        """The digest is key-order independent: a reply that crossed the
        wire (dict order potentially changed) must still verify."""
        encoded = self._encoded()
        shuffled = dict(sorted(encoded.items(), reverse=True))
        assert decode_selection(unpack(pack(shuffled))) is not None

    def test_restamping_replaces_the_old_stamp(self):
        from repro.core.encoding import attach_checksum

        encoded = self._encoded()
        again = attach_checksum(dict(encoded))
        assert again["crc"] == encoded["crc"]
