"""Unit tests for the offload planner."""

import pytest

from repro.core import OffloadPlanner
from repro.errors import ReproError
from repro.storage.netsim import MB, Testbed


class TestEstimates:
    def test_baseline_raw(self):
        planner = OffloadPlanner()
        tb = planner.testbed
        seconds = planner.estimate_baseline(100 * MB, 100 * MB, "raw")
        assert seconds == pytest.approx(100 * MB / tb.ssd_bps + 100 * MB / tb.net_bps)

    def test_baseline_includes_decompress(self):
        planner = OffloadPlanner()
        raw = planner.estimate_baseline(10 * MB, 100 * MB, "raw")
        gz = planner.estimate_baseline(10 * MB, 100 * MB, "gzip")
        assert gz > raw

    def test_ndp_scales_with_selectivity(self):
        planner = OffloadPlanner()
        sparse = planner.estimate_ndp(100 * MB, 100 * MB, "raw", 0.001)
        dense = planner.estimate_ndp(100 * MB, 100 * MB, "raw", 0.5)
        assert sparse < dense

    def test_bad_selectivity(self):
        with pytest.raises(ReproError):
            OffloadPlanner().estimate_ndp(1, 1, "raw", 1.5)


class TestDecision:
    def test_sparse_contour_prefers_ndp(self):
        decision = OffloadPlanner().decide(500 * MB, 500 * MB, "raw", 0.001)
        assert decision.use_ndp
        assert 2.0 < decision.predicted_speedup < 3.0

    def test_dense_selection_prefers_baseline(self):
        """When nearly everything is selected, NDP's extra scan and the
        fatter per-point wire format lose to a plain transfer."""
        decision = OffloadPlanner().decide(500 * MB, 500 * MB, "raw", 1.0)
        assert not decision.use_ndp

    def test_paper_table2_band(self):
        """With paper-like inputs the prediction lands in Table II's band."""
        planner = OffloadPlanner()
        # ~66 MB stored (gzip ratio ~7.6 on a 500 MB array), 2% selected.
        decision = planner.decide(66 * MB, 500 * MB, "gzip", 0.02)
        assert decision.use_ndp

    def test_fast_network_flips_decision(self):
        tb = Testbed(net_bps=10_000 * MB)
        slow_scan = OffloadPlanner(tb)
        decision = slow_scan.decide(500 * MB, 500 * MB, "raw", 0.01)
        assert not decision.use_ndp  # network free -> offload pointless

    def test_predicted_speedup_ratio(self):
        decision = OffloadPlanner().decide(500 * MB, 500 * MB, "raw", 0.001)
        assert decision.predicted_speedup == pytest.approx(
            decision.baseline_seconds / decision.ndp_seconds
        )
