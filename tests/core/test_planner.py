"""Unit tests for the offload planner."""

import pytest

from repro.core import OffloadPlanner
from repro.core.encoding import ids_wire_bytes_per_point
from repro.errors import ReproError, SelectionError
from repro.storage.netsim import MB, Testbed


class TestEstimates:
    def test_baseline_raw(self):
        planner = OffloadPlanner()
        tb = planner.testbed
        seconds = planner.estimate_baseline(100 * MB, 100 * MB, "raw")
        assert seconds == pytest.approx(100 * MB / tb.ssd_bps + 100 * MB / tb.net_bps)

    def test_baseline_includes_decompress(self):
        planner = OffloadPlanner()
        raw = planner.estimate_baseline(10 * MB, 100 * MB, "raw")
        gz = planner.estimate_baseline(10 * MB, 100 * MB, "gzip")
        assert gz > raw

    def test_ndp_scales_with_selectivity(self):
        planner = OffloadPlanner()
        sparse = planner.estimate_ndp(100 * MB, 100 * MB, "raw", 0.001)
        dense = planner.estimate_ndp(100 * MB, 100 * MB, "raw", 0.5)
        assert sparse < dense

    def test_bad_selectivity(self):
        with pytest.raises(ReproError):
            OffloadPlanner().estimate_ndp(1, 1, "raw", 1.5)


class TestDecision:
    def test_sparse_contour_prefers_ndp(self):
        decision = OffloadPlanner().decide(500 * MB, 500 * MB, "raw", 0.001)
        assert decision.use_ndp
        assert 2.0 < decision.predicted_speedup < 3.0

    def test_dense_selection_prefers_baseline(self):
        """When nearly everything is selected, NDP's extra scan and the
        fatter per-point wire format lose to a plain transfer."""
        decision = OffloadPlanner().decide(500 * MB, 500 * MB, "raw", 1.0)
        assert not decision.use_ndp

    def test_paper_table2_band(self):
        """With paper-like inputs the prediction lands in Table II's band."""
        planner = OffloadPlanner()
        # ~66 MB stored (gzip ratio ~7.6 on a 500 MB array), 2% selected.
        decision = planner.decide(66 * MB, 500 * MB, "gzip", 0.02)
        assert decision.use_ndp

    def test_fast_network_flips_decision(self):
        tb = Testbed(net_bps=10_000 * MB)
        slow_scan = OffloadPlanner(tb)
        decision = slow_scan.decide(500 * MB, 500 * MB, "raw", 0.01)
        assert not decision.use_ndp  # network free -> offload pointless

    def test_predicted_speedup_ratio(self):
        decision = OffloadPlanner().decide(500 * MB, 500 * MB, "raw", 0.001)
        assert decision.predicted_speedup == pytest.approx(
            decision.baseline_seconds / decision.ndp_seconds
        )


class TestWireCostModel:
    def test_default_matches_ids_encoding_layout(self):
        # float32 value (4 B) + conservative 4-byte id delta = 8 B/point.
        assert OffloadPlanner().bytes_per_selected_point == 8.0
        assert ids_wire_bytes_per_point() == 8.0

    def test_derived_from_dtype_and_delta_width(self):
        assert ids_wire_bytes_per_point("<f8", 2) == 10.0
        assert ids_wire_bytes_per_point("<f4", 8) == 12.0

    def test_invalid_delta_width_rejected(self):
        with pytest.raises(SelectionError):
            ids_wire_bytes_per_point("<f4", 3)

    def test_knob_changes_the_decision(self):
        # A fat wire format makes the selection reply as costly as the
        # full transfer, so offload stops paying at modest selectivity.
        thin = OffloadPlanner()
        fat = OffloadPlanner(bytes_per_selected_point=64.0)
        assert thin.decide(500 * MB, 500 * MB, "raw", 0.1).use_ndp
        assert not fat.decide(500 * MB, 500 * MB, "raw", 0.1).use_ndp

    def test_invalid_knob_rejected(self):
        with pytest.raises(ReproError):
            OffloadPlanner(bytes_per_selected_point=0.0)
        with pytest.raises(ReproError):
            OffloadPlanner(bytes_per_selected_point=-1.0)


class TestShardScaling:
    def test_shards_divide_storage_side_work_only(self):
        planner = OffloadPlanner()
        tb = planner.testbed
        one = planner.estimate_ndp(100 * MB, 100 * MB, "raw", 0.01, shards=1)
        four = planner.estimate_ndp(100 * MB, 100 * MB, "raw", 0.01, shards=4)
        wire = 0.01 * (100 * MB / 4.0) * planner.bytes_per_selected_point
        wire_s = wire / tb.net_bps
        # Storage-side terms divide by K; the gather link does not.
        assert four == pytest.approx((one - wire_s) / 4 + wire_s)

    def test_more_shards_never_slower(self):
        planner = OffloadPlanner()
        estimates = [
            planner.estimate_ndp(500 * MB, 500 * MB, "gzip", 0.02, shards=k)
            for k in (1, 2, 4, 8)
        ]
        assert estimates == sorted(estimates, reverse=True)

    def test_wire_cost_bounds_the_speedup(self):
        # With enough shards the storage side vanishes and the estimate
        # converges to the (undivided) selection transfer time.
        planner = OffloadPlanner()
        tb = planner.testbed
        est = planner.estimate_ndp(500 * MB, 500 * MB, "raw", 0.1,
                                   shards=10**6)
        wire = 0.1 * (500 * MB / 4.0) * planner.bytes_per_selected_point
        assert est == pytest.approx(wire / tb.net_bps, rel=1e-3)

    def test_shards_can_flip_a_decision(self):
        planner = OffloadPlanner()
        # Moderately dense selection: single-server NDP loses, but
        # spreading the scan across 8 shards wins it back.
        args = (500 * MB, 500 * MB, "raw", 0.6)
        assert not planner.decide(*args).use_ndp
        assert planner.decide(*args, shards=8).use_ndp

    def test_invalid_shards_rejected(self):
        planner = OffloadPlanner()
        with pytest.raises(ReproError):
            planner.estimate_ndp(1, 1, "raw", 0.5, shards=0)
        with pytest.raises(ReproError):
            planner.decide(1, 1, "raw", 0.5, shards=-2)
