"""Unit tests for precomputed (in-situ-style) selections."""

import numpy as np
import pytest

from repro.core.insitu import (
    load_precomputed_selection,
    ndp_contour_precomputed,
    precompute_selections,
    selection_key,
)
from repro.core.prefilter import prefilter_contour
from repro.errors import NoSuchObjectError
from repro.filters import contour_grid
from repro.io import write_vgf
from repro.storage import MemoryBackend, ObjectStore, S3FileSystem

from tests.conftest import make_sphere_grid, make_wave_grid


@pytest.fixture
def fs():
    store = ObjectStore(MemoryBackend())
    store.create_bucket("sim")
    fs = S3FileSystem(store, "sim")
    fs.write_object("ts0.vgf", write_vgf(make_wave_grid(14), codec="lz4"))
    return fs


class TestSelectionKey:
    def test_deterministic(self):
        a = selection_key("ts0.vgf", "f", [0.5, 0.1])
        b = selection_key("ts0.vgf", "f", [0.1, 0.5])  # order-insensitive
        assert a == b
        assert "ts0.vgf.sel/f/" in a

    def test_distinct_parameters_distinct_keys(self):
        base = selection_key("k", "a", [0.1])
        assert selection_key("k", "a", [0.2]) != base
        assert selection_key("k", "b", [0.1]) != base
        assert selection_key("k", "a", [0.1], mode="edge") != base


class TestPrecompute:
    def test_writes_objects(self, fs):
        written = precompute_selections(fs, "ts0.vgf", ["f"], [0.0, 0.5])
        assert len(written) == 1
        sel_key, nbytes = written[0]
        assert fs.exists(sel_key)
        assert 0 < nbytes < make_wave_grid(14).point_data.get("f").nbytes

    def test_sparse_selection_object_is_tiny(self):
        """On realistic (sparse-contour) data the selection object is far
        smaller than even the compressed array."""
        store = ObjectStore(MemoryBackend())
        store.create_bucket("sim")
        fs = S3FileSystem(store, "sim")
        grid = make_sphere_grid(20)
        fs.write_object("s.vgf", write_vgf(grid, codec="lz4"))
        (sel_key, nbytes), = precompute_selections(fs, "s.vgf", ["r"], [6.0])
        # (The symmetric sphere field itself LZ4-compresses unusually
        # well, so compare against the raw array size, as Fig. 1 does.)
        assert nbytes < grid.point_data.get("r").nbytes / 4

    def test_load_round_trip(self, fs):
        precompute_selections(fs, "ts0.vgf", ["f"], [0.0])
        sel = load_precomputed_selection(fs, "ts0.vgf", "f", [0.0])
        grid = make_wave_grid(14)
        expected = prefilter_contour(grid, "f", [0.0])
        assert sel == expected

    def test_missing_raises(self, fs):
        with pytest.raises(NoSuchObjectError):
            load_precomputed_selection(fs, "ts0.vgf", "f", [0.33])


class TestPrecomputedContour:
    def test_matches_full_contour(self, fs):
        precompute_selections(fs, "ts0.vgf", ["f"], [0.0, 0.5])
        pd, stats = ndp_contour_precomputed(fs, "ts0.vgf", "f", [0.0, 0.5])
        expected = contour_grid(make_wave_grid(14), "f", [0.0, 0.5])
        assert np.array_equal(expected.points, pd.points)
        assert stats["precomputed"] is True
        assert stats["stored_bytes"] < stats["raw_bytes"]

    def test_through_remote_mount_transfers_selection_only(self):
        """The headline property: only the selection crosses the link."""
        from repro.storage.netsim import LinkModel, SimClock

        store = ObjectStore(MemoryBackend())
        store.create_bucket("sim")
        local = S3FileSystem(store, "sim")
        grid = make_sphere_grid(16)
        local.write_object("ts0.vgf", write_vgf(grid, codec="raw"))
        precompute_selections(local, "ts0.vgf", ["r"], [5.0])

        clock = SimClock()
        link = LinkModel(clock, bandwidth_bps=1e6)
        remote = S3FileSystem(store, "sim", link=link, chunk_bytes=4096)
        pd, stats = ndp_contour_precomputed(remote, "ts0.vgf", "r", [5.0])
        expected = contour_grid(grid, "r", [5.0])
        assert np.array_equal(expected.points, pd.points)
        # The full array never crossed the link.
        assert link.total_bytes < grid.point_data.get("r").nbytes / 4

    def test_wrong_values_not_silently_served(self, fs):
        precompute_selections(fs, "ts0.vgf", ["f"], [0.0])
        with pytest.raises(NoSuchObjectError):
            ndp_contour_precomputed(fs, "ts0.vgf", "f", [0.25])
