"""Edge-case tests for the pipeline engine under reconfiguration."""

import pytest

from repro.errors import PipelineError
from repro.pipeline import Filter, TrivialProducer
from repro.pipeline.executive import describe_pipeline, execute


class Tagger(Filter):
    """Appends its tag to a list-valued payload; counts executions."""

    def __init__(self, tag):
        super().__init__()
        self.tag = tag
        self.executions = 0

    def _execute(self, xs):
        self.executions += 1
        return xs + [self.tag]


class TestRewiring:
    def test_reconnect_switches_upstream(self):
        a = TrivialProducer(["a"])
        b = TrivialProducer(["b"])
        f = Tagger("f")
        f.set_input_connection(0, a)
        assert f.output() == ["a", "f"]
        f.set_input_connection(0, b)
        assert f.output() == ["b", "f"]
        assert f.executions == 2

    def test_deep_chain_partial_invalidation(self):
        src = TrivialProducer([])
        chain = [Tagger(str(i)) for i in range(5)]
        upstream = src
        for f in chain:
            f.set_input_connection(0, upstream)
            upstream = f
        assert chain[-1].output() == ["0", "1", "2", "3", "4"]
        # Modifying a mid-chain node re-executes it and everything after,
        # but nothing before it.
        before = [f.executions for f in chain]
        chain[2].modified()
        chain[-1].update()
        after = [f.executions for f in chain]
        assert after[:2] == before[:2]
        assert all(a == b + 1 for a, b in zip(after[2:], before[2:]))

    def test_shared_subtree_updates_once_per_change(self):
        src = TrivialProducer(["x"])
        shared = Tagger("s")
        shared.set_input_connection(0, src)
        left = Tagger("l")
        right = Tagger("r")
        left.set_input_connection(0, shared)
        right.set_input_connection(0, shared)
        execute(left, right)
        assert shared.executions == 1
        src.set_data(["y"])
        execute(left, right)
        assert shared.executions == 2

    def test_execute_mixed_terminals(self):
        src = TrivialProducer([1])
        f = Tagger("t")
        f.set_input_connection(0, src)
        from repro.pipeline import CollectSink

        sink = CollectSink()
        sink.set_input_connection(0, f)
        results = execute(f, sink)
        assert results[0] == [1, "t"]
        assert results[1] is None
        assert sink.last == [1, "t"]

    def test_describe_after_rewire(self):
        a = TrivialProducer([1])
        f = Tagger("t")
        f.set_input_connection(0, a)
        desc = describe_pipeline(f)
        assert "Tagger" in desc and "TrivialProducer" in desc

    def test_update_error_leaves_node_dirty(self):
        class Boom(Filter):
            def __init__(self):
                super().__init__()
                self.should_fail = True

            def _execute(self, x):
                if self.should_fail:
                    raise PipelineError("intentional")
                return x

        src = TrivialProducer(5)
        boom = Boom()
        boom.set_input_connection(0, src)
        with pytest.raises(PipelineError, match="intentional"):
            boom.update()
        # Recovery: fix the node and update again without touching inputs.
        boom.should_fail = False
        assert boom.output() == 5
