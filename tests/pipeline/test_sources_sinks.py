"""Unit tests for sources, sinks, and the executive utilities."""

import pytest

from repro.errors import PipelineError
from repro.pipeline import (
    CollectSink,
    Filter,
    ProgrammableSource,
    TrivialProducer,
)
from repro.pipeline.executive import describe_pipeline, execute, validate_pipeline


class Inc(Filter):
    def _execute(self, x):
        return x + 1


class TestSources:
    def test_trivial_producer(self):
        assert TrivialProducer(7).output() == 7

    def test_trivial_producer_unset(self):
        with pytest.raises(PipelineError, match="no data"):
            TrivialProducer().update()

    def test_set_data_marks_modified(self):
        src = TrivialProducer(1)
        src.update()
        src.set_data(2)
        assert src.needs_execute

    def test_programmable_source(self):
        calls = []
        src = ProgrammableSource(lambda: calls.append(1) or len(calls))
        assert src.output() == 1
        src.modified()
        assert src.output() == 2

    def test_programmable_source_unset(self):
        with pytest.raises(PipelineError, match="produce"):
            ProgrammableSource().update()


class TestSinks:
    def test_collect_sink(self):
        sink = CollectSink()
        sink.set_input_data(42)
        sink.update()
        assert sink.last == 42
        assert sink.received == [42]

    def test_collect_sink_empty_last(self):
        with pytest.raises(IndexError):
            CollectSink().last

    def test_sink_reconsumption_on_change(self):
        src = TrivialProducer("a")
        sink = CollectSink()
        sink.set_input_connection(0, src)
        sink.update()
        src.set_data("b")
        sink.update()
        assert sink.received == ["a", "b"]

    def test_filter_set_input_data_convenience(self):
        inc = Inc()
        inc.set_input_data(1)
        assert inc.output() == 2


class TestExecutive:
    def _chain(self):
        src = TrivialProducer(0)
        f1 = Inc()
        f2 = Inc()
        f1.set_input_connection(0, src)
        f2.set_input_connection(0, f1)
        return src, f1, f2

    def test_validate_ok(self):
        _, _, f2 = self._chain()
        validate_pipeline(f2)

    def test_validate_catches_unconnected(self):
        with pytest.raises(PipelineError, match="not connected"):
            validate_pipeline(Inc())

    def test_validate_needs_terminal(self):
        with pytest.raises(PipelineError):
            validate_pipeline()

    def test_execute_returns_outputs(self):
        _, _, f2 = self._chain()
        assert execute(f2) == [2]

    def test_execute_sink_yields_none(self):
        src = TrivialProducer(5)
        sink = CollectSink()
        sink.set_input_connection(0, src)
        assert execute(sink) == [None]
        assert sink.last == 5

    def test_describe_pipeline(self):
        _, _, f2 = self._chain()
        desc = describe_pipeline(f2)
        assert "TrivialProducer" in desc
        assert desc.count("Inc") >= 2
