"""Unit tests for the pipeline Algorithm base: ports, mtime, execution."""

import pytest

from repro.errors import PipelineError, PortError
from repro.pipeline import Algorithm, Filter, TrivialProducer
from repro.pipeline.algorithm import OutputPort


class Doubler(Filter):
    """Doubles its (numeric) input; counts executions."""

    def __init__(self):
        super().__init__()
        self.executions = 0

    def _execute(self, x):
        self.executions += 1
        return 2 * x


class Adder(Filter):
    num_input_ports = 2

    def _execute(self, a, b):
        return a + b


class TwoOutputs(Algorithm):
    num_input_ports = 1
    num_output_ports = 2

    def _execute(self, x):
        return x, -x


class TestWiring:
    def test_simple_chain(self):
        src = TrivialProducer(3)
        dbl = Doubler()
        dbl.set_input_connection(0, src)
        assert dbl.output() == 6

    def test_output_port_object(self):
        src = TrivialProducer(3)
        dbl = Doubler()
        dbl.set_input_connection(0, src.output_port(0))
        assert dbl.output() == 6

    def test_bad_input_port(self):
        with pytest.raises(PortError):
            Doubler().set_input_connection(1, TrivialProducer(1))

    def test_bad_output_port(self):
        with pytest.raises(PortError):
            TrivialProducer(1).output_port(1)

    def test_multi_input(self):
        add = Adder()
        add.set_input_connection(0, TrivialProducer(2))
        add.set_input_connection(1, TrivialProducer(40))
        assert add.output() == 42

    def test_multi_output(self):
        two = TwoOutputs()
        two.set_input_connection(0, TrivialProducer(5))
        two.update()
        assert two.get_output_data(0) == 5
        assert two.get_output_data(1) == -5

    def test_unconnected_input_fails_at_update(self):
        with pytest.raises(PipelineError, match="not connected"):
            Doubler().update()

    def test_cycle_rejected(self):
        a = Doubler()
        b = Doubler()
        a.set_input_connection(0, TrivialProducer(1))
        b.set_input_connection(0, a)
        # now try to make a depend on b
        a2 = OutputPort(b, 0)
        with pytest.raises(PipelineError, match="cycle"):
            a.set_input_connection(0, a2)

    def test_self_cycle_rejected(self):
        a = Doubler()
        with pytest.raises(PipelineError, match="cycle"):
            a.set_input_connection(0, a)

    def test_connect_non_port(self):
        with pytest.raises(PortError):
            Doubler().set_input_connection(0, "nope")


class TestDemandDriven:
    def test_no_reexecution_when_clean(self):
        src = TrivialProducer(3)
        dbl = Doubler()
        dbl.set_input_connection(0, src)
        dbl.update()
        dbl.update()
        dbl.update()
        assert dbl.executions == 1

    def test_reexecution_after_source_modified(self):
        src = TrivialProducer(3)
        dbl = Doubler()
        dbl.set_input_connection(0, src)
        assert dbl.output() == 6
        src.set_data(10)
        assert dbl.output() == 20
        assert dbl.executions == 2

    def test_modified_propagates_transitively(self):
        src = TrivialProducer(1)
        a = Doubler()
        b = Doubler()
        a.set_input_connection(0, src)
        b.set_input_connection(0, a)
        assert b.output() == 4
        src.set_data(2)
        assert b.output() == 8
        assert a.executions == 2
        assert b.executions == 2

    def test_diamond_executes_shared_node_once(self):
        src = TrivialProducer(3)
        left = Doubler()
        right = Doubler()
        left.set_input_connection(0, src)
        right.set_input_connection(0, src)
        add = Adder()
        add.set_input_connection(0, left)
        add.set_input_connection(1, right)
        assert add.output() == 12
        assert left.executions == 1 and right.executions == 1

    def test_needs_execute_flag(self):
        src = TrivialProducer(1)
        dbl = Doubler()
        dbl.set_input_connection(0, src)
        assert dbl.needs_execute
        dbl.update()
        assert not dbl.needs_execute
        src.modified()
        assert dbl.needs_execute

    def test_wrong_output_arity_detected(self):
        class Bad(Algorithm):
            num_output_ports = 2

            def _execute(self):
                return (1,)  # should be 2

        with pytest.raises(PipelineError, match="expected 2"):
            Bad().update()

    def test_upstream_nodes_topological(self):
        src = TrivialProducer(1)
        a = Doubler()
        a.set_input_connection(0, src)
        order = a.upstream_nodes()
        assert order[0] is src
        assert order[-1] is a
