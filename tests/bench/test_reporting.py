"""Unit tests for table formatting."""

from repro.bench import format_table
from repro.bench.reporting import format_value


class TestFormatValue:
    def test_ints_and_strings(self):
        assert format_value(42) == "42"
        assert format_value("abc") == "abc"

    def test_float_trimming(self):
        assert format_value(1.5) == "1.5"
        assert format_value(2.0) == "2"
        assert format_value(0.0) == "0"

    def test_extremes_use_sig_figs(self):
        assert format_value(123456.0) == "1.23e+05"
        assert format_value(0.000123) == "0.000123"


class TestFormatTable:
    ROWS = [
        {"name": "gzip", "ratio": 12.345},
        {"name": "lz4", "ratio": 9.0},
    ]

    def test_contains_all_cells(self):
        out = format_table(self.ROWS)
        assert "gzip" in out and "lz4" in out
        assert "12.345" in out and "9" in out

    def test_title(self):
        out = format_table(self.ROWS, title="Table II")
        assert out.startswith("Table II")

    def test_column_subset_and_order(self):
        out = format_table(self.ROWS, columns=["ratio"])
        assert "gzip" not in out
        assert out.splitlines()[0].strip() == "ratio"

    def test_missing_cell_blank(self):
        rows = [{"a": 1}, {"a": 2, "b": 3}]
        out = format_table(rows, columns=["a", "b"])
        assert "3" in out

    def test_empty_rows(self):
        out = format_table([], columns=["x"])
        assert "x" in out

    def test_alignment(self):
        out = format_table(self.ROWS)
        lines = out.splitlines()
        assert len({len(line) for line in lines[1:]}) <= 2  # header+rule+rows align
