"""Unit tests for the benchmark environment and experiment runners."""

import numpy as np
import pytest

from repro.bench import BenchEnv
from repro.bench.experiments import (
    run_encoding_ablation,
    run_fig1,
    run_fig5_local,
    run_fig5_remote,
    run_fig5_sizes,
    run_fig6,
    run_fig13,
    run_fig14,
    run_link_sweep,
    run_table2,
    verify_ndp_equivalence,
)

DIMS = (32, 32, 32)  # tiny: these tests check wiring, not calibration


@pytest.fixture(scope="module")
def env():
    return BenchEnv(dims=DIMS, with_nyx=True)


class TestEnvironment:
    def test_objects_populated(self, env):
        keys = env.store.list_objects("sim")
        assert len(keys) == 9 * 3 + 3  # 9 asteroid steps + 1 nyx, x3 codecs
        assert env.key("asteroid", "gzip", 0) in keys

    def test_grids_cached(self, env):
        grid = env.grid("asteroid", 0)
        assert grid.dims == DIMS
        assert set(grid.point_data.names()) == {"v02", "v03"}

    def test_stored_sizes_codecs_ordered(self, env):
        sizes = env.stored_sizes("asteroid", 0, "v02")
        assert sizes["gzip"] < sizes["lz4"] < sizes["raw"]

    def test_stored_sizes_does_not_touch_clock(self, env):
        before = env.testbed.clock.now
        env.stored_sizes("asteroid", 0, "v02")
        assert env.testbed.clock.now == before


class TestLoads:
    def test_baseline_load_remote_charges_network(self, env):
        grid, res = env.baseline_load("asteroid", "raw", 0, "v02")
        assert res.seconds > 0
        assert res.network_bytes >= res.stored_bytes > 0
        assert grid.point_data.get("v02") == env.grid("asteroid", 0).point_data.get("v02")

    def test_baseline_load_local_no_network(self, env):
        _, res = env.baseline_load("asteroid", "raw", 0, "v02", local=True)
        assert res.network_bytes == 0
        assert res.seconds > 0

    def test_local_faster_than_remote(self, env):
        _, remote = env.baseline_load("asteroid", "raw", 0, "v02")
        _, local = env.baseline_load("asteroid", "raw", 0, "v02", local=True)
        assert local.seconds < remote.seconds

    def test_ndp_load_reduces_network(self, env):
        _, base = env.baseline_load("asteroid", "raw", 0, "v02")
        _, ndp = env.ndp_load("asteroid", "raw", 0, "v02", [0.1])
        assert ndp.network_bytes < base.network_bytes / 5
        assert ndp.seconds < base.seconds

    def test_ndp_stats(self, env):
        encoded, res = env.ndp_load("asteroid", "gzip", 0, "v03", [0.1])
        assert res.extra["codec"] == "gzip"
        assert res.extra["selected_points"] > 0
        assert res.raw_bytes == env.grid("asteroid", 0).point_data.get("v03").nbytes

    def test_ndp_equivalence(self, env):
        assert verify_ndp_equivalence(env, "asteroid", 24006, "v02", [0.1])
        assert verify_ndp_equivalence(env, "nyx", 0, "baryon_density", [81.66])


class TestExperiments:
    def test_fig1_rows(self, env):
        rows = run_fig1(env)
        assert [r["technique"] for r in rows] == ["gzip", "lz4", "contour-selection"]
        for row in rows:
            assert row["min_ratio"] <= row["median_ratio"] <= row["max_ratio"]

    def test_fig5_sizes(self, env):
        rows = run_fig5_sizes(env, "v02")
        assert len(rows) == 9
        # compression ratio decays over the run
        assert rows[0]["gzip_ratio"] > rows[-1]["gzip_ratio"]

    def test_fig5_remote_compression_wins(self, env):
        rows = run_fig5_remote(env, "v02")
        for row in rows:
            assert row["gzip_s"] < row["raw_s"]
            assert row["lz4_s"] < row["raw_s"]

    def test_fig5_local_lz4_beats_gzip(self, env):
        """The paper's Fig. 5c/5f finding."""
        rows = run_fig5_local(env, "v02")
        assert all(row["lz4_s"] < row["gzip_s"] for row in rows)

    def test_fig6_selectivity_falls_with_value(self, env):
        rows = run_fig6(env, "v02")
        last = rows[-1]
        assert last["val0.1"] >= last["val0.9"]

    def test_fig13_ndp_wins(self, env):
        rows = run_fig13(env, "v02", "raw", values=(0.1,))
        for row in rows:
            assert row["ndp0.1_s"] < row["baseline_s"]

    def test_table2_orderings(self, env):
        rows = run_table2(env, arrays=("v02",), values=(0.1, 0.9))
        for row in rows:
            assert row["RAW"] == 1.0
            assert row["NDP"] > 1.0
            assert row["LZ4"] > row["GZip"] > 1.0
            assert row["GZip+NDP"] > row["NDP"]
            assert row["LZ4+NDP"] >= row["GZip+NDP"]

    def test_fig14_ndp_wins_on_nyx(self, env):
        rows = run_fig14(env)
        for row in rows:
            assert row["speedup"] > 1.0

    def test_encoding_ablation(self, env):
        rows = run_encoding_ablation(env)
        for row in rows:
            assert row["auto_kb"] <= row["ids_kb"] + 1e-9
            assert row["auto_kb"] <= row["bitmap_kb"] + 1e-9

    def test_link_sweep_monotone(self, env):
        rows = run_link_sweep(env)
        speedups = [row["speedup"] for row in rows]
        assert speedups == sorted(speedups, reverse=True)
        # bandwidth restored afterwards
        assert env.testbed.net.bandwidth_bps == pytest.approx(63.5e6)
