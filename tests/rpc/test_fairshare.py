"""Per-tenant fair queuing: weighted shares, caps, and no starvation.

Scheduler units run against an inline dispatcher (no sockets); the
flood-vs-trickle suite runs end to end over the async serving core and
pins the satellite guarantee: a tenant staying under its share is never
shed and sees bounded latency while another tenant floods, and every
shed reply carries a ``retry_after`` hint.
"""

import threading
import time

import pytest

from repro.errors import ServerOverloadedError
from repro.rpc import RPCClient, RPCServer, pack, unpack
from repro.rpc.admission import AdmissionController, sniff_overload
from repro.rpc.fairshare import (
    DEFAULT_TENANT,
    FairScheduler,
    inject_tenant,
    sniff_request,
)
from repro.rpc.mux import AsyncServerTransport


def req(msgid, method="m", params=None, ctx=None):
    frame = [0, msgid, method, params or []]
    if ctx is not None:
        frame.append(ctx)
    return pack(frame)


# ---------------------------------------------------------------------------
# Frame classification and tenant injection
# ---------------------------------------------------------------------------


class TestSniffRequest:
    def test_classic_frame_is_default_tenant(self):
        info = sniff_request(req(3))
        assert (info.mtype, info.msgid, info.tenant) == (0, 3, DEFAULT_TENANT)

    def test_tenant_ctx_extracted(self):
        info = sniff_request(req(4, ctx={"tenant": "gold", "deadline": 1.0}))
        assert (info.msgid, info.tenant) == (4, "gold")

    def test_malformed_and_foreign_frames_tolerated(self):
        for payload in (b"", b"\xc1garbage", pack("hi"), pack([2, "m", []])):
            info = sniff_request(payload)
            assert info.tenant == DEFAULT_TENANT
            assert info.msgid is None

    def test_non_string_tenant_ignored(self):
        info = sniff_request(req(5, ctx={"tenant": 42}))
        assert info.tenant == DEFAULT_TENANT


class TestInjectTenant:
    def test_adds_ctx_map(self):
        out = unpack(inject_tenant(req(1, "m", [7]), "gold"))
        assert out == [0, 1, "m", [7], {"tenant": "gold"}]

    def test_merges_with_existing_ctx(self):
        out = unpack(inject_tenant(req(1, ctx={"deadline": 2.0}), "gold"))
        assert out[4] == {"deadline": 2.0, "tenant": "gold"}

    def test_non_request_passes_through(self):
        notify = pack([2, "m", []])
        assert inject_tenant(notify, "gold") == notify


# ---------------------------------------------------------------------------
# Scheduler units (inline dispatcher, no sockets)
# ---------------------------------------------------------------------------


def gather_responses():
    responses = []
    lock = threading.Lock()

    def respond(payload):
        with lock:
            responses.append(payload)

    return responses, respond


class TestFairSchedulerUnits:
    def test_weighted_share_under_contention(self):
        served_by = {"gold": 0, "bronze": 0}
        gate = threading.Event()

        def dispatcher(payload):
            gate.wait(timeout=10.0)
            info = sniff_request(payload)
            served_by[info.tenant] += 1
            time.sleep(0.001)
            return pack([1, info.msgid, None, None])

        sched = FairScheduler(dispatcher, workers=1, weights={"gold": 3.0})
        responses, respond = gather_responses()
        # Backlog both tenants before any service happens.
        for i in range(40):
            sched.submit(req(i + 1, ctx={"tenant": "gold"}), respond)
            sched.submit(req(i + 101, ctx={"tenant": "bronze"}), respond)
        sched.start()
        gate.set()
        deadline = time.monotonic() + 10.0
        while sum(served_by.values()) < 40 and time.monotonic() < deadline:
            time.sleep(0.01)
        gold, bronze = served_by["gold"], served_by["bronze"]
        assert gold + bronze >= 40
        # Weight 3 vs 1: gold should get about 3x the service.  The
        # window is wide to stay robust on slow CI.
        assert gold >= 2 * bronze, (gold, bronze)
        sched.stop(timeout=5.0, finish=False)

    def test_every_backlogged_tenant_advances(self):
        served = set()

        def dispatcher(payload):
            info = sniff_request(payload)
            served.add(info.tenant)
            return pack([1, info.msgid, None, None])

        sched = FairScheduler(dispatcher, workers=2,
                              weights={"big": 1000.0})
        responses, respond = gather_responses()
        for i in range(50):
            sched.submit(req(i + 1, ctx={"tenant": "big"}), respond)
        sched.submit(req(999, ctx={"tenant": "tiny"}), respond)
        sched.start()
        deadline = time.monotonic() + 10.0
        while len(responses) < 51 and time.monotonic() < deadline:
            time.sleep(0.01)
        assert len(responses) == 51
        # Even a weight-1 tenant against weight-1000 gets served.
        assert served == {"big", "tiny"}
        sched.stop(timeout=5.0)

    def test_pending_cap_sheds_with_retry_after(self):
        release = threading.Event()

        def dispatcher(payload):
            release.wait(timeout=10.0)
            info = sniff_request(payload)
            return pack([1, info.msgid, None, "ok"])

        admission = AdmissionController(retry_after=0.123)
        sched = FairScheduler(dispatcher, workers=1, max_tenant_pending=2,
                              admission=admission)
        responses, respond = gather_responses()
        sched.start()
        for i in range(6):
            sched.submit(req(i + 1, ctx={"tenant": "flood"}), respond)
        # Shed replies arrive synchronously, before any dispatch ran.
        sheds = [r for r in responses if b"ServerOverloadedError" in r]
        assert len(sheds) >= 3
        for raw in sheds:
            err = sniff_overload(raw)
            assert isinstance(err, ServerOverloadedError)
            assert err.retry_after == pytest.approx(0.123)
        # ... and the fair-queue sheds land on the admission ledger.
        assert admission.info()["shed"] == len(sheds)
        release.set()
        deadline = time.monotonic() + 10.0
        while len(responses) < 6 and time.monotonic() < deadline:
            time.sleep(0.01)
        assert len(responses) == 6
        sched.stop(timeout=5.0)

    def test_tenant_inflight_cap_queues_not_sheds(self):
        running = []
        release = threading.Event()
        lock = threading.Lock()

        def dispatcher(payload):
            info = sniff_request(payload)
            with lock:
                running.append(info.tenant)
            release.wait(timeout=10.0)
            return pack([1, info.msgid, None, None])

        sched = FairScheduler(dispatcher, workers=4, max_tenant_inflight=1)
        responses, respond = gather_responses()
        sched.start()
        for i in range(4):
            sched.submit(req(i + 1, ctx={"tenant": "capped"}), respond)
        time.sleep(0.2)
        with lock:
            assert running == ["capped"]  # cap holds: one inflight
        assert sched.pending == 3       # the rest queued, not shed
        release.set()
        deadline = time.monotonic() + 10.0
        while len(responses) < 4 and time.monotonic() < deadline:
            time.sleep(0.01)
        assert len(responses) == 4
        assert sched.info()["shed"] == 0
        sched.stop(timeout=5.0)

    def test_dispatcher_exception_becomes_error_reply(self):
        def dispatcher(payload):
            raise RuntimeError("kaboom")

        sched = FairScheduler(dispatcher, workers=1)
        responses, respond = gather_responses()
        sched.start()
        sched.submit(req(7), respond)
        deadline = time.monotonic() + 5.0
        while not responses and time.monotonic() < deadline:
            time.sleep(0.01)
        assert len(responses) == 1
        decoded = unpack(responses[0])
        assert decoded[1] == 7
        assert "RuntimeError" in decoded[2]
        assert sched.quiescent()
        sched.stop(timeout=5.0)


# ---------------------------------------------------------------------------
# End to end: flood vs trickle over the async serving core
# ---------------------------------------------------------------------------


class TestFloodVsTrickle:
    def test_trickle_tenant_never_starves_never_shed(self):
        server = RPCServer(
            {"work": lambda ms: (time.sleep(ms / 1000.0), "done")[1]},
        )
        sched = FairScheduler(server.dispatch, workers=2,
                              weights={"trickle": 1.0, "flood": 1.0},
                              max_tenant_pending=16)
        listener = AsyncServerTransport(server.dispatch, scheduler=sched).start()
        try:
            flood = RPCClient.connect_mux(listener.host, listener.port,
                                          timeout=30.0, tenant="flood")
            trickle = RPCClient.connect_mux(listener.host, listener.port,
                                            timeout=30.0, tenant="trickle")
            # Flood: 200 pipelined 5 ms requests — far over its share.
            flooding = [flood.call_async("work", 5) for _ in range(200)]

            # Trickle: sequential requests, staying way under its share.
            latencies = []
            for _ in range(10):
                t0 = time.monotonic()
                assert trickle.call("work", 5) == "done"
                latencies.append(time.monotonic() - t0)
                time.sleep(0.01)

            flood_ok = flood_shed = 0
            retry_hints = []
            for p in flooding:
                try:
                    p.result(timeout=30.0)
                    flood_ok += 1
                except ServerOverloadedError as exc:
                    flood_shed += 1
                    retry_hints.append(exc.retry_after)

            info = sched.info()["tenants"]
            # The satellite guarantee: the under-share tenant is never
            # shed and its worst-case latency stays bounded while the
            # flood rages (queue depth 16 * 5 ms / 2 workers plus
            # scheduling noise — nowhere near the flood's backlog).
            assert info["trickle"]["shed"] == 0
            assert max(latencies) < 1.0
            # The flood paid for its own flood, with usable hints.
            assert flood_shed > 0
            assert all(hint is not None and hint > 0 for hint in retry_hints)
            assert flood_ok + flood_shed == 200
            flood.close()
            trickle.close()
        finally:
            listener.stop()
