"""Graceful drain and overload survival over a real TCP listener.

Two families:

* drain semantics — in-flight requests finish inside the drain window,
  new connections are refused the moment draining starts, and ``stop``
  returns within its timeout even when a handler wedges;
* the stampede (marked ``chaos``) — a thundering herd against a small
  ``max_inflight`` keeps concurrency bounded, sheds the excess as typed
  retryable errors, and a resilient client rides the sheds to success
  without duplicating store reads beyond the single-flight guarantee.
"""

import threading
import time

import pytest

from repro.core import NDPServer, ndp_contour
from repro.errors import RPCTransportError, ServerOverloadedError
from repro.io import write_vgf
from repro.rpc import RPCClient, RPCServer, pack
from repro.rpc.admission import AdmissionController
from repro.rpc.resilience import ResilientTransport, RetryPolicy
from repro.rpc.transport import InProcessTransport, TCPServerTransport, TCPTransport
from repro.storage import MemoryBackend, ObjectStore, S3FileSystem

from tests.conftest import make_sphere_grid
from tests.faults import FaultSchedule, FaultyBackend


class TestGracefulDrain:
    def test_inflight_request_finishes_while_new_connections_refused(self):
        started = threading.Event()
        release = threading.Event()

        def slow():
            started.set()
            release.wait(timeout=10.0)
            return "done"

        server = RPCServer({"slow": slow, "ping": lambda: "pong"})
        listener = server.serve_tcp()
        result = {}

        def call():
            client = RPCClient(TCPTransport(listener.host, listener.port))
            try:
                result["value"] = client.call("slow")
            finally:
                client.close()

        caller = threading.Thread(target=call, daemon=True)
        caller.start()
        assert started.wait(timeout=5.0)

        stop_result = {}
        stopper = threading.Thread(
            target=lambda: stop_result.update(clean=listener.stop(drain_timeout=10.0)),
            daemon=True,
        )
        stopper.start()
        deadline = time.monotonic() + 5.0
        while not listener.draining and time.monotonic() < deadline:
            time.sleep(0.01)
        assert listener.draining

        # The listener socket is already closed: no new client gets
        # *served*.  The kernel may still complete a handshake into the
        # dying listen backlog, but nothing ever accepts it — either the
        # connect is refused outright or the first request on it fails.
        with pytest.raises(RPCTransportError):
            late = TCPTransport(listener.host, listener.port, timeout=2.0)
            try:
                late.request(pack([0, 99, "ping", []]))
            finally:
                late.close()

        release.set()  # let the in-flight request finish
        stopper.join(timeout=10.0)
        caller.join(timeout=10.0)
        assert stop_result["clean"] is True
        assert result["value"] == "done"  # the in-flight caller was served

    def test_stop_returns_within_drain_timeout_when_handler_wedges(self):
        wedge = threading.Event()
        started = threading.Event()

        def stuck():
            started.set()
            wedge.wait(timeout=30.0)
            return "eventually"

        server = RPCServer({"stuck": stuck})
        listener = server.serve_tcp()
        transport = TCPTransport(listener.host, listener.port)
        # Fire the request without waiting for its (never-coming) reply.
        raw = threading.Thread(
            target=lambda: _swallow(lambda: transport.request(
                pack([0, 1, "stuck", []])
            )),
            daemon=True,
        )
        raw.start()
        assert started.wait(timeout=5.0)
        t0 = time.monotonic()
        clean = listener.stop(drain_timeout=0.3)
        elapsed = time.monotonic() - t0
        wedge.set()
        assert clean is False  # forced, and it says so
        assert elapsed < 5.0   # did not wait out the 30 s wedge

    def test_stop_joins_connection_threads(self):
        server = RPCServer({"ping": lambda: "pong"})
        listener = server.serve_tcp()
        for _ in range(4):
            client = RPCClient(TCPTransport(listener.host, listener.port))
            assert client.call("ping") == "pong"
            client.close()
        assert listener.stop(drain_timeout=2.0) is True
        assert all(not t.is_alive() for t in listener._threads)

    def test_finished_connection_threads_are_pruned(self):
        server = RPCServer({"ping": lambda: "pong"})
        listener = server.serve_tcp()
        for _ in range(8):
            client = RPCClient(TCPTransport(listener.host, listener.port))
            client.call("ping")
            client.close()
        time.sleep(0.1)  # let handler threads notice the closed sockets
        # One more accept triggers the prune of the dead thread records.
        client = RPCClient(TCPTransport(listener.host, listener.port))
        client.call("ping")
        assert len(listener._threads) < 8
        client.close()
        listener.stop(drain_timeout=2.0)

    def test_connection_cap_refuses_excess_clients(self):
        block = threading.Event()
        entered = threading.Event()

        def hold():
            entered.set()
            block.wait(timeout=10.0)
            return "held"

        server = RPCServer({"hold": hold})
        listener = TCPServerTransport(
            server.dispatch, max_connections=1
        ).start()
        first = TCPTransport(listener.host, listener.port)
        holder = threading.Thread(
            target=lambda: _swallow(
                lambda: first.request(pack([0, 1, "hold", []]))
            ),
            daemon=True,
        )
        holder.start()
        assert entered.wait(timeout=5.0)
        # Second connection is accepted by the OS then closed by the cap.
        with pytest.raises(RPCTransportError):
            second = TCPTransport(listener.host, listener.port)
            second.request(pack([0, 2, "hold", []]))
        assert listener.refused >= 1
        block.set()
        holder.join(timeout=5.0)
        listener.stop(drain_timeout=2.0)


def _swallow(fn):
    try:
        fn()
    except Exception:
        pass


@pytest.mark.chaos
class TestStampede:
    """Thundering herd against a small server: bounded, shed, recovered."""

    N_CLIENTS = 8
    MAX_INFLIGHT = 2

    def test_concurrency_bounded_and_sheds_are_retryable(self):
        lock = threading.Lock()
        state = {"inflight": 0, "peak": 0}

        def slow():
            with lock:
                state["inflight"] += 1
                state["peak"] = max(state["peak"], state["inflight"])
            time.sleep(0.05)
            with lock:
                state["inflight"] -= 1
            return "ok"

        gate = AdmissionController(max_inflight=self.MAX_INFLIGHT)
        server = RPCServer({"slow": slow}, admission=gate)
        listener = server.serve_tcp()
        sheds = []
        successes = []

        def bare_client():
            client = RPCClient(TCPTransport(listener.host, listener.port))
            try:
                successes.append(client.call("slow"))
            except ServerOverloadedError as exc:
                sheds.append(exc)
            finally:
                client.close()

        threads = [
            threading.Thread(target=bare_client) for _ in range(self.N_CLIENTS)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=10.0)
        listener.stop(drain_timeout=2.0)

        assert state["peak"] <= self.MAX_INFLIGHT  # admission held the line
        assert gate.info()["peak_inflight"] <= self.MAX_INFLIGHT
        assert successes  # somebody got through
        if sheds:  # under load, excess arrivals got the typed hint
            assert all(s.retry_after for s in sheds)

    def test_resilient_clients_ride_sheds_to_success(self):
        gate = AdmissionController(max_inflight=1, retry_after=0.01)

        def slow():
            time.sleep(0.02)
            return "ok"

        server = RPCServer({"slow": slow}, admission=gate)
        listener = server.serve_tcp()
        results = []

        def resilient_client():
            transport = ResilientTransport(
                TCPTransport(listener.host, listener.port),
                retry=RetryPolicy(max_attempts=30, base_delay=0.01,
                                  max_delay=0.05, deadline=20.0),
            )
            client = RPCClient(transport)
            try:
                results.append(client.call("slow"))
            finally:
                client.close()

        threads = [threading.Thread(target=resilient_client) for _ in range(6)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=30.0)
        listener.stop(drain_timeout=2.0)
        assert results == ["ok"] * 6  # every caller eventually served

    def test_stampede_does_not_duplicate_store_reads(self):
        """Identical concurrent requests coalesce: the store is read as if
        a single cold request had run (single-flight + caches), even with
        sheds and retries in the mix."""
        blob = write_vgf(make_sphere_grid(10), codec="gzip")

        def build(max_inflight):
            store = ObjectStore(MemoryBackend())
            store.create_bucket("sim")
            S3FileSystem(store, "sim").write_object("g.vgf", blob)
            backend = FaultyBackend(store, FaultSchedule())
            server = NDPServer(
                S3FileSystem(backend, "sim"), max_inflight=max_inflight,
                cache_bytes=8 * 2**20, selection_cache_bytes=8 * 2**20,
            )
            return backend, server

        # Reference: how many store reads one cold request costs.
        ref_backend, ref_server = build(max_inflight=0)
        ref_client = RPCClient(InProcessTransport(ref_server.dispatch))
        ndp_contour(ref_client, "g.vgf", "r", [3.0])
        cold_reads = ref_backend.reads

        backend, server = build(max_inflight=self.MAX_INFLIGHT)
        listener = server.serve_tcp()
        failures = []

        def client_run():
            transport = ResilientTransport(
                TCPTransport(listener.host, listener.port),
                retry=RetryPolicy(max_attempts=30, base_delay=0.01,
                                  max_delay=0.05, deadline=20.0),
            )
            client = RPCClient(transport)
            try:
                pd, _ = ndp_contour(client, "g.vgf", "r", [3.0])
                assert pd.num_points > 0
            except Exception as exc:  # pragma: no cover - diagnostic
                failures.append(exc)
            finally:
                client.close()

        threads = [threading.Thread(target=client_run) for _ in range(self.N_CLIENTS)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=30.0)
        listener.stop(drain_timeout=2.0)
        assert not failures
        assert backend.reads == cold_reads  # zero duplicated reads
