"""Unit tests for the RPC server/client and transports."""

import threading

import numpy as np
import pytest

from repro.errors import RPCError, RPCRemoteError, RPCTransportError
from repro.rpc import (
    InProcessTransport,
    RPCClient,
    RPCServer,
    SimulatedTransport,
    pack,
)
from repro.storage.netsim import LinkModel, SimClock


def make_server():
    srv = RPCServer()
    srv.bind("add", lambda a, b: a + b)
    srv.bind("echo", lambda x: x)
    srv.bind("fail", lambda: (_ for _ in ()).throw(ValueError("boom")))
    return srv


class TestServer:
    def test_bind_and_handlers(self):
        srv = make_server()
        assert srv.handlers() == ["add", "echo", "fail"]

    def test_bind_duplicate(self):
        srv = make_server()
        with pytest.raises(RPCError, match="already bound"):
            srv.bind("add", lambda: None)

    def test_bind_non_callable(self):
        with pytest.raises(RPCError, match="not callable"):
            RPCServer().bind("x", 42)

    def test_constructor_handlers(self):
        srv = RPCServer({"one": lambda: 1})
        assert RPCClient.in_process(srv).call("one") == 1

    def test_dispatch_malformed_frame(self):
        srv = make_server()
        from repro.rpc import unpack

        response = unpack(srv.dispatch(b"\xc1garbage"))
        assert response[2] is not None  # error populated

    def test_dispatch_wrong_shape(self):
        srv = make_server()
        from repro.rpc import unpack

        response = unpack(srv.dispatch(pack({"not": "a request"})))
        assert "invalid rpc message" in response[2]


class TestInProcessCalls:
    def test_call(self):
        cli = RPCClient.in_process(make_server())
        assert cli.call("add", 2, 3) == 5

    def test_bytes_payload(self):
        cli = RPCClient.in_process(make_server())
        blob = b"\x00\x01" * 50_000
        assert cli.call("echo", blob) == blob

    def test_remote_error_carries_traceback(self):
        cli = RPCClient.in_process(make_server())
        with pytest.raises(RPCRemoteError, match="ValueError"):
            cli.call("fail")

    def test_unknown_method(self):
        cli = RPCClient.in_process(make_server())
        with pytest.raises(RPCRemoteError, match="no such method"):
            cli.call("nope")

    def test_msgid_increments(self):
        cli = RPCClient.in_process(make_server())
        cli.call("add", 1, 1)
        cli.call("add", 1, 1)
        assert next(cli._msgid) == 3

    def test_notify(self):
        received = []
        srv = RPCServer({"log": lambda m: received.append(m)})
        RPCClient.in_process(srv).notify("log", "hello")
        assert received == ["hello"]


class TestSimulatedTransport:
    def test_charges_both_directions(self):
        clock = SimClock()
        link = LinkModel(clock, bandwidth_bps=1_000_000, latency_s=0.0)
        srv = make_server()
        cli = RPCClient(SimulatedTransport(InProcessTransport(srv.dispatch), link))
        payload = b"z" * 100_000
        assert cli.call("echo", payload) == payload
        # request + response each carry the 100 kB payload
        assert link.total_bytes > 200_000
        assert clock.now == pytest.approx(link.total_bytes / 1e6)


class TestTCP:
    def test_call_over_socket(self):
        srv = make_server()
        listener = srv.serve_tcp()
        try:
            cli = RPCClient.connect_tcp(listener.host, listener.port)
            assert cli.call("add", 20, 22) == 42
            assert cli.call("echo", b"x" * 200_000) == b"x" * 200_000
            cli.close()
        finally:
            listener.stop()

    def test_multiple_clients(self):
        srv = make_server()
        listener = srv.serve_tcp()
        try:
            clients = [
                RPCClient.connect_tcp(listener.host, listener.port) for _ in range(4)
            ]
            for i, cli in enumerate(clients):
                assert cli.call("add", i, 1) == i + 1
            for cli in clients:
                cli.close()
        finally:
            listener.stop()

    def test_concurrent_calls_one_client(self):
        srv = make_server()
        listener = srv.serve_tcp()
        results = []
        try:
            cli = RPCClient.connect_tcp(listener.host, listener.port)

            def worker(n):
                results.append(cli.call("add", n, n))

            threads = [threading.Thread(target=worker, args=(i,)) for i in range(8)]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            assert sorted(results) == [2 * i for i in range(8)]
            cli.close()
        finally:
            listener.stop()

    def test_connect_refused(self):
        with pytest.raises(RPCTransportError, match="connect"):
            RPCClient.connect_tcp("127.0.0.1", 1, timeout=0.5)

    def test_remote_error_over_socket(self):
        srv = make_server()
        listener = srv.serve_tcp()
        try:
            with RPCClient.connect_tcp(listener.host, listener.port) as cli:
                with pytest.raises(RPCRemoteError, match="ValueError"):
                    cli.call("fail")
        finally:
            listener.stop()

    def test_numpy_buffer_round_trip(self):
        """The NDP payload pattern: big float32 buffers as bin32."""
        srv = RPCServer({"sum": lambda b: float(np.frombuffer(b, dtype=np.float32).sum())})
        listener = srv.serve_tcp()
        try:
            with RPCClient.connect_tcp(listener.host, listener.port) as cli:
                data = np.ones(100_000, dtype=np.float32)
                assert cli.call("sum", data.tobytes()) == pytest.approx(100_000.0)
        finally:
            listener.stop()
