"""Property test: pipelined multiplexed calls ≡ sequential legacy calls.

For an arbitrary batch of requests — mixed methods, params, and ctx
flavors (plain, deadline-carrying, tenant-tagged, traced) — issuing them
pipelined over one multiplexed connection and collecting the results in
an arbitrary interleaved order must return exactly what the same frames
produce when issued one at a time on a classic blocking client.

Responses without trace context must match **byte for byte** (the async
core speaks the classic protocol exactly); traced responses carry
server-side span summaries whose timings legitimately vary, so for those
the comparison is on the four protocol elements (type, msgid, error,
result) instead of the raw bytes.
"""

import time

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.obs.trace import Tracer
from repro.rpc import RPCServer, pack, unpack
from repro.rpc.mux import MuxTransport
from repro.rpc.transport import TCPTransport

_settings = settings(max_examples=20, deadline=None)


def handlers():
    return {
        "echo": lambda x: x,
        "add": lambda a, b: a + b,
        "cat": lambda a, b: a + b,
        "blob": lambda n: bytes(range(256)) * n,
        "sleep_ms": lambda ms, tag: (time.sleep(ms / 1000.0), tag)[1],
        "boom": lambda: 1 / 0,
    }


CTX_NONE, CTX_DEADLINE, CTX_TENANT, CTX_TRACE = range(4)

_scalar = st.one_of(
    st.integers(min_value=-(2**40), max_value=2**40),
    st.text(max_size=12),
    st.binary(max_size=32),
    st.booleans(),
    st.none(),
)

_op = st.one_of(
    st.tuples(st.just("echo"), st.tuples(_scalar)),
    st.tuples(st.just("add"),
              st.tuples(st.integers(-1000, 1000), st.integers(-1000, 1000))),
    st.tuples(st.just("cat"), st.tuples(st.text(max_size=8),
                                        st.text(max_size=8))),
    st.tuples(st.just("blob"), st.tuples(st.integers(0, 64))),
    st.tuples(st.just("sleep_ms"),
              st.tuples(st.integers(0, 5), st.integers(0, 99))),
    st.tuples(st.just("boom"), st.tuples()),
)

_plan = st.lists(
    st.tuples(_op, st.sampled_from([CTX_NONE, CTX_DEADLINE, CTX_TENANT,
                                    CTX_TRACE])),
    min_size=1, max_size=12,
)


def build_frames(plan) -> list:
    frames = []
    for i, ((method, params), ctx_kind) in enumerate(plan):
        frame = [0, i + 1, method, list(params)]
        if ctx_kind == CTX_DEADLINE:
            frame.append({"deadline": 30.0})
        elif ctx_kind == CTX_TENANT:
            frame.append({"tenant": "prop"})
        elif ctx_kind == CTX_TRACE:
            # Fixed ids keep the request frames identical across runs;
            # only the *response* spans vary.
            frame.append({"trace_id": "t" * 16, "span_id": "s" * 8,
                          "deadline": 30.0})
        frames.append((pack(frame), ctx_kind == CTX_TRACE))
    return frames


class TestMuxEquivalence:
    @classmethod
    def setup_class(cls):
        cls.listener = RPCServer(
            handlers(), tracer=Tracer(process="server")
        ).serve_async_tcp(workers=4)

    @classmethod
    def teardown_class(cls):
        cls.listener.stop()

    @_settings
    @given(plan=_plan, seed=st.randoms(use_true_random=False))
    def test_interleaved_pipeline_matches_sequential_legacy(self, plan, seed):
        frames = build_frames(plan)

        legacy = TCPTransport(self.listener.host, self.listener.port,
                              timeout=30.0)
        try:
            want = [legacy.request(payload) for payload, _ in frames]
        finally:
            legacy.close()

        mux = MuxTransport(self.listener.host, self.listener.port,
                           timeout=30.0)
        try:
            futures = [mux.submit(payload) for payload, _ in frames]
            # Collect in an arbitrary interleaved order: correlation ids,
            # not arrival order, pair responses with requests.
            order = list(range(len(futures)))
            seed.shuffle(order)
            got = [None] * len(futures)
            for i in order:
                got[i] = futures[i].result(timeout=30.0)
            assert mux.pending == 0
        finally:
            mux.close()

        for (payload, traced), w, g in zip(frames, want, got):
            if traced:
                assert unpack(g)[:4] == unpack(w)[:4]
            else:
                assert g == w  # byte-identical classic responses
