"""Wire error contract + NOTIFY semantics (msgpack-rpc conformance).

Two bugfix regressions live here:

* handler failures used to ship the full server-side traceback to remote
  clients (information leak, unstable error text); the contract is now a
  single ``ExcType: message`` line with the traceback routed to a
  server-side hook,
* a NOTIFY frame with the wrong element count used to crash ``dispatch``
  (killing the TCP connection thread), and NOTIFY got a response frame
  it must not have.
"""

import socket

import pytest

from repro.errors import CircuitOpenError, RPCRemoteError
from repro.rpc import InProcessTransport, RPCClient, RPCServer, pack, unpack
from repro.rpc.resilience import CircuitBreaker, ResilientTransport
from repro.rpc.transport import read_frame, write_frame


def make_server(**kwargs):
    srv = RPCServer(
        {
            "add": lambda a, b: a + b,
            "fail": lambda: (_ for _ in ()).throw(ValueError("boom")),
        },
        **kwargs,
    )
    return srv


class TestErrorContract:
    def test_wire_error_is_type_and_message_only(self):
        response = unpack(make_server().dispatch(pack([0, 7, "fail", []])))
        assert response[2] == "ValueError: boom"
        assert "Traceback" not in response[2]
        assert __file__ not in response[2]  # no paths / line numbers leak

    def test_client_sees_stable_error_line(self):
        cli = RPCClient.in_process(make_server())
        with pytest.raises(RPCRemoteError, match="ValueError: boom"):
            cli.call("fail")

    def test_traceback_routed_to_hook(self):
        seen = []
        srv = make_server(on_error=lambda m, e, tb: seen.append((m, e, tb)))
        RPCClient.in_process(srv).call("add", 1, 1)
        assert seen == []  # successes never hit the hook
        with pytest.raises(RPCRemoteError):
            RPCClient.in_process(srv).call("fail")
        [(method, exc, tb)] = seen
        assert method == "fail"
        assert isinstance(exc, ValueError)
        assert "Traceback" in tb and "boom" in tb

    def test_default_hook_logs_server_side(self, caplog):
        with caplog.at_level("ERROR", logger="repro.rpc.server"):
            with pytest.raises(RPCRemoteError):
                RPCClient.in_process(make_server()).call("fail")
        assert any("Traceback" in r.getMessage() for r in caplog.records)

    def test_broken_hook_does_not_break_dispatch(self):
        def bad_hook(method, exc, tb):
            raise RuntimeError("observability down")

        cli = RPCClient.in_process(make_server(on_error=bad_hook))
        with pytest.raises(RPCRemoteError, match="ValueError: boom"):
            cli.call("fail")
        assert cli.call("add", 2, 3) == 5


class TestNotifySemantics:
    def test_notify_produces_no_response_frame(self):
        received = []
        srv = RPCServer({"log": lambda m: received.append(m)})
        assert srv.dispatch(pack([2, "log", ["hello"]])) is None
        assert received == ["hello"]

    def test_notify_wrong_arity_does_not_crash(self):
        seen = []
        srv = make_server(on_error=lambda m, e, tb: seen.append(m))
        # 4-element NOTIFY used to raise "too many values to unpack" and
        # kill the connection thread; now it is reported and dropped.
        assert srv.dispatch(pack([2, "add", [1, 2], "extra"])) is None
        assert srv.dispatch(pack([2, "add"])) is None
        assert seen == ["<notify>", "<notify>"]
        # The server still works afterwards.
        assert unpack(srv.dispatch(pack([0, 1, "add", [1, 2]])))[3] == 3

    def test_notify_handler_error_stays_server_side(self):
        seen = []
        srv = make_server(on_error=lambda m, e, tb: seen.append(m))
        assert srv.dispatch(pack([2, "fail", []])) is None
        assert seen == ["fail"]

    def test_request_wrong_arity_is_an_error_response(self):
        # A 3-element REQUEST used to crash the unpack; now it errors.
        response = unpack(make_server().dispatch(pack([0, 1, "add"])))
        assert response[0] == 1
        assert "4 or 5 elements" in response[2]

    def test_in_process_notify_via_client(self):
        received = []
        srv = RPCServer({"log": lambda m: received.append(m)})
        cli = RPCClient(InProcessTransport(srv.dispatch))
        cli.notify("log", "a")
        cli.notify("log", "b")
        assert received == ["a", "b"]


class TestNotifyOverTCP:
    def test_notify_then_call_shares_the_connection(self):
        """The server must not write a frame for NOTIFY — if it did, the
        next call would read the stale frame and fail the msgid check."""
        received = []
        srv = RPCServer({"log": lambda m: received.append(m), "add": lambda a, b: a + b})
        listener = srv.serve_tcp()
        try:
            cli = RPCClient.connect_tcp(listener.host, listener.port)
            try:
                cli.notify("log", "over-tcp")
                assert cli.call("add", 20, 22) == 42  # same socket, clean stream
                cli.notify("log", "again")
                assert cli.call("add", 1, 1) == 2
            finally:
                cli.close()
        finally:
            listener.stop()
        assert received == ["over-tcp", "again"]

    def test_malformed_notify_does_not_kill_connection(self):
        srv = make_server()
        listener = srv.serve_tcp()
        try:
            sock = socket.create_connection((listener.host, listener.port), timeout=5.0)
            try:
                write_frame(sock, pack([2, "add", [1, 2], "junk"]))  # bad arity
                write_frame(sock, pack([0, 9, "add", [2, 2]]))
                response = unpack(read_frame(sock))
                assert response == [1, 9, None, 4]
            finally:
                sock.close()
        finally:
            listener.stop()

    def test_resilient_transport_send_passthrough(self):
        received = []
        srv = RPCServer({"log": lambda m: received.append(m)})
        transport = ResilientTransport(InProcessTransport(srv.dispatch))
        RPCClient(transport).notify("log", "x")
        assert received == ["x"]

    def test_resilient_send_rejected_when_breaker_open(self):
        received = []
        srv = RPCServer({"log": lambda m: received.append(m)})
        breaker = CircuitBreaker(failure_threshold=1, reset_timeout=60.0)
        breaker.record_failure()
        transport = ResilientTransport(InProcessTransport(srv.dispatch), breaker=breaker)
        with pytest.raises(CircuitOpenError):
            RPCClient(transport).notify("log", "x")
        assert received == []
