"""TCP transport edge cases: frame-size limits, truncation, empty frames.

Direct tests of the wire framing (``uint32 BE length | payload``) that the
failure-injection suite only exercises indirectly: oversized frames must
be rejected on both send and receive, a peer disappearing mid-frame must
raise a typed error, and zero-length frames are legal in both directions.
"""

import socket
import struct
import threading

import pytest

from repro.errors import RPCTimeoutError, RPCTransportError
from repro.rpc import transport as transport_mod
from repro.rpc.transport import (
    TCPServerTransport,
    TCPTransport,
    read_frame,
    write_frame,
)


@pytest.fixture
def pair():
    a, b = socket.socketpair()
    yield a, b
    a.close()
    b.close()


class TestMaxFrame:
    def test_write_frame_rejects_oversized_payload(self, pair, monkeypatch):
        a, _ = pair
        # Shrink the limit rather than allocating a real 2 GiB payload.
        monkeypatch.setattr(transport_mod, "MAX_FRAME", 64)
        with pytest.raises(RPCTransportError, match="exceeds MAX_FRAME"):
            write_frame(a, b"x" * 64)

    def test_write_frame_at_limit_minus_one_passes(self, pair, monkeypatch):
        a, b = pair
        monkeypatch.setattr(transport_mod, "MAX_FRAME", 64)
        write_frame(a, b"x" * 63)
        assert read_frame(b) == b"x" * 63

    def test_read_frame_rejects_garbage_length_prefix(self, pair):
        a, b = pair
        # A length prefix >= the real MAX_FRAME, no payload behind it.
        a.sendall(struct.pack(">I", transport_mod.MAX_FRAME))
        with pytest.raises(RPCTransportError, match="exceeds MAX_FRAME"):
            read_frame(b)

    def test_tcp_client_rejects_oversized_server_frame(self):
        """A rogue server announcing a huge frame cannot OOM the client."""
        listener = socket.socket()
        listener.bind(("127.0.0.1", 0))
        listener.listen(1)
        port = listener.getsockname()[1]

        def rogue():
            conn, _ = listener.accept()
            read_frame(conn)  # consume the request politely
            conn.sendall(struct.pack(">I", transport_mod.MAX_FRAME))
            conn.close()

        thread = threading.Thread(target=rogue, daemon=True)
        thread.start()
        client = TCPTransport("127.0.0.1", port, timeout=5.0)
        try:
            with pytest.raises(RPCTransportError, match="exceeds MAX_FRAME"):
                client.request(b"hello")
        finally:
            client.close()
            listener.close()
            thread.join(timeout=2.0)


class TestMidFrameDisconnect:
    def test_read_frame_detects_truncated_payload(self, pair):
        a, b = pair
        a.sendall(struct.pack(">I", 100) + b"only ten b")
        a.close()
        with pytest.raises(RPCTransportError, match="closed mid-frame"):
            read_frame(b)

    def test_read_frame_detects_truncated_header(self, pair):
        a, b = pair
        a.sendall(b"\x00\x00")  # half a length prefix
        a.close()
        with pytest.raises(RPCTransportError, match="closed mid-frame"):
            read_frame(b)

    def test_tcp_client_surfaces_mid_frame_disconnect(self):
        listener = socket.socket()
        listener.bind(("127.0.0.1", 0))
        listener.listen(1)
        port = listener.getsockname()[1]

        def rogue():
            conn, _ = listener.accept()
            read_frame(conn)
            conn.sendall(struct.pack(">I", 1 << 20) + b"partial payload")
            conn.close()

        thread = threading.Thread(target=rogue, daemon=True)
        thread.start()
        client = TCPTransport("127.0.0.1", port, timeout=5.0)
        try:
            with pytest.raises(RPCTransportError, match="mid-frame"):
                client.request(b"hello")
        finally:
            client.close()
            listener.close()
            thread.join(timeout=2.0)

    def test_unresponsive_server_is_timeout_error(self):
        """A server that accepts but never replies trips the socket timeout
        as :class:`RPCTimeoutError` (which the resilient layer can retry)."""
        listener = socket.socket()
        listener.bind(("127.0.0.1", 0))
        listener.listen(1)
        port = listener.getsockname()[1]
        client = TCPTransport("127.0.0.1", port, timeout=0.2)
        try:
            with pytest.raises(RPCTimeoutError):
                client.request(b"anyone there?")
        finally:
            client.close()
            listener.close()


class TestReconnect:
    def test_retry_recovers_after_mid_request_connection_drop(self):
        """A server that kills the first connection mid-frame must not doom
        the request: :class:`ResilientTransport` re-dials between attempts
        (via :meth:`TCPTransport.reconnect`), so the retry lands on a fresh
        connection and succeeds."""
        from repro.rpc.resilience import ResilientTransport, RetryPolicy
        from repro.storage.metrics import ResilienceStats

        listener = socket.socket()
        listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        listener.bind(("127.0.0.1", 0))
        listener.listen(4)
        port = listener.getsockname()[1]
        connections = []

        def flaky_server():
            # First connection: read the request, then vanish mid-frame.
            conn, _ = listener.accept()
            connections.append(conn)
            read_frame(conn)
            conn.sendall(struct.pack(">I", 1 << 20) + b"gone")
            conn.close()
            # Second connection (the reconnect): behave.
            conn, _ = listener.accept()
            connections.append(conn)
            payload = read_frame(conn)
            write_frame(conn, payload.upper())
            conn.close()

        thread = threading.Thread(target=flaky_server, daemon=True)
        thread.start()
        stats = ResilienceStats()
        client = ResilientTransport(
            TCPTransport("127.0.0.1", port, timeout=5.0),
            retry=RetryPolicy(max_attempts=3, base_delay=0.0, jitter=0.0,
                              deadline=None),
            stats=stats,
        )
        try:
            assert client.request(b"hello") == b"HELLO"
        finally:
            client.close()
            listener.close()
            thread.join(timeout=2.0)
        assert len(connections) == 2  # retry really used a fresh socket
        assert stats.get("reconnects") == 1
        assert stats.get("retries") == 1

    def test_reconnect_failure_is_swallowed_until_next_attempt(self):
        """If the re-dial itself fails (server still down), the retry loop
        keeps going and the *attempt* surfaces the error — reconnect never
        raises out of the backoff path."""
        from repro.rpc.resilience import ResilientTransport, RetryPolicy

        class DeadAfterFirstUse:
            def __init__(self):
                self.reconnects = 0

            def request(self, payload: bytes) -> bytes:
                raise RPCTransportError("boom")

            def reconnect(self) -> None:
                self.reconnects += 1
                raise RPCTransportError("still down")

            def close(self) -> None:
                pass

        inner = DeadAfterFirstUse()
        client = ResilientTransport(
            inner,
            retry=RetryPolicy(max_attempts=3, base_delay=0.0, jitter=0.0,
                              deadline=None),
        )
        with pytest.raises(RPCTransportError, match="boom"):
            client.request(b"x")
        assert inner.reconnects == 2  # once per backoff between 3 attempts


class TestZeroLengthFrames:
    def test_zero_length_frame_roundtrip(self, pair):
        a, b = pair
        write_frame(a, b"")
        assert read_frame(b) == b""

    def test_zero_length_frames_interleave_with_data(self, pair):
        a, b = pair
        write_frame(a, b"")
        write_frame(a, b"data")
        write_frame(a, b"")
        assert read_frame(b) == b""
        assert read_frame(b) == b"data"
        assert read_frame(b) == b""

    def test_tcp_transport_empty_request_and_response(self):
        """End to end: empty payloads are legal frames both ways."""
        seen = []

        def dispatcher(payload: bytes) -> bytes:
            seen.append(payload)
            return b"" if payload else b"was empty"

        with TCPServerTransport(dispatcher) as server:
            client = TCPTransport(server.host, server.port, timeout=5.0)
            try:
                assert client.request(b"") == b"was empty"
                assert client.request(b"x") == b""
            finally:
                client.close()
        assert seen == [b"", b"x"]
