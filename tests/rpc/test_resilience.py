"""Resilient-transport tests: every retry/backoff/breaker/fallback branch.

All timing is driven by :class:`tests.faults.FakeClock` — an autouse
fixture asserts ``time.sleep`` is never called, so the whole module runs
in milliseconds regardless of the backoff/deadline values under test.
"""

import random
import time

import numpy as np
import pytest

from repro.core import FallbackPolicy, NDPServer, ndp_contour
from repro.errors import (
    CircuitOpenError,
    RPCError,
    RPCTimeoutError,
    RPCTransportError,
)
from repro.filters.contour import contour_grid
from repro.io import write_vgf
from repro.rpc import CircuitBreaker, InProcessTransport, ResilientTransport, RetryPolicy, RPCClient
from repro.storage import MemoryBackend, ObjectStore, ResilienceStats, S3FileSystem

from tests.conftest import make_sphere_grid
from tests.faults import (
    Delay,
    Drop,
    FakeClock,
    FaultSchedule,
    FaultyTransport,
    Ok,
    drops,
)


@pytest.fixture(autouse=True)
def no_real_sleeps(monkeypatch):
    def _forbidden(seconds):
        raise AssertionError(f"real time.sleep({seconds}) during a resilience test")

    monkeypatch.setattr(time, "sleep", _forbidden)


@pytest.fixture
def env():
    grid = make_sphere_grid(10)
    store = ObjectStore(MemoryBackend())
    store.create_bucket("sim")
    fs = S3FileSystem(store, "sim")
    fs.write_object("g.vgf", write_vgf(grid, codec="gzip"))
    return grid, store, fs, NDPServer(fs)


def build_client(
    server,
    schedule,
    clock,
    retry=None,
    breaker=None,
    stats=None,
    seed=7,
):
    faulty = FaultyTransport(InProcessTransport(server.dispatch), schedule, clock)
    resilient = ResilientTransport(
        faulty,
        retry=retry if retry is not None else RetryPolicy(jitter=0.0),
        breaker=breaker,
        clock=clock,
        sleep=clock.sleep,
        rng=random.Random(seed),
        stats=stats,
    )
    return RPCClient(resilient), faulty, resilient


def assert_same_geometry(a, b):
    assert np.array_equal(a.points, b.points)
    assert np.array_equal(a.polys.connectivity, b.polys.connectivity)
    assert np.array_equal(a.lines.connectivity, b.lines.connectivity)
    assert a.point_data.get("contour_value") == b.point_data.get("contour_value")


# ---------------------------------------------------------------------------
# Retry + backoff
# ---------------------------------------------------------------------------


class TestRetry:
    def test_two_drops_then_success_completes_without_fallback(self, env):
        """Acceptance: '2 transport drops then success' rides the retries."""
        grid, _, fs, server = env
        clock = FakeClock()
        stats = ResilienceStats()
        client, faulty, _ = build_client(
            server, FaultSchedule(drops(2)), clock,
            retry=RetryPolicy(max_attempts=4, jitter=0.0), stats=stats,
        )
        fallback = FallbackPolicy(fs, stats=stats)

        pd, st = ndp_contour(client, "g.vgf", "r", [3.0], fallback=fallback)

        assert_same_geometry(pd, contour_grid(grid, "r", [3.0]))
        assert st["path"] == "ndp"
        assert faulty.attempts == 3  # 2 drops + 1 success, all through the wire
        assert stats.get("retries") == 2
        assert stats.get("fallbacks") == 0
        assert stats.get("ndp_successes") == 1
        assert len(clock.sleeps) == 2  # backoffs were injected, not real

    def test_retries_exhausted_reraises_last_transport_error(self, env):
        _, _, _, server = env
        clock = FakeClock()
        client, faulty, _ = build_client(
            server, FaultSchedule.permanently_down("gone"), clock,
            retry=RetryPolicy(max_attempts=3, jitter=0.0),
        )
        with pytest.raises(RPCTransportError, match="gone"):
            client.call("list_objects", "")
        assert faulty.attempts == 3

    def test_backoff_progression_exponential_and_capped(self, env):
        _, _, _, server = env
        clock = FakeClock()
        client, _, _ = build_client(
            server,
            FaultSchedule(drops(4)),
            clock,
            retry=RetryPolicy(
                max_attempts=5, base_delay=0.1, multiplier=2.0,
                max_delay=0.5, jitter=0.0, deadline=None,
            ),
        )
        client.call("list_objects", "")
        assert clock.sleeps == [0.1, 0.2, 0.4, 0.5]  # capped at max_delay

    def test_jitter_is_seed_deterministic_and_bounded(self, env):
        _, _, _, server = env
        policy = RetryPolicy(
            max_attempts=4, base_delay=0.2, multiplier=2.0,
            max_delay=10.0, jitter=0.5, deadline=None,
        )
        runs = []
        for _ in range(2):
            clock = FakeClock()
            client, _, _ = build_client(
                server, FaultSchedule(drops(3)), clock, retry=policy, seed=123,
            )
            client.call("list_objects", "")
            runs.append(clock.sleeps)
        assert runs[0] == runs[1]  # same seed, same schedule
        for i, slept in enumerate(runs[0]):
            full = 0.2 * 2.0**i
            assert full * 0.5 <= slept <= full

    def test_non_transport_errors_are_not_retried(self, env):
        """Remote handler failures are deterministic: one attempt only."""
        _, _, _, server = env
        clock = FakeClock()
        client, faulty, _ = build_client(server, FaultSchedule(), clock)
        from repro.errors import RPCRemoteError

        with pytest.raises(RPCRemoteError):
            client.call("prefilter_contour", "missing.vgf", "r", [1.0])
        assert faulty.attempts == 1
        assert clock.sleeps == []


# ---------------------------------------------------------------------------
# Deadlines
# ---------------------------------------------------------------------------


class TestDeadline:
    def test_retry_budget_exhaustion_is_timeout(self, env):
        """When the next backoff would overshoot the deadline, stop early."""
        _, _, _, server = env
        clock = FakeClock()
        client, faulty, _ = build_client(
            server,
            FaultSchedule.permanently_down(),
            clock,
            retry=RetryPolicy(
                max_attempts=10, base_delay=0.4, multiplier=2.0,
                max_delay=10.0, jitter=0.0, deadline=1.0,
            ),
        )
        with pytest.raises(RPCTimeoutError, match="deadline"):
            client.call("list_objects", "")
        # attempt(0) -> sleep 0.4, attempt(1) -> sleep 0.8 would pass 1.0s
        assert faulty.attempts == 2
        assert clock.sleeps == [0.4]

    def test_late_response_is_timeout(self, env):
        """A reply that arrives past the deadline is discarded as timed out."""
        _, _, _, server = env
        clock = FakeClock()
        client, faulty, _ = build_client(
            server,
            FaultSchedule([Delay(5.0, then=Ok())]),
            clock,
            retry=RetryPolicy(max_attempts=3, jitter=0.0, deadline=1.0),
        )
        with pytest.raises(RPCTimeoutError, match="arrived after"):
            client.call("list_objects", "")
        assert faulty.attempts == 1

    def test_timeout_triggers_fallback(self, env):
        grid, _, fs, server = env
        clock = FakeClock()
        stats = ResilienceStats()
        client, _, _ = build_client(
            server,
            FaultSchedule([Delay(5.0)]),
            clock,
            retry=RetryPolicy(max_attempts=2, jitter=0.0, deadline=1.0),
            stats=stats,
        )
        fallback = FallbackPolicy(fs, stats=stats)
        pd, st = ndp_contour(client, "g.vgf", "r", [3.0], fallback=fallback)
        assert st["path"] == "fallback"
        assert "RPCTimeoutError" in st["fallback_reason"]
        assert_same_geometry(pd, contour_grid(grid, "r", [3.0]))


# ---------------------------------------------------------------------------
# Circuit breaker
# ---------------------------------------------------------------------------


class TestCircuitBreaker:
    def test_trips_after_threshold_and_rejects_locally(self, env):
        _, _, _, server = env
        clock = FakeClock()
        stats = ResilienceStats()
        breaker = CircuitBreaker(failure_threshold=3, reset_timeout=30.0, clock=clock)
        client, faulty, _ = build_client(
            server,
            FaultSchedule.permanently_down(),
            clock,
            retry=RetryPolicy(max_attempts=5, jitter=0.0, deadline=None),
            breaker=breaker,
            stats=stats,
        )
        with pytest.raises(CircuitOpenError, match="3 consecutive failures"):
            client.call("list_objects", "")
        assert breaker.state == CircuitBreaker.OPEN
        assert breaker.trips == 1
        assert stats.get("breaker_trips") == 1
        # Only the 3 tripping attempts touched the wire; attempts 4-5 were
        # rejected locally.
        assert faulty.attempts == 3

        # While open, requests never reach the transport at all.
        with pytest.raises(CircuitOpenError):
            client.call("list_objects", "")
        assert faulty.attempts == 3
        assert stats.get("breaker_rejections") == 2

    def test_half_open_probe_success_closes(self, env):
        _, _, _, server = env
        clock = FakeClock()
        breaker = CircuitBreaker(failure_threshold=2, reset_timeout=10.0, clock=clock)
        schedule = FaultSchedule(drops(2))  # heals after the trip
        client, faulty, _ = build_client(
            server, schedule, clock,
            retry=RetryPolicy(max_attempts=2, jitter=0.0), breaker=breaker,
        )
        with pytest.raises((RPCTransportError, CircuitOpenError)):
            client.call("list_objects", "")
        assert breaker.state == CircuitBreaker.OPEN

        clock.advance(10.0)
        assert breaker.state == CircuitBreaker.HALF_OPEN
        assert client.call("list_objects", "") == ["g.vgf"]
        assert breaker.state == CircuitBreaker.CLOSED
        assert breaker.failures == 0

    def test_half_open_probe_failure_reopens(self, env):
        _, _, _, server = env
        clock = FakeClock()
        breaker = CircuitBreaker(failure_threshold=2, reset_timeout=10.0, clock=clock)
        client, faulty, _ = build_client(
            server,
            FaultSchedule(drops(3)),  # the half-open probe also fails
            clock,
            retry=RetryPolicy(max_attempts=2, jitter=0.0),
            breaker=breaker,
        )
        with pytest.raises((RPCTransportError, CircuitOpenError)):
            client.call("list_objects", "")
        assert breaker.trips == 1

        clock.advance(10.0)
        with pytest.raises(CircuitOpenError):
            client.call("list_objects", "")
        assert breaker.trips == 2
        assert breaker.state == CircuitBreaker.OPEN
        # The backoff sleep after the probe failure already consumed a bit
        # of the fresh reset window.
        assert 0.0 < breaker.retry_after() <= 10.0

    def test_retry_after_counts_down_on_injected_clock(self, env):
        clock = FakeClock()
        breaker = CircuitBreaker(failure_threshold=1, reset_timeout=8.0, clock=clock)
        breaker.record_failure()
        assert breaker.retry_after() == pytest.approx(8.0)
        clock.advance(3.0)
        assert breaker.retry_after() == pytest.approx(5.0)
        clock.advance(5.0)
        assert breaker.retry_after() is None  # half-open now


# ---------------------------------------------------------------------------
# Fallback
# ---------------------------------------------------------------------------


class TestFallback:
    def test_server_permanently_down_falls_back_with_identical_geometry(self, env):
        """Acceptance: breaker trips, baseline s3fs read serves the contour."""
        grid, _, fs, server = env
        clock = FakeClock()
        stats = ResilienceStats()
        breaker = CircuitBreaker(failure_threshold=3, reset_timeout=60.0, clock=clock)
        client, faulty, _ = build_client(
            server,
            FaultSchedule.permanently_down(),
            clock,
            retry=RetryPolicy(max_attempts=5, jitter=0.0, deadline=None),
            breaker=breaker,
            stats=stats,
        )
        fallback = FallbackPolicy(fs, stats=stats)

        values = [2.0, 4.0]
        pd, st = ndp_contour(client, "g.vgf", "r", values, fallback=fallback)

        assert_same_geometry(pd, contour_grid(grid, "r", values))
        assert st["path"] == "fallback"
        assert breaker.state == CircuitBreaker.OPEN
        assert stats.get("fallbacks") == 1
        assert stats.get("fallback_bytes") == st["stored_bytes"] > 0
        assert stats.fallback_rate == 1.0
        assert clock.sleeps  # retried with injected backoff first

        # Subsequent calls short-circuit on the open breaker: no new wire
        # attempts, still correct geometry.
        wire_attempts = faulty.attempts
        pd2, st2 = ndp_contour(client, "g.vgf", "r", values, fallback=fallback)
        assert_same_geometry(pd2, pd)
        assert st2["path"] == "fallback"
        assert "CircuitOpenError" in st2["fallback_reason"]
        assert faulty.attempts == wire_attempts

    def test_fallback_supports_roi(self, env):
        grid, _, fs, server = env
        from repro.grid.bounds import Bounds

        clock = FakeClock()
        client, _, _ = build_client(
            server, FaultSchedule.permanently_down(), clock,
            retry=RetryPolicy(max_attempts=2, jitter=0.0),
        )
        roi = Bounds(2.0, 8.0, 2.0, 8.0, 2.0, 8.0)
        pd, st = ndp_contour(
            client, "g.vgf", "r", [3.0], roi=roi, fallback=FallbackPolicy(fs)
        )
        assert st["path"] == "fallback"
        assert_same_geometry(pd, contour_grid(grid, "r", [3.0], roi=roi))

    def test_remote_errors_do_not_fall_back(self, env):
        """Deterministic remote failures must surface, not be masked."""
        _, _, fs, server = env
        from repro.errors import RPCRemoteError

        clock = FakeClock()
        stats = ResilienceStats()
        client, _, _ = build_client(server, FaultSchedule(), clock, stats=stats)
        with pytest.raises(RPCRemoteError):
            ndp_contour(
                client, "missing.vgf", "r", [3.0],
                fallback=FallbackPolicy(fs, stats=stats),
            )
        assert stats.get("fallbacks") == 0

    def test_no_fallback_policy_raises_as_before(self, env):
        _, _, _, server = env
        clock = FakeClock()
        client, _, _ = build_client(
            server, FaultSchedule.permanently_down(), clock,
            retry=RetryPolicy(max_attempts=2, jitter=0.0),
        )
        with pytest.raises(RPCTransportError):
            ndp_contour(client, "g.vgf", "r", [3.0])


# ---------------------------------------------------------------------------
# Health endpoint + glue
# ---------------------------------------------------------------------------


class TestHealthAndStats:
    def test_health_endpoint_reports_ok_through_resilient_client(self, env):
        _, _, _, server = env
        clock = FakeClock()
        client, _, _ = build_client(server, FaultSchedule(drops(1)), clock)
        report = client.call("health")
        assert report["status"] == "ok"
        assert report["store_reachable"] is True
        assert report["requests_served"] >= 0

    def test_health_degraded_when_store_unreachable(self, env):
        _, store, fs, server = env

        class BrokenFS:
            def listdir(self, prefix=""):
                raise OSError("mount gone")

        server.fs = BrokenFS()
        client = RPCClient(InProcessTransport(server.dispatch))
        report = client.call("health")
        assert report["status"] == "degraded"
        assert report["store_reachable"] is False

    def test_stats_events_accumulate(self, env):
        _, _, _, server = env
        clock = FakeClock()
        stats = ResilienceStats()
        client, _, _ = build_client(
            server, FaultSchedule(drops(2)), clock,
            retry=RetryPolicy(max_attempts=4, jitter=0.0), stats=stats,
        )
        client.call("list_objects", "")
        events = stats.as_dict()
        assert events["attempts"] == 3
        assert events["failures"] == 2
        assert events["retries"] == 2
        assert events["successes"] == 1

    def test_invalid_policies_rejected(self):
        with pytest.raises(RPCError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(RPCError):
            RetryPolicy(jitter=1.5)
        with pytest.raises(RPCError):
            RetryPolicy(deadline=0.0)
        with pytest.raises(RPCError):
            CircuitBreaker(failure_threshold=0)
