"""Chaos: connections killed mid-pipeline must leak nothing.

Marked ``chaos`` (runs in its own CI job).  Several multiplexed clients
pipeline batches of slow requests while a scripted killer severs their
sockets mid-flight — which connections die, and after how many of their
requests are in the air, comes from a seeded
:class:`tests.faults.FaultSchedule`, so a failing run replays exactly.

The invariants under assault:

* **no orphaned futures** — every submitted future completes (result or
  transport error); ``MuxTransport.pending`` returns to zero,
* **no leaked admission slots** — the server's inflight/pending counters
  return to zero once the dust settles,
* **graceful drain still works** — ``stop(drain_timeout)`` completes
  within its window after the carnage.
"""

import threading
import time

import pytest

from repro.errors import RPCTransportError
from repro.rpc import RPCServer, pack
from repro.rpc.admission import AdmissionController
from repro.rpc.mux import MuxTransport

from tests.faults import Drop, FaultSchedule

pytestmark = pytest.mark.chaos

CLIENTS = 6
REQUESTS = 25


def wait_until(predicate, timeout=10.0, interval=0.01):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(interval)
    return predicate()


class TestKillMidPipeline:
    def run_assault(self, seed: int):
        admission = AdmissionController(max_inflight=4, max_pending=64)
        server = RPCServer(
            {"work": lambda ms, i: (time.sleep(ms / 1000.0), i)[1]},
            admission=admission,
        )
        listener = server.serve_async_tcp(workers=4)

        # One scripted decision per client: Drop = kill that client's
        # socket mid-pipeline, Ok = leave it alone.  Seeded => replayable.
        schedule = FaultSchedule.random(seed, CLIENTS, drop=0.5, delay=0.0)
        transports = []
        outcomes = {"ok": 0, "failed": 0, "submitted": 0}
        lock = threading.Lock()

        def client(idx: int, kill: bool):
            transport = MuxTransport(listener.host, listener.port,
                                     timeout=15.0)
            with lock:
                transports.append(transport)
            futures = []
            for i in range(REQUESTS):
                try:
                    futures.append(
                        transport.submit(pack([0, i + 1, "work", [5, i]]))
                    )
                except RPCTransportError:
                    continue  # severed at submit time: no future exists
                if kill and i == REQUESTS // 2:
                    # Sever the socket with half the pipeline in flight.
                    transport._sock.shutdown(2)
            with lock:
                outcomes["submitted"] += len(futures)
            for fut in futures:
                try:
                    fut.result(timeout=15.0)
                    with lock:
                        outcomes["ok"] += 1
                except Exception:
                    with lock:
                        outcomes["failed"] += 1

        threads = [
            threading.Thread(
                target=client, args=(i, isinstance(schedule.next(), Drop)),
                daemon=True,
            )
            for i in range(CLIENTS)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=30.0)
            assert not t.is_alive(), "client thread wedged"

        kills = sum(1 for a in schedule.log if isinstance(a, Drop))

        # Every future completed one way or the other — none orphaned.
        assert outcomes["ok"] + outcomes["failed"] == outcomes["submitted"]
        for transport in transports:
            assert transport.pending == 0
        if kills:
            assert outcomes["failed"] > 0  # the kills actually bit
        assert outcomes["ok"] > 0          # survivors actually served

        # Admission slots all returned: nothing leaked server-side.
        assert wait_until(
            lambda: admission.inflight == 0 and admission.pending == 0
        ), admission.info()
        assert wait_until(listener.scheduler.quiescent)

        # Graceful drain completes within its window post-carnage.
        t0 = time.monotonic()
        clean = listener.stop(drain_timeout=5.0)
        assert clean is True
        assert time.monotonic() - t0 < 5.0

        for transport in transports:
            transport.close()
        return outcomes, kills

    @pytest.mark.parametrize("seed", [7, 23, 4242])
    def test_no_leaks_after_mid_pipeline_kills(self, seed):
        self.run_assault(seed)

    def test_all_connections_killed_still_drains(self):
        """Even with every client severed, counters zero out and the
        listener drains cleanly."""
        admission = AdmissionController(max_inflight=2)
        server = RPCServer(
            {"work": lambda ms, i: (time.sleep(ms / 1000.0), i)[1]},
            admission=admission,
        )
        listener = server.serve_async_tcp(workers=2)
        transports = []
        for c in range(4):
            transport = MuxTransport(listener.host, listener.port,
                                     timeout=10.0)
            transports.append(transport)
            futures = [
                transport.submit(pack([0, i + 1, "work", [10, i]]))
                for i in range(10)
            ]
            transport._sock.shutdown(2)
            for fut in futures:
                with pytest.raises(Exception):
                    fut.result(timeout=10.0)
            assert transport.pending == 0

        assert wait_until(
            lambda: admission.inflight == 0 and admission.pending == 0
        ), admission.info()
        assert wait_until(listener.scheduler.quiescent)
        assert listener.stop(drain_timeout=5.0) is True
        for transport in transports:
            transport.close()
