"""Hypothesis property tests: MessagePack round trips over the type lattice."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.rpc import ExtType, Timestamp, pack, unpack

# Scalars msgpack represents exactly.
scalars = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(min_value=-(2**63), max_value=2**64 - 1),
    st.floats(allow_nan=False),
    st.text(max_size=80),
    st.binary(max_size=120),
    # Ext code -1 is reserved by the spec for timestamps (decoded as
    # Timestamp, not ExtType), so exclude it from raw ExtType generation.
    st.builds(
        ExtType,
        st.integers(-128, 127).filter(lambda c: c != -1),
        st.binary(max_size=40),
    ),
    st.builds(
        Timestamp,
        st.integers(-(2**63), 2**63 - 1),
        st.integers(0, 999_999_999),
    ),
)

values = st.recursive(
    scalars,
    lambda children: st.one_of(
        st.lists(children, max_size=6),
        st.dictionaries(
            st.one_of(st.text(max_size=10), st.integers(-1000, 1000)),
            children,
            max_size=6,
        ),
    ),
    max_leaves=25,
)


@given(value=values)
@settings(max_examples=300, deadline=None)
def test_round_trip(value):
    assert unpack(pack(value)) == value


@given(value=values)
@settings(max_examples=100, deadline=None)
def test_deterministic_encoding(value):
    assert pack(value) == pack(value)


@given(data=st.binary(max_size=64))
@settings(max_examples=200, deadline=None)
def test_decoder_never_crashes_on_garbage(data):
    """Arbitrary bytes either decode or raise FormatError — no other
    exception type may escape."""
    from repro.errors import FormatError

    try:
        unpack(data)
    except FormatError:
        pass
