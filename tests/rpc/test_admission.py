"""Admission control: the counting gate, shed errors, and wire helpers.

Covers :mod:`repro.rpc.admission` — the controller semantics, the
deadline scopes, the client-side frame helpers — and the wire
compatibility contract: frames without a deadline and replies without an
overload error are byte-identical to the pre-admission protocol.
"""

import threading

import pytest

from repro.errors import (
    DeadlineExpiredError,
    RPCTransportError,
    ServerOverloadedError,
)
from repro.rpc import RPCServer, pack, unpack
from repro.rpc.admission import (
    AdmissionController,
    DeadlineScope,
    check_deadline,
    current_deadline,
    inject_deadline,
    remaining_budget,
    sniff_overload,
)

from tests.faults import FakeClock


class TestAdmissionController:
    def test_unlimited_counts_but_never_sheds(self):
        gate = AdmissionController(max_inflight=0)
        for _ in range(5):
            gate.acquire()
        info = gate.info()
        assert info["inflight"] == 5
        assert info["peak_inflight"] == 5
        assert info["shed"] == 0
        for _ in range(5):
            gate.release()
        assert gate.inflight == 0
        assert gate.info()["admitted"] == 5

    def test_sheds_immediately_when_full_and_no_queue(self):
        gate = AdmissionController(max_inflight=1, max_pending=0)
        gate.acquire()
        with pytest.raises(ServerOverloadedError) as excinfo:
            gate.acquire()
        # The hint crosses the string-only error channel *and* is typed.
        assert excinfo.value.retry_after == pytest.approx(0.05)
        assert "retry_after=0.05" in str(excinfo.value)
        assert isinstance(excinfo.value, RPCTransportError)  # retryable
        assert gate.info()["shed"] == 1
        gate.release()
        gate.acquire()  # slot free again
        gate.release()

    def test_pending_queue_admits_when_slot_frees(self):
        gate = AdmissionController(max_inflight=1, max_pending=1)
        gate.acquire()
        admitted = threading.Event()

        def waiter():
            gate.acquire()
            admitted.set()

        t = threading.Thread(target=waiter, daemon=True)
        t.start()
        # The waiter parks in the pending queue rather than shedding.
        while gate.pending == 0:
            pass
        assert not admitted.is_set()
        # A third arrival finds the queue full and sheds.
        with pytest.raises(ServerOverloadedError, match="pending queue full"):
            gate.acquire()
        gate.release()
        assert admitted.wait(timeout=5.0)
        t.join(timeout=5.0)
        assert gate.inflight == 1
        gate.release()

    def test_queue_timeout_zero_sheds_queued_request(self):
        gate = AdmissionController(max_inflight=1, max_pending=1, queue_timeout=0.0)
        gate.acquire()
        with pytest.raises(ServerOverloadedError, match="queue wait timed out"):
            gate.acquire()
        assert gate.pending == 0  # the pending count was unwound
        gate.release()

    def test_context_manager_releases_on_error(self):
        gate = AdmissionController(max_inflight=1)
        with pytest.raises(RuntimeError):
            with gate:
                assert gate.inflight == 1
                raise RuntimeError("handler blew up")
        assert gate.inflight == 0

    def test_record_expired_shows_in_info(self):
        gate = AdmissionController(max_inflight=2)
        gate.record_expired()
        gate.record_expired()
        assert gate.info()["expired"] == 2

    def test_negative_limits_rejected(self):
        with pytest.raises(ValueError):
            AdmissionController(max_inflight=-1)


class TestDeadlineScope:
    def test_scope_tracks_budget_against_clock(self):
        clock = FakeClock()
        with DeadlineScope(2.0, clock=clock) as scope:
            assert current_deadline() is scope
            assert remaining_budget() == pytest.approx(2.0)
            clock.advance(1.5)
            assert remaining_budget() == pytest.approx(0.5)
            check_deadline("half way")  # still inside budget
            clock.advance(1.0)
            assert scope.expired()
            with pytest.raises(DeadlineExpiredError, match="before decompress"):
                check_deadline("decompress")
        assert current_deadline() is None

    def test_check_deadline_is_noop_outside_scope(self):
        assert remaining_budget() is None
        check_deadline("anything")  # must not raise

    def test_nested_scopes_innermost_wins(self):
        clock = FakeClock()
        with DeadlineScope(10.0, clock=clock):
            with DeadlineScope(1.0, clock=clock):
                clock.advance(2.0)
                with pytest.raises(DeadlineExpiredError):
                    check_deadline()
            # back to the outer scope: 8 s left
            check_deadline()


class TestInjectDeadline:
    def test_plain_request_gains_ctx_map(self):
        frame = pack([0, 7, "ping", []])
        out = unpack(inject_deadline(frame, 1.25))
        assert out == [0, 7, "ping", [], {"deadline": 1.25}]

    def test_existing_ctx_is_merged_not_replaced(self):
        frame = pack([0, 7, "ping", [], {"trace_id": "t", "span_id": "s"}])
        out = unpack(inject_deadline(frame, 0.5))
        assert out[4] == {"trace_id": "t", "span_id": "s", "deadline": 0.5}

    def test_negative_remaining_clamps_to_zero(self):
        out = unpack(inject_deadline(pack([0, 1, "m", []]), -3.0))
        assert out[4]["deadline"] == 0.0

    @pytest.mark.parametrize(
        "payload",
        [
            pack([2, "notify_me", []]),          # NOTIFY: no response channel
            pack([1, 1, None, "a response"]),    # not a request
            pack({"not": "a frame"}),
            b"\xff\xfe not msgpack at all",
        ],
    )
    def test_non_request_frames_pass_through_untouched(self, payload):
        assert inject_deadline(payload, 1.0) == payload

    def test_no_deadline_means_byte_identical_wire(self):
        """The compat contract: not injecting leaves pre-PR bytes exact."""
        server = RPCServer({"ping": lambda: "pong"})
        frame = pack([0, 3, "ping", []])
        response = server.dispatch(frame)
        assert unpack(response) == [1, 3, None, "pong"]  # classic 4 elements


class TestSniffOverload:
    def _shed_reply(self) -> bytes:
        gate = AdmissionController(max_inflight=1)
        gate.acquire()
        try:
            gate.acquire()
        except ServerOverloadedError as exc:
            return pack([1, 9, f"ServerOverloadedError: {exc}", None])
        raise AssertionError("gate did not shed")

    def test_detects_shed_reply_and_parses_hint(self):
        shed = sniff_overload(self._shed_reply())
        assert isinstance(shed, ServerOverloadedError)
        assert shed.retry_after == pytest.approx(0.05)

    def test_normal_replies_are_not_overloads(self):
        assert sniff_overload(pack([1, 9, None, {"big": "result"}])) is None
        assert sniff_overload(pack([1, 9, "ValueError: nope", None])) is None
        assert sniff_overload(None) is None

    def test_marker_in_result_payload_is_not_an_overload(self):
        # The marker string appearing in *data* must not trigger shedding.
        reply = pack([1, 9, None, "docs about ServerOverloadedError"])
        assert sniff_overload(reply) is None

    def test_large_payloads_skip_the_scan(self):
        reply = pack([1, 9, None, b"x" * 1024 + b"ServerOverloadedError"])
        assert sniff_overload(reply) is None

    def test_garbage_bytes_are_ignored(self):
        assert sniff_overload(b"ServerOverloadedError \xff\xfe") is None


class TestServerSideAdmission:
    def test_shed_request_gets_typed_error_line(self):
        gate = AdmissionController(max_inflight=1)
        server = RPCServer({"ping": lambda: "pong"}, admission=gate)
        gate.acquire()  # simulate a busy slot
        try:
            response = unpack(server.dispatch(pack([0, 1, "ping", []])))
        finally:
            gate.release()
        assert response[2].startswith("ServerOverloadedError")
        assert "retry_after=" in response[2]
        # Afterwards the slot is free and the same frame succeeds.
        assert unpack(server.dispatch(pack([0, 2, "ping", []])))[2] is None
