"""Multiplexed serving core: pipelining, compat, drain, retry isolation.

Families:

* frame peeking / incremental framing units (``peek_frame``,
  ``FrameBuffer``),
* pipelining over one connection — out-of-order completion rehydrated by
  correlation id, thread-shared transports, NOTIFY,
* wire compatibility — a classic blocking client gets byte-identical
  responses from the async core and the threaded core,
* lifecycle — graceful drain with requests in flight, connection caps,
* retry isolation — a resilient wrapper retrying over a shared
  multiplexed socket must not re-dial it out from under other in-flight
  requests (regression for the ``reconnect_if_broken`` contract),
* end-to-end — NDP contour geometry byte-identical through the mux.
"""

import threading
import time

import numpy as np
import pytest

from repro.core import NDPServer
from repro.errors import (
    FormatError,
    RPCError,
    RPCTimeoutError,
    RPCTransportError,
    ServerOverloadedError,
)
from repro.io import write_vgf
from repro.rpc import RPCClient, RPCServer, pack, unpack
from repro.rpc.admission import AdmissionController
from repro.rpc.mux import AsyncServerTransport, MuxTransport, peek_frame
from repro.rpc.resilience import ResilientTransport, RetryPolicy
from repro.rpc.transport import FrameBuffer, TCPTransport
from repro.storage import MemoryBackend, ObjectStore, S3FileSystem
from repro.storage.metrics import ResilienceStats

from tests.conftest import make_sphere_grid


def echo(x):
    return x


def add(a, b):
    return a + b


def sleep_ms(ms, tag=None):
    time.sleep(ms / 1000.0)
    return tag if tag is not None else ms


def make_server(**kwargs):
    return RPCServer(
        {"echo": echo, "add": add, "sleep_ms": sleep_ms,
         "boom": lambda: 1 / 0},
        **kwargs,
    )


# ---------------------------------------------------------------------------
# Frame peeking and incremental framing
# ---------------------------------------------------------------------------


class TestPeekFrame:
    def test_request_fixint_msgid(self):
        assert peek_frame(pack([0, 7, "m", []])) == (0, 7)

    def test_response_wide_msgids(self):
        for msgid in (0, 127, 128, 255, 256, 65535, 65536, 2**32 - 1, 2**32):
            assert peek_frame(pack([1, msgid, None, "x"])) == (1, msgid)

    def test_notify_has_no_msgid(self):
        assert peek_frame(pack([2, "m", []])) == (2, None)

    def test_array16_header(self):
        # Hand-built array16 encoding of [0, 5, "m", []] — legal msgpack
        # even though the canonical packer would use a fixarray.
        frame = b"\xdc\x00\x04" + pack(0)[0:1] + pack(5) + pack("m") + pack([])
        assert peek_frame(frame) == (0, 5)

    def test_garbage_rejected(self):
        for bad in (b"", b"\xc0", b"\x93", pack("hello"), pack([9, 1, "m", []])):
            with pytest.raises(FormatError):
                peek_frame(bad)

    def test_large_payload_is_not_decoded(self):
        big = pack([1, 42, None, b"\x00" * 4_000_000])
        t0 = time.perf_counter()
        assert peek_frame(big) == (1, 42)
        assert time.perf_counter() - t0 < 0.01  # O(1), not O(payload)


class TestFrameBuffer:
    def frame(self, body: bytes) -> bytes:
        import struct

        return struct.pack(">I", len(body)) + body

    def test_byte_at_a_time(self):
        buf = FrameBuffer()
        wire = self.frame(b"abc") + self.frame(b"") + self.frame(b"xy")
        got = []
        for i in range(len(wire)):
            buf.feed(wire[i : i + 1])
            got.extend(buf.drain())
        assert got == [b"abc", b"", b"xy"]
        assert len(buf) == 0

    def test_partial_frame_retained(self):
        buf = FrameBuffer()
        wire = self.frame(b"hello")
        buf.feed(wire[:6])
        assert list(buf.drain()) == []
        buf.feed(wire[6:])
        assert list(buf.drain()) == [b"hello"]

    def test_oversize_length_rejected(self):
        import struct

        buf = FrameBuffer()
        buf.feed(struct.pack(">I", 1 << 31))
        with pytest.raises(RPCTransportError):
            list(buf.drain())


# ---------------------------------------------------------------------------
# Pipelining over one multiplexed connection
# ---------------------------------------------------------------------------


class TestPipelining:
    def test_out_of_order_responses_rehydrated_by_id(self):
        listener = make_server().serve_async_tcp(workers=4)
        try:
            client = RPCClient.connect_mux(listener.host, listener.port,
                                           timeout=10.0)
            # First request is the slowest: its response returns last,
            # but collecting in issue order still matches by msgid.
            pending = [client.call_async("sleep_ms", ms, f"tag{ms}")
                       for ms in (80, 5, 40, 1)]
            results = [p.result(timeout=10.0) for p in pending]
            assert results == ["tag80", "tag5", "tag40", "tag1"]
            client.close()
        finally:
            listener.stop()

    def test_pipeline_overlaps_server_time(self):
        listener = make_server().serve_async_tcp(workers=8)
        try:
            client = RPCClient.connect_mux(listener.host, listener.port,
                                           timeout=10.0)
            t0 = time.monotonic()
            results = client.pipeline([("sleep_ms", 50, i) for i in range(8)])
            elapsed = time.monotonic() - t0
            assert results == list(range(8))
            # Serial execution would take >= 400 ms.
            assert elapsed < 0.3
            client.close()
        finally:
            listener.stop()

    def test_transport_shared_across_threads(self):
        listener = make_server().serve_async_tcp(workers=8)
        try:
            client = RPCClient.connect_mux(listener.host, listener.port,
                                           timeout=10.0)
            results = [None] * 16

            def worker(i):
                results[i] = client.call("add", i, 1000)

            threads = [threading.Thread(target=worker, args=(i,))
                       for i in range(16)]
            for t in threads:
                t.start()
            for t in threads:
                t.join(timeout=10.0)
            assert results == [1000 + i for i in range(16)]
            assert client._transport.pending == 0
            client.close()
        finally:
            listener.stop()

    def test_notify_produces_no_response(self):
        seen = []
        server = RPCServer({"note": seen.append, "echo": echo})
        listener = server.serve_async_tcp(workers=2)
        try:
            client = RPCClient.connect_mux(listener.host, listener.port,
                                           timeout=5.0)
            client.notify("note", "fire-and-forget")
            # A subsequent request round-trips fine: the notify neither
            # produced a response nor desynchronized the stream.
            assert client.call("echo", "still-alive") == "still-alive"
            deadline = time.monotonic() + 5.0
            while not seen and time.monotonic() < deadline:
                time.sleep(0.01)
            assert seen == ["fire-and-forget"]
            client.close()
        finally:
            listener.stop()

    def test_remote_errors_map_per_call(self):
        listener = make_server().serve_async_tcp(workers=4)
        try:
            client = RPCClient.connect_mux(listener.host, listener.port,
                                           timeout=10.0)
            good = client.call_async("add", 1, 2)
            bad = client.call_async("boom")
            assert good.result(timeout=5.0) == 3
            with pytest.raises(Exception) as exc_info:
                bad.result(timeout=5.0)
            assert "ZeroDivisionError" in str(exc_info.value)
            client.close()
        finally:
            listener.stop()

    def test_duplicate_msgid_rejected(self):
        listener = make_server().serve_async_tcp(workers=2)
        try:
            transport = MuxTransport(listener.host, listener.port, timeout=5.0)
            frame = pack([0, 1, "sleep_ms", [200]])
            transport.submit(frame)
            with pytest.raises(RPCError):
                transport.submit(frame)
            transport.close()
        finally:
            listener.stop()

    def test_request_timeout_abandons_slot(self):
        listener = make_server().serve_async_tcp(workers=2)
        try:
            transport = MuxTransport(listener.host, listener.port, timeout=0.1)
            with pytest.raises(RPCTimeoutError):
                transport.request(pack([0, 1, "sleep_ms", [500]]))
            assert transport.pending == 0
            transport.close()
        finally:
            listener.stop()


# ---------------------------------------------------------------------------
# Wire compatibility with classic clients
# ---------------------------------------------------------------------------


class TestClassicCompat:
    CALLS = [
        pack([0, 1, "echo", ["hello"]]),
        pack([0, 2, "add", [3, 4]]),
        pack([0, 3, "echo", [b"\x00\x01\x02"]]),
        pack([0, 4, "echo", [{"k": [1, 2.5, None, True]}]]),
        pack([0, 5, "nope", []]),                      # unknown method
        pack([0, 6, "add", [1]]),                      # handler TypeError
        pack([0, 7, "echo", ["x"], {"deadline": 30.0}]),   # deadline ctx
        pack([0, 8, "echo", ["y"], {"tenant": "gold"}]),   # tenant ctx
    ]

    def collect(self, listener) -> list:
        transport = TCPTransport(listener.host, listener.port, timeout=10.0)
        try:
            return [transport.request(frame) for frame in self.CALLS]
        finally:
            transport.close()

    def test_async_core_matches_threaded_core_byte_for_byte(self):
        threaded = make_server().serve_tcp()
        async_ = make_server().serve_async_tcp(workers=4)
        try:
            want = self.collect(threaded)
            got = self.collect(async_)
            assert got == want
            for raw in got:
                decoded = unpack(raw)
                assert len(decoded) == 4  # classic 4-element responses
        finally:
            threaded.stop()
            async_.stop()

    def test_one_at_a_time_client_sees_ordered_responses(self):
        listener = make_server().serve_async_tcp(workers=4)
        try:
            transport = TCPTransport(listener.host, listener.port, timeout=10.0)
            for i in range(20):
                raw = transport.request(pack([0, i + 1, "add", [i, i]]))
                assert unpack(raw) == [1, i + 1, None, 2 * i]
            transport.close()
        finally:
            listener.stop()


# ---------------------------------------------------------------------------
# Lifecycle: drain and connection caps
# ---------------------------------------------------------------------------


class TestAsyncLifecycle:
    def test_drain_finishes_inflight_pipeline(self):
        listener = make_server().serve_async_tcp(workers=4)
        client = RPCClient.connect_mux(listener.host, listener.port,
                                       timeout=10.0)
        pending = [client.call_async("sleep_ms", 100, i) for i in range(4)]
        time.sleep(0.02)  # requests reach the server
        stop_result = {}
        stopper = threading.Thread(
            target=lambda: stop_result.update(
                clean=listener.stop(drain_timeout=10.0)
            ),
            daemon=True,
        )
        stopper.start()
        results = [p.result(timeout=10.0) for p in pending]
        stopper.join(timeout=10.0)
        assert results == list(range(4))
        assert stop_result["clean"] is True
        client.close()

    def test_draining_refuses_new_connections(self):
        release = threading.Event()
        server = RPCServer({"wait": lambda: release.wait(10.0) and "done"})
        listener = server.serve_async_tcp(workers=2)
        client = RPCClient.connect_mux(listener.host, listener.port,
                                       timeout=10.0)
        pending = client.call_async("wait")
        time.sleep(0.05)
        stopper = threading.Thread(
            target=lambda: listener.stop(drain_timeout=10.0), daemon=True
        )
        stopper.start()
        deadline = time.monotonic() + 5.0
        while not listener.draining and time.monotonic() < deadline:
            time.sleep(0.01)
        assert listener.draining
        with pytest.raises(RPCTransportError):
            late = TCPTransport(listener.host, listener.port, timeout=2.0)
            try:
                late.request(pack([0, 99, "wait", []]))
            finally:
                late.close()
        release.set()
        assert pending.result(timeout=10.0) == "done"
        stopper.join(timeout=10.0)
        client.close()

    def test_max_connections_refused_and_counted(self):
        listener = make_server().serve_async_tcp(workers=2)
        listener.max_connections = 1
        try:
            first = RPCClient.connect_mux(listener.host, listener.port,
                                          timeout=5.0)
            assert first.call("echo", 1) == 1
            with pytest.raises(RPCTransportError):
                second = TCPTransport(listener.host, listener.port,
                                      timeout=2.0)
                try:
                    second.request(pack([0, 1, "echo", [2]]))
                finally:
                    second.close()
            assert listener.refused >= 1
            first.close()
        finally:
            listener.stop()


# ---------------------------------------------------------------------------
# Retry isolation over a shared multiplexed socket (regression)
# ---------------------------------------------------------------------------


class TestRetryIsolation:
    def test_reconnect_if_broken_noop_on_healthy_socket(self):
        listener = make_server().serve_async_tcp(workers=2)
        try:
            transport = MuxTransport(listener.host, listener.port, timeout=5.0)
            assert transport.generation == 1
            assert transport.reconnect_if_broken() is False
            assert transport.generation == 1
            transport.close()
        finally:
            listener.stop()

    def test_retry_does_not_redial_under_inflight_requests(self):
        """A shed request retried by ResilientTransport must not sever a
        concurrent slow request sharing the multiplexed socket."""
        admission = AdmissionController(max_inflight=1, retry_after=0.01)
        release = threading.Event()
        started = threading.Event()

        def slow():
            started.set()
            release.wait(timeout=10.0)
            return "slow-done"

        server = RPCServer({"slow": slow, "quick": lambda: "quick-done"},
                           admission=admission)
        # workers > max_inflight so the admission gate (not the worker
        # pool) is the thing that sheds the second request.
        listener = server.serve_async_tcp(workers=4)
        try:
            mux = MuxTransport(listener.host, listener.port, timeout=10.0)
            stats = ResilienceStats()
            resilient = ResilientTransport(
                mux, retry=RetryPolicy(max_attempts=8, base_delay=0.01,
                                       jitter=0.0),
                stats=stats,
            )
            slow_fut = mux.submit(pack([0, 1001, "slow", []]))
            assert started.wait(timeout=5.0)

            retried = {}

            def retry_quick():
                # Shed while "slow" holds the only admission slot, then
                # succeeds on a retry attempt after release.
                raw = resilient.request(pack([0, 1002, "quick", []]))
                retried["result"] = unpack(raw)[3]

            retrier = threading.Thread(target=retry_quick, daemon=True)
            retrier.start()
            time.sleep(0.15)  # let at least one shed+retry cycle happen
            release.set()
            retrier.join(timeout=10.0)

            assert retried["result"] == "quick-done"
            # The regression: the slow request's future survived the
            # retries because the shared socket was never re-dialed.
            assert unpack(slow_fut.result(timeout=5.0))[3] == "slow-done"
            assert mux.generation == 1
            assert stats.get("reconnects") == 0
            resilient.close()
        finally:
            listener.stop()

    def test_retry_redials_only_when_connection_dead(self):
        listener = make_server().serve_async_tcp(workers=2)
        try:
            mux = MuxTransport(listener.host, listener.port, timeout=5.0)
            resilient = ResilientTransport(
                mux, retry=RetryPolicy(max_attempts=3, base_delay=0.01,
                                       jitter=0.0),
            )
            assert unpack(resilient.request(pack([0, 1, "echo", [1]])))[3] == 1
            # Kill the socket out from under the transport.
            mux._sock.shutdown(2)
            deadline = time.monotonic() + 5.0
            while not mux.broken and time.monotonic() < deadline:
                time.sleep(0.01)
            assert mux.broken
            # The resilient wrapper re-dials (the socket is genuinely
            # dead now) and the call succeeds on a fresh connection.
            assert unpack(resilient.request(pack([0, 2, "echo", [2]])))[3] == 2
            assert mux.generation == 2
            resilient.close()
        finally:
            listener.stop()


# ---------------------------------------------------------------------------
# End-to-end: NDP contour geometry through the mux
# ---------------------------------------------------------------------------


class TestNDPThroughMux:
    def make_store(self):
        store = ObjectStore(MemoryBackend())
        store.create_bucket("b")
        fs = S3FileSystem(store, "b")
        fs.write_object("obj.vgf", write_vgf(make_sphere_grid(16), codec="gzip"))
        return fs

    def test_contour_bytes_identical_async_vs_threaded(self):
        fs = self.make_store()
        threaded_srv = NDPServer(fs)
        async_srv = NDPServer(fs)
        threaded = threaded_srv.serve_tcp()
        async_ = async_srv.serve_async_tcp(workers=4)
        try:
            def fetch(listener):
                client = RPCClient.connect_tcp(listener.host, listener.port,
                                               timeout=30.0)
                try:
                    return client.call(
                        "prefilter_contour", "obj.vgf", "r", [0.45],
                        "cell-closure", "auto", "raw",
                    )
                finally:
                    client.close()

            want = fetch(threaded)
            got = fetch(async_)
            assert got == want  # payload bytes included
        finally:
            threaded.stop()
            async_.stop()

    def test_contour_identical_pipelined_vs_sequential(self):
        fs = self.make_store()
        server = NDPServer(fs)
        listener = server.serve_async_tcp(workers=4)
        try:
            sequential = RPCClient.connect_tcp(listener.host, listener.port,
                                               timeout=30.0)
            values = [0.35, 0.45, 0.55]
            want = [
                sequential.call("prefilter_contour", "obj.vgf", "r", [v],
                                "cell-closure", "auto", "raw")
                for v in values
            ]
            sequential.close()

            mux = RPCClient.connect_mux(listener.host, listener.port,
                                        timeout=30.0)
            got = mux.pipeline([
                ("prefilter_contour", "obj.vgf", "r", [v], "cell-closure", "auto",
                 "raw")
                for v in values
            ])
            mux.close()
            assert got == want
        finally:
            listener.stop()
