"""Unit tests for the from-scratch MessagePack codec."""

import math
import struct

import pytest

from repro.errors import FormatError
from repro.rpc import ExtType, pack, unpack
from repro.rpc.msgpack import Unpacker


def round_trip(value):
    out = unpack(pack(value))
    assert out == value
    return out


class TestScalars:
    def test_nil(self):
        assert pack(None) == b"\xc0"
        assert unpack(b"\xc0") is None

    def test_bools(self):
        assert pack(True) == b"\xc3"
        assert pack(False) == b"\xc2"
        assert unpack(b"\xc3") is True

    def test_positive_fixint(self):
        assert pack(0) == b"\x00"
        assert pack(127) == b"\x7f"

    def test_negative_fixint(self):
        assert pack(-1) == b"\xff"
        assert pack(-32) == b"\xe0"

    @pytest.mark.parametrize(
        "value,first",
        [
            (128, 0xCC), (255, 0xCC),
            (256, 0xCD), (65535, 0xCD),
            (65536, 0xCE), (2**32 - 1, 0xCE),
            (2**32, 0xCF), (2**64 - 1, 0xCF),
            (-33, 0xD0), (-128, 0xD0),
            (-129, 0xD1), (-32768, 0xD1),
            (-32769, 0xD2), (-(2**31), 0xD2),
            (-(2**31) - 1, 0xD3), (-(2**63), 0xD3),
        ],
    )
    def test_int_families_minimal(self, value, first):
        encoded = pack(value)
        assert encoded[0] == first
        assert unpack(encoded) == value

    def test_int_out_of_range(self):
        with pytest.raises(FormatError):
            pack(2**64)
        with pytest.raises(FormatError):
            pack(-(2**63) - 1)

    def test_float64(self):
        encoded = pack(1.5)
        assert encoded[0] == 0xCB
        assert unpack(encoded) == 1.5

    def test_float32_decodes(self):
        encoded = b"\xca" + struct.pack(">f", 2.5)
        assert unpack(encoded) == 2.5

    def test_float_special_values(self):
        assert math.isinf(unpack(pack(float("inf"))))
        assert math.isnan(unpack(pack(float("nan"))))
        assert unpack(pack(-0.0)) == 0.0


class TestStringsAndBytes:
    def test_fixstr(self):
        encoded = pack("hi")
        assert encoded[0] == 0xA2
        round_trip("hi")

    def test_str_sizes(self):
        for n, first in ((31, None), (32, 0xD9), (256, 0xDA), (70_000, 0xDB)):
            s = "x" * n
            encoded = pack(s)
            if first is not None:
                assert encoded[0] == first
            assert unpack(encoded) == s

    def test_unicode(self):
        round_trip("héllo wörld ☃ 日本語")

    def test_invalid_utf8_rejected(self):
        bad = b"\xa2\xff\xfe"  # fixstr of 2 invalid bytes
        with pytest.raises(FormatError, match="UTF-8"):
            unpack(bad)

    def test_bin_sizes(self):
        for n, first in ((10, 0xC4), (300, 0xC5), (70_000, 0xC6)):
            data = b"\x01" * n
            encoded = pack(data)
            assert encoded[0] == first
            assert unpack(encoded) == data

    def test_bytearray_and_memoryview(self):
        assert unpack(pack(bytearray(b"abc"))) == b"abc"
        assert unpack(pack(memoryview(b"abc"))) == b"abc"


class TestContainers:
    def test_fixarray(self):
        encoded = pack([1, 2, 3])
        assert encoded[0] == 0x93
        round_trip([1, 2, 3])

    def test_array16(self):
        value = list(range(1000))
        assert pack(value)[0] == 0xDC
        round_trip(value)

    def test_tuple_encodes_as_array(self):
        assert unpack(pack((1, 2))) == [1, 2]

    def test_fixmap(self):
        encoded = pack({"a": 1})
        assert encoded[0] == 0x81
        round_trip({"a": 1})

    def test_map16(self):
        value = {f"k{i}": i for i in range(100)}
        assert pack(value)[0] == 0xDE
        round_trip(value)

    def test_nested(self):
        round_trip({"a": [1, {"b": [None, True, b"x"]}], "c": -5})

    def test_non_string_keys(self):
        round_trip({1: "one", -3: "neg"})

    def test_depth_guard(self):
        deep = None
        for _ in range(Unpacker.MAX_DEPTH + 5):
            deep = [deep]
        with pytest.raises(FormatError, match="MAX_DEPTH"):
            unpack(pack(deep))


class TestExt:
    def test_fixext_sizes(self):
        for n, first in ((1, 0xD4), (2, 0xD5), (4, 0xD6), (8, 0xD7), (16, 0xD8)):
            value = ExtType(3, b"\x07" * n)
            encoded = pack(value)
            assert encoded[0] == first
            assert unpack(encoded) == value

    def test_ext8(self):
        value = ExtType(-5, b"x" * 100)
        encoded = pack(value)
        assert encoded[0] == 0xC7
        assert unpack(encoded) == value

    def test_ext16_32(self):
        assert pack(ExtType(1, b"x" * 300))[0] == 0xC8
        assert pack(ExtType(1, b"x" * 70_000))[0] == 0xC9
        round_trip(ExtType(1, b"x" * 300))

    def test_ext_code_range(self):
        with pytest.raises(FormatError):
            pack(ExtType(128, b"x"))
        with pytest.raises(FormatError):
            pack(ExtType(-129, b"x"))


class TestErrors:
    def test_unserializable_type(self):
        with pytest.raises(FormatError, match="not MessagePack-serializable"):
            pack(object())

    def test_truncated_input(self):
        with pytest.raises(FormatError, match="truncated"):
            unpack(b"\xcc")  # uint8 with no payload

    def test_trailing_bytes(self):
        with pytest.raises(FormatError, match="trailing"):
            unpack(b"\xc0\xc0")

    def test_invalid_first_byte(self):
        with pytest.raises(FormatError, match="invalid MessagePack"):
            unpack(b"\xc1")

    def test_unhashable_map_key(self):
        # fixmap{1} with an array key.
        payload = b"\x81" + pack([1]) + pack(2)
        with pytest.raises(FormatError, match="unhashable"):
            unpack(payload)

    def test_streaming_unpacker(self):
        buf = pack(1) + pack("two") + pack([3])
        up = Unpacker(buf)
        assert up.unpack_one() == 1
        assert up.unpack_one() == "two"
        assert up.unpack_one() == [3]
        assert up.exhausted


class TestZeroCopy:
    """Opt-in zero-copy framing: bin payloads as views, not copies."""

    def test_pack_accepts_non_contiguous_view(self):
        data = bytes(range(20))
        view = memoryview(data)[::2]  # non-contiguous
        assert unpack(pack(view)) == bytes(view)

    def test_zero_copy_unpack_returns_memoryview(self):
        buf = pack({"payload": b"\x01\x02\x03", "n": 3})
        out = unpack(buf, zero_copy=True)
        assert isinstance(out["payload"], memoryview)
        assert bytes(out["payload"]) == b"\x01\x02\x03"
        assert out["n"] == 3

    def test_zero_copy_views_alias_source_buffer(self):
        # The decoded view must window the *input* buffer, not a copy.
        payload = b"\xaa" * 64
        buf = bytearray(pack([payload]))
        out = unpack(buf, zero_copy=True)
        view = out[0]
        pos = bytes(buf).find(payload)
        buf[pos] = 0xBB
        assert view[0] == 0xBB  # the mutation shows through the view

    def test_default_mode_still_copies(self):
        buf = bytearray(pack([b"\xaa" * 64]))
        out = unpack(bytes(buf))
        assert isinstance(out[0], bytes)

    def test_zero_copy_round_trip_byte_identical(self):
        msg = {"a": b"x" * 300, "b": [b"", b"\x00" * 70_000], "c": 5}
        once = pack(msg)
        again = pack(unpack(once, zero_copy=True))
        assert once == again

    def test_streaming_unpacker_zero_copy(self):
        buf = pack(b"abc") + pack(b"defg")
        up = Unpacker(buf, zero_copy=True)
        first = up.unpack_one()
        second = up.unpack_one()
        assert isinstance(first, memoryview) and bytes(first) == b"abc"
        assert isinstance(second, memoryview) and bytes(second) == b"defg"
        assert up.exhausted

    def test_zero_copy_ext_and_str_unaffected(self):
        msg = {"s": "text", "e": ExtType(3, b"\x07" * 4)}
        out = unpack(pack(msg), zero_copy=True)
        assert out["s"] == "text"
        assert out["e"] == ExtType(3, b"\x07" * 4)


class TestTimestamp:
    """The spec's reserved ext type -1, in all three widths."""

    def test_32bit_form(self):
        from repro.rpc import Timestamp

        t = Timestamp(1234567890)
        assert len(t.encode()) == 4
        assert unpack(pack(t)) == t

    def test_64bit_form(self):
        from repro.rpc import Timestamp

        t = Timestamp(5, 999_999_999)
        assert len(t.encode()) == 8
        assert unpack(pack(t)) == t

    def test_96bit_form(self):
        from repro.rpc import Timestamp

        for t in (Timestamp(-1, 0), Timestamp(2**40, 17)):
            assert len(t.encode()) == 12
            assert unpack(pack(t)) == t

    def test_boundary_values(self):
        from repro.rpc import Timestamp

        for t in (
            Timestamp(0),
            Timestamp(2**32 - 1),            # last 32-bit
            Timestamp(2**32, 0),             # first 64-bit (ns == 0 but > u32)
            Timestamp(2**34 - 1, 1),         # last 64-bit
            Timestamp(2**34, 1),             # first 96-bit
            Timestamp(-(2**63), 0),
            Timestamp(2**63 - 1, 999_999_999),
        ):
            assert unpack(pack(t)) == t

    def test_invalid_nanoseconds(self):
        from repro.rpc import Timestamp

        with pytest.raises(FormatError):
            pack(Timestamp(0, 1_000_000_000))
        with pytest.raises(FormatError):
            pack(Timestamp(0, -1))

    def test_bad_payload_length(self):
        from repro.rpc import Timestamp

        with pytest.raises(FormatError):
            Timestamp.decode(b"\x00" * 5)

    def test_foreign_ext_codes_untouched(self):
        assert unpack(pack(ExtType(-2, b"\x00" * 4))) == ExtType(-2, b"\x00" * 4)

    def test_wire_is_ext_type_minus_one(self):
        from repro.rpc import Timestamp

        encoded = pack(Timestamp(7))
        assert encoded[0] == 0xD6  # fixext4
        assert encoded[1] == 0xFF  # type -1
