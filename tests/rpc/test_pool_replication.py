"""Pool-level replication primitives: addresses, health, hedged calls.

Everything here is deterministic: hedge timing runs on a
:class:`~tests.faults.FakeClock` only where the arbitration loop allows
an injectable clock, and the racing attempts themselves are scripted
callables — no sockets, no real servers.
"""

import threading
import time

import pytest

from repro.errors import (
    CircuitOpenError,
    ReproError,
    RPCTransportError,
    ServerOverloadedError,
)
from repro.obs.flightrec import FlightRecorder
from repro.rpc.pool import (
    EndpointPool,
    HedgedCall,
    parse_address,
)
from repro.rpc.resilience import CircuitBreaker
from repro.rpc.transport import InProcessTransport


# ---------------------------------------------------------------------------
# parse_address
# ---------------------------------------------------------------------------


class TestParseAddress:
    @pytest.mark.parametrize("addr,expect", [
        ("localhost:8080", ("localhost", 8080)),
        ("127.0.0.1:1", ("127.0.0.1", 1)),
        ("example.com:65535", ("example.com", 65535)),
        ("[::1]:9000", ("::1", 9000)),
        ("[fe80::2%eth0]:9000", ("fe80::2%eth0", 9000)),
        (("10.0.0.1", 9000), ("10.0.0.1", 9000)),
        (("10.0.0.1", "9000"), ("10.0.0.1", 9000)),
    ])
    def test_accepts(self, addr, expect):
        assert parse_address(addr) == expect

    @pytest.mark.parametrize("addr", [
        "host:007",          # leading-zero port: a typo, not an endpoint
        "host:", ":80",      # empty port / empty host
        "host", "",          # no separator at all
        "::1:9000",          # unbracketed IPv6 is ambiguous
        "[::1:9000",         # unclosed bracket
        "[::1]9000",         # bracket without :port
        "host:0",            # port 0 is "ephemeral", never a dial target
        "host:70000",        # above 65535
        "host:8a", "host:-1", "host:８０",  # non-decimal digits
        ("host",), ("host", 1, 2), ("host", "x"),
        None, 12,
    ])
    def test_rejects_with_typed_error(self, addr):
        with pytest.raises(ReproError):
            parse_address(addr)

    def test_error_message_names_the_address(self):
        with pytest.raises(ReproError, match="007"):
            parse_address("host:007")


# ---------------------------------------------------------------------------
# Pool health, ranking, close accounting
# ---------------------------------------------------------------------------


def _echo_pool(n=3, **kwargs):
    def dispatch(payload):
        return payload

    return EndpointPool(
        [InProcessTransport(dispatch) for _ in range(n)],
        resilient=False, **kwargs,
    )


class TestEndpointPool:
    def test_rank_is_stable_on_equal_health(self):
        pool = _echo_pool(3)
        assert pool.rank([2, 0, 1]) == [2, 0, 1]

    def test_rank_puts_open_breaker_last(self):
        breaker = CircuitBreaker(failure_threshold=1, reset_timeout=60.0)
        pool = _echo_pool(3)
        pool.health(0).breaker = breaker
        breaker.record_failure()
        assert breaker.state == "open"
        assert pool.rank([0, 1, 2]) == [1, 2, 0]
        assert pool.endpoint_state(0) == "open"
        assert pool.endpoint_state(1) == "none"

    def test_rank_prefers_observed_faster_endpoint(self):
        pool = _echo_pool(2)
        for _ in range(8):
            pool.health(0).observe(0.5)
            pool.health(1).observe(0.01)
        assert pool.rank([0, 1]) == [1, 0]

    def test_hedge_delay_clamps_cold_and_hot(self):
        pool = _echo_pool(2)
        # Cold sketch: no observations -> the floor.
        assert pool.hedge_delay(0, floor=0.004, cap=1.0) == 0.004
        for _ in range(10):
            pool.health(1).observe(5.0)
        # Pathological latency is capped.
        assert pool.hedge_delay(1, floor=0.004, cap=0.25) == 0.25

    def test_call_feeds_health_counters(self):
        pool = _echo_pool(1)

        class Boom:
            def request(self, payload):
                raise RPCTransportError("injected")

            def close(self):
                pass

        pool._transports[0] = Boom()
        pool._clients[0]._transport = Boom()
        with pytest.raises(RPCTransportError):
            pool.call(0, "health")
        snap = pool.health(0).snapshot()
        assert snap["errors"] == 1

    def test_close_errors_are_counted_and_recorded(self):
        recorder = FlightRecorder(capacity=16)

        class BadClose:
            def __init__(self):
                self.closed = False

            def request(self, payload):
                return payload

            def close(self):
                raise OSError("fd already gone")

        good_closed = []

        class GoodClose(BadClose):
            def close(self):
                good_closed.append(True)

        pool = EndpointPool([BadClose(), GoodClose()], resilient=False,
                            recorder=recorder)
        pool.close()  # must not raise
        # The failure is evidence, not noise: counter + flight event,
        # and the healthy peer still got closed.
        assert pool.stats.as_dict()["close_errors"] == 1
        assert good_closed == [True]
        events = [e for e in recorder.snapshot()
                  if e["kind"] == "pool.close_error"]
        assert len(events) == 1
        assert "fd already gone" in events[0]["error"]
        assert events[0]["endpoint"] == 0

    def test_info_carries_addresses_and_counters(self):
        pool = _echo_pool(2, addresses=["a:1", "b:2"])
        pool.health(1).record_hedge()
        info = pool.info()
        assert info[0]["address"] == "a:1"
        assert info[1]["hedges"] == 1
        assert {row["breaker"] for row in info} == {"none"}


# ---------------------------------------------------------------------------
# HedgedCall arbitration
# ---------------------------------------------------------------------------


def run_hedged(replicas, attempt, delay=0.005, **kwargs):
    call = HedgedCall(lambda e: delay, **kwargs)
    return call, call.run(replicas, attempt)


class TestHedgedCall:
    def test_primary_success_needs_no_hedge(self):
        calls = []

        def attempt(endpoint, cancel, kind):
            calls.append((endpoint, kind))
            return f"from-{endpoint}"

        _, result = run_hedged([0, 1, 2], attempt, delay=5.0)
        assert result.value == "from-0"
        assert result.winner == 0
        assert result.winner_kind == "primary"
        assert result.hedges == 0 and result.failovers == 0
        assert calls == [(0, "primary")]

    def test_error_fails_over_immediately(self):
        order = []

        def attempt(endpoint, cancel, kind):
            order.append((endpoint, kind))
            if endpoint == 0:
                raise RPCTransportError("injected down")
            return endpoint

        _, result = run_hedged([0, 1], attempt, delay=60.0)
        # A huge hedge delay must not slow the ladder down: errors
        # fail over without waiting out the timer.
        assert result.value == 1
        assert result.winner_kind == "failover"
        assert result.failovers == 1 and result.hedges == 0
        assert order == [(0, "primary"), (1, "failover")]
        assert [e for e, _ in result.errors] == [0]

    def test_shed_walks_the_whole_chain(self):
        def attempt(endpoint, cancel, kind):
            if endpoint < 2:
                raise ServerOverloadedError("injected shed", retry_after=0.1)
            return "served"

        _, result = run_hedged([0, 1, 2], attempt, delay=60.0)
        assert result.value == "served"
        assert result.failovers == 2

    def test_slow_primary_gets_hedged_and_loser_cancelled(self):
        release = threading.Event()
        cancelled = {}

        def attempt(endpoint, cancel, kind):
            if endpoint == 0:
                # Slow primary: wait until cancelled (or test failure).
                cancel.wait(timeout=5.0)
                cancelled[0] = cancel.is_set()
                return "late"
            return "fast"

        call, result = run_hedged([0, 1], attempt, delay=0.01)
        release.set()
        assert result.value == "fast"
        assert result.winner == 1
        assert result.winner_kind == "hedge"
        assert result.hedges == 1
        # The loser's cancel event fired, and its late result was
        # discarded; the ledger drains once it unwinds.
        assert call._ledger.wait_drained(timeout=5.0)
        assert cancelled.get(0) is True
        assert call.outstanding == 0

    def test_all_replicas_failed_raises_last_failover_error(self):
        def attempt(endpoint, cancel, kind):
            if endpoint == 2:
                raise CircuitOpenError("injected: breaker open")
            raise RPCTransportError(f"injected down {endpoint}")

        # A long hedge delay makes every launch failure-driven, so the
        # attempts run strictly in chain order and the *last* recorded
        # error is deterministically endpoint 2's (failover on hard
        # failure never waits out the hedge delay).
        call = HedgedCall(lambda e: 60.0)
        with pytest.raises(CircuitOpenError):
            call.run([0, 1, 2], attempt)
        assert call._ledger.wait_drained(timeout=5.0)

    def test_fatal_error_propagates_without_failover(self):
        attempts = []

        def attempt(endpoint, cancel, kind):
            attempts.append(endpoint)
            raise ValueError("remote handler bug: deterministic")

        call = HedgedCall(lambda e: 60.0)
        with pytest.raises(ValueError):
            call.run([0, 1, 2], attempt)
        # Deterministic errors must not walk the chain: every replica
        # would fail identically.
        assert attempts == [0]

    def test_empty_chain_is_a_typed_error(self):
        call = HedgedCall(lambda e: 0.0)
        with pytest.raises(ReproError):
            call.run([], lambda *a: None)

    def test_hedge_timing_respects_delay(self):
        started = {}

        def attempt(endpoint, cancel, kind):
            started[endpoint] = time.monotonic()
            if endpoint == 0:
                cancel.wait(timeout=5.0)
                return "late"
            return "fast"

        t0 = time.monotonic()
        call, result = run_hedged([0, 1], attempt, delay=0.05)
        assert result.winner == 1
        # The hedge launched no earlier than the delay (scheduling may
        # add slack on top, never take it away).
        assert started[1] - t0 >= 0.05
        assert call._ledger.wait_drained(timeout=5.0)

    def test_callbacks_fire_per_launch_kind(self):
        hedged, failed_over = [], []

        def attempt(endpoint, cancel, kind):
            if endpoint == 0:
                raise RPCTransportError("injected")
            if endpoint == 1:
                cancel.wait(timeout=5.0)
                return "slow"
            return "fast"

        call = HedgedCall(lambda e: 0.01, on_hedge=hedged.append,
                          on_failover=failed_over.append)
        result = call.run([0, 1, 2], attempt)
        assert result.value == "fast"
        assert failed_over == [1]   # endpoint 1 launched as failover
        assert hedged == [2]        # endpoint 2 hedged past slow 1
        assert call._ledger.wait_drained(timeout=5.0)

    def test_pool_hedged_factory_shares_ledger_and_stats(self):
        pool = _echo_pool(2)

        def attempt(endpoint, cancel, kind):
            if endpoint == 0:
                raise RPCTransportError("injected")
            return "ok"

        result = pool.hedged().run([0, 1], attempt)
        assert result.value == "ok"
        assert pool.stats.as_dict()["failovers"] == 1
        assert pool.health(1).snapshot()["failovers"] == 1
        assert pool.wait_drained(timeout=5.0)
        assert pool.outstanding == 0
