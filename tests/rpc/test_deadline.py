"""Deadline propagation end-to-end: client injects, server enforces.

The budget rides the request envelope as a *duration* (seconds left), so
client and server clocks never need agreement; the server rejects
expired requests before touching the store and abandons doomed work
between phases.
"""

import pytest

from repro.core import NDPServer
from repro.errors import DeadlineExpiredError, RPCRemoteError
from repro.io import write_vgf
from repro.rpc import InProcessTransport, RPCClient, RPCServer, pack, unpack
from repro.rpc.admission import AdmissionController, inject_deadline
from repro.rpc.resilience import ResilientTransport, RetryPolicy
from repro.rpc.transport import Transport
from repro.storage import MemoryBackend, ObjectStore, S3FileSystem

from tests.conftest import make_sphere_grid
from tests.faults import FakeClock, FaultSchedule, FaultyBackend


class DeadlineStamper(Transport):
    """Injects a fixed remaining budget into every outgoing frame."""

    def __init__(self, inner: Transport, remaining: float):
        self.inner = inner
        self.remaining = remaining

    def request(self, payload: bytes) -> bytes:
        return self.inner.request(inject_deadline(payload, self.remaining))


class RecordingTransport(Transport):
    """Captures what ResilientTransport actually puts on the wire."""

    def __init__(self, dispatcher):
        self.dispatcher = dispatcher
        self.frames: list[bytes] = []

    def request(self, payload: bytes) -> bytes:
        self.frames.append(payload)
        return self.dispatcher(payload)


class TestServerEnforcement:
    def test_expired_on_arrival_is_rejected_before_handler(self):
        calls = []
        gate = AdmissionController()
        server = RPCServer({"work": lambda: calls.append(1)}, admission=gate)
        reply = unpack(
            server.dispatch(pack([0, 1, "work", [], {"deadline": 0.0}]))
        )
        assert reply[2].startswith("DeadlineExpiredError")
        assert "nothing attempted" in reply[2]
        assert calls == []  # the handler never ran
        assert gate.info()["expired"] == 1

    def test_mid_phase_expiry_abandons_work(self):
        from repro.rpc.admission import check_deadline

        clock = FakeClock()

        def slow_handler():
            clock.advance(5.0)  # the work took longer than the budget
            check_deadline("phase two")
            return "never reached"

        server = RPCServer({"slow": slow_handler}, clock=clock)
        reply = unpack(
            server.dispatch(pack([0, 1, "slow", [], {"deadline": 1.0}]))
        )
        assert reply[2].startswith("DeadlineExpiredError")
        assert "phase two" in reply[2]

    def test_deadline_only_ctx_gets_classic_response(self):
        """A deadline opts into budgets, not into tracing."""
        from repro.obs.trace import Tracer

        server = RPCServer({"ping": lambda: "pong"}, tracer=Tracer())
        reply = unpack(
            server.dispatch(pack([0, 1, "ping", [], {"deadline": 9.0}]))
        )
        assert reply == [1, 1, None, "pong"]  # 4 elements, no span list

    def test_malformed_deadline_is_ignored(self):
        server = RPCServer({"ping": lambda: "pong"})
        reply = unpack(
            server.dispatch(pack([0, 1, "ping", [], {"deadline": "soon"}]))
        )
        assert reply[2] is None and reply[3] == "pong"


class TestClientMapping:
    def test_expired_request_raises_typed_error_at_client(self):
        server = RPCServer({"ping": lambda: "pong"}, admission=AdmissionController())
        client = RPCClient(
            DeadlineStamper(InProcessTransport(server.dispatch), remaining=0.0)
        )
        with pytest.raises(DeadlineExpiredError, match="already expired"):
            client.call("ping")

    def test_expired_is_not_a_plain_remote_error(self):
        server = RPCServer({"ping": lambda: "pong"}, admission=AdmissionController())
        client = RPCClient(
            DeadlineStamper(InProcessTransport(server.dispatch), remaining=0.0)
        )
        try:
            client.call("ping")
        except RPCRemoteError:
            pytest.fail("expired deadline must map to DeadlineExpiredError")
        except DeadlineExpiredError:
            pass


class TestResilientInjection:
    def test_remaining_budget_rides_the_envelope(self):
        server = RPCServer({"ping": lambda: "pong"})
        recorder = RecordingTransport(server.dispatch)
        clock = FakeClock()
        transport = ResilientTransport(
            recorder, retry=RetryPolicy(deadline=4.0), clock=clock,
            sleep=clock.sleep,
        )
        RPCClient(transport).call("ping")
        (frame,) = recorder.frames
        message = unpack(frame)
        assert len(message) == 5
        assert message[4]["deadline"] == pytest.approx(4.0)

    def test_propagation_can_be_disabled(self):
        server = RPCServer({"ping": lambda: "pong"})
        recorder = RecordingTransport(server.dispatch)
        transport = ResilientTransport(
            recorder, retry=RetryPolicy(deadline=4.0), propagate_deadline=False
        )
        RPCClient(transport).call("ping")
        assert len(unpack(recorder.frames[0])) == 4  # untouched frame

    def test_no_deadline_policy_means_no_injection(self):
        server = RPCServer({"ping": lambda: "pong"})
        recorder = RecordingTransport(server.dispatch)
        transport = ResilientTransport(recorder, retry=RetryPolicy(deadline=None))
        RPCClient(transport).call("ping")
        assert len(unpack(recorder.frames[0])) == 4


class TestNDPServerPhases:
    """An expired budget must be caught *before* the store is touched."""

    def _env(self):
        store = ObjectStore(MemoryBackend())
        store.create_bucket("sim")
        S3FileSystem(store, "sim").write_object(
            "g.vgf", write_vgf(make_sphere_grid(10), codec="gzip")
        )
        backend = FaultyBackend(store, FaultSchedule())
        server = NDPServer(S3FileSystem(backend, "sim"))
        return backend, server

    def test_expired_request_never_reads_the_store(self):
        backend, server = self._env()
        reply = unpack(server.dispatch(pack(
            [0, 1, "prefilter_contour", ["g.vgf", "r", [3.0]],
             {"deadline": 0.0}]
        )))
        assert reply[2].startswith("DeadlineExpiredError")
        assert backend.reads == 0

    def test_generous_budget_completes_normally(self):
        backend, server = self._env()
        reply = unpack(server.dispatch(pack(
            [0, 1, "prefilter_contour", ["g.vgf", "r", [3.0]],
             {"deadline": 60.0}]
        )))
        assert reply[2] is None
        assert backend.reads > 0
