"""Proxied-hop fidelity: frames, ctx, trace spans, and typed errors.

A forwarding hop (the edge tier) must be invisible at the protocol
level: request frames reach the upstream byte-identical (tenant,
deadline, and trace ctx included — no key dropped, no re-encode), the
reply travels back verbatim for untraced calls, and traced calls gain
exactly one ``via``-tagged span in the reply's span list.  Typed error
lines (circuit open, timeout, transport) must survive the error channel
so client-side fallback policies fire through a proxy exactly as they
do on a direct connection.
"""

import pytest

from repro.errors import (
    CircuitOpenError,
    RPCError,
    RPCRemoteError,
    RPCTimeoutError,
    RPCTransportError,
)
from repro.obs.trace import Tracer
from repro.rpc import InProcessTransport, RPCClient, RPCServer
from repro.rpc.forward import ForwardingHandler, classify_frame
from repro.rpc.msgpack import pack, unpack


class RecordingTransport(InProcessTransport):
    def __init__(self, dispatcher):
        super().__init__(dispatcher)
        self.frames = []
        self.notifies = []
        self.down = False

    def request(self, payload):
        if self.down:
            raise RPCTransportError("down")
        self.frames.append(bytes(payload))
        return super().request(payload)

    def send(self, payload):
        if self.down:
            raise RPCTransportError("down")
        self.notifies.append(bytes(payload))
        super().send(payload)


class TestClassifyFrame:
    def test_request_with_ctx(self):
        ctx = {"trace_id": "t", "span_id": "s", "tenant": "acme",
               "deadline": 1.5}
        kind, msgid, method, params, got_ctx, _ = classify_frame(
            pack([0, 7, "m", [1, 2], ctx]))
        assert (kind, msgid, method, params) == ("request", 7, "m", [1, 2])
        assert got_ctx == ctx

    def test_classic_request(self):
        kind, msgid, method, params, ctx, _ = classify_frame(
            pack([0, 1, "m", []]))
        assert (kind, ctx) == ("request", None)

    def test_notify_and_garbage(self):
        assert classify_frame(pack([2, "m", [1]]))[0] == "notify"
        assert classify_frame(b"\xff\xfe")[0] == "other"
        assert classify_frame(pack({"not": "a frame"}))[0] == "other"


class TestByteFidelity:
    def test_request_and_reply_relayed_verbatim(self):
        server = RPCServer({"echo": lambda x: x})
        upstream = RecordingTransport(server.dispatch)
        fwd = ForwardingHandler([upstream])
        frame = pack([0, 42, "echo", ["hello"]])
        out = fwd.forward(frame)
        assert upstream.frames == [frame]
        assert out == server.dispatch(frame)

    def test_full_ctx_reaches_upstream_unmutated(self):
        seen = {}

        def dispatch(payload):
            message = unpack(payload)
            seen["ctx"] = message[4] if len(message) == 5 else None
            return pack([1, message[1], None, "ok"])

        upstream = RecordingTransport(dispatch)
        fwd = ForwardingHandler([upstream])
        ctx = {"trace_id": "abc", "span_id": "def", "deadline": 2.5,
               "tenant": "acme", "hedge": True, "custom_key": [1, 2]}
        frame = pack([0, 1, "work", [], ctx])
        fwd.forward(frame)
        # every ctx key — including ones this code has never heard of —
        # arrives exactly as sent
        assert seen["ctx"] == ctx
        assert upstream.frames == [frame]

    def test_notify_relayed(self):
        got = []
        server = RPCServer({"note": lambda x: got.append(x)})
        upstream = RecordingTransport(server.dispatch)
        fwd = ForwardingHandler([upstream])
        frame = pack([2, "note", ["hi"]])
        assert fwd.forward(frame) is None
        assert got == ["hi"]
        assert upstream.notifies == [frame]


class TestFailover:
    def test_advances_past_dead_upstreams(self):
        server = RPCServer({"ping": lambda: "pong"})
        dead = RecordingTransport(server.dispatch)
        dead.down = True
        live = RecordingTransport(server.dispatch)
        counters = {}

        class Counter:
            def __init__(self):
                self.n = 0

            def inc(self, v=1):
                self.n += v

        counters = {"forwards": Counter(), "upstream_errors": Counter()}
        fwd = ForwardingHandler([dead, live], counters=counters)
        out = unpack(fwd.forward(pack([0, 1, "ping", []])))
        assert out[3] == "pong"
        assert counters["upstream_errors"].n == 1
        assert counters["forwards"].n == 1

    def test_raises_last_error_when_all_down(self):
        dead = RecordingTransport(lambda p: p)
        dead.down = True
        fwd = ForwardingHandler([dead, dead])
        with pytest.raises(RPCTransportError):
            fwd.forward(pack([0, 1, "ping", []]))

    def test_remote_handler_errors_not_failed_over(self):
        def boom():
            raise ValueError("bad input")

        first = RecordingTransport(RPCServer({"work": boom}).dispatch)
        second = RecordingTransport(
            RPCServer({"work": lambda: "ok"}).dispatch)
        fwd = ForwardingHandler([first, second])
        out = unpack(fwd.forward(pack([0, 1, "work", []])))
        assert out[2] is not None and "ValueError" in out[2]
        assert second.frames == []  # a request error is not retried

    def test_needs_at_least_one_upstream(self):
        with pytest.raises(RPCError):
            ForwardingHandler([])


class TestTracedForwarding:
    def test_via_span_joins_the_merged_tree(self):
        server_tracer = Tracer(process="server")
        server = RPCServer({"work": lambda x: x * 2}, tracer=server_tracer)
        upstream = RecordingTransport(server.dispatch)
        edge_tracer = Tracer(process="edge")
        fwd = ForwardingHandler([upstream], tracer=edge_tracer, via="edge")
        client_tracer = Tracer(process="client")
        client = RPCClient(InProcessTransport(fwd.forward),
                           tracer=client_tracer)
        assert client.call("work", 21) == 42

        spans = {s.name: s for s in client_tracer.finished()}
        assert {"rpc.call", "rpc.forward", "rpc.dispatch"} <= set(spans)
        call = spans["rpc.call"]
        forward = spans["rpc.forward"]
        # one trace: the proxy span is a child of the client's call and
        # tagged with where the hop happened
        assert forward.trace_id == call.trace_id
        assert forward.parent_id == call.span_id
        assert forward.attrs.get("via") == "edge"
        assert forward.process == "edge"
        assert spans["rpc.dispatch"].process == "server"
        # the request frame itself still went upstream verbatim
        request = unpack(upstream.frames[0])
        assert request[4]["trace_id"] == call.trace_id

    def test_untraced_request_stays_pure_relay(self):
        server = RPCServer({"ping": lambda: "pong"})
        upstream = RecordingTransport(server.dispatch)
        fwd = ForwardingHandler([upstream], tracer=Tracer(process="edge"))
        frame = pack([0, 3, "ping", []])
        out = fwd.forward(frame)
        # no ctx -> no span grafting -> bytes equal to a direct call
        assert out == server.dispatch(frame)


class TestTypedErrorChannel:
    def _client_against(self, error_line):
        def dispatch(payload):
            message = unpack(payload)
            return pack([1, message[1], error_line, None])

        return RPCClient(InProcessTransport(dispatch))

    def test_circuit_open_line_maps_to_typed_exception(self):
        client = self._client_against("CircuitOpenError: breaker open")
        with pytest.raises(CircuitOpenError):
            client.call("work")

    def test_timeout_line_maps_to_typed_exception(self):
        client = self._client_against("RPCTimeoutError: no response in 2s")
        with pytest.raises(RPCTimeoutError):
            client.call("work")

    def test_transport_line_maps_to_typed_exception(self):
        client = self._client_against("RPCTransportError: connection reset")
        with pytest.raises(RPCTransportError):
            client.call("work")

    def test_other_lines_stay_remote_errors(self):
        client = self._client_against("ValueError: nope")
        with pytest.raises(RPCRemoteError):
            client.call("work")


class TestCallCtx:
    def test_ctx_extra_rides_the_fifth_element(self):
        seen = {}

        def dispatch(payload):
            message = unpack(payload)
            seen["ctx"] = message[4] if len(message) == 5 else None
            return pack([1, message[1], None, "ok"])

        client = RPCClient(InProcessTransport(dispatch), tenant="acme")
        client.call("work", ctx_extra={"failover": True})
        assert seen["ctx"] == {"tenant": "acme", "failover": True}

    def test_plain_call_stays_classic_four_element(self):
        seen = {}

        def dispatch(payload):
            seen["len"] = len(unpack(payload))
            message = unpack(payload)
            return pack([1, message[1], None, "ok"])

        RPCClient(InProcessTransport(dispatch)).call("work")
        assert seen["len"] == 4
