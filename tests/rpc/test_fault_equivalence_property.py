"""Property test: faults never change geometry, only the path it takes.

For random grids, contour-value sets, and seeded fault schedules, an
``ndp_contour`` through a resilient transport with a baseline fallback
must produce geometry bit-identical to contouring the local array —
whether the request succeeded first try, rode retries, timed out into the
fallback, or was rejected by an open breaker.  Time is injected, so the
whole property suite runs without a single real sleep.
"""

import random

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.core import FallbackPolicy, NDPServer, ndp_contour
from repro.filters.contour import contour_grid
from repro.grid import DataArray, UniformGrid
from repro.io import write_vgf
from repro.rpc import (
    CircuitBreaker,
    InProcessTransport,
    ResilientTransport,
    RetryPolicy,
    RPCClient,
)
from repro.storage import MemoryBackend, ObjectStore, ResilienceStats, S3FileSystem

from tests.faults import FakeClock, FaultSchedule, FaultyTransport

fields_3d = arrays(
    dtype=np.float32,
    shape=st.tuples(st.integers(2, 5), st.integers(2, 5), st.integers(2, 5)),
    elements=st.floats(
        min_value=-10.0, max_value=10.0, allow_nan=False, allow_infinity=False,
        width=32,
    ),
)

value_sets = st.lists(
    st.floats(min_value=-9.5, max_value=9.5, allow_nan=False, width=32),
    min_size=1,
    max_size=2,
    unique=True,
)


def run_faulted_ndp(field, values, schedule, use_breaker):
    nz, ny, nx = field.shape
    grid = UniformGrid((nx, ny, nz))
    grid.point_data.add(DataArray("f", field.reshape(-1)))

    store = ObjectStore(MemoryBackend())
    store.create_bucket("sim")
    fs = S3FileSystem(store, "sim")
    fs.write_object("g.vgf", write_vgf(grid, codec="lz4"))
    server = NDPServer(fs)

    clock = FakeClock()
    stats = ResilienceStats()
    breaker = (
        CircuitBreaker(failure_threshold=2, reset_timeout=60.0, clock=clock)
        if use_breaker
        else None
    )
    client = RPCClient(
        ResilientTransport(
            FaultyTransport(InProcessTransport(server.dispatch), schedule, clock),
            retry=RetryPolicy(max_attempts=3, base_delay=0.05, jitter=0.5, deadline=2.0),
            breaker=breaker,
            clock=clock,
            sleep=clock.sleep,
            rng=random.Random(0),
            stats=stats,
        )
    )
    pd, st_out = ndp_contour(
        client, "g.vgf", "f", values, fallback=FallbackPolicy(fs, stats=stats)
    )
    return grid, pd, st_out, stats


@given(
    field=fields_3d,
    values=value_sets,
    fault_seed=st.integers(0, 2**16),
    drop_rate=st.sampled_from([0.0, 0.3, 0.8]),
    use_breaker=st.booleans(),
)
@settings(max_examples=50, deadline=None)
def test_ndp_with_faults_matches_baseline_geometry(
    field, values, fault_seed, drop_rate, use_breaker
):
    schedule = FaultSchedule.random(
        fault_seed, length=6, drop=drop_rate, delay=0.2, delay_seconds=0.8
    )
    grid, pd, st_out, stats = run_faulted_ndp(field, values, schedule, use_breaker)
    baseline = contour_grid(grid, "f", values)

    assert np.array_equal(baseline.points, pd.points)
    assert np.array_equal(baseline.polys.connectivity, pd.polys.connectivity)
    assert np.array_equal(baseline.lines.connectivity, pd.lines.connectivity)
    assert baseline.point_data.get("contour_value") == pd.point_data.get("contour_value")

    # Whatever happened, exactly one path answered, and the books balance.
    assert st_out["path"] in ("ndp", "fallback")
    assert stats.get("ndp_successes") + stats.get("fallbacks") == 1


@given(field=fields_3d, values=value_sets)
@settings(max_examples=15, deadline=None)
def test_permanent_outage_always_falls_back_identically(field, values):
    schedule = FaultSchedule.permanently_down()
    grid, pd, st_out, stats = run_faulted_ndp(field, values, schedule, True)
    baseline = contour_grid(grid, "f", values)
    assert st_out["path"] == "fallback"
    assert stats.fallback_rate == 1.0
    assert np.array_equal(baseline.points, pd.points)
    assert np.array_equal(baseline.polys.connectivity, pd.polys.connectivity)
