"""End-to-end integration tests: the full paper workflow, across processes.

These tests exercise the complete stack exactly as the paper's Fig. 11a
deploys it: simulation writes timesteps to an object store (directory-
backed), an NDP server mounts it locally and listens on TCP, and a client
runs the post-filter pipeline against it — then cross-checks the result
against the baseline remote-mount path.
"""

import numpy as np
import pytest

from repro.core import NDPServer, ndp_contour
from repro.datasets import AsteroidImpactDataset, AsteroidParams
from repro.filters import ContourFilter, contour_grid
from repro.io import GridReader, GridWriter, write_vgf
from repro.pipeline import TrivialProducer
from repro.render import RenderSink, Scene
from repro.rpc import RPCClient
from repro.storage import DirectoryBackend, ObjectStore, S3FileSystem

DIMS = (32, 32, 32)


@pytest.fixture(scope="module")
def populated_store(tmp_path_factory):
    root = tmp_path_factory.mktemp("store")
    store = ObjectStore(DirectoryBackend(str(root)))
    store.create_bucket("sim")
    fs = S3FileSystem(store, "sim")
    dataset = AsteroidImpactDataset(AsteroidParams(dims=DIMS))
    steps = dataset.timesteps[::4]  # 3 steps is plenty here
    # Simulation phase: pipeline writes each timestep through a GridWriter.
    for step in steps:
        grid = dataset.generate_arrays(step, ["v02", "v03"])
        writer = GridWriter(codec="lz4", meta={"timestep": step})
        writer.set_writer(
            lambda data, step=step: fs.write_object(f"ts{step:05d}.vgf", data)
        )
        writer.set_input_connection(0, TrivialProducer(grid))
        writer.update()
    return store, dataset, steps


class TestSimulationThenAnalysis:
    def test_written_timesteps_listed(self, populated_store):
        store, _, steps = populated_store
        assert len(store.list_objects("sim")) == len(steps)

    def test_baseline_pipeline_reads_and_contours(self, populated_store):
        store, dataset, steps = populated_store
        fs = S3FileSystem(store, "sim")
        step = steps[0]
        reader = GridReader(lambda: fs.open(f"ts{step:05d}.vgf"), array_names=["v02"])
        contour = ContourFilter("v02", [0.1])
        contour.set_input_connection(0, reader)
        sink = RenderSink(color=(0.25, 0.8, 0.85))
        sink.set_input_connection(0, contour)
        sink.update()
        img = sink.scene.render(64, 48)
        assert img.shape == (48, 64, 3)

    def test_ndp_over_tcp_matches_baseline(self, populated_store):
        store, dataset, steps = populated_store
        local_fs = S3FileSystem(store, "sim")
        server = NDPServer(local_fs)
        listener = server.serve_tcp()
        try:
            client = RPCClient.connect_tcp(listener.host, listener.port)
            for step in steps:
                for array in ("v02", "v03"):
                    pd, stats = ndp_contour(client, f"ts{step:05d}.vgf", array, [0.1])
                    expected = contour_grid(
                        dataset.generate_arrays(step, [array]), array, [0.1]
                    )
                    assert np.array_equal(expected.points, pd.points), (step, array)
                    assert stats["wire_bytes"] < stats["raw_bytes"]
            client.close()
        finally:
            listener.stop()

    def test_multi_value_movie_workflow(self, populated_store):
        """The paper's Sec. VI experiment shape: a contour movie across
        timesteps at several values, via NDP, rendered per frame."""
        store, _, steps = populated_store
        server = NDPServer(S3FileSystem(store, "sim"))
        listener = server.serve_tcp()
        try:
            client = RPCClient.connect_tcp(listener.host, listener.port)
            for step in steps:
                scene = Scene()
                water, _ = ndp_contour(
                    client, f"ts{step:05d}.vgf", "v02", [0.1, 0.5]
                )
                ast, _ = ndp_contour(client, f"ts{step:05d}.vgf", "v03", [0.1])
                scene.add_mesh(water, color=(0.25, 0.8, 0.85))
                scene.add_mesh(ast, color=(0.95, 0.85, 0.2))
                img = scene.render(48, 36)
                assert np.isfinite(img).all()
            client.close()
        finally:
            listener.stop()

    def test_array_selection_saves_reads(self, populated_store):
        """Reading one of two arrays must fetch roughly half the bytes."""
        store, _, steps = populated_store
        from repro.storage.netsim import Testbed

        tb = Testbed()
        charged = ObjectStore(store.backend, device=tb.ssd)
        # Fine chunks + the latest (least compressible) timestep, so array
        # blocks span multiple chunks and the saving is observable.
        fs = S3FileSystem(charged, "sim", chunk_bytes=2 * 1024)
        key = f"ts{steps[-1]:05d}.vgf"
        with fs.open(key) as fh:
            from repro.io.vgf import read_vgf

            read_vgf(fh, ["v03"])
        one_array = tb.ssd.total_bytes
        tb.reset()
        with fs.open(key) as fh:
            from repro.io.vgf import read_vgf

            read_vgf(fh)
        both = tb.ssd.total_bytes
        assert one_array < 0.8 * both
