"""Shared fixtures: small grids and fields every test group reuses."""

from __future__ import annotations

import numpy as np
import pytest

from repro.grid import DataArray, UniformGrid


@pytest.fixture
def rng():
    return np.random.default_rng(12345)


def make_sphere_grid(n: int = 20, name: str = "r") -> UniformGrid:
    """An n^3 grid carrying the distance-from-center field."""
    zz, yy, xx = np.meshgrid(np.arange(n), np.arange(n), np.arange(n), indexing="ij")
    r = np.sqrt((xx - n / 2) ** 2 + (yy - n / 2) ** 2 + (zz - n / 2) ** 2)
    grid = UniformGrid((n, n, n))
    grid.point_data.add(DataArray(name, r.reshape(-1).astype(np.float32)))
    return grid


def make_wave_grid(n: int = 24, name: str = "f", seed: int = 7) -> UniformGrid:
    """A smooth multiscale 3-D field with mixed positive/negative values."""
    rng = np.random.default_rng(seed)
    zz, yy, xx = np.meshgrid(np.arange(n), np.arange(n), np.arange(n), indexing="ij")
    field = (
        np.sin(xx / 3.5) * np.cos(yy / 4.5)
        + 0.4 * np.sin(zz / 2.5)
        + 0.05 * rng.normal(size=xx.shape)
    )
    grid = UniformGrid((n, n, n), origin=(0.5, -1.0, 2.0), spacing=(0.7, 1.1, 0.9))
    grid.point_data.add(DataArray(name, field.reshape(-1)))
    return grid


def make_2d_grid(nx: int = 16, ny: int = 12, name: str = "f", seed: int = 3) -> UniformGrid:
    rng = np.random.default_rng(seed)
    field = rng.normal(size=(ny, nx))
    grid = UniformGrid((nx, ny, 1))
    grid.point_data.add(DataArray(name, field.reshape(-1)))
    return grid


@pytest.fixture
def sphere_grid():
    return make_sphere_grid()


@pytest.fixture
def wave_grid():
    return make_wave_grid()


@pytest.fixture
def grid_2d():
    return make_2d_grid()
