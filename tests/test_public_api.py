"""Public API surface tests: everything advertised is importable and real."""

import importlib

import pytest

PACKAGES = [
    "repro",
    "repro.grid",
    "repro.pipeline",
    "repro.filters",
    "repro.compression",
    "repro.rpc",
    "repro.storage",
    "repro.io",
    "repro.core",
    "repro.obs",
    "repro.render",
    "repro.datasets",
    "repro.bench",
]


@pytest.mark.parametrize("name", PACKAGES)
def test_package_all_resolves(name):
    """Every name in __all__ must exist on the module."""
    module = importlib.import_module(name)
    assert hasattr(module, "__all__"), f"{name} has no __all__"
    for symbol in module.__all__:
        assert hasattr(module, symbol), f"{name}.{symbol} missing"


@pytest.mark.parametrize("name", PACKAGES)
def test_package_has_docstring(name):
    module = importlib.import_module(name)
    assert module.__doc__ and len(module.__doc__.strip()) > 40, (
        f"{name} lacks a meaningful docstring"
    )


def test_version():
    import repro

    assert repro.__version__.count(".") == 2


def test_public_symbols_documented():
    """Every public class/function exported at top level has a docstring."""
    import repro

    for symbol in repro.__all__:
        obj = getattr(repro, symbol)
        if callable(obj):
            assert obj.__doc__, f"repro.{symbol} lacks a docstring"


class TestErrorHierarchy:
    def test_all_errors_derive_from_repro_error(self):
        from repro import errors

        for symbol in errors.__all__:
            obj = getattr(errors, symbol)
            if isinstance(obj, type) and issubclass(obj, Exception):
                assert issubclass(obj, errors.ReproError), symbol

    def test_rpc_remote_error_payload(self):
        from repro.errors import RPCError, RPCRemoteError

        err = RPCRemoteError("method_x", "remote traceback text")
        assert isinstance(err, RPCError)
        assert err.method == "method_x"
        assert "remote traceback text" in str(err)

    def test_catching_base_covers_subsystems(self):
        from repro.errors import (
            CodecError,
            FormatError,
            GridError,
            PipelineError,
            ReproError,
            StorageError,
        )

        for cls in (CodecError, FormatError, GridError, PipelineError, StorageError):
            with pytest.raises(ReproError):
                raise cls("boom")
