"""VGF end-to-end integrity: per-array CRCs, the header self-check, and
the backward-compatibility contract (files written without checksums —
i.e. by the pre-checksum writer — still load everywhere).
"""

import struct

import numpy as np
import pytest

from repro.errors import FormatError, IntegrityError
from repro.io.checksum import DEFAULT_ALGO, available, checksum, verify as verify_bytes
from repro.io.vgf import (
    read_vgf,
    read_vgf_array,
    read_vgf_info,
    verify_vgf,
    write_vgf,
)

from tests.conftest import make_sphere_grid


@pytest.fixture(scope="module")
def grid():
    return make_sphere_grid(8)


def _flip(blob: bytes, offset: int, mask: int = 0xFF) -> bytes:
    mutated = bytearray(blob)
    mutated[offset] ^= mask
    return bytes(mutated)


class TestChecksumPrimitive:
    def test_known_algorithms_available(self):
        assert "crc32" in available()
        assert DEFAULT_ALGO in available()

    def test_checksum_detects_any_change(self):
        data = b"the quick brown fox"
        base = checksum(data)
        assert checksum(data) == base  # deterministic
        assert checksum(data[:-1] + b"X") != base

    def test_verify_raises_typed_error_with_context(self):
        with pytest.raises(IntegrityError, match="my block: .*mismatch"):
            verify_bytes(b"data", checksum(b"other"), DEFAULT_ALGO, "my block")

    def test_unknown_algorithm_is_format_error(self):
        with pytest.raises(FormatError, match="unknown checksum"):
            checksum(b"x", algo="md5-not-a-crc")


class TestRoundTrip:
    def test_written_files_carry_and_pass_checksums(self, grid):
        blob = write_vgf(grid, codec="gzip")
        info = read_vgf_info(blob)
        assert all(a.checksum is not None for a in info.arrays)
        assert all(a.checksum_algo == DEFAULT_ALGO for a in info.arrays)
        assert "header_crc" not in info.meta  # self-check keys stay internal
        out = read_vgf(blob)
        np.testing.assert_array_equal(
            out.point_data.get("r").values, grid.point_data.get("r").values
        )
        assert verify_vgf(blob) == []

    def test_every_codec_is_checksummed_over_stored_bytes(self, grid):
        for codec in ("raw", "gzip", "lz4"):
            blob = write_vgf(grid, codec=codec)
            assert verify_vgf(blob) == []


class TestCorruptionDetection:
    def test_block_corruption_is_integrity_error(self, grid):
        blob = _flip(write_vgf(grid, codec="gzip"), -10)
        with pytest.raises(IntegrityError, match="mismatch"):
            read_vgf(blob)

    def test_raw_codec_corruption_caught_only_by_checksum(self, grid):
        """With codec="raw" no decompressor would ever notice a flip —
        the CRC is the *only* line of defence against silent wrong data."""
        blob = _flip(write_vgf(grid, codec="raw"), -10)
        with pytest.raises(IntegrityError):
            read_vgf_array(blob, "r")
        # Disabling verification reads the corrupted bytes without error:
        # exactly the silent-wrong-data failure the checksum prevents.
        arr = read_vgf_array(blob, "r", verify=False)
        clean = read_vgf_array(write_vgf(grid, codec="raw"), "r")
        assert not np.array_equal(arr, clean)

    def test_header_corruption_fails_the_self_check(self, grid):
        blob = write_vgf(grid)
        # Flip a byte inside the msgpack header region (after magic+len).
        header_off = len(b"VGF1") + struct.calcsize("<I") + 5
        with pytest.raises(FormatError):
            read_vgf_info(_flip(blob, header_off))

    def test_verify_vgf_reports_instead_of_raising(self, grid):
        blob = _flip(write_vgf(grid, codec="gzip"), -10)
        problems = verify_vgf(blob)
        assert problems
        assert any("mismatch" in p for p in problems)

    def test_verify_vgf_on_garbage(self):
        problems = verify_vgf(b"not a vgf file")
        assert problems and "header" in problems[0].lower() or problems


class TestBackwardCompatibility:
    def test_checksum_free_files_still_load(self, grid):
        blob = write_vgf(grid, checksums=False)
        info = read_vgf_info(blob)
        assert all(a.checksum is None for a in info.arrays)
        out = read_vgf(blob)  # verify=True must skip absent checksums
        np.testing.assert_array_equal(
            out.point_data.get("r").values, grid.point_data.get("r").values
        )

    def test_checksum_free_format_has_no_crc_keys(self, grid):
        blob = write_vgf(grid, checksums=False)
        hlen = struct.unpack_from("<I", blob, 4)[0]
        header = blob[8 : 8 + hlen]
        assert b"header_crc" not in header
        assert b"crc_algo" not in header

    def test_checksum_free_files_are_unverifiable_not_corrupt(self, grid):
        problems = verify_vgf(write_vgf(grid, checksums=False))
        assert problems  # reported, so operators know coverage is partial
        assert all("unverifiable" in p for p in problems)

    def test_deterministic_output_per_flag(self, grid):
        assert write_vgf(grid) == write_vgf(grid)
        assert write_vgf(grid, checksums=False) == write_vgf(grid, checksums=False)
