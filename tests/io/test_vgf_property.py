"""Hypothesis property tests for the VGF container."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.errors import FormatError
from repro.grid import DataArray, UniformGrid
from repro.io import read_vgf, read_vgf_info, write_vgf

dims_strategy = st.tuples(st.integers(1, 6), st.integers(1, 6), st.integers(1, 6))

dtype_strategy = st.sampled_from([np.float32, np.float64, np.int32, np.uint16])

codec_strategy = st.sampled_from(["raw", "gzip", "lz4", "rle"])


@st.composite
def grids(draw):
    dims = draw(dims_strategy)
    n = dims[0] * dims[1] * dims[2]
    grid = UniformGrid(
        dims,
        origin=tuple(draw(st.floats(-10, 10)) for _ in range(3)),
        spacing=tuple(draw(st.floats(0.1, 5)) for _ in range(3)),
    )
    n_arrays = draw(st.integers(1, 3))
    for i in range(n_arrays):
        dtype = draw(dtype_strategy)
        if np.dtype(dtype).kind == "f":
            values = draw(
                arrays(dtype=dtype, shape=n,
                       elements=st.floats(-1e6, 1e6, allow_nan=False, width=32))
            )
        else:
            info = np.iinfo(dtype)
            values = draw(
                arrays(dtype=dtype, shape=n,
                       elements=st.integers(int(info.min), int(info.max)))
            )
        grid.point_data.add(DataArray(f"a{i}", values))
    return grid


@given(grid=grids(), codec=codec_strategy)
@settings(max_examples=60, deadline=None)
def test_round_trip_bit_exact(grid, codec):
    back = read_vgf(write_vgf(grid, codec=codec))
    assert back == grid


@given(grid=grids())
@settings(max_examples=30, deadline=None)
def test_header_describes_blocks_exactly(grid):
    blob = write_vgf(grid, codec="lz4")
    info = read_vgf_info(blob)
    total = sum(a.stored_bytes for a in info.arrays)
    assert info.data_start + total == len(blob)
    for entry in info.arrays:
        arr = grid.point_data.get(entry.name)
        assert entry.raw_bytes == arr.nbytes


@given(grid=grids(), cut=st.integers(1, 50))
@settings(max_examples=40, deadline=None)
def test_truncation_never_passes_silently(grid, cut):
    """Any tail truncation must raise FormatError, never return bad data."""
    blob = write_vgf(grid, codec="raw")
    truncated = blob[: max(0, len(blob) - cut)]
    try:
        back = read_vgf(truncated)
    except FormatError:
        return
    # If it decoded, it must have decoded *correctly* (cut hit padding —
    # impossible here since VGF has none, so reaching this means the cut
    # was 0 bytes long).
    assert back == grid
