"""Unit tests for the GridReader/GridWriter pipeline nodes and PPM output."""

import numpy as np
import pytest

from repro.errors import FormatError, PipelineError
from repro.io import GridReader, GridWriter, write_vgf
from repro.io.ppm import encode_ppm, write_ppm
from repro.pipeline import TrivialProducer
from repro.storage import MemoryBackend, ObjectStore, S3FileSystem

from tests.conftest import make_sphere_grid


@pytest.fixture
def fs():
    store = ObjectStore(MemoryBackend())
    store.create_bucket("b")
    fs = S3FileSystem(store, "b")
    fs.write_object("grid.vgf", write_vgf(make_sphere_grid(8), codec="lz4"))
    return fs


class TestGridReader:
    def test_reads_from_mount(self, fs):
        reader = GridReader(lambda: fs.open("grid.vgf"))
        grid = reader.output()
        assert grid == make_sphere_grid(8)

    def test_array_selection(self, fs):
        reader = GridReader(lambda: fs.open("grid.vgf"), array_names=["r"])
        assert reader.output().point_data.names() == ["r"]
        assert reader.array_selection == ["r"]

    def test_selection_change_triggers_reread(self, fs):
        reader = GridReader(lambda: fs.open("grid.vgf"))
        reader.update()
        reader.set_array_selection(["r"])
        assert reader.needs_execute

    def test_bytes_opener(self):
        blob = write_vgf(make_sphere_grid(6))
        reader = GridReader(lambda: blob)
        assert reader.output().num_points == 216

    def test_unconfigured(self):
        with pytest.raises(PipelineError, match="opener"):
            GridReader().update()

    def test_missing_array(self, fs):
        reader = GridReader(lambda: fs.open("grid.vgf"), array_names=["zzz"])
        with pytest.raises(FormatError):
            reader.update()


class TestGridWriter:
    def test_write_through_pipeline(self, fs):
        grid = make_sphere_grid(6)
        writer = GridWriter(lambda data: fs.write_object("out.vgf", data), codec="gzip")
        writer.set_input_connection(0, TrivialProducer(grid))
        writer.update()
        reader = GridReader(lambda: fs.open("out.vgf"))
        assert reader.output() == grid

    def test_round_trip_reader_writer(self, fs):
        """read -> write -> read reproduces the grid bit-exactly."""
        reader = GridReader(lambda: fs.open("grid.vgf"))
        writer = GridWriter(lambda data: fs.write_object("copy.vgf", data), codec="raw")
        writer.set_input_connection(0, reader)
        writer.update()
        reader2 = GridReader(lambda: fs.open("copy.vgf"))
        assert reader2.output() == make_sphere_grid(8)

    def test_unconfigured(self):
        writer = GridWriter()
        writer.set_input_data(make_sphere_grid(4))
        with pytest.raises(PipelineError, match="writer"):
            writer.update()

    def test_rejects_non_grid(self):
        writer = GridWriter(lambda data: None)
        writer.set_input_data("nope")
        with pytest.raises(PipelineError, match="UniformGrid"):
            writer.update()


class TestPPM:
    def test_rgb_header(self):
        img = np.zeros((4, 6, 3), dtype=np.uint8)
        data = encode_ppm(img)
        assert data.startswith(b"P6\n6 4\n255\n")
        assert len(data) == len(b"P6\n6 4\n255\n") + 4 * 6 * 3

    def test_gray_header(self):
        img = np.zeros((4, 6), dtype=np.uint8)
        assert encode_ppm(img).startswith(b"P5\n6 4\n255\n")

    def test_float_scaling(self):
        img = np.array([[[1.5, 0.5, -1.0]]])
        data = encode_ppm(img)
        assert data[-3:] == bytes([255, 128, 0])

    def test_bad_shapes(self):
        with pytest.raises(FormatError):
            encode_ppm(np.zeros((2, 2, 4), dtype=np.uint8))
        with pytest.raises(FormatError):
            encode_ppm(np.zeros(5, dtype=np.uint8))

    def test_bad_dtype(self):
        with pytest.raises(FormatError):
            encode_ppm(np.zeros((2, 2), dtype=np.int32))

    def test_write_ppm(self, tmp_path):
        path = str(tmp_path / "img.ppm")
        write_ppm(path, np.full((2, 2, 3), 0.5))
        with open(path, "rb") as fh:
            assert fh.read(2) == b"P6"
