"""Unit tests for the VGF container format."""

import io

import numpy as np
import pytest

from repro.errors import FormatError
from repro.grid import DataArray, UniformGrid
from repro.io import read_vgf, read_vgf_array, read_vgf_info, write_vgf


def make_grid():
    grid = UniformGrid((6, 5, 4), origin=(1, 2, 3), spacing=(0.5, 0.25, 2.0))
    n = grid.num_points
    grid.point_data.add(DataArray("v02", np.linspace(0, 1, n, dtype=np.float32)))
    grid.point_data.add(DataArray("rho", np.full(n, 2.5)))
    grid.point_data.add(DataArray("ids", np.arange(n, dtype=np.int32)))
    grid.cell_data.add(DataArray("mat", np.zeros(grid.num_cells, dtype=np.float32)))
    return grid


class TestRoundTrip:
    @pytest.mark.parametrize("codec", ["raw", "gzip", "lz4", "rle"])
    def test_full_round_trip(self, codec):
        grid = make_grid()
        blob = write_vgf(grid, codec=codec)
        back = read_vgf(blob)
        assert back == grid

    def test_per_array_codecs(self):
        grid = make_grid()
        blob = write_vgf(grid, codec={"v02": "gzip", "rho": "lz4"})
        info = read_vgf_info(blob)
        assert info.array("v02").codec == "gzip"
        assert info.array("rho").codec == "lz4"
        assert info.array("ids").codec == "raw"  # fallback
        assert read_vgf(blob) == grid

    def test_meta_preserved(self):
        blob = write_vgf(make_grid(), meta={"timestep": 24095, "sim": "xrage"})
        info = read_vgf_info(blob)
        assert info.meta == {"timestep": 24095, "sim": "xrage"}

    def test_dtype_preserved(self):
        back = read_vgf(write_vgf(make_grid()))
        assert back.point_data.get("v02").dtype == np.float32
        assert back.point_data.get("rho").dtype == np.float64
        assert back.point_data.get("ids").dtype == np.int32

    def test_structure_preserved(self):
        back = read_vgf(write_vgf(make_grid()))
        assert back.dims == (6, 5, 4)
        assert back.origin == (1, 2, 3)
        assert back.spacing == (0.5, 0.25, 2.0)

    def test_cell_data_association(self):
        back = read_vgf(write_vgf(make_grid()))
        assert "mat" in back.cell_data
        assert "mat" not in back.point_data

    def test_empty_grid(self):
        grid = UniformGrid((2, 2, 2))
        assert read_vgf(write_vgf(grid)).num_points == 8

    def test_file_like_source(self):
        blob = write_vgf(make_grid())
        assert read_vgf(io.BytesIO(blob)) == make_grid()


class TestArraySelection:
    def test_selected_arrays_only(self):
        blob = write_vgf(make_grid())
        back = read_vgf(blob, ["v02"])
        assert back.point_data.names() == ["v02"]
        assert len(back.cell_data) == 0

    def test_selection_reads_only_needed_bytes(self):
        """Array selection must not touch unselected arrays' blocks."""
        grid = make_grid()
        blob = write_vgf(grid)
        info = read_vgf_info(blob)

        reads = []

        class SpyFile(io.BytesIO):
            def read(self, n=-1):
                reads.append((self.tell(), n))
                return super().read(n)

        fh = SpyFile(blob)
        read_vgf(fh, ["v02"])
        v02 = info.array("v02")
        total_block_bytes = sum(
            n for off, n in reads if off >= info.data_start and n > 0
        )
        assert total_block_bytes == v02.stored_bytes

    def test_missing_array_selection(self):
        blob = write_vgf(make_grid())
        with pytest.raises(FormatError, match="nope"):
            read_vgf(blob, ["nope"])

    def test_read_single_array(self):
        blob = write_vgf(make_grid(), codec="gzip")
        arr, entry = read_vgf_array(blob, "rho")
        assert arr == make_grid().point_data.get("rho")
        assert entry.codec == "gzip"
        assert entry.raw_bytes == arr.nbytes


class TestHeaderInfo:
    def test_info_fields(self):
        blob = write_vgf(make_grid(), codec="lz4")
        info = read_vgf_info(blob)
        assert info.array_names() == ["v02", "rho", "ids", "mat"]
        v02 = info.array("v02")
        assert v02.raw_bytes == 120 * 4
        assert v02.stored_bytes > 0
        assert info.data_start > 8

    def test_offsets_contiguous(self):
        blob = write_vgf(make_grid())
        info = read_vgf_info(blob)
        offset = 0
        for entry in info.arrays:
            assert entry.offset == offset
            offset += entry.stored_bytes
        assert info.data_start + offset == len(blob)


class TestMalformed:
    def test_bad_magic(self):
        with pytest.raises(FormatError, match="magic"):
            read_vgf_info(b"NOT A VGF FILE AT ALL")

    def test_truncated_header(self):
        blob = write_vgf(make_grid())
        with pytest.raises(FormatError, match="truncated"):
            read_vgf_info(blob[:20])

    def test_truncated_block(self):
        grid = make_grid()
        blob = write_vgf(grid)
        with pytest.raises(FormatError):
            read_vgf(blob[:-50])

    def test_header_not_msgpack(self):
        bad = b"VGF1" + (4).to_bytes(4, "little") + b"\xc1\xc1\xc1\xc1"
        with pytest.raises(FormatError):
            read_vgf_info(bad)

    def test_size_mismatch_detected(self):
        grid = UniformGrid((2, 2, 2))
        grid.point_data.add(DataArray("f", np.zeros(8, dtype=np.float32)))
        blob = bytearray(write_vgf(grid, codec="gzip"))
        # Corrupt one byte inside the compressed block.
        blob[-3] ^= 0xFF
        with pytest.raises(FormatError):
            read_vgf(bytes(blob))
