"""Unit tests for the timestep catalog."""

import numpy as np
import pytest

from repro.errors import ReproError
from repro.io import write_vgf
from repro.io.catalog import TimestepCatalog
from repro.storage import MemoryBackend, ObjectStore, S3FileSystem

from tests.conftest import make_sphere_grid


@pytest.fixture
def fs():
    store = ObjectStore(MemoryBackend())
    store.create_bucket("sim")
    fs = S3FileSystem(store, "sim")
    for step in (300, 100, 200):  # deliberately unsorted write order
        grid = make_sphere_grid(8)
        fs.write_object(
            f"run/out_{step}.vgf",
            write_vgf(grid, codec="lz4", meta={"timestep": step}),
        )
    return fs


class TestDiscovery:
    def test_orders_by_timestep(self, fs):
        catalog = TimestepCatalog(fs)
        assert catalog.timesteps == [100, 200, 300]
        assert len(catalog) == 3

    def test_prefix_filter(self, fs):
        fs.write_object(
            "elsewhere/x.vgf",
            write_vgf(make_sphere_grid(4), meta={"timestep": 999}),
        )
        catalog = TimestepCatalog(fs, prefix="run/")
        assert 999 not in catalog.timesteps

    def test_skips_non_vgf_objects(self, fs):
        fs.write_object("run/notes.txt", b"hello")
        catalog = TimestepCatalog(fs)
        assert len(catalog) == 3

    def test_skips_vgf_without_timestep(self, fs):
        fs.write_object("run/static.vgf", write_vgf(make_sphere_grid(4)))
        catalog = TimestepCatalog(fs)
        assert len(catalog) == 3

    def test_duplicate_timesteps_rejected(self, fs):
        fs.write_object(
            "run/dup.vgf", write_vgf(make_sphere_grid(4), meta={"timestep": 100})
        )
        with pytest.raises(ReproError, match="duplicate"):
            TimestepCatalog(fs)

    def test_refresh_sees_new_objects(self, fs):
        catalog = TimestepCatalog(fs)
        fs.write_object(
            "run/new.vgf", write_vgf(make_sphere_grid(4), meta={"timestep": 400})
        )
        catalog.refresh()
        assert 400 in catalog.timesteps


class TestAccess:
    def test_entry_and_arrays(self, fs):
        catalog = TimestepCatalog(fs)
        entry = catalog.entry(200)
        assert entry.timestep == 200
        assert entry.array_names == ["r"]

    def test_entry_missing(self, fs):
        with pytest.raises(ReproError, match="no timestep"):
            TimestepCatalog(fs).entry(123)

    def test_nearest(self, fs):
        catalog = TimestepCatalog(fs)
        assert catalog.nearest(140).timestep == 100
        assert catalog.nearest(260).timestep == 300
        assert catalog.nearest(200).timestep == 200

    def test_nearest_empty(self):
        store = ObjectStore(MemoryBackend())
        store.create_bucket("b")
        catalog = TimestepCatalog(S3FileSystem(store, "b"))
        with pytest.raises(ReproError, match="empty"):
            catalog.nearest(1)

    def test_load_with_selection(self, fs):
        catalog = TimestepCatalog(fs)
        grid = catalog.load(100, ["r"])
        assert grid == make_sphere_grid(8)

    def test_iteration(self, fs):
        steps = [e.timestep for e in TimestepCatalog(fs)]
        assert steps == [100, 200, 300]


class TestStatsEndpoint:
    def test_array_statistics(self, fs):
        from repro.core import NDPServer
        from repro.rpc import InProcessTransport, RPCClient

        client = RPCClient(InProcessTransport(NDPServer(fs).dispatch))
        stats = client.call("array_statistics", "run/out_100.vgf", "r", 16)
        grid = make_sphere_grid(8)
        vals = grid.point_data.get("r").values
        assert stats["count"] == vals.size
        assert stats["min"] == pytest.approx(float(vals.min()))
        assert stats["max"] == pytest.approx(float(vals.max()))
        assert stats["mean"] == pytest.approx(float(vals.mean()), rel=1e-6)
        assert sum(stats["histogram_counts"]) == vals.size
        assert len(stats["histogram_edges"]) == 17

    def test_bad_bins(self, fs):
        from repro.core import NDPServer
        from repro.errors import RPCRemoteError
        from repro.rpc import InProcessTransport, RPCClient

        client = RPCClient(InProcessTransport(NDPServer(fs).dispatch))
        with pytest.raises(RPCRemoteError, match="bins"):
            client.call("array_statistics", "run/out_100.vgf", "r", 0)
