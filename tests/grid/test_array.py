"""Unit tests for repro.grid.array.DataArray."""

import numpy as np
import pytest

from repro.errors import GridError
from repro.grid import DataArray


class TestConstruction:
    def test_basic(self):
        arr = DataArray("rho", [1.0, 2.0, 3.0])
        assert arr.name == "rho"
        assert arr.num_tuples == 3
        assert arr.components == 1

    def test_requires_name(self):
        with pytest.raises(GridError, match="non-empty name"):
            DataArray("", [1.0])

    def test_rejects_bool_dtype(self):
        with pytest.raises(GridError, match="unsupported dtype"):
            DataArray("m", np.array([True, False]))

    def test_rejects_complex_dtype(self):
        with pytest.raises(GridError, match="unsupported dtype"):
            DataArray("c", np.array([1 + 2j]))

    def test_accepts_integer_dtypes(self):
        for dtype in (np.int8, np.uint16, np.int32, np.int64):
            arr = DataArray("i", np.array([1, 2, 3], dtype=dtype))
            assert arr.dtype == dtype

    def test_2d_input_infers_components(self):
        arr = DataArray("vel", np.arange(12.0).reshape(4, 3))
        assert arr.components == 3
        assert arr.num_tuples == 4
        assert arr.values.ndim == 1

    def test_components_must_divide_size(self):
        with pytest.raises(GridError, match="not divisible"):
            DataArray("v", np.arange(10.0), components=3)

    def test_components_must_be_positive(self):
        with pytest.raises(GridError, match="components"):
            DataArray("v", np.arange(6.0), components=0)

    def test_values_contiguous(self):
        base = np.arange(20.0)[::2]  # non-contiguous view
        arr = DataArray("x", base)
        assert arr.values.flags.c_contiguous


class TestStats:
    def test_range(self):
        arr = DataArray("x", [3.0, -1.0, 7.0])
        assert arr.range() == (-1.0, 7.0)

    def test_range_per_component(self):
        arr = DataArray("v", [1.0, 10.0, 2.0, 20.0, 3.0, 30.0], components=2)
        assert arr.range(0) == (1.0, 3.0)
        assert arr.range(1) == (10.0, 30.0)

    def test_range_empty_raises(self):
        arr = DataArray("x", np.zeros(0))
        with pytest.raises(GridError, match="empty"):
            arr.range()

    def test_range_bad_component(self):
        arr = DataArray("x", [1.0])
        with pytest.raises(GridError, match="component"):
            arr.range(1)

    def test_nbytes(self):
        arr = DataArray("x", np.zeros(10, dtype=np.float32))
        assert arr.nbytes == 40

    def test_component_returns_view(self):
        arr = DataArray("v", np.arange(6.0), components=2)
        view = arr.component(1)
        assert np.array_equal(view, [1.0, 3.0, 5.0])
        view[0] = 99.0
        assert arr.values[1] == 99.0  # a view, not a copy


class TestOps:
    def test_copy_is_deep(self):
        arr = DataArray("x", [1.0, 2.0])
        cp = arr.copy()
        cp.values[0] = 42.0
        assert arr.values[0] == 1.0

    def test_astype(self):
        arr = DataArray("x", [1.5, 2.5])
        conv = arr.astype(np.float32)
        assert conv.dtype == np.float32
        assert conv.name == "x"

    def test_take_scalar(self):
        arr = DataArray("x", [10.0, 20.0, 30.0, 40.0])
        sub = arr.take([3, 0])
        assert np.array_equal(sub.values, [40.0, 10.0])

    def test_take_multicomponent(self):
        arr = DataArray("v", np.arange(12.0), components=3)
        sub = arr.take([2, 0])
        assert np.array_equal(sub.values, [6.0, 7.0, 8.0, 0.0, 1.0, 2.0])

    def test_equality(self):
        a = DataArray("x", [1.0, 2.0])
        b = DataArray("x", [1.0, 2.0])
        c = DataArray("y", [1.0, 2.0])
        d = DataArray("x", np.array([1.0, 2.0], dtype=np.float32))
        assert a == b
        assert a != c
        assert a != d  # dtype differs

    def test_not_hashable(self):
        with pytest.raises(TypeError):
            hash(DataArray("x", [1.0]))

    def test_len(self):
        assert len(DataArray("v", np.arange(12.0), components=4)) == 3

    def test_repr_mentions_name(self):
        assert "rho" in repr(DataArray("rho", [1.0]))
