"""Unit tests for PointSelection."""

import numpy as np
import pytest

from repro.errors import SelectionError
from repro.grid import DataArray, PointSelection, UniformGrid


def make_sel(ids=(1, 5, 9), values=None, dims=(3, 3, 3)):
    ids = np.asarray(ids, dtype=np.int64)
    if values is None:
        values = ids.astype(np.float32) * 10
    return PointSelection(dims, (0, 0, 0), (1, 1, 1), "f", ids, values)


class TestValidation:
    def test_basic(self):
        sel = make_sel()
        assert sel.count == 3
        assert sel.total_points == 27

    def test_ids_values_length_mismatch(self):
        with pytest.raises(SelectionError, match="ids but"):
            make_sel(ids=[1, 2], values=np.zeros(3))

    def test_ids_must_be_sorted_unique(self):
        with pytest.raises(SelectionError, match="sorted"):
            make_sel(ids=[5, 1, 9])
        with pytest.raises(SelectionError, match="sorted"):
            make_sel(ids=[1, 1, 9])

    def test_ids_in_range(self):
        with pytest.raises(SelectionError, match="range"):
            make_sel(ids=[0, 27])
        with pytest.raises(SelectionError, match="range"):
            make_sel(ids=[-1, 3])

    def test_empty_selection_ok(self):
        sel = make_sel(ids=[], values=np.zeros(0, dtype=np.float32))
        assert sel.count == 0
        assert sel.selectivity == 0.0


class TestStats:
    def test_selectivity_and_permillage(self):
        sel = make_sel(ids=[0, 1, 2])  # 3 of 27
        assert sel.selectivity == pytest.approx(1 / 9)
        assert sel.permillage == pytest.approx(1000 / 9)

    def test_payload_nbytes(self):
        sel = make_sel()
        assert sel.payload_nbytes == 3 * 8 + 3 * 4


class TestScatter:
    def test_to_dense(self):
        sel = make_sel(ids=[0, 26], values=np.array([1.5, 2.5], dtype=np.float32))
        dense, mask = sel.to_dense()
        assert dense[0] == pytest.approx(1.5)
        assert dense[26] == pytest.approx(2.5)
        assert np.isnan(dense[13])
        assert mask.sum() == 2

    def test_to_dense_custom_fill(self):
        sel = make_sel(ids=[3])
        dense, _ = sel.to_dense(fill=-np.inf)
        assert dense[0] == -np.inf

    def test_to_grid(self):
        sel = make_sel()
        grid, mask = sel.to_grid()
        assert grid.dims == (3, 3, 3)
        assert "f" in grid.point_data
        assert mask.sum() == 3

    def test_from_grid_gathers_values(self):
        grid = UniformGrid((2, 2, 2))
        grid.point_data.add(DataArray("f", np.arange(8.0)))
        sel = PointSelection.from_grid(grid, "f", [7, 2, 0])
        assert sel.ids.tolist() == [0, 2, 7]
        assert sel.values.tolist() == [0.0, 2.0, 7.0]


class TestUnion:
    def test_union_merges(self):
        a = make_sel(ids=[1, 5])
        b = make_sel(ids=[5, 9])
        u = a.union(b)
        assert u.ids.tolist() == [1, 5, 9]

    def test_union_requires_same_grid(self):
        a = make_sel()
        b = make_sel(dims=(4, 4, 4), ids=[1, 5, 9])
        with pytest.raises(SelectionError, match="different"):
            a.union(b)

    def test_union_keeps_dtype(self):
        a = make_sel()
        b = make_sel(ids=[2, 5, 10])
        assert a.union(b).values.dtype == a.values.dtype


class TestEquality:
    def test_equal(self):
        assert make_sel() == make_sel()

    def test_not_equal_different_values(self):
        a = make_sel()
        b = make_sel(values=np.zeros(3, dtype=np.float32))
        assert a != b

    def test_repr(self):
        assert "permillage" in repr(make_sel())
