"""Unit tests for UniformGrid."""

import numpy as np
import pytest

from repro.errors import GridError
from repro.grid import DataArray, UniformGrid


class TestConstruction:
    def test_defaults(self):
        g = UniformGrid((3, 4, 5))
        assert g.num_points == 60
        assert g.num_cells == 2 * 3 * 4
        assert g.origin == (0.0, 0.0, 0.0)

    def test_rejects_nonpositive_spacing(self):
        with pytest.raises(GridError, match="spacing"):
            UniformGrid((2, 2, 2), spacing=(1, 0, 1))

    def test_rejects_bad_dims(self):
        with pytest.raises(GridError):
            UniformGrid((0, 2, 2))

    def test_is_2d(self):
        assert UniformGrid((5, 5, 1)).is_2d
        assert UniformGrid((1, 5, 5)).is_2d
        assert not UniformGrid((5, 5, 5)).is_2d

    def test_bounds(self):
        g = UniformGrid((3, 3, 3), origin=(1, 2, 3), spacing=(0.5, 1.0, 2.0))
        assert g.bounds.as_tuple() == (1, 2, 2, 4, 3, 7)


class TestGeometry:
    def test_point_coords(self):
        g = UniformGrid((3, 3, 3), origin=(10, 20, 30), spacing=(1, 2, 3))
        coords = g.point_ids_to_coords([0, 1, 3, 9])
        assert np.array_equal(
            coords, [[10, 20, 30], [11, 20, 30], [10, 22, 30], [10, 20, 33]]
        )

    def test_axis_coords(self):
        g = UniformGrid((4, 2, 2), origin=(1, 0, 0), spacing=(0.5, 1, 1))
        assert np.allclose(g.axis_coords(0), [1, 1.5, 2, 2.5])

    def test_axis_coords_bad_axis(self):
        with pytest.raises(GridError):
            UniformGrid((2, 2, 2)).axis_coords(5)

    def test_ijk_round_trip(self):
        g = UniformGrid((4, 5, 6))
        pid = g.ijk_to_id((2, 3, 4))
        assert g.id_to_ijk(pid).tolist() == [2, 3, 4]


class TestArrays:
    def test_point_data_tuple_count_enforced(self):
        g = UniformGrid((2, 2, 2))
        with pytest.raises(GridError):
            g.point_data.add(DataArray("x", np.zeros(7)))

    def test_cell_data_tuple_count(self):
        g = UniformGrid((3, 3, 3))
        g.cell_data.add(DataArray("c", np.zeros(8)))
        assert len(g.cell_data) == 1

    def test_scalar_field_shape_and_view(self):
        g = UniformGrid((4, 3, 2))
        g.point_data.add(DataArray("f", np.arange(24.0)))
        field = g.scalar_field("f")
        assert field.shape == (2, 3, 4)
        assert field[0, 0, 1] == 1.0  # x fastest
        assert field[0, 1, 0] == 4.0
        assert field[1, 0, 0] == 12.0
        field[0, 0, 0] = -1.0  # a view, not a copy
        assert g.point_data.get("f").values[0] == -1.0

    def test_scalar_field_rejects_vectors(self):
        g = UniformGrid((2, 2, 2))
        g.point_data.add(DataArray("v", np.zeros(24), components=3))
        with pytest.raises(GridError, match="scalar"):
            g.scalar_field("v")

    def test_shallow_copy_shares_arrays(self):
        g = UniformGrid((2, 2, 2))
        g.point_data.add(DataArray("f", np.zeros(8)))
        cp = g.shallow_copy()
        cp.point_data.get("f").values[0] = 5.0
        assert g.point_data.get("f").values[0] == 5.0

    def test_structure_equals(self):
        a = UniformGrid((2, 2, 2))
        b = UniformGrid((2, 2, 2))
        c = UniformGrid((2, 2, 2), spacing=(2, 1, 1))
        assert a.structure_equals(b)
        assert not a.structure_equals(c)

    def test_full_equality_includes_arrays(self):
        a = UniformGrid((2, 2, 2))
        b = UniformGrid((2, 2, 2))
        a.point_data.add(DataArray("f", np.zeros(8)))
        assert a != b
        b.point_data.add(DataArray("f", np.zeros(8)))
        assert a == b
