"""Unit tests for RectilinearGrid and its full-stack integration.

Rectilinear support is this library's implementation of the paper's
stated future work ("plans to extend support to more complex grid
types"); these tests cover the data model and the complete offload chain.
"""

import numpy as np
import pytest

from repro.errors import GridError
from repro.grid import DataArray, RectilinearGrid, UniformGrid


def make_rect(seed=3, dims=(10, 8, 6)):
    rng = np.random.default_rng(seed)
    axes = [np.cumsum(rng.uniform(0.3, 1.7, d)) for d in dims]
    grid = RectilinearGrid(*axes)
    grid.point_data.add(
        DataArray("f", rng.normal(size=grid.num_points).astype(np.float32))
    )
    return grid


class TestConstruction:
    def test_basic(self):
        grid = RectilinearGrid([0, 1, 3], [0, 2], [0, 1, 2, 4])
        assert grid.dims == (3, 2, 4)
        assert grid.num_points == 24
        assert grid.num_cells == 2 * 1 * 3

    def test_rejects_non_increasing(self):
        with pytest.raises(GridError, match="increasing"):
            RectilinearGrid([0, 1, 1], [0, 1], [0, 1])
        with pytest.raises(GridError, match="increasing"):
            RectilinearGrid([0, 2, 1], [0, 1], [0, 1])

    def test_rejects_empty_or_nonfinite(self):
        with pytest.raises(GridError):
            RectilinearGrid([], [0, 1], [0, 1])
        with pytest.raises(GridError, match="finite"):
            RectilinearGrid([0, np.inf], [0, 1], [0, 1])

    def test_single_coordinate_axis(self):
        grid = RectilinearGrid([0, 1], [0, 1], [5.0])
        assert grid.is_2d

    def test_bounds(self):
        grid = RectilinearGrid([1, 4], [2, 5], [3, 9])
        assert grid.bounds.as_tuple() == (1, 4, 2, 5, 3, 9)

    def test_from_uniform_params_matches(self):
        uni = UniformGrid((5, 4, 3), origin=(1, 2, 3), spacing=(0.5, 1.5, 2.0))
        rect = RectilinearGrid.from_uniform_params((5, 4, 3), (1, 2, 3), (0.5, 1.5, 2.0))
        assert rect.dims == uni.dims
        for a in range(3):
            assert np.allclose(rect.axis_coords(a), uni.axis_coords(a))


class TestGeometry:
    def test_point_coords(self):
        grid = RectilinearGrid([0, 1, 10], [0, 5], [0, 100])
        coords = grid.point_ids_to_coords([0, 2, 3, 6])
        assert np.array_equal(
            coords, [[0, 0, 0], [10, 0, 0], [0, 5, 0], [0, 0, 100]]
        )

    def test_scalar_field_view(self):
        grid = make_rect()
        field = grid.scalar_field("f")
        nx, ny, nz = grid.dims
        assert field.shape == (nz, ny, nx)
        field[0, 0, 0] = 42.0
        assert grid.point_data.get("f").values[0] == 42.0

    def test_equality(self):
        assert make_rect(1) == make_rect(1)
        assert make_rect(1) != make_rect(2)

    def test_shallow_copy(self):
        grid = make_rect()
        cp = grid.shallow_copy()
        assert cp == grid
        cp.point_data.get("f").values[0] = -99
        assert grid.point_data.get("f").values[0] == -99  # shared payload


class TestContouring:
    def test_matches_equivalent_uniform(self):
        """A rectilinear grid with arithmetic axes contours identically."""
        from repro.filters import contour_grid

        uni = UniformGrid((10, 9, 8), origin=(1, 2, 3), spacing=(0.5, 0.7, 1.1))
        rect = RectilinearGrid.from_uniform_params((10, 9, 8), (1, 2, 3), (0.5, 0.7, 1.1))
        rng = np.random.default_rng(0)
        vals = rng.normal(size=uni.num_points)
        uni.point_data.add(DataArray("f", vals))
        rect.point_data.add(DataArray("f", vals))
        pu = contour_grid(uni, "f", [0.0])
        pr = contour_grid(rect, "f", [0.0])
        assert np.array_equal(pu.points, pr.points)

    def test_vertices_respect_nonuniform_spacing(self):
        """With stretched axes the contour lands at interpolated coords."""
        from repro.filters import contour_grid

        # z axis stretched: planes at 0 and 10; field crosses midway in
        # *value*, so the vertex sits at z = 5 (value-interpolated).
        grid = RectilinearGrid([0, 1, 2], [0, 1, 2], [0.0, 10.0])
        f = np.zeros((2, 3, 3))
        f[1] = 1.0
        grid.point_data.add(DataArray("f", f.reshape(-1)))
        pd = contour_grid(grid, "f", 0.5)
        assert np.allclose(pd.points[:, 2], 5.0)

    def test_2d_rectilinear(self):
        from repro.filters import contour_grid

        grid = RectilinearGrid([0, 1, 3, 7], [0, 2, 3], [0.0])
        rng = np.random.default_rng(4)
        grid.point_data.add(DataArray("f", rng.normal(size=12)))
        pd = contour_grid(grid, "f", [0.0])
        pd.validate()


class TestOffloadChain:
    def test_prefilter_postfilter_bit_exact(self):
        from repro.core import postfilter_contour, prefilter_contour
        from repro.filters import contour_grid

        grid = make_rect(dims=(12, 10, 9))
        full = contour_grid(grid, "f", [0.0, 0.5])
        sel = prefilter_contour(grid, "f", [0.0, 0.5])
        assert sel.axes is not None
        recon = postfilter_contour(sel, [0.0, 0.5])
        assert np.array_equal(full.points, recon.points)
        assert np.array_equal(full.polys.connectivity, recon.polys.connectivity)

    def test_selection_wire_round_trip(self):
        from repro.core import decode_selection, encode_selection, prefilter_contour

        grid = make_rect()
        sel = prefilter_contour(grid, "f", [0.0])
        for payload_codec in ("raw", "lz4"):
            out = decode_selection(encode_selection(sel, payload_codec=payload_codec))
            assert out == sel
            assert out.axes is not None

    def test_vgf_round_trip(self):
        from repro.io import read_vgf, write_vgf

        grid = make_rect()
        back = read_vgf(write_vgf(grid, codec="gzip"))
        assert isinstance(back, RectilinearGrid)
        assert back == grid

    def test_full_ndp_path(self):
        from repro.core import NDPServer, ndp_contour
        from repro.filters import contour_grid
        from repro.io import write_vgf
        from repro.rpc import InProcessTransport, RPCClient
        from repro.storage import MemoryBackend, ObjectStore, S3FileSystem

        # A smooth radial field: the selection is a thin shell, so the
        # wire is genuinely smaller than the raw array.
        rng = np.random.default_rng(9)
        axes = [np.cumsum(rng.uniform(0.3, 1.7, d)) for d in (14, 12, 10)]
        grid = RectilinearGrid(*axes)
        pts = grid.point_ids_to_coords(np.arange(grid.num_points))
        center = np.asarray(grid.bounds.center)
        grid.point_data.add(
            DataArray("f", np.linalg.norm(pts - center, axis=1).astype(np.float32))
        )
        store = ObjectStore(MemoryBackend())
        store.create_bucket("sim")
        fs = S3FileSystem(store, "sim")
        fs.write_object("rect.vgf", write_vgf(grid, codec="lz4"))
        client = RPCClient(InProcessTransport(NDPServer(fs).dispatch))
        pd, stats = ndp_contour(client, "rect.vgf", "f", [3.0])
        expected = contour_grid(grid, "f", [3.0])
        assert np.array_equal(expected.points, pd.points)
        assert stats["wire_bytes"] < stats["raw_bytes"]

    def test_slice_on_rectilinear(self):
        from repro.core import postfilter_slice, prefilter_slice
        from repro.filters import slice_grid

        grid = make_rect(dims=(9, 9, 9))
        coord = 0.5 * (grid.z_coords[3] + grid.z_coords[4])
        expected = slice_grid(grid, 2, coord, ["f"])
        recon = postfilter_slice(prefilter_slice(grid, "f", 2, coord), 2, coord)
        assert np.array_equal(expected.points, recon.points)
        assert expected.point_data.get("f") == recon.point_data.get("f")

    def test_threshold_on_rectilinear(self):
        from repro.core import postfilter_threshold, prefilter_threshold
        from repro.filters import ThresholdPoints

        grid = make_rect()
        stock = ThresholdPoints("f", 0.0, 1.0)
        stock.set_input_data(grid)
        expected = stock.output()
        recon = postfilter_threshold(prefilter_threshold(grid, "f", 0.0, 1.0))
        assert np.array_equal(expected.points, recon.points)
