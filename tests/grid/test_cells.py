"""Unit tests for structured-grid topology helpers."""

import numpy as np
import pytest

from repro.errors import GridError
from repro.grid import (
    cell_count,
    edge_endpoints,
    point_count,
    point_id_to_ijk,
    point_ijk_to_id,
    structured_edges,
)
from repro.grid.cells import axis_edge_counts


class TestCounts:
    def test_point_count(self):
        assert point_count((4, 5, 6)) == 120

    def test_cell_count_3d(self):
        assert cell_count((4, 5, 6)) == 3 * 4 * 5

    def test_cell_count_2d(self):
        assert cell_count((8, 6, 1)) == 7 * 5

    def test_cell_count_1d(self):
        assert cell_count((10, 1, 1)) == 9

    def test_rejects_zero_dims(self):
        with pytest.raises(GridError):
            point_count((0, 3, 3))

    def test_rejects_wrong_rank(self):
        with pytest.raises(GridError):
            point_count((3, 3))


class TestIdConversions:
    def test_round_trip_all_points(self):
        dims = (3, 4, 5)
        ids = np.arange(point_count(dims))
        ijk = point_id_to_ijk(ids, dims)
        back = point_ijk_to_id(ijk, dims)
        assert np.array_equal(back, ids)

    def test_x_varies_fastest(self):
        dims = (4, 3, 2)
        assert point_ijk_to_id((1, 0, 0), dims) == 1
        assert point_ijk_to_id((0, 1, 0), dims) == 4
        assert point_ijk_to_id((0, 0, 1), dims) == 12

    def test_single_triple(self):
        assert point_id_to_ijk(13, (4, 3, 2)).tolist() == [1, 0, 1]

    def test_out_of_range_ijk(self):
        with pytest.raises(GridError):
            point_ijk_to_id((4, 0, 0), (4, 3, 2))

    def test_negative_id(self):
        with pytest.raises(GridError):
            point_id_to_ijk(-1, (4, 3, 2))


class TestEdges:
    def test_axis_edge_counts(self):
        ex, ey, ez = axis_edge_counts((3, 4, 5))
        assert ex == 2 * 4 * 5
        assert ey == 3 * 3 * 5
        assert ez == 3 * 4 * 4

    def test_total_edge_count(self):
        a, b = structured_edges((3, 4, 5))
        assert a.size == sum(axis_edge_counts((3, 4, 5)))
        assert a.size == b.size

    def test_edges_are_axis_neighbours(self):
        dims = (3, 3, 3)
        for axis, stride in ((0, 1), (1, 3), (2, 9)):
            a, b = edge_endpoints(dims, axis)
            assert np.array_equal(b - a, np.full(a.size, stride))

    def test_degenerate_axis_has_no_edges(self):
        a, b = edge_endpoints((5, 4, 1), 2)
        assert a.size == 0

    def test_bad_axis(self):
        with pytest.raises(GridError):
            edge_endpoints((3, 3, 3), 3)

    def test_2x2x2_explicit(self):
        a, b = structured_edges((2, 2, 2))
        pairs = set(zip(a.tolist(), b.tolist()))
        expected = {
            (0, 1), (2, 3), (4, 5), (6, 7),       # x edges
            (0, 2), (1, 3), (4, 6), (5, 7),       # y edges
            (0, 4), (1, 5), (2, 6), (3, 7),       # z edges
        }
        assert pairs == expected
