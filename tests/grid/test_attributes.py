"""Unit tests for AttributeCollection."""

import numpy as np
import pytest

from repro.errors import GridError
from repro.grid import AttributeCollection, DataArray


def make(name="a", n=5):
    return DataArray(name, np.arange(float(n)))


class TestAddGet:
    def test_add_and_get(self):
        coll = AttributeCollection()
        coll.add(make("rho"))
        assert coll.get("rho").name == "rho"

    def test_first_array_fixes_tuple_count(self):
        coll = AttributeCollection()
        coll.add(make("a", 5))
        with pytest.raises(GridError, match="expects 5"):
            coll.add(make("b", 6))

    def test_explicit_expected_tuples(self):
        coll = AttributeCollection(expected_tuples=4)
        with pytest.raises(GridError):
            coll.add(make("a", 5))

    def test_replace_same_name(self):
        coll = AttributeCollection()
        coll.add(make("a", 5))
        replacement = DataArray("a", np.ones(5))
        coll.add(replacement)
        assert len(coll) == 1
        assert coll.get("a").values[0] == 1.0

    def test_get_missing_lists_available(self):
        coll = AttributeCollection()
        coll.add(make("rho"))
        with pytest.raises(GridError, match="rho"):
            coll.get("missing")

    def test_add_non_dataarray(self):
        with pytest.raises(GridError, match="expected DataArray"):
            AttributeCollection().add([1, 2, 3])

    def test_remove(self):
        coll = AttributeCollection()
        coll.add(make("a"))
        coll.remove("a")
        assert "a" not in coll

    def test_remove_missing(self):
        with pytest.raises(GridError):
            AttributeCollection().remove("nope")


class TestCollectionOps:
    def test_order_preserved(self):
        coll = AttributeCollection()
        for name in ("z", "a", "m"):
            coll.add(make(name))
        assert coll.names() == ["z", "a", "m"]

    def test_subset(self):
        coll = AttributeCollection()
        for name in ("a", "b", "c"):
            coll.add(make(name))
        sub = coll.subset(["c", "a"])
        assert sub.names() == ["c", "a"]

    def test_subset_missing_raises(self):
        coll = AttributeCollection()
        coll.add(make("a"))
        with pytest.raises(GridError):
            coll.subset(["a", "x"])

    def test_copy_is_deep(self):
        coll = AttributeCollection()
        coll.add(make("a"))
        cp = coll.copy()
        cp.get("a").values[0] = 99.0
        assert coll.get("a").values[0] == 0.0

    def test_total_bytes(self):
        coll = AttributeCollection()
        coll.add(DataArray("a", np.zeros(5, dtype=np.float32)))
        coll.add(DataArray("b", np.zeros(5, dtype=np.float64)))
        assert coll.total_bytes == 20 + 40

    def test_iteration_and_contains(self):
        coll = AttributeCollection()
        coll.add(make("a"))
        coll.add(make("b"))
        assert [a.name for a in coll] == ["a", "b"]
        assert "a" in coll and "x" not in coll

    def test_equality(self):
        c1 = AttributeCollection()
        c2 = AttributeCollection()
        c1.add(make("a"))
        c2.add(make("a"))
        assert c1 == c2
        c2.add(make("b"))
        assert c1 != c2

    def test_getitem(self):
        coll = AttributeCollection()
        coll.add(make("a"))
        assert coll["a"].name == "a"
