"""Hypothesis property tests for structured-grid topology."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.grid import (
    cell_count,
    point_count,
    point_id_to_ijk,
    point_ijk_to_id,
    structured_edges,
)
from repro.grid.cells import axis_edge_counts, edge_endpoints

dims_strategy = st.tuples(st.integers(1, 9), st.integers(1, 9), st.integers(1, 9))


@given(dims=dims_strategy)
@settings(max_examples=100, deadline=None)
def test_id_ijk_bijection(dims):
    n = point_count(dims)
    ids = np.arange(n)
    ijk = point_id_to_ijk(ids, dims)
    assert np.array_equal(point_ijk_to_id(ijk, dims), ids)
    # ijk values stay in range per axis.
    for axis in range(3):
        assert ijk[:, axis].max(initial=0) < dims[axis]


@given(dims=dims_strategy)
@settings(max_examples=100, deadline=None)
def test_edge_counts_consistent(dims):
    a, b = structured_edges(dims)
    assert a.size == sum(axis_edge_counts(dims))
    # Each edge connects distinct, in-range points.
    n = point_count(dims)
    if a.size:
        assert (a != b).all()
        assert a.min() >= 0 and b.max() < n


@given(dims=dims_strategy)
@settings(max_examples=60, deadline=None)
def test_every_point_has_expected_degree(dims):
    """A point's lattice degree is the number of non-boundary directions."""
    n = point_count(dims)
    degree = np.zeros(n, dtype=np.int64)
    a, b = structured_edges(dims)
    np.add.at(degree, a, 1)
    np.add.at(degree, b, 1)
    ijk = point_id_to_ijk(np.arange(n), dims)
    expected = np.zeros(n, dtype=np.int64)
    for axis in range(3):
        if dims[axis] > 1:
            interior = (ijk[:, axis] > 0) & (ijk[:, axis] < dims[axis] - 1)
            expected += np.where(interior, 2, 1)
    assert np.array_equal(degree, expected)


@given(dims=dims_strategy)
@settings(max_examples=60, deadline=None)
def test_cell_point_relationship(dims):
    """Euler-style sanity: cells = product of per-axis spans."""
    spans = [max(d - 1, 1) for d in dims]
    assert cell_count(dims) == spans[0] * spans[1] * spans[2]
    assert point_count(dims) == dims[0] * dims[1] * dims[2]


@given(dims=dims_strategy, axis=st.integers(0, 2))
@settings(max_examples=60, deadline=None)
def test_axis_edges_stride(dims, axis):
    a, b = edge_endpoints(dims, axis)
    stride = (1, dims[0], dims[0] * dims[1])[axis]
    if a.size:
        assert np.array_equal(b - a, np.full(a.size, stride))
    expected = axis_edge_counts(dims)[axis]
    assert a.size == expected
