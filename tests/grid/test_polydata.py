"""Unit tests for CellArray and PolyData."""

import numpy as np
import pytest

from repro.errors import GridError
from repro.grid import CellArray, DataArray, PolyData


class TestCellArray:
    def test_empty(self):
        ca = CellArray()
        assert ca.num_cells == 0

    def test_from_uniform(self):
        ca = CellArray.from_uniform(np.array([[0, 1, 2], [2, 3, 4]]))
        assert ca.num_cells == 2
        assert ca.cell(1).tolist() == [2, 3, 4]

    def test_mixed_sizes(self):
        ca = CellArray(offsets=[0, 2, 5], connectivity=[0, 1, 2, 3, 4])
        assert ca.sizes().tolist() == [2, 3]
        assert ca.cell(0).tolist() == [0, 1]
        assert ca.cell(1).tolist() == [2, 3, 4]

    def test_offsets_must_start_at_zero(self):
        with pytest.raises(GridError, match="start at 0"):
            CellArray(offsets=[1, 2], connectivity=[0, 1])

    def test_offsets_must_be_monotone(self):
        with pytest.raises(GridError, match="non-decreasing"):
            CellArray(offsets=[0, 3, 2], connectivity=[0, 1, 2])

    def test_offsets_must_match_connectivity(self):
        with pytest.raises(GridError, match="connectivity"):
            CellArray(offsets=[0, 4], connectivity=[0, 1])

    def test_cell_index_range(self):
        ca = CellArray.from_uniform(np.array([[0, 1]]))
        with pytest.raises(GridError):
            ca.cell(1)

    def test_as_uniform(self):
        ca = CellArray.from_uniform(np.arange(6).reshape(2, 3))
        assert ca.as_uniform(3).shape == (2, 3)
        with pytest.raises(GridError, match="uniformly"):
            ca.as_uniform(2)

    def test_as_uniform_empty(self):
        assert CellArray().as_uniform(3).shape == (0, 3)

    def test_equality(self):
        a = CellArray.from_uniform(np.array([[0, 1, 2]]))
        b = CellArray.from_uniform(np.array([[0, 1, 2]]))
        assert a == b


class TestPolyData:
    def test_empty(self):
        pd = PolyData()
        assert pd.num_points == 0
        assert pd.num_cells == 0

    def test_points_shape_enforced(self):
        with pytest.raises(GridError, match=r"\(n, 3\)"):
            PolyData(np.zeros((4, 2)))

    def test_triangles_and_segments(self):
        pd = PolyData(np.zeros((6, 3)))
        pd.polys = CellArray.from_uniform(np.array([[0, 1, 2], [3, 4, 5]]))
        pd.lines = CellArray.from_uniform(np.array([[0, 5]]))
        assert pd.triangles().shape == (2, 3)
        assert pd.segments().shape == (1, 2)
        assert pd.num_cells == 3

    def test_validate_catches_bad_ids(self):
        pd = PolyData(np.zeros((3, 3)))
        pd.polys = CellArray.from_uniform(np.array([[0, 1, 5]]))
        with pytest.raises(GridError, match="invalid point ids"):
            pd.validate()

    def test_validate_ok(self):
        pd = PolyData(np.zeros((3, 3)))
        pd.polys = CellArray.from_uniform(np.array([[0, 1, 2]]))
        pd.validate()

    def test_point_data_sized_to_points(self):
        pd = PolyData(np.zeros((4, 3)))
        pd.point_data.add(DataArray("v", np.zeros(4)))
        with pytest.raises(GridError):
            pd.point_data.add(DataArray("w", np.zeros(5)))

    def test_set_points_resets_point_data(self):
        pd = PolyData(np.zeros((4, 3)))
        pd.point_data.add(DataArray("v", np.zeros(4)))
        pd.set_points(np.zeros((2, 3)))
        assert len(pd.point_data) == 0
        pd.point_data.add(DataArray("v", np.zeros(2)))

    def test_bounds(self):
        pd = PolyData(np.array([[0, 0, 0], [1, 2, 3]], dtype=float))
        assert pd.bounds.as_tuple() == (0, 1, 0, 2, 0, 3)
