"""Unit tests for repro.grid.bounds.Bounds."""

import numpy as np
import pytest

from repro.errors import GridError
from repro.grid import Bounds


class TestConstruction:
    def test_basic(self):
        b = Bounds(0, 1, 0, 2, 0, 3)
        assert b.lengths == (1, 2, 3)

    def test_rejects_inverted(self):
        with pytest.raises(GridError, match="inverted"):
            Bounds(1, 0, 0, 1, 0, 1)

    def test_degenerate_allowed(self):
        b = Bounds(5, 5, 0, 1, 0, 1)
        assert b.lengths[0] == 0

    def test_from_points(self):
        pts = np.array([[0, 1, 2], [3, -1, 5], [1, 1, 1]], dtype=float)
        b = Bounds.from_points(pts)
        assert b.as_tuple() == (0, 3, -1, 1, 1, 5)

    def test_from_points_empty_raises(self):
        with pytest.raises(GridError, match="zero points"):
            Bounds.from_points(np.zeros((0, 3)))


class TestGeometry:
    def test_center(self):
        assert Bounds(0, 2, 0, 4, 0, 6).center == (1, 2, 3)

    def test_diagonal(self):
        assert Bounds(0, 3, 0, 4, 0, 0).diagonal == pytest.approx(5.0)

    def test_contains(self):
        b = Bounds(0, 1, 0, 1, 0, 1)
        assert b.contains((0.5, 0.5, 0.5))
        assert b.contains((0, 0, 0))  # boundary inclusive
        assert not b.contains((1.5, 0.5, 0.5))

    def test_union(self):
        a = Bounds(0, 1, 0, 1, 0, 1)
        b = Bounds(-1, 0.5, 0.5, 2, 0, 3)
        u = a.union(b)
        assert u.as_tuple() == (-1, 1, 0, 2, 0, 3)

    def test_union_commutative(self):
        a = Bounds(0, 1, 0, 1, 0, 1)
        b = Bounds(2, 3, -5, 0, 1, 4)
        assert a.union(b) == b.union(a)
