"""Failure-injection tests: faults at every layer surface as typed errors.

The system's failure contract: any corruption, truncation, or transport
fault raises a :class:`~repro.errors.ReproError` subclass at the client —
never silent wrong data, never a foreign exception type.

Faults are injected through the deterministic harness in
:mod:`tests.faults`; the recovery behaviour built on top of these typed
errors (retry/backoff/breaker/fallback) is covered in
``tests/rpc/test_resilience.py``.
"""

import numpy as np
import pytest

from repro.core import NDPServer, ndp_contour
from repro.errors import (
    FormatError,
    IntegrityError,
    ReproError,
    RPCError,
    RPCRemoteError,
    RPCTransportError,
)
from repro.io import write_vgf
from repro.rpc import InProcessTransport, RPCClient, pack
from repro.rpc.transport import Transport
from repro.storage import MemoryBackend, ObjectStore, S3FileSystem

from tests.conftest import make_sphere_grid
from tests.faults import (
    Corrupt,
    Delay,
    Drop,
    FakeClock,
    FaultSchedule,
    FaultyBackend,
    FaultyTransport,
    Ok,
    Truncate,
    drops,
)


@pytest.fixture
def env():
    store = ObjectStore(MemoryBackend())
    store.create_bucket("sim")
    fs = S3FileSystem(store, "sim")
    fs.write_object("g.vgf", write_vgf(make_sphere_grid(10), codec="gzip"))
    server = NDPServer(fs)
    client = RPCClient(InProcessTransport(server.dispatch))
    return store, fs, server, client


class GarbageTransport(Transport):
    """Returns non-protocol bytes."""

    def request(self, payload: bytes) -> bytes:
        return b"\x93\x01\x02\x03"  # a valid msgpack array, wrong shape


class TestTransportFaults:
    def test_drop_surfaces_as_transport_error(self, env):
        _, _, server, _ = env
        schedule = FaultSchedule(drops(1))
        flaky = FaultyTransport(InProcessTransport(server.dispatch), schedule)
        client = RPCClient(flaky)
        with pytest.raises(RPCTransportError, match="injected"):
            client.call("list_objects", "")
        # The transport recovers; the client object is still usable.
        assert client.call("list_objects", "") == ["g.vgf"]
        assert schedule.log == [Drop(), Ok()]

    def test_scripted_consecutive_drops(self, env):
        """An N-consecutive-failure schedule fails exactly N times."""
        _, _, server, _ = env
        flaky = FaultyTransport(
            InProcessTransport(server.dispatch), FaultSchedule(drops(3))
        )
        client = RPCClient(flaky)
        for _ in range(3):
            with pytest.raises(RPCTransportError):
                client.call("list_objects", "")
        assert client.call("list_objects", "") == ["g.vgf"]
        assert flaky.attempts == 4

    def test_injected_delay_does_not_corrupt_results(self, env):
        """Delays cost (injected) time only; payloads are untouched."""
        _, _, server, _ = env
        clock = FakeClock()
        flaky = FaultyTransport(
            InProcessTransport(server.dispatch),
            FaultSchedule([Delay(2.5)]),
            clock,
        )
        client = RPCClient(flaky)
        assert client.call("list_objects", "") == ["g.vgf"]
        assert clock.now == 2.5
        assert clock.sleeps == []  # advanced, never slept

    def test_truncated_response_is_typed_error(self, env):
        """A response cut mid-payload must fail decoding loudly."""
        _, _, server, _ = env
        flaky = FaultyTransport(
            InProcessTransport(server.dispatch),
            FaultSchedule([Truncate(keep_bytes=6)]),
        )
        client = RPCClient(flaky)
        with pytest.raises(ReproError):
            client.call("prefilter_contour", "g.vgf", "r", [3.0])

    def test_corrupted_response_is_typed_error(self, env):
        """Bit flips in the reply can never decode into silent wrong data."""
        _, _, server, _ = env
        flaky = FaultyTransport(
            InProcessTransport(server.dispatch),
            FaultSchedule([Corrupt(offset=0, mask=0xFF)]),
        )
        client = RPCClient(flaky)
        with pytest.raises(ReproError):
            client.call("list_objects", "")

    def test_garbage_response_is_protocol_error(self):
        client = RPCClient(GarbageTransport())
        with pytest.raises(RPCError, match="invalid rpc response"):
            client.call("anything")

    def test_msgid_mismatch_detected(self, env):
        _, _, server, _ = env

        class ReplayTransport(Transport):
            def request(self, payload):
                return pack([1, 999, None, "stale"])

        client = RPCClient(ReplayTransport())
        with pytest.raises(RPCError, match="msgid"):
            client.call("list_objects", "")

    def test_seeded_random_schedule_is_reproducible(self):
        a = FaultSchedule.random(seed=42, length=20)
        b = FaultSchedule.random(seed=42, length=20)
        assert [a.next() for _ in range(20)] == [b.next() for _ in range(20)]


class TestFaultyBackendStorageLayer:
    """Faults under the server's own mount surface as remote errors."""

    def _faulty_env(self, schedule, clock=None):
        store = ObjectStore(MemoryBackend())
        store.create_bucket("sim")
        S3FileSystem(store, "sim").write_object(
            "g.vgf", write_vgf(make_sphere_grid(10), codec="gzip")
        )
        faulty_fs = S3FileSystem(FaultyBackend(store, schedule, clock), "sim")
        server = NDPServer(faulty_fs)
        return RPCClient(InProcessTransport(server.dispatch))

    def test_backend_drop_is_remote_storage_error(self):
        client = self._faulty_env(FaultSchedule([Drop("disk pulled")]))
        with pytest.raises(RPCRemoteError, match="StorageError"):
            ndp_contour(client, "g.vgf", "r", [3.0])
        # Next read passes: the server survived its storage hiccup.
        pd, _ = ndp_contour(client, "g.vgf", "r", [3.0])
        assert pd.num_points > 0

    def test_backend_truncation_is_remote_error(self):
        client = self._faulty_env(FaultSchedule([Truncate(keep_bytes=64)]))
        with pytest.raises(RPCRemoteError):
            ndp_contour(client, "g.vgf", "r", [3.0])

    def test_backend_corruption_detected_and_recovered(self):
        """Transient corruption: detected by checksum, healed by re-read.

        The first backend read is corrupted; the at-rest CRC catches it
        (``IntegrityError``), ``ndp_contour`` re-reads once, and the
        second — clean — read serves correct geometry.  The failure is
        still visible in the server's integrity counter.
        """
        client = self._faulty_env(FaultSchedule([Corrupt(offset=-10)]))
        pd, stats = ndp_contour(client, "g.vgf", "r", [3.0])
        assert pd.num_points > 0
        assert client.call("health")["integrity_failures"] >= 1

    def test_backend_corruption_is_typed_integrity_error(self):
        """Without the convenience retry, corruption is a typed loud error."""
        client = self._faulty_env(FaultSchedule([Corrupt(offset=-10)]))
        with pytest.raises(IntegrityError, match="mismatch"):
            client.call("prefilter_contour", "g.vgf", "r", [3.0])


class TestCorruptStore:
    def test_corrupt_block_is_typed_integrity_error(self, env):
        """Persistent at-rest corruption: re-read hits the same bytes, so
        the typed error propagates (IntegrityError ⊂ FormatError — the old
        contract still holds, the type just got more specific)."""
        store, fs, server, client = env
        blob = bytearray(store.get_object("sim", "g.vgf"))
        blob[-10] ^= 0xFF  # flip a byte inside the gzip block
        store.put_object("sim", "g.vgf", bytes(blob))
        with pytest.raises(FormatError, match="mismatch"):
            ndp_contour(client, "g.vgf", "r", [3.0])

    def test_truncated_object_is_remote_error(self, env):
        store, _, _, client = env
        blob = store.get_object("sim", "g.vgf")
        store.put_object("sim", "g.vgf", blob[: len(blob) // 2])
        with pytest.raises(RPCRemoteError):
            ndp_contour(client, "g.vgf", "r", [3.0])

    def test_non_vgf_object_is_remote_error(self, env):
        store, _, _, client = env
        store.put_object("sim", "junk.vgf", b"this is not a vgf file at all")
        with pytest.raises(RPCRemoteError, match="magic"):
            ndp_contour(client, "junk.vgf", "r", [3.0])

    def test_client_side_corrupt_read_is_format_error(self, env):
        store, fs, _, _ = env
        from repro.io.vgf import read_vgf

        blob = bytearray(store.get_object("sim", "g.vgf"))
        blob[-10] ^= 0xFF
        with pytest.raises(FormatError):
            read_vgf(bytes(blob))


class TestCorruptSelectionWire:
    def test_tampered_reply_detected(self, env):
        """Bit flips in the selection payload cannot decode silently."""
        _, _, server, client = env
        encoded = client.call(
            "prefilter_contour", "g.vgf", "r", [3.0], "cell-closure", "auto", "lz4"
        )
        tampered = dict(encoded)
        payload = bytearray(tampered["values"])
        payload[len(payload) // 2] ^= 0xFF
        tampered["values"] = bytes(payload)
        from repro.core.encoding import decode_selection

        with pytest.raises(ReproError):
            decode_selection(tampered)

    def test_truncated_id_stream_detected(self, env):
        _, _, server, client = env
        encoded = client.call(
            "prefilter_contour", "g.vgf", "r", [3.0], "cell-closure", "ids", "raw"
        )
        tampered = dict(encoded)
        tampered["id_deltas"] = tampered["id_deltas"][:-4]
        from repro.core.encoding import decode_selection

        with pytest.raises(FormatError):
            decode_selection(tampered)


class TestServerRobustness:
    def test_bad_arguments_do_not_kill_server(self, env):
        _, _, server, client = env
        for bad_call in (
            lambda: client.call("prefilter_contour", "g.vgf", "r", [], "cell-closure"),
            lambda: client.call("prefilter_contour", "g.vgf", "r", ["NaN"], "cell-closure"),
            lambda: client.call("prefilter_slice", "g.vgf", "r", 9, 0.0),
            lambda: client.call("prefilter_threshold", "g.vgf", "r", 5.0, 1.0),
        ):
            with pytest.raises(RPCRemoteError):
                bad_call()
        # Server still healthy afterwards — ask it directly.
        assert client.call("health")["status"] == "ok"
        pd, _ = ndp_contour(client, "g.vgf", "r", [3.0])
        assert pd.num_points > 0
