"""Tests for the command-line interface."""

import threading

import pytest

from repro.cli import main


@pytest.fixture
def store(tmp_path):
    root = str(tmp_path / "store")
    rc = main([
        "generate", "asteroid", "--store", root, "--dim", "24",
        "--codec", "lz4", "--arrays", "v02",
    ])
    assert rc == 0
    return root


class TestGenerate:
    def test_asteroid_objects_written(self, store, capsys):
        rc = main(["info", "--store", store])
        assert rc == 0
        out = capsys.readouterr().out
        assert out.count("asteroid/ts") == 9
        assert "v02[lz4" in out

    def test_nyx(self, tmp_path, capsys):
        root = str(tmp_path / "nyx")
        assert main([
            "generate", "nyx", "--store", root, "--dim", "24",
            "--arrays", "baryon_density",
        ]) == 0
        assert main(["info", "--store", root]) == 0
        assert "baryon_density" in capsys.readouterr().out


class TestInfo:
    def test_empty_store(self, tmp_path, capsys):
        root = str(tmp_path / "empty")
        main(["generate", "asteroid", "--store", root, "--dim", "24",
              "--arrays", "v02"])
        rc = main(["info", "--store", root, "--prefix", "nonexistent/"])
        assert rc == 1

    def test_prefix_filter(self, store, capsys):
        main(["info", "--store", store, "--prefix", "asteroid/ts00000"])
        out = capsys.readouterr().out
        assert out.count("asteroid/ts") == 1


class TestContour:
    def test_local_mode(self, store, capsys):
        rc = main([
            "contour", "--store", store, "--key", "asteroid/ts00000.vgf",
            "--array", "v02", "--values", "0.1,0.5",
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "triangles" in out
        assert "transferred" in out

    def test_render_output(self, store, tmp_path, capsys):
        frame = str(tmp_path / "frame.ppm")
        rc = main([
            "contour", "--store", store, "--key", "asteroid/ts24006.vgf",
            "--array", "v02", "--values", "0.1", "--render", frame,
            "--width", "64", "--height", "48",
        ])
        assert rc == 0
        with open(frame, "rb") as fh:
            assert fh.read(2) == b"P6"

    def test_requires_target(self, store, capsys):
        rc = main([
            "contour", "--key", "k", "--array", "a", "--values", "0.1",
        ])
        assert rc == 2

    def test_over_tcp(self, store, capsys):
        # Start the server in a thread with a short timeout, grab the port.
        from repro.core.ndp_server import NDPServer
        from repro.storage.object_store import DirectoryBackend, ObjectStore
        from repro.storage.s3fs import S3FileSystem

        fs = S3FileSystem(ObjectStore(DirectoryBackend(store)), "sim")
        listener = NDPServer(fs).serve_tcp()
        try:
            rc = main([
                "contour", "--connect", f"{listener.host}:{listener.port}",
                "--key", "asteroid/ts00000.vgf", "--array", "v02",
                "--values", "0.1",
            ])
            assert rc == 0
        finally:
            listener.stop()


class TestResilienceFlags:
    @staticmethod
    def _dead_port() -> int:
        import socket

        s = socket.socket()
        s.bind(("127.0.0.1", 0))
        port = s.getsockname()[1]
        s.close()
        return port

    def test_unreachable_server_falls_back_to_store(self, store, capsys):
        rc = main([
            "contour", "--connect", f"127.0.0.1:{self._dead_port()}",
            "--store", store, "--fallback",
            "--key", "asteroid/ts00000.vgf", "--array", "v02",
            "--values", "0.1", "--retries", "1", "--deadline", "5",
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "contour:" in out
        assert "baseline fallback" in out

    def test_fallback_flag_requires_store(self, capsys):
        rc = main([
            "contour", "--connect", "127.0.0.1:1", "--fallback",
            "--key", "k", "--array", "a", "--values", "0.1",
        ])
        assert rc == 2
        assert "--fallback needs --store" in capsys.readouterr().err

    def test_health_subcommand_against_live_server(self, store, capsys):
        from repro.core.ndp_server import NDPServer
        from repro.storage.object_store import DirectoryBackend, ObjectStore
        from repro.storage.s3fs import S3FileSystem

        fs = S3FileSystem(ObjectStore(DirectoryBackend(store)), "sim")
        listener = NDPServer(fs).serve_tcp()
        try:
            rc = main(["health", "--connect",
                       f"{listener.host}:{listener.port}"])
        finally:
            listener.stop()
        assert rc == 0
        assert "status: ok" in capsys.readouterr().out

    def test_health_subcommand_unreachable(self, capsys):
        rc = main([
            "health", "--connect", f"127.0.0.1:{self._dead_port()}",
            "--retries", "1", "--deadline", "2",
        ])
        assert rc == 1
        assert "unreachable" in capsys.readouterr().out


class TestServe:
    def test_serve_with_timeout(self, store, capsys):
        done = []

        def run():
            done.append(main([
                "serve", "--store", store, "--port", "0",
                "--timeout", "0.3",
            ]))

        t = threading.Thread(target=run)
        t.start()
        t.join(timeout=10)
        assert not t.is_alive()
        assert done == [0]
        assert "NDP server on" in capsys.readouterr().out


class TestTraceOut:
    def test_contour_writes_chrome_trace(self, store, tmp_path, capsys):
        import json

        trace = str(tmp_path / "trace.json")
        rc = main([
            "contour", "--store", store, "--key", "asteroid/ts00000.vgf",
            "--array", "v02", "--values", "0.1", "--trace-out", trace,
        ])
        assert rc == 0
        assert "trace events" in capsys.readouterr().out
        events = json.loads(open(trace).read())["traceEvents"]
        names = {e["name"] for e in events}
        # The end-to-end request tree: client AND server phases present.
        assert {"ndp.contour", "rpc.call", "rpc.dispatch",
                "store.read", "prefilter", "postfilter"} <= names
        # Both processes announced as separate tracks.
        procs = {e["args"]["name"] for e in events if e["ph"] == "M"}
        assert procs == {"client", "server"}

    def test_contour_writes_jsonl(self, store, tmp_path):
        import json

        trace = str(tmp_path / "trace.jsonl")
        rc = main([
            "contour", "--store", store, "--key", "asteroid/ts00000.vgf",
            "--array", "v02", "--values", "0.1", "--trace-out", trace,
        ])
        assert rc == 0
        spans = [json.loads(line) for line in open(trace)]
        assert any(s["name"] == "ndp.contour" for s in spans)
        # One merged tree: every parent_id resolves inside the file.
        ids = {s["span_id"] for s in spans}
        roots = [s for s in spans if s["parent_id"] is None]
        assert len(roots) == 1
        for s in spans:
            assert s["parent_id"] is None or s["parent_id"] in ids


class TestStatsSubcommand:
    def test_stats_against_live_server(self, store, capsys):
        from repro.core.ndp_server import NDPServer
        from repro.storage.object_store import DirectoryBackend, ObjectStore
        from repro.storage.s3fs import S3FileSystem

        fs = S3FileSystem(ObjectStore(DirectoryBackend(store)), "sim")
        server = NDPServer(fs, cache_bytes=2**20)
        listener = server.serve_tcp()
        try:
            addr = f"{listener.host}:{listener.port}"
            # Generate one request so the counters are non-zero.
            assert main([
                "contour", "--connect", addr,
                "--key", "asteroid/ts00000.vgf", "--array", "v02",
                "--values", "0.1",
            ]) == 0
            capsys.readouterr()
            rc = main(["stats", "--connect", addr])
            out = capsys.readouterr().out
            assert rc == 0
            assert "requests: 1" in out
            assert "reduction" in out
            assert "latency (wall): count=1" in out
            assert "array_cache: hit_rate" in out
        finally:
            listener.stop()

    def test_stats_prometheus_output(self, store, capsys):
        from repro.core.ndp_server import NDPServer
        from repro.storage.object_store import DirectoryBackend, ObjectStore
        from repro.storage.s3fs import S3FileSystem

        fs = S3FileSystem(ObjectStore(DirectoryBackend(store)), "sim")
        listener = NDPServer(fs).serve_tcp()
        try:
            addr = f"{listener.host}:{listener.port}"
            rc = main(["stats", "--connect", addr, "--prom"])
        finally:
            listener.stop()
        out = capsys.readouterr().out
        assert rc == 0
        assert "# TYPE repro_requests_total counter" in out
        assert "# HELP repro_requests_total" in out
        assert "# TYPE repro_request_latency_seconds histogram" in out
        assert 'repro_request_latency_seconds_bucket{le="+Inf"} 0' in out

    def test_stats_unreachable(self, capsys):
        rc = main([
            "stats", "--connect",
            f"127.0.0.1:{TestResilienceFlags._dead_port()}",
            "--retries", "1", "--deadline", "2",
        ])
        assert rc == 1
        assert "unreachable" in capsys.readouterr().out


class TestInfoStats:
    def test_stats_flag_prints_ranges(self, store, capsys):
        rc = main(["info", "--store", store, "--stats",
                   "--prefix", "asteroid/ts00000"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "min=" in out and "max=" in out and "mean=" in out

    def test_selection_blobs_do_not_break_info(self, store, capsys):
        # Precompute a selection next to the data; info must skip it.
        from repro.core.insitu import precompute_selections
        from repro.storage import DirectoryBackend, ObjectStore, S3FileSystem

        fs = S3FileSystem(ObjectStore(DirectoryBackend(store)), "sim")
        precompute_selections(fs, "asteroid/ts00000.vgf", ["v02"], [0.1])
        rc = main(["info", "--store", store])
        assert rc == 0
        out = capsys.readouterr().out
        assert ".sel/" not in out


class TestVerifySubcommand:
    def test_clean_store_verifies(self, store, capsys):
        rc = main(["verify", "--store", store])
        out = capsys.readouterr().out
        assert rc == 0
        assert "OK" in out
        assert "0 corrupt" in out

    def test_corrupt_object_detected(self, store, tmp_path, capsys):
        import glob

        victim = sorted(glob.glob(store + "/sim/asteroid/*.vgf"))[0]
        blob = bytearray(open(victim, "rb").read())
        blob[-10] ^= 0xFF
        open(victim, "wb").write(bytes(blob))
        rc = main(["verify", "--store", store])
        out = capsys.readouterr().out
        assert rc == 1
        assert "CORRUPT" in out
        assert "mismatch" in out

    def test_empty_store_is_an_error(self, tmp_path, capsys):
        rc = main(["generate", "asteroid", "--store", str(tmp_path / "s"),
                   "--dim", "16", "--arrays", "v02"])
        assert rc == 0
        rc = main(["verify", "--store", str(tmp_path / "s"),
                   "--prefix", "no/such/prefix"])
        assert rc == 1
        assert "no .vgf objects" in capsys.readouterr().out


class TestServeRobustnessFlags:
    def test_serve_accepts_admission_and_drain_flags(self, store, capsys):
        done = []

        def run():
            done.append(main([
                "serve", "--store", store, "--port", "0", "--timeout", "0.3",
                "--max-inflight", "4", "--max-pending", "2",
                "--drain-timeout", "1.0", "--verify-checksums", "on",
                "--max-connections", "8",
            ]))

        t = threading.Thread(target=run)
        t.start()
        t.join(timeout=15)
        assert not t.is_alive()
        assert done == [0]
        out = capsys.readouterr().out
        assert "max_inflight=4" in out
        assert "stopped (clean" in out


def _live_listeners(store, n=2):
    """Start n NDP servers over one store; returns (listeners, addrs)."""
    from repro.core.ndp_server import NDPServer
    from repro.storage.object_store import DirectoryBackend, ObjectStore
    from repro.storage.s3fs import S3FileSystem

    listeners = []
    for _ in range(n):
        fs = S3FileSystem(ObjectStore(DirectoryBackend(store)), "sim")
        listeners.append(NDPServer(fs, cache_bytes=2**20).serve_tcp())
    return listeners, [f"{ls.host}:{ls.port}" for ls in listeners]


class TestMultiAddress:
    def test_stats_merged_across_endpoints(self, store, capsys):
        listeners, addrs = _live_listeners(store, 2)
        try:
            # One request against each shard so merged counters read 2.
            for addr in addrs:
                assert main([
                    "contour", "--connect", addr,
                    "--key", "asteroid/ts00000.vgf", "--array", "v02",
                    "--values", "0.1",
                ]) == 0
            capsys.readouterr()
            rc = main(["stats", "--connect", ",".join(addrs)])
            out = capsys.readouterr().out
            assert rc == 0
            assert "stats for 2/2 endpoint(s), merged:" in out
            assert "requests: 2" in out
            assert "latency (wall): count=2" in out
        finally:
            for ls in listeners:
                ls.stop()

    def test_stats_partial_failure_still_merges(self, store, capsys):
        listeners, addrs = _live_listeners(store, 1)
        dead = f"127.0.0.1:{TestResilienceFlags._dead_port()}"
        try:
            rc = main(["stats", "--connect", f"{addrs[0]},{dead}",
                       "--retries", "1", "--deadline", "2"])
            out = capsys.readouterr().out
            assert rc == 1  # partial coverage is not a clean exit
            assert f"unreachable: {dead}:" in out
            assert "stats for 1/2 endpoint(s), merged:" in out
        finally:
            listeners[0].stop()

    def test_health_table_across_endpoints(self, store, capsys):
        listeners, addrs = _live_listeners(store, 2)
        dead = f"127.0.0.1:{TestResilienceFlags._dead_port()}"
        try:
            rc = main(["health", "--connect", ",".join(addrs + [dead]),
                       "--retries", "1", "--deadline", "2"])
            out = capsys.readouterr().out
            assert rc == 1
            assert "ADDRESS" in out and "BURNING" in out
            for addr in addrs:
                assert addr in out
            assert "unreachable" in out
            assert "2/3 healthy" in out
        finally:
            for ls in listeners:
                ls.stop()

    def test_bad_address_spec_is_usage_error(self, capsys):
        assert main(["stats", "--connect", "noport"]) == 2
        assert main(["health", "--connect", ""]) == 2
        assert "bad address" in capsys.readouterr().err


class TestDumpSubcommand:
    def test_dump_pulls_ring_and_writes_local_jsonl(self, store, tmp_path,
                                                    capsys):
        import json

        listeners, addrs = _live_listeners(store, 1)
        try:
            assert main([
                "contour", "--connect", addrs[0],
                "--key", "asteroid/ts00000.vgf", "--array", "v02",
                "--values", "0.1",
            ]) == 0
            capsys.readouterr()
            out_path = str(tmp_path / "dump.jsonl")
            rc = main(["dump", "--connect", addrs[0], "--out", out_path])
            out = capsys.readouterr().out
            assert rc == 0
            assert "event(s); server-side dump:" in out
            assert f"wrote {out_path}" in out
            lines = [json.loads(line) for line in open(out_path)]
            assert lines[0]["kind"] == "flightrec.header"
            kinds = {e["kind"] for e in lines[1:]}
            assert "request.begin" in kinds
            assert "phase" in kinds  # the request's phase timeline rode along
        finally:
            listeners[0].stop()

    def test_dump_unreachable(self, capsys):
        dead = f"127.0.0.1:{TestResilienceFlags._dead_port()}"
        rc = main(["dump", "--connect", dead, "--retries", "1",
                   "--deadline", "2"])
        assert rc == 1
        assert "unreachable" in capsys.readouterr().out


class TestProfSubcommand:
    def test_prof_reports_profiler_state(self, store, tmp_path, capsys):
        listeners, addrs = _live_listeners(store, 1)
        try:
            out_path = str(tmp_path / "prof.collapsed")
            rc = main(["prof", "--connect", addrs[0], "--out", out_path])
            out = capsys.readouterr().out
            assert rc == 0
            # serve_tcp does not arm the profiler thread by itself until
            # serve(); the endpoint still answers with a valid snapshot.
            assert ("samples @" in out) or ("profiler disabled" in out)
        finally:
            listeners[0].stop()


class TestTopSubcommand:
    def test_top_once_json(self, store, capsys):
        import json

        listeners, addrs = _live_listeners(store, 2)
        try:
            rc = main(["top", "--connect", ",".join(addrs), "--once",
                       "--json"])
            out = capsys.readouterr().out
            assert rc == 0
            view = json.loads(out)
            assert view["totals"]["shards"] == 2
            assert view["totals"]["reachable"] == 2
            assert {s["address"] for s in view["shards"]} == set(addrs)
        finally:
            for ls in listeners:
                ls.stop()

    def test_top_reports_unreachable_with_rc_1(self, capsys):
        dead = f"127.0.0.1:{TestResilienceFlags._dead_port()}"
        rc = main(["top", "--connect", dead, "--once", "--json"])
        assert rc == 1
