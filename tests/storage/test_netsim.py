"""Unit tests for the simulated clock, devices, links, and testbed."""

import pytest

from repro.errors import ReproError
from repro.storage import (
    PAPER_TESTBED,
    CodecTiming,
    DeviceModel,
    LinkModel,
    SimClock,
    Testbed,
)
from repro.storage.netsim import MB


class TestSimClock:
    def test_starts_at_zero(self):
        assert SimClock().now == 0.0

    def test_advance_accumulates(self):
        clock = SimClock()
        clock.advance(1.5)
        clock.advance(0.5)
        assert clock.now == 2.0

    def test_negative_rejected(self):
        with pytest.raises(ReproError):
            SimClock().advance(-1)

    def test_reset(self):
        clock = SimClock()
        clock.advance(3)
        clock.reset()
        assert clock.now == 0.0


class TestDeviceModel:
    def test_read_cost(self):
        clock = SimClock()
        dev = DeviceModel(clock, bandwidth_bps=100 * MB, latency_s=0.001)
        dev.read(50 * MB)
        assert clock.now == pytest.approx(0.501)

    def test_counters(self):
        dev = DeviceModel(SimClock(), 1e6)
        dev.read(100)
        dev.read(200)
        assert dev.total_bytes == 300
        assert dev.total_requests == 2
        dev.reset_counters()
        assert dev.total_bytes == 0

    def test_zero_byte_read_pays_latency(self):
        clock = SimClock()
        DeviceModel(clock, 1e6, latency_s=0.01).read(0)
        assert clock.now == pytest.approx(0.01)

    def test_invalid_params(self):
        with pytest.raises(ReproError):
            DeviceModel(SimClock(), 0)
        with pytest.raises(ReproError):
            DeviceModel(SimClock(), 1e6, latency_s=-1)

    def test_negative_read(self):
        with pytest.raises(ReproError):
            DeviceModel(SimClock(), 1e6).read(-1)

    def test_link_charge_alias(self):
        clock = SimClock()
        link = LinkModel(clock, 1e6)
        link.charge(1e6)
        assert clock.now == pytest.approx(1.0)


class TestTestbed:
    def test_paper_defaults_baseline_raw_12s(self):
        """The calibration anchor: a 500 MB raw array loads in ~12 s."""
        tb = PAPER_TESTBED()
        size = 500 * MB
        tb.ssd.read(size)
        tb.net.charge(size)
        assert 11.0 < tb.clock.now < 13.0

    def test_ndp_lower_bound_near_ssd_time(self):
        """NDP raw speedup is bounded by local read time (paper Sec. VI)."""
        tb = PAPER_TESTBED()
        size = 500 * MB
        tb.ssd.read(size)
        tb.net.charge(size)
        baseline = tb.clock.now
        tb.reset()
        tb.ssd.read(size)
        tb.charge_filter_scan(size)
        ndp = tb.clock.now
        assert 2.2 < baseline / ndp < 3.0

    def test_codec_timing_lookup(self):
        tb = Testbed()
        assert isinstance(tb.codec_timing("gzip"), CodecTiming)
        with pytest.raises(ReproError, match="zstd"):
            tb.codec_timing("zstd")

    def test_gzip_decompress_slower_than_lz4(self):
        tb = Testbed()
        size = 100 * MB
        tb.charge_decompress("gzip", size)
        gzip_t = tb.clock.now
        tb.reset()
        tb.charge_decompress("lz4", size)
        assert tb.clock.now < gzip_t

    def test_raw_decompress_free(self):
        tb = Testbed()
        tb.charge_decompress("raw", 10**9)
        assert tb.clock.now == 0.0

    def test_reset_clears_everything(self):
        tb = Testbed()
        tb.ssd.read(1000)
        tb.net.charge(1000)
        tb.reset()
        assert tb.clock.now == 0.0
        assert tb.ssd.total_bytes == 0
        assert tb.net.total_bytes == 0

    def test_charge_compress(self):
        tb = Testbed()
        tb.charge_compress("gzip", 60 * MB)
        assert tb.clock.now == pytest.approx(1.0)
