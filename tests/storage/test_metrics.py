"""Unit tests for byte counters and phase timers."""

import pytest

from repro.errors import ReproError
from repro.storage import (
    ByteCounter,
    LoadBreakdown,
    PhaseTimer,
    ResilienceStats,
    SimClock,
)


class TestByteCounter:
    def test_accumulates_by_category(self):
        c = ByteCounter()
        c.add("net", 100)
        c.add("net", 50)
        c.add("ssd", 10)
        assert c.get("net") == 150
        assert c.total == 160
        assert c.as_dict() == {"net": 150, "ssd": 10}

    def test_missing_category_zero(self):
        assert ByteCounter().get("x") == 0

    def test_negative_rejected(self):
        with pytest.raises(ReproError):
            ByteCounter().add("net", -1)

    def test_thread_safety_under_concurrent_adds(self):
        # The unlocked get+assign in add() used to lose increments when
        # several TCP connection threads recorded bytes concurrently.
        import threading

        c = ByteCounter()

        def hammer():
            for _ in range(1000):
                c.add("net", 1)

        threads = [threading.Thread(target=hammer) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert c.get("net") == 8000
        assert c.total == 8000


class TestLoadBreakdown:
    def test_add_and_total(self):
        b = LoadBreakdown()
        b.add("read", 1.0)
        b.add("read", 0.5)
        b.add("decompress", 0.25)
        assert b.phases["read"] == 1.5
        assert b.total == 1.75

    def test_negative_rejected(self):
        with pytest.raises(ReproError):
            LoadBreakdown().add("read", -0.1)

    def test_merge(self):
        a = LoadBreakdown({"read": 1.0})
        b = LoadBreakdown({"read": 2.0, "net": 3.0})
        merged = a.merge(b)
        assert merged.phases == {"read": 3.0, "net": 3.0}
        assert a.phases == {"read": 1.0}  # inputs untouched

    def test_repr(self):
        b = LoadBreakdown({"read": 1.0})
        assert "read" in repr(b)


class TestPhaseTimer:
    def test_attributes_clock_deltas(self):
        clock = SimClock()
        timer = PhaseTimer(clock)
        with timer.phase("read"):
            clock.advance(2.0)
        with timer.phase("net"):
            clock.advance(1.0)
        with timer.phase("read"):
            clock.advance(0.5)
        assert timer.breakdown.phases == {"read": 2.5, "net": 1.0}

    def test_nothing_advanced_is_zero(self):
        timer = PhaseTimer(SimClock())
        with timer.phase("idle"):
            pass
        assert timer.breakdown.phases["idle"] == 0.0

    def test_nested_phases_do_not_double_count(self):
        # A nested phase() used to attribute its interval to BOTH the
        # inner and the outer phase, inflating the breakdown total past
        # the real clock interval.  Each phase now records exclusive
        # (self) time, so the total matches the clock exactly.
        clock = SimClock()
        timer = PhaseTimer(clock)
        with timer.phase("load"):
            clock.advance(1.0)
            with timer.phase("decompress"):
                clock.advance(3.0)
            clock.advance(0.5)
        assert timer.breakdown.phases == {"load": 1.5, "decompress": 3.0}
        assert timer.breakdown.total == pytest.approx(clock.now)

    def test_deep_nesting_sums_to_clock(self):
        clock = SimClock()
        timer = PhaseTimer(clock)
        with timer.phase("a"):
            clock.advance(1.0)
            with timer.phase("b"):
                clock.advance(1.0)
                with timer.phase("c"):
                    clock.advance(1.0)
                clock.advance(1.0)
            clock.advance(1.0)
        assert timer.breakdown.phases == {"a": 2.0, "b": 2.0, "c": 1.0}
        assert timer.breakdown.total == pytest.approx(5.0)

    def test_nested_sibling_phases(self):
        clock = SimClock()
        timer = PhaseTimer(clock)
        with timer.phase("outer"):
            with timer.phase("read"):
                clock.advance(2.0)
            with timer.phase("filter"):
                clock.advance(1.0)
        assert timer.breakdown.phases == {"outer": 0.0, "read": 2.0, "filter": 1.0}

    def test_nested_repeated_name_accumulates_exclusive(self):
        clock = SimClock()
        timer = PhaseTimer(clock)
        for _ in range(2):
            with timer.phase("load"):
                clock.advance(0.5)
                with timer.phase("io"):
                    clock.advance(1.0)
        assert timer.breakdown.phases == {"load": 1.0, "io": 2.0}


class TestResilienceStats:
    def test_records_and_reads_events(self):
        s = ResilienceStats()
        s.record("retries")
        s.record("retries")
        s.record("fallback_bytes", 4096)
        assert s.get("retries") == 2
        assert s.get("fallback_bytes") == 4096
        assert s.get("unknown") == 0
        assert s.as_dict() == {"retries": 2, "fallback_bytes": 4096}
        assert "retries=2" in repr(s)

    def test_negative_count_rejected(self):
        with pytest.raises(ReproError):
            ResilienceStats().record("retries", -1)

    def test_fallback_rate(self):
        s = ResilienceStats()
        assert s.fallback_rate == 0.0  # no traffic yet
        s.record("ndp_successes", 3)
        s.record("fallbacks", 1)
        assert s.fallback_rate == pytest.approx(0.25)

    def test_thread_safety_under_concurrent_records(self):
        import threading

        s = ResilienceStats()

        def hammer():
            for _ in range(1000):
                s.record("attempts")

        threads = [threading.Thread(target=hammer) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert s.get("attempts") == 8000
