"""Unit tests for byte counters and phase timers."""

import pytest

from repro.errors import ReproError
from repro.storage import ByteCounter, LoadBreakdown, PhaseTimer, SimClock


class TestByteCounter:
    def test_accumulates_by_category(self):
        c = ByteCounter()
        c.add("net", 100)
        c.add("net", 50)
        c.add("ssd", 10)
        assert c.get("net") == 150
        assert c.total == 160
        assert c.as_dict() == {"net": 150, "ssd": 10}

    def test_missing_category_zero(self):
        assert ByteCounter().get("x") == 0

    def test_negative_rejected(self):
        with pytest.raises(ReproError):
            ByteCounter().add("net", -1)


class TestLoadBreakdown:
    def test_add_and_total(self):
        b = LoadBreakdown()
        b.add("read", 1.0)
        b.add("read", 0.5)
        b.add("decompress", 0.25)
        assert b.phases["read"] == 1.5
        assert b.total == 1.75

    def test_negative_rejected(self):
        with pytest.raises(ReproError):
            LoadBreakdown().add("read", -0.1)

    def test_merge(self):
        a = LoadBreakdown({"read": 1.0})
        b = LoadBreakdown({"read": 2.0, "net": 3.0})
        merged = a.merge(b)
        assert merged.phases == {"read": 3.0, "net": 3.0}
        assert a.phases == {"read": 1.0}  # inputs untouched

    def test_repr(self):
        b = LoadBreakdown({"read": 1.0})
        assert "read" in repr(b)


class TestPhaseTimer:
    def test_attributes_clock_deltas(self):
        clock = SimClock()
        timer = PhaseTimer(clock)
        with timer.phase("read"):
            clock.advance(2.0)
        with timer.phase("net"):
            clock.advance(1.0)
        with timer.phase("read"):
            clock.advance(0.5)
        assert timer.breakdown.phases == {"read": 2.5, "net": 1.0}

    def test_nothing_advanced_is_zero(self):
        timer = PhaseTimer(SimClock())
        with timer.phase("idle"):
            pass
        assert timer.breakdown.phases["idle"] == 0.0
