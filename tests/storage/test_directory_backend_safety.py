"""Path-safety and robustness tests for the directory backend."""

import os

import pytest

from repro.errors import NoSuchObjectError, StorageError
from repro.storage import DirectoryBackend, ObjectStore


@pytest.fixture
def store(tmp_path):
    s = ObjectStore(DirectoryBackend(str(tmp_path / "root")))
    s.create_bucket("b")
    return s, str(tmp_path)


class TestKeySafety:
    @pytest.mark.parametrize(
        "key",
        [
            "../escape",
            "a/../../escape",
            "..",
            "/absolute",
            "",
            "bad key with spaces",
            "semi;colon",
        ],
    )
    def test_hostile_keys_rejected(self, store, key):
        s, root = store
        with pytest.raises(StorageError):
            s.put_object("b", key, b"x")
        # Nothing escaped the store root.
        outside = os.path.join(root, "escape")
        assert not os.path.exists(outside)

    @pytest.mark.parametrize("bucket", ["../up", "", ".hidden;rm"])
    def test_hostile_buckets_rejected(self, store, bucket):
        s, _ = store
        with pytest.raises(StorageError):
            s.create_bucket(bucket)

    def test_nested_keys_allowed(self, store):
        s, _ = store
        s.put_object("b", "a/b/c/deep.bin", b"ok")
        assert s.get_object("b", "a/b/c/deep.bin") == b"ok"

    def test_dots_inside_names_allowed(self, store):
        s, _ = store
        s.put_object("b", "ts0.vgf.sel/v02/x", b"ok")
        assert s.head_object("b", "ts0.vgf.sel/v02/x") == 2


class TestAtomicity:
    def test_overwrite_never_leaves_partial(self, store):
        """put_object writes via a temp file + rename."""
        s, _ = store
        s.put_object("b", "k", b"first-version")
        s.put_object("b", "k", b"second")
        assert s.get_object("b", "k") == b"second"
        assert s.list_objects("b") == ["k"]  # no stray .tmp entries

    def test_delete_then_get(self, store):
        s, _ = store
        s.put_object("b", "k", b"x")
        s.delete_object("b", "k")
        with pytest.raises(NoSuchObjectError):
            s.get_object("b", "k")
        # Re-put after delete works.
        s.put_object("b", "k", b"y")
        assert s.get_object("b", "k") == b"y"
