"""WAN link models: named profiles, asymmetry, latency-once pipelining.

The link model used to charge propagation latency per ranged GET, which
made a chunked read of a big object pay hundreds of fake round trips —
wildly wrong over a 35 ms WAN hop.  :meth:`LinkModel.request` scopes a
logical request so pipelined chunks pay latency once; these tests pin
that arithmetic and the named asymmetric WAN profiles built on it.
"""

import pytest

from repro.errors import ReproError
from repro.rpc import InProcessTransport, RPCClient, RPCServer
from repro.rpc.transport import ThrottledTransport
from repro.storage import MemoryBackend, ObjectStore, S3FileSystem
from repro.storage.netsim import (
    MB,
    LinkModel,
    SimClock,
    WAN_PROFILES,
    WanProfile,
    wan_link_pair,
)


class TestWanProfiles:
    def test_named_presets_exist(self):
        assert {"lan", "wan-metro", "wan-cross-country",
                "wan-transatlantic"} <= set(WAN_PROFILES)

    def test_wan_profiles_are_asymmetric(self):
        for name in ("wan-metro", "wan-cross-country", "wan-transatlantic"):
            profile = WAN_PROFILES[name]
            assert profile.down_bps > profile.up_bps

    def test_latency_ordering_matches_distance(self):
        lat = {name: WAN_PROFILES[name].one_way_latency_s
               for name in WAN_PROFILES}
        assert (lat["lan"] < lat["wan-metro"]
                < lat["wan-cross-country"] < lat["wan-transatlantic"])

    def test_rtt_is_twice_one_way(self):
        profile = WAN_PROFILES["wan-cross-country"]
        assert profile.rtt_s == pytest.approx(2 * profile.one_way_latency_s)

    def test_link_pair_carries_directional_bandwidth(self):
        clock = SimClock()
        up, down = wan_link_pair("wan-metro", clock)
        profile = WAN_PROFILES["wan-metro"]
        assert up.bandwidth_bps == profile.up_bps
        assert down.bandwidth_bps == profile.down_bps
        assert up.latency_s == down.latency_s == profile.one_way_latency_s

    def test_link_pair_accepts_profile_object(self):
        custom = WanProfile("custom", 0.001, 1 * MB, 2 * MB)
        up, down = wan_link_pair(custom, SimClock())
        assert up.bandwidth_bps == 1 * MB
        assert down.bandwidth_bps == 2 * MB

    def test_unknown_profile_rejected(self):
        with pytest.raises(ReproError, match="unknown WAN profile"):
            wan_link_pair("wan-lunar", SimClock())

    def test_round_trip_cost_over_pair(self):
        clock = SimClock()
        up, down = wan_link_pair("wan-cross-country", clock)
        up.charge(1000)
        down.charge(100_000)
        profile = WAN_PROFILES["wan-cross-country"]
        expected = (profile.rtt_s + 1000 / profile.up_bps
                    + 100_000 / profile.down_bps)
        assert clock.now == pytest.approx(expected)


class TestLatencyOncePipelining:
    def test_scoped_charges_pay_latency_once(self):
        clock = SimClock()
        link = LinkModel(clock, bandwidth_bps=1 * MB, latency_s=0.035)
        with link.request():
            for _ in range(3):
                link.charge(1 * MB)
        assert clock.now == pytest.approx(0.035 + 3.0)

    def test_unscoped_charges_pay_latency_each(self):
        clock = SimClock()
        link = LinkModel(clock, bandwidth_bps=1 * MB, latency_s=0.035)
        for _ in range(3):
            link.charge(1 * MB)
        assert clock.now == pytest.approx(3 * 0.035 + 3.0)

    def test_scope_resets_between_requests(self):
        clock = SimClock()
        link = LinkModel(clock, bandwidth_bps=1 * MB, latency_s=0.01)
        for _ in range(2):
            with link.request():
                link.charge(1 * MB)
        assert clock.now == pytest.approx(2 * 0.01 + 2.0)

    def test_nested_scopes_still_pay_once(self):
        clock = SimClock()
        link = LinkModel(clock, bandwidth_bps=1 * MB, latency_s=0.01)
        with link.request():
            link.charge(1 * MB)
            with link.request():
                link.charge(1 * MB)
        assert clock.now == pytest.approx(0.01 + 2.0)

    def test_chunked_object_read_charges_latency_once(self):
        # A 4-chunk read through the s3fs layer is ONE logical request:
        # 1 latency + bandwidth, not 4 latencies.
        clock = SimClock()
        link = LinkModel(clock, bandwidth_bps=10 * MB, latency_s=0.035)
        store = ObjectStore(MemoryBackend())
        store.create_bucket("sim")
        fs = S3FileSystem(store, "sim", link=link, chunk_bytes=1 * MB)
        payload = bytes(4 * MB)
        store.put_object("sim", "big.bin", payload)
        with fs.open("big.bin") as fh:
            assert fh.read() == payload
        assert link.total_requests == 1  # chunks folded into one request
        assert clock.now == pytest.approx(0.035 + 4 * MB / (10 * MB))

    def test_separate_reads_are_separate_requests(self):
        clock = SimClock()
        link = LinkModel(clock, bandwidth_bps=10 * MB, latency_s=0.035)
        store = ObjectStore(MemoryBackend())
        store.create_bucket("sim")
        fs = S3FileSystem(store, "sim", link=link, chunk_bytes=1 * MB)
        store.put_object("sim", "big.bin", bytes(2 * MB))
        with fs.open("big.bin") as fh:
            fh.read(1 * MB)
            fh.read(1 * MB)
        # two read() calls = two pipelined requests = two latencies
        assert clock.now == pytest.approx(2 * 0.035 + 2 * MB / (10 * MB))


class TestThrottledTransport:
    def test_request_pays_rtt_plus_transfer(self):
        slept = []
        server = RPCServer({"echo": lambda x: x})
        transport = ThrottledTransport(
            InProcessTransport(server.dispatch),
            WAN_PROFILES["wan-cross-country"],
            sleep=slept.append,
        )
        client = RPCClient(transport)
        assert client.call("echo", "x" * 1000) == "x" * 1000
        assert len(slept) == 2  # one delay per direction
        profile = WAN_PROFILES["wan-cross-country"]
        assert sum(slept) > profile.rtt_s

    def test_send_pays_uplink_only(self):
        slept = []
        server = RPCServer({"note": lambda x: None})
        transport = ThrottledTransport(
            InProcessTransport(server.dispatch),
            WAN_PROFILES["wan-metro"],
            sleep=slept.append,
        )
        transport.send(b"x" * 100)
        assert len(slept) == 1
