"""Unit tests for the s3fs-substitute file layer."""

import io

import pytest

from repro.errors import StorageError
from repro.storage import MemoryBackend, ObjectStore, S3FileSystem, SimClock
from repro.storage.netsim import LinkModel


@pytest.fixture
def fs():
    store = ObjectStore(MemoryBackend())
    store.create_bucket("b")
    store.put_object("b", "k", bytes(range(256)) * 100)  # 25600 bytes
    return S3FileSystem(store, "b", chunk_bytes=1000)


class TestFileReads:
    def test_read_all(self, fs):
        assert fs.read_object("k") == bytes(range(256)) * 100

    def test_sequential_reads(self, fs):
        with fs.open("k") as fh:
            assert fh.read(3) == b"\x00\x01\x02"
            assert fh.read(2) == b"\x03\x04"

    def test_seek_and_tell(self, fs):
        with fs.open("k") as fh:
            fh.seek(256)
            assert fh.tell() == 256
            assert fh.read(2) == b"\x00\x01"
            fh.seek(-1, io.SEEK_END)
            assert fh.read() == b"\xff"
            fh.seek(-2, io.SEEK_CUR)
            assert fh.read(1) == b"\xfe"

    def test_seek_negative_rejected(self, fs):
        with fs.open("k") as fh:
            with pytest.raises(StorageError):
                fh.seek(-5)

    def test_read_past_end(self, fs):
        with fs.open("k") as fh:
            fh.seek(25590)
            assert len(fh.read(100)) == 10

    def test_cross_chunk_read(self, fs):
        with fs.open("k") as fh:
            fh.seek(990)
            data = fh.read(20)  # spans chunks 0 and 1
            assert data == (bytes(range(256)) * 100)[990:1010]

    def test_size(self, fs):
        assert fs.size("k") == 25600
        with fs.open("k") as fh:
            assert fh.size == 25600

    def test_exists(self, fs):
        assert fs.exists("k")
        assert not fs.exists("missing")

    def test_listdir(self, fs):
        assert fs.listdir() == ["k"]

    def test_write_object(self, fs):
        fs.write_object("new", b"fresh")
        assert fs.read_object("new") == b"fresh"


class TestChunking:
    def test_chunk_fetch_count(self):
        store = ObjectStore(MemoryBackend())
        store.create_bucket("b")
        store.put_object("b", "k", b"z" * 10_000)
        fetches = []
        original = store.get_object

        def counting_get(bucket, key, offset=0, length=None):
            fetches.append((offset, length))
            return original(bucket, key, offset, length)

        store.get_object = counting_get
        fs = S3FileSystem(store, "b", chunk_bytes=4000)
        assert fs.read_object("k") == b"z" * 10_000
        assert len(fetches) == 3  # ceil(10000 / 4000)

    def test_cache_avoids_refetch(self):
        store = ObjectStore(MemoryBackend())
        store.create_bucket("b")
        store.put_object("b", "k", b"z" * 1000)
        count = [0]
        original = store.get_object

        def counting_get(*a, **kw):
            count[0] += 1
            return original(*a, **kw)

        store.get_object = counting_get
        fs = S3FileSystem(store, "b", chunk_bytes=4096)
        with fs.open("k") as fh:
            fh.read(10)
            fh.seek(0)
            fh.read(10)
            fh.seek(500)
            fh.read(100)
        assert count[0] == 1  # one chunk covers everything

    def test_invalid_chunk_size(self):
        store = ObjectStore(MemoryBackend())
        with pytest.raises(StorageError):
            S3FileSystem(store, "b", chunk_bytes=0)


class TestLinkCharging:
    def test_remote_mount_charges_link(self):
        clock = SimClock()
        link = LinkModel(clock, bandwidth_bps=1e6)
        store = ObjectStore(MemoryBackend())
        store.create_bucket("b")
        store.put_object("b", "k", b"x" * 500_000)
        fs = S3FileSystem(store, "b", link=link, chunk_bytes=100_000)
        fs.read_object("k")
        assert link.total_bytes == 500_000
        assert clock.now == pytest.approx(0.5, rel=0.01)

    def test_local_mount_charges_nothing(self):
        clock = SimClock()
        store = ObjectStore(MemoryBackend())
        store.create_bucket("b")
        store.put_object("b", "k", b"x" * 500_000)
        fs = S3FileSystem(store, "b", link=None)
        fs.read_object("k")
        assert clock.now == 0.0

    def test_partial_read_charges_fetched_chunks_only(self):
        link = LinkModel(SimClock(), 1e6)
        store = ObjectStore(MemoryBackend())
        store.create_bucket("b")
        store.put_object("b", "k", b"x" * 1_000_000)
        fs = S3FileSystem(store, "b", link=link, chunk_bytes=100_000)
        with fs.open("k") as fh:
            fh.seek(500_000)
            fh.read(10)
        assert link.total_bytes == 100_000  # exactly one chunk

    def test_write_charges_link(self):
        link = LinkModel(SimClock(), 1e6)
        store = ObjectStore(MemoryBackend())
        store.create_bucket("b")
        fs = S3FileSystem(store, "b", link=link)
        fs.write_object("k", b"y" * 1000)
        assert link.total_bytes == 1000


class TestExistsErrorDiscrimination:
    """``exists`` may only answer False for typed not-found errors.

    A store outage (connection refused, auth failure, flaky disk) must
    propagate: swallowing it would make an outage indistinguishable from
    an empty bucket and silently route callers down the wrong path.
    """

    class _BrokenStore:
        def head_object(self, bucket, key):
            raise StorageError("injected: store unreachable")

    def test_not_found_is_false(self):
        store = ObjectStore(MemoryBackend())
        store.create_bucket("b")
        fs = S3FileSystem(store, "b")
        assert fs.exists("nope") is False

    def test_missing_bucket_is_false(self):
        fs = S3FileSystem(ObjectStore(MemoryBackend()), "no-such-bucket")
        assert fs.exists("anything") is False

    def test_store_failure_propagates(self):
        fs = S3FileSystem(self._BrokenStore(), "b")
        with pytest.raises(StorageError, match="unreachable"):
            fs.exists("key")
