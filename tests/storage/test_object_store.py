"""Unit tests for the object store and its backends."""

import pytest

from repro.errors import NoSuchBucketError, NoSuchObjectError, StorageError
from repro.rpc import RPCClient
from repro.storage import DirectoryBackend, MemoryBackend, ObjectStore, SimClock
from repro.storage.netsim import DeviceModel
from repro.storage.object_store import ObjectStoreServer, RemoteObjectStore


@pytest.fixture(params=["memory", "directory"])
def store(request, tmp_path):
    if request.param == "memory":
        backend = MemoryBackend()
    else:
        backend = DirectoryBackend(str(tmp_path / "objects"))
    s = ObjectStore(backend)
    s.create_bucket("data")
    return s


class TestCRUD:
    def test_put_get(self, store):
        store.put_object("data", "a/b.bin", b"payload")
        assert store.get_object("data", "a/b.bin") == b"payload"

    def test_ranged_get(self, store):
        store.put_object("data", "k", b"0123456789")
        assert store.get_object("data", "k", offset=2, length=3) == b"234"
        assert store.get_object("data", "k", offset=8) == b"89"
        assert store.get_object("data", "k", offset=20) == b""

    def test_head(self, store):
        store.put_object("data", "k", b"12345")
        assert store.head_object("data", "k") == 5

    def test_overwrite(self, store):
        store.put_object("data", "k", b"one")
        store.put_object("data", "k", b"two")
        assert store.get_object("data", "k") == b"two"

    def test_delete(self, store):
        store.put_object("data", "k", b"x")
        store.delete_object("data", "k")
        with pytest.raises(NoSuchObjectError):
            store.get_object("data", "k")

    def test_delete_missing(self, store):
        with pytest.raises(NoSuchObjectError):
            store.delete_object("data", "missing")

    def test_missing_object(self, store):
        with pytest.raises(NoSuchObjectError):
            store.get_object("data", "missing")
        with pytest.raises(NoSuchObjectError):
            store.head_object("data", "missing")

    def test_missing_bucket(self, store):
        with pytest.raises(NoSuchBucketError):
            store.get_object("nope", "k")

    def test_list_with_prefix(self, store):
        for key in ("ts0/a", "ts0/b", "ts1/a"):
            store.put_object("data", key, b"x")
        assert store.list_objects("data", "ts0/") == ["ts0/a", "ts0/b"]
        assert len(store.list_objects("data")) == 3

    def test_bucket_exists(self, store):
        assert store.bucket_exists("data")
        assert not store.bucket_exists("other")

    def test_invalid_names(self, store):
        with pytest.raises(StorageError):
            store.put_object("data", "../escape", b"x")
        with pytest.raises(StorageError):
            store.put_object("bad name!", "k", b"x")
        with pytest.raises(StorageError):
            store.put_object("data", "", b"x")

    def test_invalid_range(self, store):
        store.put_object("data", "k", b"x")
        with pytest.raises(StorageError):
            store.get_object("data", "k", offset=-1)


class TestDeviceAccounting:
    def test_reads_charged(self):
        clock = SimClock()
        dev = DeviceModel(clock, bandwidth_bps=1e6)
        s = ObjectStore(MemoryBackend(), device=dev)
        s.create_bucket("b")
        s.put_object("b", "k", b"x" * 500_000)
        written = dev.total_bytes
        s.get_object("b", "k")
        assert dev.total_bytes == written + 500_000
        assert clock.now > 0

    def test_ranged_read_charges_range_only(self):
        dev = DeviceModel(SimClock(), 1e6)
        s = ObjectStore(MemoryBackend(), device=dev)
        s.create_bucket("b")
        s.put_object("b", "k", b"x" * 1000)
        dev.reset_counters()
        s.get_object("b", "k", offset=0, length=100)
        assert dev.total_bytes == 100


class TestDirectoryBackendSpecifics:
    def test_persistence_across_instances(self, tmp_path):
        root = str(tmp_path / "store")
        s1 = ObjectStore(DirectoryBackend(root))
        s1.create_bucket("b")
        s1.put_object("b", "deep/key.bin", b"persisted")
        s2 = ObjectStore(DirectoryBackend(root))
        assert s2.get_object("b", "deep/key.bin") == b"persisted"
        assert s2.list_objects("b") == ["deep/key.bin"]

    def test_tmp_files_not_listed(self, tmp_path):
        root = tmp_path / "store"
        backend = DirectoryBackend(str(root))
        backend.create_bucket("b")
        (root / "b" / "junk.tmp").write_bytes(b"partial")
        assert backend.list_keys("b", "") == []


class TestRemoteProxy:
    def test_remote_store_over_rpc(self):
        s = ObjectStore(MemoryBackend())
        s.create_bucket("b")
        s.put_object("b", "k", b"remote!")
        server = ObjectStoreServer(s)
        remote = RemoteObjectStore(RPCClient.in_process(server.rpc))
        assert remote.get_object("b", "k") == b"remote!"
        assert remote.head_object("b", "k") == 7
        assert remote.list_objects("b") == ["k"]
        remote.put_object("b", "k2", b"via rpc")
        assert s.get_object("b", "k2") == b"via rpc"

    def test_remote_ranged_get(self):
        s = ObjectStore(MemoryBackend())
        s.create_bucket("b")
        s.put_object("b", "k", b"0123456789")
        server = ObjectStoreServer(s)
        remote = RemoteObjectStore(RPCClient.in_process(server.rpc))
        assert remote.get_object("b", "k", 3, 4) == b"3456"
