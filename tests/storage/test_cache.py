"""Unit tests for the storage-side single-flight LRU caches."""

import threading

import pytest

from repro.errors import ReproError
from repro.storage import ArrayCache, CacheStats, SelectionCache, SingleFlightCache


class TestBasics:
    def test_miss_then_hit(self):
        calls = []
        cache = SingleFlightCache(1024)
        v1 = cache.get_or_load("k", lambda: calls.append(1) or b"abc")
        v2 = cache.get_or_load("k", lambda: calls.append(2) or b"xyz")
        assert v1 == v2 == b"abc"
        assert calls == [1]
        assert cache.stats.as_dict() == {
            "hits": 1, "misses": 1, "evictions": 0, "coalesced": 0,
        }

    def test_distinct_keys_load_separately(self):
        cache = SingleFlightCache(1024)
        assert cache.get_or_load("a", lambda: b"1") == b"1"
        assert cache.get_or_load("b", lambda: b"2") == b"2"
        assert len(cache) == 2

    def test_invalid_budget(self):
        with pytest.raises(ReproError, match="budget"):
            SingleFlightCache(0)

    def test_invalidate_and_clear(self):
        cache = SingleFlightCache(1024)
        cache.get_or_load("k", lambda: b"abc")
        assert cache.invalidate("k")
        assert not cache.invalidate("k")
        cache.get_or_load("k", lambda: b"abc")
        cache.clear()
        assert len(cache) == 0
        assert cache.current_bytes == 0

    def test_peek_does_not_count_a_hit(self):
        cache = SingleFlightCache(1024)
        cache.get_or_load("k", lambda: b"abc")
        assert cache.peek("k") == b"abc"
        assert cache.peek("missing") is None
        assert cache.stats.get("hits") == 0

    def test_info_shape(self):
        cache = SingleFlightCache(1024, name="c")
        cache.get_or_load("k", lambda: b"abcd")
        info = cache.info()
        assert info["enabled"] is True
        assert info["entries"] == 1
        assert info["current_bytes"] == 4
        assert info["max_bytes"] == 1024
        assert info["misses"] == 1


class TestEviction:
    def test_lru_evicts_oldest(self):
        cache = SingleFlightCache(10)
        cache.get_or_load("a", lambda: b"xxxx")  # 4 bytes
        cache.get_or_load("b", lambda: b"yyyy")  # 4 bytes
        cache.get_or_load("a", lambda: b"?")     # touch a: b is now LRU
        cache.get_or_load("c", lambda: b"zzzz")  # 12 > 10: evict b
        assert cache.peek("a") is not None
        assert cache.peek("b") is None
        assert cache.peek("c") is not None
        assert cache.stats.get("evictions") == 1
        assert cache.current_bytes == 8

    def test_oversize_value_is_not_cached(self):
        cache = SingleFlightCache(4)
        cache.get_or_load("big", lambda: b"12345678")
        assert cache.peek("big") is None
        assert cache.current_bytes == 0
        # ...but it is still returned to the caller, and recomputed next time.
        calls = []
        cache.get_or_load("big2", lambda: calls.append(1) or b"12345678")
        cache.get_or_load("big2", lambda: calls.append(2) or b"12345678")
        assert calls == [1, 2]

    def test_byte_budget_respected(self):
        cache = SingleFlightCache(100)
        for i in range(50):
            cache.get_or_load(i, lambda: b"0123456789")
        assert cache.current_bytes <= 100
        assert len(cache) == 10


class TestSingleFlight:
    def test_concurrent_identical_loads_coalesce(self):
        """N threads missing on one key run the loader exactly once."""
        cache = SingleFlightCache(1 << 20)
        n = 6
        gate = threading.Event()
        in_loader = threading.Event()
        calls = []

        def loader():
            calls.append(threading.get_ident())
            in_loader.set()
            gate.wait(5.0)  # hold the flight open until followers queue up
            return b"value"

        results = []
        errors = []

        def worker():
            try:
                results.append(cache.get_or_load("k", loader))
            except Exception as exc:  # pragma: no cover - failure reporting
                errors.append(exc)

        leader = threading.Thread(target=worker)
        leader.start()
        assert in_loader.wait(5.0)
        followers = [threading.Thread(target=worker) for _ in range(n - 1)]
        for t in followers:
            t.start()
        # Followers must register as coalesced waiters before release.
        deadline = threading.Event()
        for _ in range(100):
            if cache.stats.get("coalesced") == n - 1:
                break
            deadline.wait(0.02)
        gate.set()
        leader.join(5.0)
        for t in followers:
            t.join(5.0)

        assert not errors
        assert results == [b"value"] * n
        assert len(calls) == 1
        stats = cache.stats.as_dict()
        assert stats["misses"] == 1
        assert stats["coalesced"] == n - 1

    def test_loader_error_propagates_to_all_waiters_and_is_not_cached(self):
        cache = SingleFlightCache(1 << 20)
        gate = threading.Event()
        in_loader = threading.Event()

        def failing_loader():
            in_loader.set()
            gate.wait(5.0)
            raise ValueError("boom")

        caught = []

        def worker():
            try:
                cache.get_or_load("k", failing_loader)
            except ValueError as exc:
                caught.append(str(exc))

        threads = [threading.Thread(target=worker) for _ in range(3)]
        threads[0].start()
        assert in_loader.wait(5.0)
        for t in threads[1:]:
            t.start()
        for _ in range(100):
            if cache.stats.get("coalesced") == 2:
                break
            threading.Event().wait(0.02)
        gate.set()
        for t in threads:
            t.join(5.0)

        assert caught == ["boom"] * 3
        assert cache.peek("k") is None
        # The key is loadable again after the failed flight.
        assert cache.get_or_load("k", lambda: b"ok") == b"ok"


class TestSpecializedCaches:
    def test_array_cache_sizes_by_raw_bytes(self):
        class Entry:
            raw_bytes = 4096

        cache = ArrayCache(10_000)
        cache.get_or_load("k", lambda: ("grid", Entry()))
        assert cache.current_bytes == 4096

    def test_selection_cache_sizes_reply_dicts(self):
        cache = SelectionCache(10_000)
        cache.get_or_load("k", lambda: {"payload": b"x" * 100, "count": 7})
        assert cache.current_bytes >= 100


class TestCacheStats:
    def test_unknown_event_rejected(self):
        stats = CacheStats()
        with pytest.raises(ReproError, match="unknown cache event"):
            stats.record("nope")

    def test_get_unknown_event_rejected(self):
        # get() used to silently return 0 for a typo'd event name while
        # record() raised; both directions now share the same contract.
        stats = CacheStats()
        with pytest.raises(ReproError, match="unknown cache event"):
            stats.get("hit")  # singular typo for "hits"
        assert stats.get("hits") == 0

    def test_negative_rejected(self):
        with pytest.raises(ReproError):
            CacheStats().record("hits", -1)

    def test_hit_rate(self):
        stats = CacheStats()
        assert stats.hit_rate == 0.0
        stats.record("misses")
        stats.record("hits", 2)
        stats.record("coalesced")
        assert stats.hit_rate == pytest.approx(3 / 4)
