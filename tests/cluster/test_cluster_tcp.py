"""Scatter–gather over real TCP: 3 shard servers, one cluster client.

This is the integration shape the CI ``cluster`` job runs: every shard
is a real :meth:`NDPServer.serve_tcp` listener on its own port, the pool
dials them all, and the gathered contour must be byte-equal to the
baseline.
"""

import pytest

from repro.cluster import ClusterClient, load_manifest, shard_object
from repro.core.ndp_server import NDPServer
from repro.filters import contour_grid
from repro.rpc.pool import EndpointPool
from repro.io import write_vgf
from repro.storage.object_store import MemoryBackend, ObjectStore
from repro.storage.s3fs import S3FileSystem

from tests.cluster.test_stitch import assert_poly_bytes_equal
from tests.conftest import make_wave_grid

SHARDS = 3


@pytest.fixture
def tcp_cluster():
    store = ObjectStore(MemoryBackend())
    store.create_bucket("sim")
    fs = S3FileSystem(store, "sim")
    grid = make_wave_grid(16)
    fs.write_object("w.vgf", write_vgf(grid, codec="lz4"))
    shard_object(fs, "w.vgf", blocks=(1, 3, 1), shards=SHARDS)
    servers = [NDPServer(fs) for _ in range(SHARDS)]
    listeners = [s.serve_tcp() for s in servers]
    try:
        yield fs, grid, listeners
    finally:
        for listener in listeners:
            listener.stop()


def test_tcp_scatter_gather_matches_baseline(tcp_cluster):
    fs, grid, listeners = tcp_cluster
    manifest = load_manifest(fs, "w.manifest.json")
    pool = EndpointPool.connect_tcp(
        [f"{ln.host}:{ln.port}" for ln in listeners]
    )
    with ClusterClient(pool, manifest, fallback_fs=fs) as cluster:
        result, stats = cluster.contour("f", [0.2])
    reference = contour_grid(grid, "f", [0.2])
    assert_poly_bytes_equal(result, reference)
    assert stats["shards_queried"] == SHARDS
    assert stats["fallback_blocks"] == 0
    assert stats["wire_bytes"] > 0


def test_tcp_repeated_requests_reuse_connections(tcp_cluster):
    fs, grid, listeners = tcp_cluster
    manifest = load_manifest(fs, "w.manifest.json")
    pool = EndpointPool.connect_tcp(
        [(ln.host, ln.port) for ln in listeners]
    )
    with ClusterClient(pool, manifest) as cluster:
        first, _ = cluster.contour("f", [0.2])
        second, _ = cluster.contour("f", [0.2])
    assert_poly_bytes_equal(first, second)


def test_tcp_one_listener_stopped_degrades_gracefully(tcp_cluster):
    fs, grid, listeners = tcp_cluster
    manifest = load_manifest(fs, "w.manifest.json")
    pool = EndpointPool.connect_tcp(
        [f"{ln.host}:{ln.port}" for ln in listeners]
    )
    listeners[1].stop()
    with ClusterClient(pool, manifest, fallback_fs=fs) as cluster:
        result, stats = cluster.contour("f", [0.2])
    assert_poly_bytes_equal(result, contour_grid(grid, "f", [0.2]))
    assert stats["fallback_blocks"] == 1


def test_tcp_shard_dead_at_connect_time_degrades(tcp_cluster):
    """A shard that is down when the pool is BUILT must also degrade.

    ``connect_tcp`` dials lazily, so the dead endpoint surfaces as a
    retryable per-call error absorbed by the fallback — not as a
    constructor failure that takes the healthy shards with it.
    """
    import socket

    fs, grid, listeners = tcp_cluster
    manifest = load_manifest(fs, "w.manifest.json")
    probe = socket.socket()
    probe.bind(("127.0.0.1", 0))
    dead_port = probe.getsockname()[1]
    probe.close()
    addresses = [f"{ln.host}:{ln.port}" for ln in listeners]
    addresses[2] = f"127.0.0.1:{dead_port}"
    pool = EndpointPool.connect_tcp(addresses)  # must not raise
    with ClusterClient(pool, manifest, fallback_fs=fs) as cluster:
        result, stats = cluster.contour("f", [0.2])
    assert_poly_bytes_equal(result, contour_grid(grid, "f", [0.2]))
    assert stats["fallback_blocks"] == 1
    assert "cannot connect" in stats["last_fallback_reason"]
