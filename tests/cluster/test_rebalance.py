"""Hot-shard detection and re-replication planning.

Plans must be pure data and deterministic — same manifest + same loads
in, same chain rewrites out — because two operators running ``repro
rebalance`` concurrently resolve their race through the stale-plan
check in :func:`apply_plan`, not through luck.
"""

import pytest

from repro.cluster import (
    ShardLoad,
    apply_plan,
    load_manifest,
    loads_from_manifest,
    loads_from_polls,
    plan_rebalance,
    shard_object,
)
from repro.errors import ReproError
from repro.filters import contour_grid
from repro.io import write_vgf
from repro.storage.object_store import MemoryBackend, ObjectStore
from repro.storage.s3fs import S3FileSystem

from tests.conftest import make_wave_grid

SHARDS = 4


@pytest.fixture
def cluster():
    store = ObjectStore(MemoryBackend())
    store.create_bucket("sim")
    fs = S3FileSystem(store, "sim")
    grid = make_wave_grid(16)
    fs.write_object("w.vgf", write_vgf(grid, codec="lz4"))
    manifest = shard_object(fs, "w.vgf", blocks=(2, 2, 2), shards=SHARDS,
                            replicas=2)
    return fs, manifest


def flat_loads(*scores):
    return {i: ShardLoad(i, float(s)) for i, s in enumerate(scores)}


class TestPlanning:
    def test_balanced_cluster_plans_no_moves(self, cluster):
        _, manifest = cluster
        plan = plan_rebalance(manifest, loads=flat_loads(10, 10, 10, 10))
        assert plan.empty
        assert plan.hot_shards == ()
        assert plan.map_version == manifest.map_version

    def test_plan_is_deterministic(self, cluster):
        _, manifest = cluster
        loads = flat_loads(100, 10, 10, 10)
        a = plan_rebalance(manifest, loads=loads)
        b = plan_rebalance(manifest, loads=loads)
        assert [m.to_dict() for m in a.moves] == [m.to_dict() for m in b.moves]

    def test_pad_chains_to_target_replicas(self, cluster):
        _, manifest = cluster
        plan = plan_rebalance(manifest, replicas=3,
                              loads=flat_loads(1, 1, 1, 1))
        assert plan.replicas == 3
        assert len(plan.moves) == len(manifest.block_objects)
        for move in plan.moves:
            assert len(move.after) == 3
            assert move.after[:2] == move.before  # pad appends, never reorders
            assert len(set(move.after)) == 3

    def test_truncate_chains_to_smaller_target(self, cluster):
        _, manifest = cluster
        plan = plan_rebalance(manifest, replicas=1,
                              loads=flat_loads(1, 1, 1, 1))
        for move in plan.moves:
            assert move.after == move.before[:1]

    def test_hot_shard_rotates_primaries_to_cool_replicas(self, cluster):
        _, manifest = cluster
        loads = flat_loads(500, 1, 1, 1)
        plan = plan_rebalance(manifest, loads=loads)
        assert plan.hot_shards == (0,)
        rotated = [m for m in plan.moves
                   if m.before[0] == 0 and m.after[0] != 0]
        assert rotated, "hot shard 0 kept every primary"
        for move in rotated:
            # Rotation re-heads the chain; membership is unchanged.
            assert set(move.after) == set(move.before)
            assert move.after[0] in move.before[1:]

    def test_replicas_out_of_range_is_typed(self, cluster):
        _, manifest = cluster
        with pytest.raises(ReproError):
            plan_rebalance(manifest, replicas=0)
        with pytest.raises(ReproError):
            plan_rebalance(manifest, replicas=SHARDS + 1)

    def test_loads_from_manifest_counts_primaries(self, cluster):
        _, manifest = cluster
        loads = loads_from_manifest(manifest)
        assert sum(load.score for load in loads.values()) == len(
            manifest.block_objects
        )

    def test_loads_from_polls_reads_counters_and_p99(self):
        polls = [
            {"address": "a:1", "snapshot": {
                "counters": {"requests": 42},
                "histograms": {"request_latency_seconds": {
                    "count": 10, "sum": 1.0,
                    "buckets": [{"le": 0.1, "count": 9},
                                {"le": "+Inf", "count": 1}],
                }},
            }},
            {"address": "b:2", "error": "RPCTransportError: down"},
        ]
        loads = loads_from_polls(polls)
        assert loads[0].score == 42.0
        assert loads[0].p99 > 0
        # Unreachable shard: not serving, so by definition not hot.
        assert loads[1].score == 0.0


class TestApply:
    def test_apply_bumps_generation_and_rewrites_chains(self, cluster):
        fs, manifest = cluster
        plan = plan_rebalance(manifest, replicas=3,
                              loads=flat_loads(1, 1, 1, 1))
        fresh = apply_plan(fs, manifest, plan)
        assert fresh.map_version == manifest.map_version + 1
        assert fresh.replication_factor == 3
        for bo in fresh.block_objects:
            assert bo.shard == bo.replicas[0]
        # And it round-trips through storage.
        loaded = load_manifest(fs, manifest.manifest_key)
        assert loaded.map_version == fresh.map_version
        assert loaded.replication_factor == 3

    def test_stale_plan_is_rejected(self, cluster):
        fs, manifest = cluster
        plan_a = plan_rebalance(manifest, replicas=3,
                                loads=flat_loads(1, 1, 1, 1))
        fresh = apply_plan(fs, manifest, plan_a)
        # A second operator computed against generation 1; the manifest
        # is now at generation 2 — their plan must not clobber it.
        plan_b = plan_rebalance(manifest, replicas=2,
                                loads=flat_loads(9, 1, 1, 1))
        with pytest.raises(ReproError, match="stale"):
            apply_plan(fs, fresh, plan_b)

    def test_applied_plan_still_contours_byte_identically(self, cluster):
        fs, manifest = cluster
        grid = make_wave_grid(16)
        reference = contour_grid(grid, "f", [0.2])
        plan = plan_rebalance(manifest, replicas=3,
                              loads=flat_loads(500, 1, 1, 1))
        apply_plan(fs, manifest, plan)

        from repro.cluster import ClusterClient
        from repro.core.ndp_server import NDPServer
        from repro.rpc.pool import EndpointPool
        from repro.rpc.transport import InProcessTransport

        from tests.cluster.test_stitch import assert_poly_bytes_equal

        fresh = load_manifest(fs, manifest.manifest_key)
        pool = EndpointPool([
            InProcessTransport(NDPServer(fs).rpc.dispatch)
            for _ in range(SHARDS)
        ])
        result, stats = ClusterClient(pool, fresh).contour("f", [0.2])
        assert_poly_bytes_equal(result, reference)
        assert stats["replicas"] == 3
        assert stats["map_version"] == 2
