"""Selection stitching: rebase, seam dedup, and the bit-identity property.

The Hypothesis test is the load-bearing one (ISSUE satellite): marching
cubes over random grids split at random block boundaries, stitched, must
be **byte-equal** — points, polys, and point-data — to contouring the
unsplit grid.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.cluster import (
    empty_selection,
    partition_grid,
    extract_block,
    rebase_block_selection,
    stitch_selections,
)
from repro.core import postfilter_contour, prefilter_contour
from repro.errors import SelectionError
from repro.filters import contour_grid
from repro.grid import DataArray, UniformGrid
from repro.grid.selection import PointSelection

from tests.conftest import make_wave_grid


def assert_poly_bytes_equal(a, b):
    assert a.points.dtype == b.points.dtype
    assert a.points.tobytes() == b.points.tobytes()
    assert a.polys.connectivity.tobytes() == b.polys.connectivity.tobytes()
    assert a.polys.offsets.tobytes() == b.polys.offsets.tobytes()
    a_arrays = list(a.point_data)
    b_arrays = list(b.point_data)
    assert [x.name for x in a_arrays] == [y.name for y in b_arrays]
    for x, y in zip(a_arrays, b_arrays):
        assert x.values.dtype == y.values.dtype
        assert x.values.tobytes() == y.values.tobytes()


def split_prefilter_stitch(grid, blocks, values, mode="cell-closure"):
    """Per-block pre-filter + stitch; the monolithic pipeline's rival."""
    specs = partition_grid(grid.dims, blocks)
    pairs = [
        (spec, prefilter_contour(extract_block(grid, spec), "f", values,
                                 mode=mode))
        for spec in specs
    ]
    axes = getattr(grid, "axes", None)
    origin = (0.0, 0.0, 0.0) if axes is not None else grid.origin
    spacing = (1.0, 1.0, 1.0) if axes is not None else grid.spacing
    dtype = grid.point_data.get("f").values.dtype
    return stitch_selections(pairs, grid.dims, origin, spacing, "f", dtype,
                             axes=axes)


class TestRebase:
    def test_identity_rebase(self):
        grid = make_wave_grid(8)
        sel = prefilter_contour(grid, "f", [0.2])
        out = sel.rebase(grid.dims, (0, 0, 0))
        assert out == sel

    def test_translates_ids(self):
        sel = PointSelection(
            (2, 2, 2), (0, 0, 0), (1, 1, 1), "f",
            np.array([0, 3, 7]), np.array([1.0, 2.0, 3.0], dtype=np.float32),
        )
        out = sel.rebase((4, 4, 4), (1, 1, 1))
        # (0,0,0)->(1,1,1)=21; (1,1,0)->(2,2,1)=26; (1,1,1)->(2,2,2)=42
        np.testing.assert_array_equal(out.ids, [21, 26, 42])
        assert out.values.tobytes() == sel.values.tobytes()
        # Shifting the origin back keeps world coordinates identical.
        assert out.origin == (-1.0, -1.0, -1.0)

    def test_preserves_sorted_order(self):
        rng = np.random.default_rng(5)
        ids = np.unique(rng.integers(0, 5 * 4 * 3, 20))
        sel = PointSelection(
            (5, 4, 3), (0, 0, 0), (1, 1, 1), "f", ids,
            rng.standard_normal(ids.size).astype(np.float32),
        )
        out = sel.rebase((9, 9, 9), (2, 3, 4))
        assert (np.diff(out.ids) > 0).all()

    def test_rejects_overflow(self):
        sel = PointSelection(
            (4, 4, 4), (0, 0, 0), (1, 1, 1), "f",
            np.array([0]), np.array([1.0], dtype=np.float32),
        )
        with pytest.raises(SelectionError):
            sel.rebase((5, 5, 5), (2, 0, 0))
        with pytest.raises(SelectionError):
            sel.rebase((8, 8, 8), (-1, 0, 0))


class TestStitch:
    def test_equals_monolithic_prefilter(self):
        grid = make_wave_grid(12)
        mono = prefilter_contour(grid, "f", [0.2])
        for blocks in [(1, 1, 1), (2, 2, 2), (3, 1, 2)]:
            assert split_prefilter_stitch(grid, blocks, [0.2]) == mono

    def test_edge_mode_also_stitches(self):
        grid = make_wave_grid(10)
        mono = prefilter_contour(grid, "f", [0.2], mode="edge")
        stitched = split_prefilter_stitch(grid, (2, 2, 1), [0.2], mode="edge")
        assert stitched == mono

    def test_gather_order_does_not_matter(self):
        grid = make_wave_grid(10)
        specs = partition_grid(grid.dims, (2, 2, 1))
        pairs = [
            (s, prefilter_contour(extract_block(grid, s), "f", [0.2]))
            for s in specs
        ]
        forward = stitch_selections(pairs, grid.dims, grid.origin,
                                    grid.spacing, "f", np.float64)
        backward = stitch_selections(pairs[::-1], grid.dims, grid.origin,
                                     grid.spacing, "f", np.float64)
        assert forward == backward

    def test_empty_gather_yields_empty_selection(self):
        out = stitch_selections([], (4, 4, 4), (0, 0, 0), (1, 1, 1), "f",
                                np.float32)
        assert out.count == 0
        assert out.values.dtype == np.float32
        poly = postfilter_contour(out, [0.5])
        assert poly.num_points == 0

    def test_empty_selection_structure(self):
        sel = empty_selection((3, 3, 3), (1, 2, 3), (1, 1, 1), "f", "<f4")
        assert sel.dims == (3, 3, 3) and sel.count == 0
        assert sel.values.dtype == np.dtype("<f4")

    def test_mismatched_block_dims_rejected(self):
        grid = make_wave_grid(8)
        specs = partition_grid(grid.dims, (2, 1, 1))
        sel = prefilter_contour(extract_block(grid, specs[0]), "f", [0.2])
        with pytest.raises(SelectionError):
            rebase_block_selection(sel, specs[1], grid.dims, grid.origin,
                                   grid.spacing)


# ---------------------------------------------------------------------------
# The property: split anywhere, stitch, contour — byte-equal to unsplit.
# ---------------------------------------------------------------------------

field_elements = st.floats(
    min_value=-10.0, max_value=10.0, allow_nan=False, allow_infinity=False,
    width=32,
)

fields_3d = arrays(
    dtype=np.float32,
    shape=st.tuples(st.integers(4, 10), st.integers(4, 10), st.integers(4, 10)),
    elements=field_elements,
)


@st.composite
def field_and_blocks(draw):
    field = draw(fields_3d)
    nz, ny, nx = field.shape
    blocks = tuple(
        draw(st.integers(1, min(3, n - 1))) for n in (nx, ny, nz)
    )
    values = draw(
        st.lists(st.floats(-9.5, 9.5, allow_nan=False, width=32),
                 min_size=1, max_size=3)
    )
    return field, blocks, values


@given(field_and_blocks())
@settings(max_examples=60, deadline=None)
def test_random_split_contour_is_byte_equal(case):
    field, blocks, values = case
    nz, ny, nx = field.shape
    grid = UniformGrid((nx, ny, nz))
    grid.point_data.add(DataArray("f", field.reshape(-1)))

    reference = contour_grid(grid, "f", values)
    stitched = split_prefilter_stitch(grid, blocks, values)
    result = postfilter_contour(stitched, values)
    assert_poly_bytes_equal(result, reference)
