"""Shard manifests: round-trip, signatures, tampering, catalog discovery."""

import json

import numpy as np
import pytest

from repro.cluster import (
    ShardManifest,
    load_manifest,
    manifest_key_for,
    shard_object,
)
from repro.errors import FormatError, IntegrityError, ReproError
from repro.io import ClusterCatalog, TimestepCatalog, read_vgf, write_vgf
from repro.storage.object_store import MemoryBackend, ObjectStore
from repro.storage.s3fs import S3FileSystem

from tests.conftest import make_sphere_grid


@pytest.fixture
def fs():
    store = ObjectStore(MemoryBackend())
    store.create_bucket("sim")
    return S3FileSystem(store, "sim")


@pytest.fixture
def sharded(fs):
    grid = make_sphere_grid(10)
    fs.write_object(
        "a/ts00000.vgf", write_vgf(grid, codec="lz4", meta={"timestep": 0})
    )
    manifest = shard_object(fs, "a/ts00000.vgf", blocks=(2, 2, 1), shards=2)
    return fs, grid, manifest


class TestShardObject:
    def test_writes_blocks_and_manifest(self, sharded):
        fs, grid, manifest = sharded
        assert manifest.manifest_key == manifest_key_for("a/ts00000.vgf")
        assert manifest.blocks == (2, 2, 1)
        assert manifest.shards == 2
        assert len(manifest.block_objects) == 4
        assert [bo.shard for bo in manifest.block_objects] == [0, 1, 0, 1]
        for bo in manifest.block_objects:
            with fs.open(bo.key) as fh:
                block = read_vgf(fh)
            assert block.dims == bo.spec.dims

    def test_block_values_match_parent_slice(self, sharded):
        fs, grid, manifest = sharded
        parent = grid.point_data.get("r").values.reshape(10, 10, 10)
        bo = manifest.block_objects[3]
        with fs.open(bo.key) as fh:
            block = read_vgf(fh)
        (li, lj, lk), (hi, hj, hk) = bo.spec.lo, bo.spec.hi
        np.testing.assert_array_equal(
            parent[lk: hk + 1, lj: hj + 1, li: hi + 1].reshape(-1),
            block.point_data.get("r").values,
        )

    def test_manifest_records_array_dtypes(self, sharded):
        _, _, manifest = sharded
        assert manifest.array_names == ["r"]
        assert manifest.array_dtype("r") == np.dtype(np.float32)
        with pytest.raises(ReproError):
            manifest.array_dtype("missing")

    def test_bad_shard_count(self, fs):
        grid = make_sphere_grid(8)
        fs.write_object("b.vgf", write_vgf(grid))
        with pytest.raises(ReproError):
            shard_object(fs, "b.vgf", blocks=(2, 1, 1), shards=3)


class TestSignature:
    def test_roundtrip(self, sharded):
        fs, _, manifest = sharded
        loaded = load_manifest(fs, manifest.manifest_key)
        assert loaded.to_doc() == manifest.to_doc()
        assert isinstance(loaded, ShardManifest)

    def test_tampered_manifest_rejected(self, sharded):
        fs, _, manifest = sharded
        doc = json.loads(fs.read_object(manifest.manifest_key).decode())
        doc["block_objects"][0]["key"] = "evil/elsewhere.vgf"
        fs.write_object(
            manifest.manifest_key, json.dumps(doc).encode()
        )
        with pytest.raises(IntegrityError):
            load_manifest(fs, manifest.manifest_key)

    def test_missing_signature_rejected(self, sharded):
        fs, _, manifest = sharded
        doc = json.loads(fs.read_object(manifest.manifest_key).decode())
        del doc["signature"]
        fs.write_object(manifest.manifest_key, json.dumps(doc).encode())
        with pytest.raises(IntegrityError):
            load_manifest(fs, manifest.manifest_key)

    def test_hmac_signing(self, fs):
        grid = make_sphere_grid(8)
        fs.write_object("c.vgf", write_vgf(grid))
        manifest = shard_object(fs, "c.vgf", blocks=(2, 1, 1),
                                sign_key=b"secret")
        loaded = load_manifest(fs, manifest.manifest_key, sign_key=b"secret")
        assert loaded.dims == manifest.dims
        # Without the key the HMAC cannot be checked.
        with pytest.raises(IntegrityError):
            load_manifest(fs, manifest.manifest_key)
        with pytest.raises(IntegrityError):
            load_manifest(fs, manifest.manifest_key, sign_key=b"wrong")

    def test_not_json_rejected(self, fs):
        fs.write_object("junk.manifest.json", b"\x00\x01binary")
        with pytest.raises(FormatError):
            load_manifest(fs, "junk.manifest.json")


class TestCatalogs:
    def test_cluster_catalog_discovers_manifests(self, sharded):
        fs, _, manifest = sharded
        catalog = ClusterCatalog(fs)
        assert len(catalog) == 1
        assert catalog.keys == [manifest.manifest_key]
        assert catalog.manifest(manifest.manifest_key).shards == 2
        with pytest.raises(ReproError):
            catalog.manifest("nope.manifest.json")

    def test_catalogs_coexist(self, sharded):
        fs, _, _ = sharded
        # The timestep catalog must see exactly the one source object:
        # block objects carry no timestep, the manifest is not a VGF.
        tcat = TimestepCatalog(fs)
        assert [e.key for e in tcat] == ["a/ts00000.vgf"]
        # And the cluster catalog only the manifest.
        ccat = ClusterCatalog(fs)
        assert len(ccat) == 1

    def test_tampered_manifest_fails_catalog_scan(self, sharded):
        fs, _, manifest = sharded
        doc = json.loads(fs.read_object(manifest.manifest_key).decode())
        doc["shards"] = 99
        fs.write_object(manifest.manifest_key, json.dumps(doc).encode())
        with pytest.raises(IntegrityError):
            ClusterCatalog(fs)
