"""Block partitioning: layout math, ghost layer, block extraction."""

import numpy as np
import pytest

from repro.cluster import (
    BlockSpec,
    axis_cuts,
    block_bounds,
    extract_block,
    partition_grid,
)
from repro.errors import GridError
from repro.grid import DataArray, UniformGrid
from repro.grid.bounds import Bounds
from repro.grid.rectilinear import RectilinearGrid

from tests.conftest import make_sphere_grid


class TestAxisCuts:
    def test_even_split(self):
        assert axis_cuts(9, 2) == [0, 4, 8]
        assert axis_cuts(9, 4) == [0, 2, 4, 6, 8]

    def test_uneven_split_spreads_cells(self):
        cuts = axis_cuts(10, 4)  # 9 cells over 4 blocks
        assert cuts[0] == 0 and cuts[-1] == 9
        sizes = np.diff(cuts)
        assert sizes.min() >= 2 and sizes.max() <= 3

    def test_single_block(self):
        assert axis_cuts(7, 1) == [0, 6]

    def test_degenerate_axis(self):
        assert axis_cuts(1, 1) == [0, 0]
        with pytest.raises(GridError):
            axis_cuts(1, 2)

    def test_too_many_blocks(self):
        with pytest.raises(GridError):
            axis_cuts(4, 4)  # 3 cells cannot feed 4 blocks
        with pytest.raises(GridError):
            axis_cuts(5, 0)


class TestPartitionGrid:
    def test_cells_partition_and_points_cover(self):
        dims = (9, 7, 5)
        specs = partition_grid(dims, (3, 2, 2))
        assert len(specs) == 12
        assert [s.index for s in specs] == list(range(12))
        # Every cell belongs to exactly one block.
        cell_owner = np.full((dims[2] - 1, dims[1] - 1, dims[0] - 1), -1)
        for s in specs:
            sl = tuple(
                slice(s.lo[a], s.hi[a]) for a in (2, 1, 0)
            )
            assert (cell_owner[sl] == -1).all()
            cell_owner[sl] = s.index
        assert (cell_owner >= 0).all()

    def test_ghost_layer_shares_one_plane(self):
        specs = partition_grid((9, 9, 9), (2, 1, 1))
        left, right = specs
        assert left.hi[0] == right.lo[0]  # shared seam plane
        assert left.dims == (5, 9, 9) and right.dims == (5, 9, 9)

    def test_spec_roundtrip(self):
        spec = partition_grid((8, 8, 8), (2, 2, 2))[5]
        assert BlockSpec.from_dict(spec.to_dict()) == spec

    def test_2d_grid(self):
        specs = partition_grid((9, 9, 1), (2, 2, 1))
        assert len(specs) == 4
        assert all(s.dims[2] == 1 for s in specs)

    def test_bad_layout(self):
        with pytest.raises(GridError):
            partition_grid((8, 8), (2, 2, 2))
        with pytest.raises(GridError):
            partition_grid((8, 8, 8), (2, 2))


class TestExtractBlock:
    def test_uniform_block_keeps_world_placement(self):
        grid = make_sphere_grid(10)
        spec = partition_grid(grid.dims, (2, 1, 1))[1]
        sub = extract_block(grid, spec)
        assert sub.dims == spec.dims
        # World coordinate of the block's first point matches the parent's.
        assert sub.origin[0] == grid.origin[0] + spec.lo[0] * grid.spacing[0]
        # Values match the sliced parent field.
        parent = grid.point_data.get("r").values.reshape(10, 10, 10)
        child = sub.point_data.get("r").values.reshape(
            spec.dims[2], spec.dims[1], spec.dims[0]
        )
        np.testing.assert_array_equal(
            parent[:, :, spec.lo[0]: spec.hi[0] + 1], child
        )

    def test_rectilinear_block_slices_axes(self):
        rng = np.random.default_rng(0)
        axes = tuple(np.sort(rng.uniform(0, 10, n)) for n in (8, 6, 5))
        grid = RectilinearGrid(*axes)
        grid.point_data.add(
            DataArray("v", rng.standard_normal(8 * 6 * 5).astype(np.float32))
        )
        spec = partition_grid(grid.dims, (2, 2, 1))[3]
        sub = extract_block(grid, spec)
        for a in range(3):
            np.testing.assert_array_equal(
                sub.axes[a], axes[a][spec.lo[a]: spec.hi[a] + 1]
            )

    def test_out_of_range_spec_rejected(self):
        grid = make_sphere_grid(6)
        bad = BlockSpec(0, (0, 0, 0), (0, 0, 0), (9, 5, 5))
        with pytest.raises(GridError):
            extract_block(grid, bad)

    def test_multicomponent_array_sliced(self):
        grid = UniformGrid((4, 4, 4))
        vec = np.arange(4 * 4 * 4 * 3, dtype=np.float32).reshape(-1, 3)
        grid.point_data.add(DataArray("vec", vec, components=3))
        spec = partition_grid(grid.dims, (2, 1, 1))[0]
        sub = extract_block(grid, spec)
        arr = sub.point_data.get("vec")
        assert arr.components == 3
        parent = vec.reshape(4, 4, 4, 3)
        np.testing.assert_array_equal(
            parent[:, :, :3, :].reshape(-1, 3),
            arr.values.reshape(-1, 3),
        )


class TestBlockBounds:
    def test_uniform_bounds(self):
        spec = BlockSpec(0, (0, 0, 0), (2, 0, 1), (5, 3, 4))
        b = block_bounds(spec, (1.0, 2.0, 3.0), (0.5, 1.0, 2.0))
        assert b == Bounds(2.0, 3.5, 2.0, 5.0, 5.0, 11.0)

    def test_rectilinear_bounds(self):
        axes = (np.array([0.0, 1.0, 4.0]), np.array([0.0, 2.0]),
                np.array([1.0, 3.0]))
        spec = BlockSpec(0, (0, 0, 0), (1, 0, 0), (2, 1, 1))
        b = block_bounds(spec, (0, 0, 0), (1, 1, 1), axes=axes)
        assert b == Bounds(1.0, 4.0, 0.0, 2.0, 1.0, 3.0)

    def test_touching_bounds_intersect(self):
        a = Bounds(0, 1, 0, 1, 0, 1)
        b = Bounds(1, 2, 0, 1, 0, 1)
        assert a.intersects(b) and b.intersects(a)
        assert a.intersection(b) == Bounds(1, 1, 0, 1, 0, 1)
        far = Bounds(1.5, 2, 0, 1, 0, 1)
        assert not a.intersects(far)
        assert a.intersection(far) is None
