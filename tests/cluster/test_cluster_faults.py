"""Cluster degradation: a dead or overloaded shard must not change bytes.

Deterministic fault injection (``tests/faults.py``): a permanently-down
shard falls back to baseline reads of only its own blocks; a shard that
sheds (``ServerOverloadedError``) is retried per policy and then serves;
either way the stitched geometry stays byte-equal to the healthy run.
"""

import numpy as np
import pytest

from repro.cluster import ClusterClient, load_manifest, shard_object
from repro.core.ndp_server import NDPServer
from repro.errors import RPCTransportError
from repro.filters import contour_grid
from repro.rpc.msgpack import pack, unpack
from repro.rpc.pool import EndpointPool
from repro.rpc.resilience import RetryPolicy
from repro.rpc.transport import InProcessTransport
from repro.io import write_vgf
from repro.storage.object_store import MemoryBackend, ObjectStore
from repro.storage.s3fs import S3FileSystem

from tests.cluster.test_stitch import assert_poly_bytes_equal
from tests.conftest import make_wave_grid
from tests.faults import FakeClock, FaultSchedule, FaultyTransport, drops

VALUES = [0.2]
SHARDS = 3


@pytest.fixture
def cluster_env():
    store = ObjectStore(MemoryBackend())
    store.create_bucket("sim")
    fs = S3FileSystem(store, "sim")
    grid = make_wave_grid(14)
    fs.write_object("w.vgf", write_vgf(grid, codec="lz4"))
    manifest_obj = shard_object(fs, "w.vgf", blocks=(3, 1, 1), shards=SHARDS)
    reference = contour_grid(grid, "f", VALUES)
    return fs, manifest_obj, reference


def build_pool(fs, wrap, clock, retries=3):
    """Per-shard in-process servers; ``wrap(shard, transport)`` injects."""
    transports = [
        wrap(i, InProcessTransport(NDPServer(fs).rpc.dispatch))
        for i in range(SHARDS)
    ]
    return EndpointPool(
        transports,
        retry=RetryPolicy(max_attempts=retries, base_delay=0.01,
                          jitter=0.0, deadline=None),
        clock=clock, sleep=clock.sleep,
    )


class TestShardDown:
    def test_dead_shard_falls_back_to_baseline_blocks(self, cluster_env):
        fs, manifest_obj, reference = cluster_env
        clock = FakeClock()
        down = FaultyTransport(
            InProcessTransport(NDPServer(fs).rpc.dispatch),
            FaultSchedule.permanently_down(), clock,
        )

        def wrap(shard, transport):
            return down if shard == 1 else transport

        pool = build_pool(fs, wrap, clock)
        manifest = load_manifest(fs, manifest_obj.manifest_key)
        cluster = ClusterClient(pool, manifest, fallback_fs=fs)
        result, stats = cluster.contour("f", VALUES)

        assert_poly_bytes_equal(result, reference)
        # Only shard 1's single block degraded; the others served NDP.
        assert stats["fallback_blocks"] == 1
        assert stats["fallback_bytes"] > 0
        assert "injected: server down" in stats["last_fallback_reason"]
        # The resilient wrapper really retried before giving up.
        assert down.attempts == 3
        assert len(clock.sleeps) == 2

    def test_dead_shard_without_fallback_raises(self, cluster_env):
        fs, manifest_obj, _ = cluster_env
        clock = FakeClock()

        def wrap(shard, transport):
            if shard == 2:
                return FaultyTransport(
                    transport, FaultSchedule.permanently_down(), clock
                )
            return transport

        pool = build_pool(fs, wrap, clock)
        manifest = load_manifest(fs, manifest_obj.manifest_key)
        cluster = ClusterClient(pool, manifest, fallback_fs=None)
        with pytest.raises(RPCTransportError):
            cluster.contour("f", VALUES)

    def test_transient_drops_recover_without_fallback(self, cluster_env):
        fs, manifest_obj, reference = cluster_env
        clock = FakeClock()
        flaky = FaultyTransport(
            InProcessTransport(NDPServer(fs).rpc.dispatch),
            FaultSchedule(drops(2)), clock,
        )

        def wrap(shard, transport):
            return flaky if shard == 0 else transport

        pool = build_pool(fs, wrap, clock)
        manifest = load_manifest(fs, manifest_obj.manifest_key)
        cluster = ClusterClient(pool, manifest, fallback_fs=fs)
        result, stats = cluster.contour("f", VALUES)
        assert_poly_bytes_equal(result, reference)
        assert stats["fallback_blocks"] == 0  # retries absorbed the drops
        assert pool.stats.as_dict().get("retries", 0) == 2


class ShedFirst:
    """Dispatcher wrapper: shed the first ``n`` calls, then pass through.

    Builds the exact wire shape a real admission controller produces
    (a response whose error starts with ``ServerOverloadedError``), so
    the client's shed-sniffing and retry-after handling are exercised
    end to end.
    """

    def __init__(self, dispatch, n):
        self.dispatch = dispatch
        self.remaining = n
        self.shed = 0

    def __call__(self, payload: bytes) -> bytes:
        if self.remaining > 0:
            self.remaining -= 1
            self.shed += 1
            msgid = unpack(payload)[1]
            return pack([
                1, msgid,
                "ServerOverloadedError: injected shed retry_after=0.01",
                None,
            ])
        return self.dispatch(payload)


class TestShardOverload:
    def test_shed_shard_retries_then_serves(self, cluster_env):
        fs, manifest_obj, reference = cluster_env
        clock = FakeClock()
        shedder = ShedFirst(NDPServer(fs).rpc.dispatch, n=2)

        def wrap(shard, transport):
            return InProcessTransport(shedder) if shard == 1 else transport

        pool = build_pool(fs, wrap, clock, retries=4)
        manifest = load_manifest(fs, manifest_obj.manifest_key)
        cluster = ClusterClient(pool, manifest, fallback_fs=fs)
        result, stats = cluster.contour("f", VALUES)

        assert_poly_bytes_equal(result, reference)
        assert shedder.shed == 2
        assert stats["fallback_blocks"] == 0  # recovered inside retry budget
        events = pool.stats.as_dict()
        assert events.get("overloads", 0) == 2
        # retry_after honoured: each shed sleep is >= the advertised 0.01s.
        assert len(clock.sleeps) == 2
        assert all(s >= 0.01 for s in clock.sleeps)

    def test_persistently_shedding_shard_falls_back(self, cluster_env):
        fs, manifest_obj, reference = cluster_env
        clock = FakeClock()
        shedder = ShedFirst(NDPServer(fs).rpc.dispatch, n=10**9)

        def wrap(shard, transport):
            return InProcessTransport(shedder) if shard == 0 else transport

        pool = build_pool(fs, wrap, clock)
        manifest = load_manifest(fs, manifest_obj.manifest_key)
        cluster = ClusterClient(pool, manifest, fallback_fs=fs)
        result, stats = cluster.contour("f", VALUES)

        assert_poly_bytes_equal(result, reference)
        assert stats["fallback_blocks"] == 1
        assert "ServerOverloadedError" in stats["last_fallback_reason"]
