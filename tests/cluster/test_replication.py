"""R-way replication: chains in the manifest, failover in the client.

The acceptance bar for the replicated cluster is strict: with R=2 and
any single replica down, :meth:`ClusterClient.contour` must return
geometry byte-identical to the monolithic pipeline with **zero**
baseline fallback reads — failover is a replica-to-replica fast path,
not a degradation to local reads.
"""

from dataclasses import replace

import pytest

from repro.cluster import (
    ClusterClient,
    ManifestWatcher,
    load_manifest,
    replica_chain,
    shard_object,
    write_manifest,
)
from repro.cluster.manifest import BlockObject
from repro.core.ndp_server import NDPServer
from repro.errors import FormatError, ReproError, RPCTransportError
from repro.filters import contour_grid
from repro.rpc.pool import EndpointPool
from repro.rpc.resilience import RetryPolicy
from repro.rpc.transport import InProcessTransport
from repro.io import write_vgf
from repro.storage.object_store import MemoryBackend, ObjectStore
from repro.storage.s3fs import S3FileSystem

from tests.cluster.test_stitch import assert_poly_bytes_equal
from tests.conftest import make_wave_grid
from tests.faults import FakeClock, FaultSchedule, FaultyTransport

VALUES = [0.2]
SHARDS = 3


def make_cluster(replicas=2, dim=14, blocks=(3, 1, 1), shards=SHARDS):
    store = ObjectStore(MemoryBackend())
    store.create_bucket("sim")
    fs = S3FileSystem(store, "sim")
    grid = make_wave_grid(dim)
    fs.write_object("w.vgf", write_vgf(grid, codec="lz4"))
    manifest = shard_object(fs, "w.vgf", blocks=blocks, shards=shards,
                            replicas=replicas)
    reference = contour_grid(grid, "f", VALUES)
    return fs, manifest, reference


def build_pool(fs, wrap=None, shards=SHARDS, retries=2, clock=None,
               **kwargs):
    clock = clock if clock is not None else FakeClock()
    wrap = wrap if wrap is not None else (lambda shard, t: t)
    transports = [
        wrap(i, InProcessTransport(NDPServer(fs).rpc.dispatch))
        for i in range(shards)
    ]
    return EndpointPool(
        transports,
        retry=RetryPolicy(max_attempts=retries, base_delay=0.01,
                          jitter=0.0, deadline=None),
        clock=clock, sleep=clock.sleep, **kwargs,
    )


# ---------------------------------------------------------------------------
# Manifest-level replication
# ---------------------------------------------------------------------------


class TestReplicaChains:
    def test_replica_chain_is_consecutive_wrap(self):
        assert replica_chain(0, 3, 2) == (0, 1)
        assert replica_chain(2, 3, 2) == (2, 0)
        assert replica_chain(7, 3, 3) == (1, 2, 0)
        assert replica_chain(4, 5, 1) == (4,)

    def test_replica_chain_validates_range(self):
        with pytest.raises(ReproError):
            replica_chain(0, 3, 0)
        with pytest.raises(ReproError):
            replica_chain(0, 3, 4)

    def test_block_object_validates_chain(self):
        spec = make_cluster()[1].block_objects[0].spec
        with pytest.raises(FormatError):
            BlockObject(spec, "k", shard=1, replicas=(0, 1))  # wrong head
        with pytest.raises(FormatError):
            BlockObject(spec, "k", shard=0, replicas=(0, 1, 0))  # dup

    def test_manifest_round_trips_chains(self):
        fs, manifest, _ = make_cluster(replicas=2)
        loaded = load_manifest(fs, manifest.manifest_key)
        assert loaded.replication_factor == 2
        assert loaded.map_version == 1
        for bo in loaded.block_objects:
            assert bo.replicas == replica_chain(bo.spec.index, SHARDS, 2)
            assert bo.replicas[0] == bo.shard

    def test_old_manifest_without_replicas_loads_single_chains(self):
        fs, manifest, _ = make_cluster(replicas=1)
        # Simulate a pre-replication manifest: strip the new keys.
        import json

        raw = json.loads(fs.read_object(manifest.manifest_key))
        assert raw.pop("map_version", None) is not None
        for block in raw["block_objects"]:
            block.pop("replicas", None)
        # Unsigned reload path: rewrite without the signature check.
        doc = {k: v for k, v in raw.items() if k != "signature"}
        from repro.cluster.manifest import ShardManifest

        old = ShardManifest.from_doc(doc)
        assert old.map_version == 1
        assert old.replication_factor == 1
        for bo in old.block_objects:
            assert bo.replicas == (bo.shard,)

    def test_blocks_served_by_includes_replicas(self):
        _, manifest, _ = make_cluster(replicas=2)
        for shard in range(SHARDS):
            served = {bo.spec.index
                      for bo in manifest.blocks_served_by(shard)}
            primary = {bo.spec.index
                       for bo in manifest.blocks_for_shard(shard)}
            assert primary <= served


# ---------------------------------------------------------------------------
# Failover correctness: byte-identity with zero baseline reads
# ---------------------------------------------------------------------------


class TestFailoverByteIdentity:
    @pytest.mark.parametrize("dead", range(SHARDS))
    def test_any_single_dead_replica_is_byte_identical(self, dead):
        fs, manifest_obj, reference = make_cluster(replicas=2)
        clock = FakeClock()

        def wrap(shard, transport):
            if shard == dead:
                return FaultyTransport(
                    transport, FaultSchedule.permanently_down(), clock
                )
            return transport

        pool = build_pool(fs, wrap, clock=clock, retries=1)
        manifest = load_manifest(fs, manifest_obj.manifest_key)
        # No fallback_fs: the *only* way this can succeed is replica
        # failover.  Zero baseline reads is proven by construction.
        cluster = ClusterClient(pool, manifest, fallback_fs=None)
        result, stats = cluster.contour("f", VALUES)
        assert_poly_bytes_equal(result, reference)
        assert stats["fallback_blocks"] == 0
        # Blocks whose primary was the dead shard were served by their
        # surviving replica.
        dead_led = sum(1 for bo in manifest.block_objects
                       if bo.shard == dead)
        assert stats["failover_blocks"] >= dead_led
        if dead_led:
            assert stats["failovers"] >= dead_led

    def test_hedging_off_still_fails_over(self):
        fs, manifest_obj, reference = make_cluster(replicas=2)
        clock = FakeClock()

        def wrap(shard, transport):
            if shard == 0:
                return FaultyTransport(
                    transport, FaultSchedule.permanently_down(), clock
                )
            return transport

        pool = build_pool(fs, wrap, clock=clock, retries=1)
        manifest = load_manifest(fs, manifest_obj.manifest_key)
        cluster = ClusterClient(pool, manifest, fallback_fs=fs, hedge=False)
        result, stats = cluster.contour("f", VALUES)
        assert_poly_bytes_equal(result, reference)
        # Hedge-off keeps the old single-path client per block: the dead
        # primary's blocks degrade to baseline (chain isn't walked), so
        # this documents *why* hedging is the default.
        assert stats["hedges"] == 0

    def test_r1_without_fallback_still_raises(self):
        fs, manifest_obj, _ = make_cluster(replicas=1)
        clock = FakeClock()

        def wrap(shard, transport):
            if shard == 1:
                return FaultyTransport(
                    transport, FaultSchedule.permanently_down(), clock
                )
            return transport

        pool = build_pool(fs, wrap, clock=clock, retries=1)
        manifest = load_manifest(fs, manifest_obj.manifest_key)
        cluster = ClusterClient(pool, manifest, fallback_fs=None)
        with pytest.raises(RPCTransportError):
            cluster.contour("f", VALUES)

    def test_whole_chain_down_degrades_to_baseline(self):
        fs, manifest_obj, reference = make_cluster(replicas=2)
        clock = FakeClock()
        manifest = load_manifest(fs, manifest_obj.manifest_key)
        # Find a block and kill its *entire* chain.
        victim = manifest.block_objects[0]

        def wrap(shard, transport):
            if shard in victim.replicas:
                return FaultyTransport(
                    transport, FaultSchedule.permanently_down(), clock
                )
            return transport

        pool = build_pool(fs, wrap, clock=clock, retries=1)
        cluster = ClusterClient(pool, manifest, fallback_fs=fs)
        result, stats = cluster.contour("f", VALUES)
        assert_poly_bytes_equal(result, reference)
        assert stats["fallback_blocks"] >= 1


# ---------------------------------------------------------------------------
# Live shard map: version tokens, refresh, watcher
# ---------------------------------------------------------------------------


class TestLiveMap:
    def test_reply_token_triggers_refresh(self):
        fs, manifest_obj, reference = make_cluster(replicas=2)
        stale = load_manifest(fs, manifest_obj.manifest_key)
        # A rebalancer wrote generation 2; servers already serve it.
        fresh = replace(stale, map_version=2)
        write_manifest(fs, fresh.manifest_key, fresh)
        clock = FakeClock()
        transports = [
            InProcessTransport(NDPServer(fs, map_version=2).rpc.dispatch)
            for _ in range(SHARDS)
        ]
        pool = EndpointPool(transports, clock=clock, sleep=clock.sleep)
        cluster = ClusterClient(pool, stale, manifest_fs=fs)
        result, stats = cluster.contour("f", VALUES)
        assert_poly_bytes_equal(result, reference)
        assert stats["map_version"] == 1          # routed with the old map
        assert stats["stale_map"] is True
        assert stats["map_refreshed"] is True
        assert cluster.manifest.map_version == 2  # next request uses gen 2

    def test_no_manifest_fs_means_no_refresh(self):
        fs, manifest_obj, _ = make_cluster(replicas=1)
        stale = load_manifest(fs, manifest_obj.manifest_key)
        clock = FakeClock()
        transports = [
            InProcessTransport(NDPServer(fs, map_version=5).rpc.dispatch)
            for _ in range(SHARDS)
        ]
        pool = EndpointPool(transports, clock=clock, sleep=clock.sleep)
        cluster = ClusterClient(pool, stale)
        _, stats = cluster.contour("f", VALUES)
        assert stats.get("stale_map") is True
        assert stats["map_refreshed"] is False
        assert cluster.manifest.map_version == 1

    def test_same_generation_reply_is_not_stale(self):
        fs, manifest_obj, _ = make_cluster(replicas=1)
        manifest = load_manifest(fs, manifest_obj.manifest_key)
        clock = FakeClock()
        transports = [
            InProcessTransport(NDPServer(fs, map_version=1).rpc.dispatch)
            for _ in range(SHARDS)
        ]
        pool = EndpointPool(transports, clock=clock, sleep=clock.sleep)
        cluster = ClusterClient(pool, manifest, manifest_fs=fs)
        _, stats = cluster.contour("f", VALUES)
        assert "stale_map" not in stats

    def test_watcher_tracks_generations(self):
        fs, manifest_obj, _ = make_cluster(replicas=2)
        clock = FakeClock()
        watcher = ManifestWatcher(fs, manifest_obj.manifest_key,
                                  min_interval=1.0, clock=clock)
        assert watcher.version() == 1
        manifest = load_manifest(fs, manifest_obj.manifest_key)
        write_manifest(fs, manifest.manifest_key,
                       replace(manifest, map_version=2))
        # Inside the poll interval the cached generation still serves.
        assert watcher.version() == 1
        clock.advance(1.5)
        assert watcher.version() == 2
        assert watcher.manifest().map_version == 2

    def test_watcher_keeps_last_good_on_read_failure(self):
        fs, manifest_obj, _ = make_cluster(replicas=1)
        clock = FakeClock()
        watcher = ManifestWatcher(fs, manifest_obj.manifest_key,
                                  min_interval=1.0, clock=clock)
        assert watcher.version() == 1
        fs.write_object(manifest_obj.manifest_key, b"not json {{{")
        clock.advance(2.0)
        # The manifest got clobbered mid-flight: the watcher serves the
        # last trusted generation instead of crashing the server.
        assert watcher.version() == 1
