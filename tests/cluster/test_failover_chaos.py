"""Chaos: replicas dying mid-scatter, random fault schedules, no orphans.

The deterministic suites prove single-fault behaviour; this one kills a
replica *between* the blocks of one scatter, layers seeded random fault
schedules over whole clusters, and asserts the three invariants that
make replication safe to run:

* geometry stays byte-identical to the monolithic pipeline,
* the hedge ledger drains to zero (no orphaned attempts), and
* every server's admission counters return to idle.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster import ClusterClient, load_manifest, shard_object
from repro.core.ndp_server import NDPServer
from repro.filters import contour_grid
from repro.io import write_vgf
from repro.rpc.pool import EndpointPool
from repro.rpc.resilience import RetryPolicy
from repro.rpc.transport import InProcessTransport
from repro.storage.object_store import MemoryBackend, ObjectStore
from repro.storage.s3fs import S3FileSystem

from tests.cluster.test_stitch import assert_poly_bytes_equal
from tests.conftest import make_wave_grid
from tests.faults import (
    Drop,
    FakeClock,
    FaultSchedule,
    FaultyTransport,
    Ok,
)

pytestmark = pytest.mark.chaos

VALUES = [0.2]
SHARDS = 3
DIM = 12
BLOCKS = (3, 2, 1)


def seed_store():
    store = ObjectStore(MemoryBackend())
    store.create_bucket("sim")
    fs = S3FileSystem(store, "sim")
    grid = make_wave_grid(DIM)
    fs.write_object("w.vgf", write_vgf(grid, codec="lz4"))
    return fs, grid


_REFERENCE = {}


def reference_contour(grid):
    key = id(type(grid))  # grid is deterministic; compute once
    if key not in _REFERENCE:
        _REFERENCE[key] = contour_grid(grid, "f", VALUES)
    return _REFERENCE[key]


def build_cluster(fs, replicas, schedules, clock, retries=1,
                  server_kwargs=None):
    """In-process cluster with a per-shard fault schedule (None = clean)."""
    manifest_obj = shard_object(fs, "w.vgf", blocks=BLOCKS, shards=SHARDS,
                                replicas=replicas)
    servers = [NDPServer(fs, **(server_kwargs or {})) for _ in range(SHARDS)]
    transports = []
    for shard, server in enumerate(servers):
        transport = InProcessTransport(server.rpc.dispatch)
        schedule = schedules.get(shard)
        if schedule is not None:
            transport = FaultyTransport(transport, schedule, clock)
        transports.append(transport)
    pool = EndpointPool(
        transports,
        retry=RetryPolicy(max_attempts=retries, base_delay=0.01,
                          jitter=0.0, deadline=None),
        clock=clock, sleep=clock.sleep,
    )
    manifest = load_manifest(fs, manifest_obj.manifest_key)
    return pool, manifest, servers


def assert_admission_idle(servers):
    for shard, server in enumerate(servers):
        admission = server.health().get("admission") or {}
        assert admission.get("inflight", 0) == 0, f"shard {shard} inflight"
        assert admission.get("pending", 0) == 0, f"shard {shard} pending"


class TestKillMidScatter:
    def test_replica_dies_between_blocks_of_one_scatter(self):
        fs, grid = seed_store()
        clock = FakeClock()
        # Shard 0 answers its first block, then drops dead for the rest
        # of the scatter: its remaining blocks must fail over in-flight.
        schedules = {0: FaultSchedule([Ok()], default=Drop("killed mid-scatter"))}
        pool, manifest, servers = build_cluster(fs, 2, schedules, clock)
        cluster = ClusterClient(pool, manifest, fallback_fs=None)
        result, stats = cluster.contour("f", VALUES)
        assert_poly_bytes_equal(result, reference_contour(grid))
        assert stats["fallback_blocks"] == 0
        assert stats["failovers"] >= 1
        # No orphaned hedge attempts: the ledger drains, promptly.
        assert pool.wait_drained(timeout=5.0)
        assert pool.outstanding == 0
        assert_admission_idle(servers)

    def test_kill_under_admission_limits_drains_to_idle(self):
        fs, grid = seed_store()
        clock = FakeClock()
        schedules = {1: FaultSchedule([Ok()], default=Drop("killed"))}
        pool, manifest, servers = build_cluster(
            fs, 2, schedules, clock,
            server_kwargs={"max_inflight": 2, "max_pending": 4},
        )
        cluster = ClusterClient(pool, manifest, fallback_fs=fs)
        result, stats = cluster.contour("f", VALUES)
        assert_poly_bytes_equal(result, reference_contour(grid))
        assert pool.wait_drained(timeout=5.0)
        assert_admission_idle(servers)

    def test_two_consecutive_scatters_after_a_death(self):
        fs, grid = seed_store()
        clock = FakeClock()
        schedules = {2: FaultSchedule([Ok(), Ok()], default=Drop("killed"))}
        pool, manifest, servers = build_cluster(fs, 2, schedules, clock)
        cluster = ClusterClient(pool, manifest, fallback_fs=None)
        for _ in range(2):
            result, _ = cluster.contour("f", VALUES)
            assert_poly_bytes_equal(result, reference_contour(grid))
            assert pool.wait_drained(timeout=5.0)
        assert_admission_idle(servers)


class TestRandomFaultProperty:
    @given(
        replicas=st.integers(1, SHARDS),
        dead_picks=st.lists(st.integers(0, SHARDS - 1), max_size=SHARDS - 1),
        seeds=st.tuples(*[st.integers(0, 2**16)] * SHARDS),
        drop_rate=st.sampled_from([0.0, 0.3, 0.7]),
    )
    @settings(max_examples=25, deadline=None)
    def test_geometry_byte_identical_under_random_faults(
            self, replicas, dead_picks, seeds, drop_rate):
        # Dead sets stay below R so every block keeps one live replica
        # (consecutive chain placement guarantees it); random retryable
        # fault schedules then rough up the survivors.
        dead = set(dead_picks[:max(0, replicas - 1)])
        fs, grid = seed_store()
        clock = FakeClock()
        schedules = {}
        for shard in range(SHARDS):
            if shard in dead:
                schedules[shard] = FaultSchedule.permanently_down()
            elif drop_rate:
                schedules[shard] = FaultSchedule.random(
                    seeds[shard], length=16, drop=drop_rate, delay=0.1,
                )
        pool, manifest, servers = build_cluster(
            fs, replicas, schedules, clock, retries=2,
        )
        cluster = ClusterClient(pool, manifest, fallback_fs=fs)
        result, stats = cluster.contour("f", VALUES)
        assert_poly_bytes_equal(result, reference_contour(grid))
        assert pool.wait_drained(timeout=5.0)
        assert pool.outstanding == 0
        assert_admission_idle(servers)
        if not dead and drop_rate == 0.0:
            assert stats["fallback_blocks"] == 0

    @given(
        dead=st.integers(0, SHARDS - 1),
        seeds=st.tuples(*[st.integers(0, 2**16)] * SHARDS),
    )
    @settings(max_examples=10, deadline=None)
    def test_r2_single_death_never_touches_baseline(self, dead, seeds):
        # The acceptance bar, as a property: R=2, any single replica
        # dead, arbitrary flakiness elsewhere absorbed by retries —
        # byte-identical with zero baseline reads (no fallback_fs).
        fs, grid = seed_store()
        clock = FakeClock()
        schedules = {dead: FaultSchedule.permanently_down()}
        pool, manifest, servers = build_cluster(
            fs, 2, schedules, clock, retries=2,
        )
        cluster = ClusterClient(pool, manifest, fallback_fs=None)
        result, stats = cluster.contour("f", VALUES)
        assert_poly_bytes_equal(result, reference_contour(grid))
        assert stats["fallback_blocks"] == 0
        assert pool.wait_drained(timeout=5.0)
        assert_admission_idle(servers)
