"""ClusterClient acceptance: bit-identical scatter–gather contours.

For shards in {1, 2, 4} the cluster contour must be byte-equal — points,
polys, point-data — to BOTH the single-server NDP path and the baseline
full-read path, on the asteroid and Nyx datasets, including contour
values whose surface crosses block seams.
"""

import numpy as np
import pytest

from repro.cluster import ClusterClient, load_manifest, shard_object
from repro.core.ndp_client import ndp_cluster_contour, ndp_contour
from repro.core.ndp_server import NDPServer
from repro.datasets.asteroid import AsteroidImpactDataset, AsteroidParams
from repro.datasets.nyx import NyxDataset, NyxParams
from repro.errors import ReproError
from repro.filters import contour_grid
from repro.grid.bounds import Bounds
from repro.io import write_vgf
from repro.rpc.client import RPCClient
from repro.rpc.pool import EndpointPool
from repro.rpc.transport import InProcessTransport
from repro.storage.object_store import MemoryBackend, ObjectStore
from repro.storage.s3fs import S3FileSystem

from tests.cluster.test_stitch import assert_poly_bytes_equal

SHARD_COUNTS = (1, 2, 4)
#: 1x2x2 = 4 blocks: every shard count in SHARD_COUNTS divides cleanly
#: and every block face lies on a seam crossed by the test contours.
BLOCKS = (1, 2, 2)


def make_fs():
    store = ObjectStore(MemoryBackend())
    store.create_bucket("sim")
    return S3FileSystem(store, "sim")


def make_cluster(fs, key, shards, **kwargs):
    manifest = load_manifest(fs, key)
    assert manifest.shards == shards
    servers = [NDPServer(fs) for _ in range(shards)]
    pool = EndpointPool(
        [InProcessTransport(s.rpc.dispatch) for s in servers]
    )
    return ClusterClient(pool, manifest, **kwargs)


def seam_values(grid, array):
    """Contour values straddled by seam-plane cells: mid-range quantiles."""
    vals = grid.point_data.get(array).values
    return [float(np.quantile(vals, q)) for q in (0.35, 0.6)]


@pytest.fixture(scope="module", params=["asteroid", "nyx"])
def dataset(request):
    fs = make_fs()
    if request.param == "asteroid":
        ds = AsteroidImpactDataset(AsteroidParams(dims=(20, 20, 20)))
        grid = ds.generate_arrays(ds.timesteps[2], ["v02"])
        array = "v02"
    else:
        grid = NyxDataset(NyxParams(dims=(16, 16, 16))).generate()
        array = "baryon_density"
    fs.write_object("data/full.vgf", write_vgf(grid, codec="lz4"))
    for k in SHARD_COUNTS:
        shard_object(
            fs, "data/full.vgf", blocks=BLOCKS, shards=k,
            manifest_key=f"data/full.k{k}.manifest.json",
        )
    return fs, grid, array


@pytest.mark.parametrize("shards", SHARD_COUNTS)
def test_cluster_matches_monolithic_and_baseline(dataset, shards):
    fs, grid, array = dataset
    values = seam_values(grid, array)
    baseline = contour_grid(grid, array, values)
    mono_client = RPCClient(InProcessTransport(NDPServer(fs).rpc.dispatch))
    mono, _ = ndp_contour(mono_client, "data/full.vgf", array, values)

    cluster = make_cluster(fs, f"data/full.k{shards}.manifest.json", shards)
    result, stats = cluster.contour(array, values)

    assert_poly_bytes_equal(result, baseline)
    assert_poly_bytes_equal(result, mono)
    assert stats["path"] == "cluster"
    assert stats["shards"] == shards
    assert stats["blocks"] == 4
    assert stats["fallback_blocks"] == 0
    assert stats["selected_points"] > 0


@pytest.mark.parametrize("shards", (1, 2))
def test_cluster_roi_matches_baseline(dataset, shards):
    fs, grid, array = dataset
    values = seam_values(grid, array)[:1]
    b = grid.bounds
    # An off-center box crossing both seam planes.
    roi = Bounds(
        b.xmin + 0.2 * (b.xmax - b.xmin), b.xmax,
        b.ymin, b.ymin + 0.7 * (b.ymax - b.ymin),
        b.zmin + 0.1 * (b.zmax - b.zmin), b.zmax,
    )
    baseline = contour_grid(grid, array, values, roi=roi)
    cluster = make_cluster(fs, f"data/full.k{shards}.manifest.json", shards)
    result, stats = cluster.contour(array, values, roi=roi)
    assert_poly_bytes_equal(result, baseline)
    assert stats["blocks"] <= 4


def test_roi_prunes_shards(dataset):
    fs, grid, array = dataset
    b = grid.bounds
    # A sliver strictly inside the low-y, low-z corner: with the 1x2x2
    # layout only block (0,0,0) intersects, so only its shard is asked.
    roi = Bounds(
        b.xmin, b.xmax,
        b.ymin, b.ymin + 0.1 * (b.ymax - b.ymin),
        b.zmin, b.zmin + 0.1 * (b.zmax - b.zmin),
    )
    values = seam_values(grid, array)[:1]
    cluster = make_cluster(fs, "data/full.k4.manifest.json", 4)
    result, stats = cluster.contour(array, values, roi=roi)
    assert stats["blocks"] == 1
    assert stats["shards_queried"] == 1
    assert_poly_bytes_equal(result, contour_grid(grid, array, values, roi=roi))


def test_empty_roi_yields_empty_but_valid(dataset):
    fs, grid, array = dataset
    b = grid.bounds
    far = Bounds(b.xmax + 10, b.xmax + 11, b.ymin, b.ymax, b.zmin, b.zmax)
    cluster = make_cluster(fs, "data/full.k2.manifest.json", 2)
    result, stats = cluster.contour(array, seam_values(grid, array)[:1],
                                    roi=far)
    assert stats["blocks"] == 0 and stats["shards_queried"] == 0
    reference = contour_grid(grid, array, seam_values(grid, array)[:1],
                             roi=far)
    assert_poly_bytes_equal(result, reference)


def test_ndp_cluster_contour_wrapper(dataset):
    fs, grid, array = dataset
    values = seam_values(grid, array)[:1]
    cluster = make_cluster(fs, "data/full.k2.manifest.json", 2)
    poly, stats = ndp_cluster_contour(cluster, array, values)
    assert_poly_bytes_equal(poly, contour_grid(grid, array, values))
    assert stats["path"] == "cluster"


def test_pool_size_must_match_manifest(dataset):
    fs, _, _ = dataset
    manifest = load_manifest(fs, "data/full.k2.manifest.json")
    pool = EndpointPool(
        [InProcessTransport(NDPServer(fs).rpc.dispatch)]
    )
    with pytest.raises(ReproError):
        ClusterClient(pool, manifest)


def test_unknown_array_fails_before_any_rpc(dataset):
    fs, _, _ = dataset
    cluster = make_cluster(fs, "data/full.k2.manifest.json", 2)
    with pytest.raises(ReproError):
        cluster.contour("not_an_array", [0.5])
