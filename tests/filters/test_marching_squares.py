"""Unit tests for the 2-D marching-squares kernel."""

import numpy as np
import pytest

from repro.errors import FilterError
from repro.filters import marching_squares


def seg_set(segments, ndigits=6):
    """Order-independent canonical form of a segment soup."""
    out = set()
    for seg in segments:
        a = tuple(round(float(v), ndigits) for v in seg[0])
        b = tuple(round(float(v), ndigits) for v in seg[1])
        out.add((a, b) if a <= b else (b, a))
    return out


class TestBasicCases:
    def test_no_crossing(self):
        field = np.zeros((3, 3))
        assert marching_squares(field, 0.5).shape == (0, 2, 2)

    def test_all_above(self):
        field = np.ones((3, 3))
        assert marching_squares(field, 0.5).shape == (0, 2, 2)

    def test_vertical_interface(self):
        # Left column 0, right column 1 -> contour along x = 0.5.
        field = np.array([[0.0, 1.0], [0.0, 1.0]])
        segs = marching_squares(field, 0.5)
        assert segs.shape[0] == 1
        xs = segs[:, :, 0]
        assert np.allclose(xs, 0.5)

    def test_horizontal_interface(self):
        field = np.array([[0.0, 0.0], [1.0, 1.0]])
        segs = marching_squares(field, 0.5)
        assert np.allclose(segs[:, :, 1], 0.5)

    def test_interpolation_position(self):
        # 0 -> 4 edge crossed at 1: t = 0.25.
        field = np.array([[0.0, 4.0], [0.0, 4.0]])
        segs = marching_squares(field, 1.0)
        assert np.allclose(segs[:, :, 0], 0.25)

    def test_single_corner(self):
        field = np.array([[1.0, 0.0], [0.0, 0.0]])
        segs = marching_squares(field, 0.5)
        assert segs.shape[0] == 1
        assert seg_set(segs) == {((0.0, 0.5), (0.5, 0.0))}

    def test_origin_and_spacing(self):
        field = np.array([[0.0, 1.0], [0.0, 1.0]])
        segs = marching_squares(field, 0.5, origin=(10.0, 20.0), spacing=(2.0, 3.0))
        assert np.allclose(segs[:, :, 0], 11.0)
        ys = sorted(segs[0, :, 1])
        assert ys == [20.0, 23.0]

    def test_complement_symmetry(self):
        # Contouring f at v and -f at -v produce the same segment set.
        rng = np.random.default_rng(0)
        field = rng.normal(size=(8, 9))
        a = seg_set(marching_squares(field, 0.2))
        b = seg_set(marching_squares(-field, -0.2))
        # Complement flips >= to <=; the level-set geometry may differ only
        # at exact hits, which random floats never produce.
        assert a == b


class TestSaddles:
    def test_case5_center_decides(self):
        # Corners c0 and c2 inside.  Center = mean decides pairing.
        hi, lo = 1.0, 0.0
        field = np.array([[hi, lo], [lo, hi]])
        segs = marching_squares(field, 0.45)  # center 0.5 >= 0.45: joined
        assert segs.shape[0] == 2
        segs2 = marching_squares(field, 0.55)  # center < 0.55: split
        assert segs2.shape[0] == 2
        assert seg_set(segs) != seg_set(segs2)

    def test_case10_center_decides(self):
        hi, lo = 1.0, 0.0
        field = np.array([[lo, hi], [hi, lo]])
        joined = marching_squares(field, 0.45)
        split = marching_squares(field, 0.55)
        assert joined.shape[0] == 2 and split.shape[0] == 2
        assert seg_set(joined) != seg_set(split)


class TestMask:
    def test_mask_skips_cells(self):
        field = np.array([[0.0, 1.0, 0.0], [0.0, 1.0, 0.0]])
        full = marching_squares(field, 0.5)
        mask = np.array([[True, False]])
        masked = marching_squares(field, 0.5, cell_mask=mask)
        assert masked.shape[0] < full.shape[0]
        assert seg_set(masked) <= seg_set(full)

    def test_mask_shape_checked(self):
        field = np.zeros((3, 3))
        with pytest.raises(FilterError, match="cell_mask"):
            marching_squares(field, 0.5, cell_mask=np.ones((3, 3), dtype=bool))


class TestValidation:
    def test_rejects_1d(self):
        with pytest.raises(FilterError):
            marching_squares(np.zeros(5), 0.5)

    def test_rejects_single_row(self):
        with pytest.raises(FilterError):
            marching_squares(np.zeros((1, 5)), 0.5)


class TestTopology:
    def test_closed_circle(self):
        # A radial field's contour should form closed loops: every vertex
        # appears an even number of times (degree 2 in the segment graph).
        n = 30
        yy, xx = np.mgrid[0:n, 0:n]
        r = np.hypot(xx - n / 2, yy - n / 2)
        segs = marching_squares(r, 8.0)
        assert segs.shape[0] > 0
        counts = {}
        for seg in segs.round(6):
            for pt in (tuple(seg[0]), tuple(seg[1])):
                counts[pt] = counts.get(pt, 0) + 1
        assert all(c == 2 for c in counts.values())

    def test_vertices_near_isovalue(self):
        n = 20
        yy, xx = np.mgrid[0:n, 0:n]
        r = np.hypot(xx - n / 2, yy - n / 2)
        segs = marching_squares(r, 5.0)
        pts = segs.reshape(-1, 2)
        rr = np.hypot(pts[:, 0] - n / 2, pts[:, 1] - n / 2)
        # Linear interpolation error is bounded by the cell size.
        assert np.all(np.abs(rr - 5.0) < 0.5)
