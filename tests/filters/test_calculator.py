"""Unit tests for ArrayCalculator."""

import numpy as np
import pytest

from repro.errors import FilterError
from repro.filters import ArrayCalculator
from repro.grid import DataArray, UniformGrid


def make_grid():
    g = UniformGrid((3, 3, 3))
    g.point_data.add(DataArray("a", np.arange(27.0)))
    g.point_data.add(DataArray("b", np.ones(27)))
    return g


class TestCalculator:
    def test_single_input(self):
        f = ArrayCalculator("a2", ["a"], lambda a: a * 2)
        f.set_input_data(make_grid())
        out = f.output()
        assert np.array_equal(out.point_data.get("a2").values, np.arange(27.0) * 2)

    def test_multi_input(self):
        f = ArrayCalculator("sum", ["a", "b"], np.add)
        f.set_input_data(make_grid())
        assert out_vals(f)[0] == 1.0

    def test_output_keeps_existing_arrays(self):
        f = ArrayCalculator("c", ["a"], lambda a: a + 1)
        f.set_input_data(make_grid())
        out = f.output()
        assert {"a", "b", "c"} <= set(out.point_data.names())

    def test_input_grid_not_mutated(self):
        g = make_grid()
        f = ArrayCalculator("c", ["a"], lambda a: a + 1)
        f.set_input_data(g)
        f.update()
        assert "c" not in g.point_data

    def test_shape_mismatch_rejected(self):
        f = ArrayCalculator("bad", ["a"], lambda a: a[:5])
        f.set_input_data(make_grid())
        with pytest.raises(FilterError, match="shape"):
            f.update()

    def test_missing_input_array(self):
        f = ArrayCalculator("c", ["zzz"], lambda a: a)
        f.set_input_data(make_grid())
        with pytest.raises(Exception, match="zzz"):
            f.update()

    def test_empty_config_rejected(self):
        with pytest.raises(FilterError):
            ArrayCalculator("", ["a"], lambda a: a)
        with pytest.raises(FilterError):
            ArrayCalculator("c", [], lambda: None)

    def test_wrong_input_type(self):
        f = ArrayCalculator("c", ["a"], lambda a: a)
        f.set_input_data([1, 2])
        with pytest.raises(FilterError, match="UniformGrid"):
            f.update()


def out_vals(f):
    return f.output().point_data.get("sum").values
