"""Unit tests for the 3-D marching-tetrahedra kernel."""

import numpy as np
import pytest

from repro.errors import FilterError
from repro.filters import marching_tetrahedra


def tri_areas(tris):
    e1 = tris[:, 1] - tris[:, 0]
    e2 = tris[:, 2] - tris[:, 0]
    return 0.5 * np.linalg.norm(np.cross(e1, e2), axis=1)


def sphere_field(n, center=None, dtype=np.float64):
    if center is None:
        center = (n / 2, n / 2, n / 2)
    zz, yy, xx = np.meshgrid(np.arange(n), np.arange(n), np.arange(n), indexing="ij")
    return np.sqrt(
        (xx - center[0]) ** 2 + (yy - center[1]) ** 2 + (zz - center[2]) ** 2
    ).astype(dtype)


class TestBasic:
    def test_no_crossing(self):
        assert marching_tetrahedra(np.zeros((3, 3, 3)), 0.5).shape == (0, 3, 3)

    def test_all_inside(self):
        assert marching_tetrahedra(np.ones((3, 3, 3)), 0.5).shape == (0, 3, 3)

    def test_planar_interface_x(self):
        f = np.zeros((3, 3, 4))
        f[:, :, 2:] = 1.0
        tris = marching_tetrahedra(f, 0.5)
        assert tris.shape[0] > 0
        assert np.allclose(tris[:, :, 0], 1.5)  # plane x = 1.5

    def test_planar_interface_z(self):
        f = np.zeros((4, 3, 3))
        f[2:, :, :] = 1.0
        tris = marching_tetrahedra(f, 0.5)
        assert np.allclose(tris[:, :, 2], 1.5)

    def test_planar_area_matches(self):
        # The x=1.5 plane spans a 2x2 world area within a 3x3 cross-section.
        f = np.zeros((3, 3, 4))
        f[:, :, 2:] = 1.0
        tris = marching_tetrahedra(f, 0.5)
        assert tri_areas(tris).sum() == pytest.approx(4.0)

    def test_interpolation_t(self):
        f = np.zeros((2, 2, 2))
        f[:, :, 1] = 4.0
        tris = marching_tetrahedra(f, 1.0)
        assert np.allclose(tris[:, :, 0], 0.25)

    def test_origin_spacing(self):
        f = np.zeros((2, 2, 2))
        f[:, :, 1] = 1.0
        tris = marching_tetrahedra(f, 0.5, origin=(10, 20, 30), spacing=(2, 1, 1))
        assert np.allclose(tris[:, :, 0], 11.0)
        assert tris[:, :, 1].min() >= 20.0
        assert tris[:, :, 2].min() >= 30.0


class TestSphere:
    def test_vertices_near_isosurface(self):
        f = sphere_field(20)
        tris = marching_tetrahedra(f, 6.0)
        pts = tris.reshape(-1, 3)
        rr = np.linalg.norm(pts - 10.0, axis=1)
        assert np.abs(rr - 6.0).max() < 0.6

    def test_area_approximates_sphere(self):
        f = sphere_field(32)
        r = 9.0
        tris = marching_tetrahedra(f, r)
        area = tri_areas(tris).sum()
        exact = 4 * np.pi * r * r
        assert abs(area - exact) / exact < 0.15

    def test_watertight(self):
        """Every boundary edge of the triangle soup is shared by exactly
        two triangles (closed surface)."""
        # A generic (non-lattice) isovalue: exact value hits at lattice
        # points would legitimately produce degenerate zero-area triangles.
        f = sphere_field(14)
        tris = marching_tetrahedra(f, 4.3)
        edge_count = {}
        for tri in tris.round(9):
            pts = [tuple(p) for p in tri]
            for i in range(3):
                e = tuple(sorted([pts[i], pts[(i + 1) % 3]]))
                edge_count[e] = edge_count.get(e, 0) + 1
        # Degenerate (zero-area) triangles can produce self-glued edges;
        # with a generic sphere field they do not occur.
        assert edge_count and all(c == 2 for c in edge_count.values())

    def test_float32_input(self):
        f = sphere_field(12, dtype=np.float32)
        tris = marching_tetrahedra(f, 4.0)
        assert tris.dtype == np.float64
        assert tris.shape[0] > 0


class TestMask:
    def test_full_mask_equals_unmasked(self):
        f = sphere_field(12)
        mask = np.ones((11, 11, 11), dtype=bool)
        a = marching_tetrahedra(f, 4.0)
        b = marching_tetrahedra(f, 4.0, cell_mask=mask)
        assert np.array_equal(a, b)

    def test_empty_mask_yields_nothing(self):
        f = sphere_field(12)
        mask = np.zeros((11, 11, 11), dtype=bool)
        assert marching_tetrahedra(f, 4.0, cell_mask=mask).shape[0] == 0

    def test_half_mask_subset(self):
        f = sphere_field(12)
        mask = np.zeros((11, 11, 11), dtype=bool)
        mask[:, :, :6] = True
        sub = marching_tetrahedra(f, 4.0, cell_mask=mask)
        full = marching_tetrahedra(f, 4.0)
        assert 0 < sub.shape[0] < full.shape[0]

    def test_mask_shape_checked(self):
        with pytest.raises(FilterError, match="cell_mask"):
            marching_tetrahedra(
                np.zeros((3, 3, 3)), 0.5, cell_mask=np.ones((3, 3, 3), dtype=bool)
            )


class TestValidation:
    def test_rejects_2d(self):
        with pytest.raises(FilterError):
            marching_tetrahedra(np.zeros((4, 4)), 0.5)

    def test_rejects_thin_axis(self):
        with pytest.raises(FilterError):
            marching_tetrahedra(np.zeros((1, 4, 4)), 0.5)


class TestDeterminism:
    def test_repeatable(self):
        f = sphere_field(10)
        a = marching_tetrahedra(f, 3.0)
        b = marching_tetrahedra(f, 3.0)
        assert np.array_equal(a, b)
