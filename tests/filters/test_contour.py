"""Unit tests for the ContourFilter and contour_grid kernel."""

import numpy as np
import pytest

from repro.errors import FilterError
from repro.filters import ContourFilter, contour_grid
from repro.filters.contour import _values_unset, normalize_values
from repro.grid import DataArray, UniformGrid
from repro.pipeline import TrivialProducer

from tests.conftest import make_2d_grid, make_sphere_grid


class TestNormalizeValues:
    def test_scalar(self):
        assert normalize_values(0.5) == (0.5,)

    def test_sorted_unique(self):
        assert normalize_values([0.9, 0.1, 0.5, 0.1]) == (0.1, 0.5, 0.9)

    def test_empty_rejected(self):
        with pytest.raises(FilterError):
            normalize_values([])

    def test_nonfinite_rejected(self):
        with pytest.raises(FilterError, match="finite"):
            normalize_values([np.nan])
        with pytest.raises(FilterError, match="finite"):
            normalize_values([np.inf])

    def test_numpy_scalar(self):
        # np.float64 is not a python scalar for ``np.isscalar`` purposes
        # on older numpy, and used to slip through to the iteration path.
        assert normalize_values(np.float64(0.5)) == (0.5,)
        assert normalize_values(np.float32(0.25)) == (0.25,)
        assert normalize_values(np.int64(3)) == (3.0,)

    def test_0d_array(self):
        # Iterating a 0-d array raises TypeError; it must be treated as
        # a single value instead.
        assert normalize_values(np.array(0.5)) == (0.5,)

    def test_ndarray(self):
        assert normalize_values(np.array([0.9, 0.1, 0.5])) == (0.1, 0.5, 0.9)
        assert normalize_values(np.array([[0.2], [0.8]])) == (0.2, 0.8)

    def test_empty_ndarray_rejected(self):
        with pytest.raises(FilterError):
            normalize_values(np.array([]))


class TestValuesUnset:
    def test_unset_forms(self):
        assert _values_unset(None)
        assert _values_unset(())
        assert _values_unset([])
        assert _values_unset(np.array([]))

    def test_set_forms(self):
        assert not _values_unset(0.0)  # falsy scalar is still a value
        assert not _values_unset(np.float64(0.0))
        assert not _values_unset(np.array(0.5))  # 0-d array
        assert not _values_unset(np.array([1.0, 2.0]))
        assert not _values_unset((1.0,))

    def test_filter_accepts_ndarray_values(self):
        # ``values != ()`` in the constructor used to be an elementwise
        # comparison for arrays — truth-testing it raised ValueError.
        grid = make_sphere_grid(12)
        producer = TrivialProducer(grid)
        filt = ContourFilter(array_name="r", values=np.array([4.0, 6.0]))
        filt.set_input_connection(0, producer)
        assert filt.values == (4.0, 6.0)
        pd = filt.output()
        assert pd.num_points > 0

    def test_filter_accepts_numpy_scalar(self):
        filt = ContourFilter(array_name="r", values=np.float64(6.0))
        assert filt.values == (6.0,)

    def test_ndp_source_accepts_ndarray_values(self):
        from repro.core.ndp_client import NDPContourSource

        src = NDPContourSource(values=np.array([1.0, 2.0]))
        assert src.values == (1.0, 2.0)
        assert NDPContourSource(values=np.array([])).values == ()


class TestContourGrid3D:
    def test_sphere(self):
        grid = make_sphere_grid(20)
        pd = contour_grid(grid, "r", 6.0)
        assert pd.triangles().shape[0] > 0
        pd.validate()

    def test_contour_value_array(self):
        grid = make_sphere_grid(16)
        pd = contour_grid(grid, "r", [4.0, 6.0])
        cv = pd.point_data.get("contour_value").values
        assert set(np.unique(cv)) == {4.0, 6.0}

    def test_multi_value_is_concatenation(self):
        grid = make_sphere_grid(16)
        both = contour_grid(grid, "r", [4.0, 6.0])
        lo = contour_grid(grid, "r", 4.0)
        hi = contour_grid(grid, "r", 6.0)
        assert both.num_points == lo.num_points + hi.num_points
        assert np.array_equal(both.points[: lo.num_points], lo.points)

    def test_empty_result_structure(self):
        grid = make_sphere_grid(8)
        pd = contour_grid(grid, "r", 1000.0)
        assert pd.num_points == 0
        assert pd.triangles().shape == (0, 3)
        assert "contour_value" in pd.point_data

    def test_missing_array(self):
        grid = make_sphere_grid(8)
        with pytest.raises(Exception, match="nope"):
            contour_grid(grid, "nope", 1.0)


class TestContourGrid2D:
    def test_lines_output(self):
        grid = make_2d_grid(12, 10)
        pd = contour_grid(grid, "f", 0.0)
        assert pd.segments().shape[0] > 0
        assert pd.polys.num_cells == 0
        pd.validate()

    def test_points_in_plane(self):
        grid = make_2d_grid(12, 10)
        pd = contour_grid(grid, "f", 0.0)
        assert np.all(pd.points[:, 2] == grid.origin[2])

    def test_xz_plane_grid(self):
        # ny == 1: contour should live in the xz plane.
        grid = UniformGrid((8, 1, 8))
        zz, xx = np.meshgrid(np.arange(8), np.arange(8), indexing="ij")
        grid.point_data.add(DataArray("f", (xx - zz).reshape(-1).astype(float)))
        pd = contour_grid(grid, "f", 0.5)
        assert pd.segments().shape[0] > 0
        assert np.all(pd.points[:, 1] == 0.0)

    def test_yz_plane_grid(self):
        grid = UniformGrid((1, 8, 8))
        zz, yy = np.meshgrid(np.arange(8), np.arange(8), indexing="ij")
        grid.point_data.add(DataArray("f", (yy - zz).reshape(-1).astype(float)))
        pd = contour_grid(grid, "f", 0.5)
        assert pd.segments().shape[0] > 0
        assert np.all(pd.points[:, 0] == 0.0)

    def test_paper_fig3_example(self):
        """The paper's Fig. 3: value-5 contour over an 8x6 mesh of 0..9."""
        rng = np.random.default_rng(42)
        grid = UniformGrid((8, 6, 1))
        grid.point_data.add(
            DataArray("v", rng.integers(0, 10, 48).astype(np.float32))
        )
        pd = contour_grid(grid, "v", 5.0)
        assert pd.segments().shape[0] > 0


class TestContourFilterPipeline:
    def test_pipeline_usage(self):
        grid = make_sphere_grid(12)
        f = ContourFilter("r", [4.0])
        f.set_input_connection(0, TrivialProducer(grid))
        pd = f.output()
        assert pd.triangles().shape[0] > 0

    def test_matches_functional_kernel(self):
        grid = make_sphere_grid(12)
        f = ContourFilter("r", [4.0])
        f.set_input_data(grid)
        assert np.array_equal(f.output().points, contour_grid(grid, "r", 4.0).points)

    def test_reconfigure_reexecutes(self):
        grid = make_sphere_grid(12)
        f = ContourFilter("r", [4.0])
        f.set_input_data(grid)
        n1 = f.output().num_points
        f.set_values([5.0])
        n2 = f.output().num_points
        assert n1 != n2

    def test_unconfigured_errors(self):
        f = ContourFilter()
        f.set_input_data(make_sphere_grid(8))
        with pytest.raises(FilterError, match="array name"):
            f.update()
        f.set_array_name("r")
        with pytest.raises(FilterError, match="values"):
            f.update()

    def test_wrong_input_type(self):
        f = ContourFilter("r", [1.0])
        f.set_input_data("not a grid")
        with pytest.raises(FilterError, match="UniformGrid"):
            f.update()

    def test_values_property(self):
        f = ContourFilter("r", [0.5, 0.1])
        assert f.values == (0.1, 0.5)
        assert f.array_name == "r"
