"""Unit tests for the axis-aligned slice filter."""

import numpy as np
import pytest

from repro.errors import FilterError
from repro.filters import SliceFilter, slice_grid
from repro.filters.slice import slice_plane_indices
from repro.grid import DataArray, UniformGrid

from tests.conftest import make_wave_grid


def linear_grid(n=8):
    """Field f(x,y,z) = x + 10y + 100z: linear, so slices are exact."""
    grid = UniformGrid((n, n, n), origin=(1.0, 2.0, 3.0), spacing=(0.5, 1.0, 2.0))
    zz, yy, xx = np.meshgrid(*(np.arange(n),) * 3, indexing="ij")
    x = 1.0 + 0.5 * xx
    y = 2.0 + 1.0 * yy
    z = 3.0 + 2.0 * zz
    grid.point_data.add(DataArray("f", (x + 10 * y + 100 * z).reshape(-1)))
    return grid


class TestPlaneIndices:
    def test_exact_hit(self):
        grid = linear_grid()
        i0, i1, t = slice_plane_indices(grid, 0, 1.0 + 0.5 * 3)
        assert (i0, i1, t) == (3, 3, 0.0)

    def test_between_planes(self):
        grid = linear_grid()
        i0, i1, t = slice_plane_indices(grid, 0, 1.0 + 0.5 * 3.25)
        assert (i0, i1) == (3, 4)
        assert t == pytest.approx(0.25)

    def test_boundaries(self):
        grid = linear_grid(4)
        assert slice_plane_indices(grid, 2, 3.0) == (0, 0, 0.0)
        assert slice_plane_indices(grid, 2, 3.0 + 2.0 * 3) == (3, 3, 0.0)

    def test_out_of_range(self):
        grid = linear_grid(4)
        with pytest.raises(FilterError, match="outside"):
            slice_plane_indices(grid, 0, -100.0)

    def test_bad_axis(self):
        with pytest.raises(FilterError):
            slice_plane_indices(linear_grid(4), 3, 0.0)


class TestSliceGrid:
    @pytest.mark.parametrize("axis", [0, 1, 2])
    def test_points_in_plane(self, axis):
        grid = linear_grid()
        coord = grid.origin[axis] + 2.5 * grid.spacing[axis]
        pd = slice_grid(grid, axis, coord)
        assert np.allclose(pd.points[:, axis], coord)
        pd.validate()

    @pytest.mark.parametrize("axis", [0, 1, 2])
    def test_linear_field_exact(self, axis):
        """On a linear field, interpolated values equal the analytic ones."""
        grid = linear_grid()
        coord = grid.origin[axis] + 2.7 * grid.spacing[axis]
        pd = slice_grid(grid, axis, coord)
        pts = pd.points
        expected = pts[:, 0] + 10 * pts[:, 1] + 100 * pts[:, 2]
        assert np.allclose(pd.point_data.get("f").values, expected)

    def test_triangle_count(self):
        grid = linear_grid(6)
        pd = slice_grid(grid, 2, 3.0)
        assert pd.num_points == 36
        assert pd.triangles().shape[0] == 2 * 5 * 5

    def test_area_covers_plane(self):
        grid = linear_grid(5)
        pd = slice_grid(grid, 2, 4.0)
        tris = pd.points[pd.triangles()]
        e1 = tris[:, 1] - tris[:, 0]
        e2 = tris[:, 2] - tris[:, 0]
        area = 0.5 * np.linalg.norm(np.cross(e1, e2), axis=1).sum()
        assert area == pytest.approx((4 * 0.5) * (4 * 1.0))

    def test_array_selection(self):
        grid = linear_grid()
        grid.point_data.add(DataArray("g", np.zeros(grid.num_points)))
        pd = slice_grid(grid, 2, 3.0, ["g"])
        assert pd.point_data.names() == ["g"]

    def test_vector_arrays_skipped_by_default(self):
        grid = linear_grid()
        grid.point_data.add(DataArray("vel", np.zeros(grid.num_points * 3), components=3))
        pd = slice_grid(grid, 2, 3.0)
        assert "vel" not in pd.point_data
        assert "f" in pd.point_data

    def test_rejects_2d_grid(self):
        grid = UniformGrid((5, 5, 1))
        grid.point_data.add(DataArray("f", np.zeros(25)))
        with pytest.raises(FilterError, match="3-D"):
            slice_grid(grid, 2, 0.0)


class TestSliceFilterPipeline:
    def test_pipeline(self):
        grid = make_wave_grid(12)
        f = SliceFilter("z", grid.origin[2] + 4.5 * grid.spacing[2])
        f.set_input_data(grid)
        pd = f.output()
        assert pd.num_points == 144

    def test_axis_names(self):
        assert SliceFilter("x").axis == 0
        assert SliceFilter("y").axis == 1
        assert SliceFilter(2).axis == 2
        with pytest.raises(FilterError):
            SliceFilter("w")

    def test_set_plane_reexecutes(self):
        grid = linear_grid()
        f = SliceFilter("z", 3.0)
        f.set_input_data(grid)
        v1 = f.output().point_data.get("f").values.mean()
        f.set_plane("z", 3.0 + 2.0 * 4)
        v2 = f.output().point_data.get("f").values.mean()
        assert v2 > v1

    def test_wrong_input(self):
        f = SliceFilter()
        f.set_input_data("x")
        with pytest.raises(FilterError):
            f.update()
