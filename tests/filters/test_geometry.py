"""Unit tests for geometry post-processing utilities."""

import numpy as np
import pytest

from repro.errors import FilterError
from repro.filters import contour_grid
from repro.filters.geometry import (
    component_sizes,
    connected_components,
    segment_length,
    surface_area,
    weld_points,
)
from repro.grid import DataArray, PolyData, UniformGrid

from tests.conftest import make_2d_grid, make_sphere_grid


def two_sphere_grid(n=24):
    """Two disjoint blobs: distance to the nearer of two centres."""
    zz, yy, xx = np.meshgrid(*(np.arange(n),) * 3, indexing="ij")
    d1 = np.sqrt((xx - n / 4) ** 2 + (yy - n / 2) ** 2 + (zz - n / 2) ** 2)
    d2 = np.sqrt((xx - 3 * n / 4) ** 2 + (yy - n / 2) ** 2 + (zz - n / 2) ** 2)
    grid = UniformGrid((n, n, n))
    grid.point_data.add(DataArray("d", np.minimum(d1, d2).reshape(-1)))
    return grid


class TestWeld:
    def test_soup_point_count_shrinks(self):
        pd = contour_grid(make_sphere_grid(14), "r", [4.0])
        welded = weld_points(pd)
        assert 0 < welded.num_points < pd.num_points
        # Triangle count unchanged; geometry identical per-cell.
        assert welded.polys.num_cells == pd.polys.num_cells
        orig = np.sort(pd.points[pd.triangles()].reshape(-1, 9), axis=0)
        new = np.sort(welded.points[welded.triangles()].reshape(-1, 9), axis=0)
        assert np.allclose(orig, new)

    def test_point_data_carried(self):
        pd = contour_grid(make_sphere_grid(12), "r", [3.0, 4.0])
        welded = weld_points(pd)
        assert "contour_value" in welded.point_data
        assert welded.point_data.get("contour_value").num_tuples == welded.num_points

    def test_empty(self):
        assert weld_points(PolyData()).num_points == 0

    def test_validates_after_weld(self):
        pd = contour_grid(make_sphere_grid(10), "r", [3.0])
        weld_points(pd).validate()


class TestMeasures:
    def test_sphere_area(self):
        pd = contour_grid(make_sphere_grid(28), "r", [9.0])
        area = surface_area(pd)
        exact = 4 * np.pi * 81.0
        assert abs(area - exact) / exact < 0.15

    def test_circle_length(self):
        grid = make_2d_grid(40, 40)
        # Replace with a radial field for a clean circle.
        yy, xx = np.mgrid[0:40, 0:40]
        r = np.hypot(xx - 20, yy - 20)
        grid.point_data.get("f").values[:] = r.reshape(-1)
        pd = contour_grid(grid, "f", [10.0])
        length = segment_length(pd)
        assert abs(length - 2 * np.pi * 10) / (2 * np.pi * 10) < 0.1

    def test_empty_measures(self):
        assert surface_area(PolyData()) == 0.0
        assert segment_length(PolyData()) == 0.0


class TestComponents:
    def test_single_sphere_one_component(self):
        pd = contour_grid(make_sphere_grid(16), "r", [5.0])
        sizes = component_sizes(pd)
        assert len(sizes) == 1

    def test_two_spheres_two_components(self):
        pd = contour_grid(two_sphere_grid(), "d", [4.0])
        sizes = component_sizes(pd)
        assert len(sizes) == 2
        # Roughly equal-sized spheres.
        assert sizes[0] < 1.5 * sizes[1]

    def test_nested_shells_two_components(self):
        pd = contour_grid(make_sphere_grid(20), "r", [4.0, 7.0])
        assert len(component_sizes(pd)) == 2

    def test_min_points_filters_fragments(self):
        pd = contour_grid(two_sphere_grid(), "d", [4.0])
        all_sizes = component_sizes(pd, min_points=1)
        big_only = component_sizes(pd, min_points=max(all_sizes))
        assert len(big_only) <= len(all_sizes)

    def test_min_points_validated(self):
        with pytest.raises(FilterError):
            component_sizes(PolyData(), min_points=0)

    def test_labels_cover_welded_points(self):
        pd = contour_grid(make_sphere_grid(12), "r", [4.0])
        labels = connected_components(pd)
        welded = weld_points(pd)
        assert labels.size == welded.num_points
        assert labels.min() == 0

    def test_2d_contour_components(self):
        grid = make_2d_grid(30, 30)
        yy, xx = np.mgrid[0:30, 0:30]
        d1 = np.hypot(xx - 8, yy - 15)
        d2 = np.hypot(xx - 22, yy - 15)
        grid.point_data.get("f").values[:] = np.minimum(d1, d2).reshape(-1)
        pd = contour_grid(grid, "f", [4.0])
        assert len(component_sizes(pd)) == 2
