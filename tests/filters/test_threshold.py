"""Unit tests for ThresholdPoints."""

import numpy as np
import pytest

from repro.errors import FilterError
from repro.filters import ThresholdPoints
from repro.filters.threshold import threshold_point_ids
from repro.grid import DataArray, UniformGrid

from tests.conftest import make_sphere_grid


class TestThresholdIds:
    def test_inclusive_range(self):
        grid = UniformGrid((4, 1, 1))
        grid.point_data.add(DataArray("f", [0.0, 1.0, 2.0, 3.0]))
        ids = threshold_point_ids(grid, "f", 1.0, 2.0)
        assert ids.tolist() == [1, 2]

    def test_lower_gt_upper(self):
        grid = make_sphere_grid(4)
        with pytest.raises(FilterError):
            threshold_point_ids(grid, "r", 2.0, 1.0)

    def test_vector_array_rejected(self):
        grid = UniformGrid((2, 2, 2))
        grid.point_data.add(DataArray("v", np.zeros(24), components=3))
        with pytest.raises(FilterError, match="scalar"):
            threshold_point_ids(grid, "v", 0, 1)

    def test_empty_result(self):
        grid = make_sphere_grid(6)
        assert threshold_point_ids(grid, "r", 1e6, 2e6).size == 0


class TestThresholdFilter:
    def test_extracts_vertices(self):
        grid = make_sphere_grid(10)
        f = ThresholdPoints("r", 0.0, 3.0)
        f.set_input_data(grid)
        pd = f.output()
        assert pd.verts.num_cells == pd.num_points > 0
        # all extracted points are within radius 3 of the center
        rr = np.linalg.norm(pd.points - 5.0, axis=1)
        assert rr.max() <= 3.0

    def test_carries_values(self):
        grid = make_sphere_grid(8)
        f = ThresholdPoints("r", 1.0, 2.0)
        f.set_input_data(grid)
        pd = f.output()
        vals = pd.point_data.get("r").values
        assert np.all((vals >= 1.0) & (vals <= 2.0))

    def test_set_range_validates(self):
        f = ThresholdPoints("r")
        with pytest.raises(FilterError):
            f.set_range(5, 1)

    def test_unconfigured(self):
        f = ThresholdPoints()
        f.set_input_data(make_sphere_grid(4))
        with pytest.raises(FilterError, match="array name"):
            f.update()

    def test_wrong_input_type(self):
        f = ThresholdPoints("r")
        f.set_input_data(42)
        with pytest.raises(FilterError, match="UniformGrid"):
            f.update()
