"""Unit tests for the generated tetrahedral contouring tables."""

import itertools

import numpy as np
import pytest

from repro.filters.tetra_tables import (
    CORNER_OFFSETS,
    KUHN_TETS,
    TET_CASES,
    TET_EDGES,
    edge_id,
)


class TestCornerLayout:
    def test_offsets_binary_order(self):
        for c, (di, dj, dk) in enumerate(CORNER_OFFSETS):
            assert (di, dj, dk) == (c & 1, (c >> 1) & 1, (c >> 2) & 1)


class TestKuhnDecomposition:
    def test_six_tets(self):
        assert len(KUHN_TETS) == 6

    def test_all_share_main_diagonal(self):
        for tet in KUHN_TETS:
            assert 0 in tet and 7 in tet

    def test_tets_partition_cube_volume(self):
        """The 6 tets' volumes sum to the unit cube's volume."""
        corners = np.array(CORNER_OFFSETS, dtype=float)
        total = 0.0
        for tet in KUHN_TETS:
            p = corners[list(tet)]
            v = abs(np.linalg.det(p[1:] - p[0])) / 6.0
            total += v
            assert v > 0  # non-degenerate
        assert total == pytest.approx(1.0)

    def test_tets_interior_disjoint(self):
        """Random points land in exactly one tet (boundary aside)."""
        corners = np.array(CORNER_OFFSETS, dtype=float)
        rng = np.random.default_rng(0)
        pts = rng.random((200, 3))

        def inside(tet, q):
            p = corners[list(tet)]
            mat = np.column_stack([p[1] - p[0], p[2] - p[0], p[3] - p[0]])
            lam = np.linalg.solve(mat, q - p[0])
            return (lam > 1e-9).all() and lam.sum() < 1 - 1e-9

        for q in pts:
            hits = sum(inside(tet, q) for tet in KUHN_TETS)
            assert hits <= 1
        # And collectively they cover the cube (allow boundary misses).
        covered = sum(
            any(inside(tet, q) for tet in KUHN_TETS) for q in pts
        )
        assert covered >= 190


class TestEdges:
    def test_edge_count(self):
        assert len(TET_EDGES) == 6

    def test_edge_id_symmetric(self):
        for a, b in itertools.combinations(range(4), 2):
            assert edge_id(a, b) == edge_id(b, a)

    def test_edge_id_covers_all(self):
        ids = {edge_id(a, b) for a, b in itertools.combinations(range(4), 2)}
        assert ids == set(range(6))


class TestCaseTable:
    def test_16_cases(self):
        assert len(TET_CASES) == 16

    def test_empty_and_full_emit_nothing(self):
        assert TET_CASES[0] == ()
        assert TET_CASES[15] == ()

    def test_triangle_counts(self):
        for case in range(1, 15):
            n_inside = bin(case).count("1")
            expected = 1 if n_inside in (1, 3) else 2
            assert len(TET_CASES[case]) == expected

    def test_complementary_cases_use_same_edges(self):
        """Case c and ~c cut the same edge set (the same surface)."""
        for case in range(1, 15):
            comp = case ^ 0xF
            edges_a = {e for tri in TET_CASES[case] for e in tri}
            edges_b = {e for tri in TET_CASES[comp] for e in tri}
            assert edges_a == edges_b

    def test_triangles_use_only_crossing_edges(self):
        """Every edge used must connect an inside to an outside vertex."""
        for case in range(16):
            inside = {s for s in range(4) if case >> s & 1}
            for tri in TET_CASES[case]:
                for e in tri:
                    a, b = TET_EDGES[e]
                    assert (a in inside) != (b in inside)

    def test_all_crossing_edges_are_used(self):
        """No crossing edge is left without a contour vertex."""
        for case in range(1, 15):
            inside = {s for s in range(4) if case >> s & 1}
            crossing = {
                i
                for i, (a, b) in enumerate(TET_EDGES)
                if (a in inside) != (b in inside)
            }
            used = {e for tri in TET_CASES[case] for e in tri}
            assert used == crossing

    def test_quad_triangles_share_diagonal(self):
        """Two-triangle cases share exactly one edge pair (the diagonal)."""
        for case in range(1, 15):
            tris = TET_CASES[case]
            if len(tris) == 2:
                shared = set(tris[0]) & set(tris[1])
                assert len(shared) == 2
