"""Smoke tests: every shipped example runs end to end.

Run as subprocesses from a temp directory (examples write images to their
CWD) at reduced resolution, checking exit status and key output lines —
enough to catch API drift without re-testing the underlying features.
"""

import os
import subprocess
import sys

import pytest

EXAMPLES = os.path.join(os.path.dirname(__file__), "..", "examples")
SRC = os.path.abspath(os.path.join(os.path.dirname(__file__), "..", "src"))


def run_example(tmp_path, name: str, *args: str, timeout: int = 420):
    script = os.path.abspath(os.path.join(EXAMPLES, name))
    # The examples import repro from the source tree; the subprocess does
    # not inherit pytest's import path, so prepend src to PYTHONPATH.
    env = dict(os.environ)
    env["PYTHONPATH"] = SRC + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    proc = subprocess.run(
        [sys.executable, script, *args],
        cwd=str(tmp_path),
        capture_output=True,
        text=True,
        timeout=timeout,
        env=env,
    )
    assert proc.returncode == 0, proc.stderr[-2000:]
    return proc.stdout


class TestExamples:
    def test_quickstart(self, tmp_path):
        out = run_example(tmp_path, "quickstart.py")
        assert "bit-identical" in out
        assert (tmp_path / "quickstart_contour.ppm").exists()

    def test_contour2d_fig3(self, tmp_path):
        out = run_example(tmp_path, "contour2d_fig3.py")
        assert "contour value 5" in out
        assert "line segments" in out

    def test_asteroid_movie(self, tmp_path):
        out = run_example(tmp_path, "asteroid_movie.py", "24", str(tmp_path / "movie"))
        assert "done — 9 frames" in out
        frames = list((tmp_path / "movie").glob("frame_*.ppm"))
        assert len(frames) == 9

    def test_nyx_halos(self, tmp_path):
        out = run_example(tmp_path, "nyx_halos.py", "32")
        assert "halo" in out
        assert (tmp_path / "nyx_halos.ppm").exists()

    def test_ndp_vs_baseline(self, tmp_path):
        out = run_example(tmp_path, "ndp_vs_baseline.py", "24")
        assert "Table II" in out
        assert "planner" in out.lower()

    def test_adaptive_explorer(self, tmp_path):
        out = run_example(tmp_path, "adaptive_explorer.py", "24")
        assert "catalog: 5 timesteps" in out
        assert "server totals" in out
