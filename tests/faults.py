"""Deterministic fault-injection harness for the NDP transport stack.

Everything here is *scripted*: faults come from an explicit action list or
a seeded RNG, and time comes from a :class:`FakeClock`, so tests exercise
every retry/backoff/breaker/fallback branch byte-for-byte reproducibly and
with **zero wall-clock sleeps**.

Building blocks
---------------
* :class:`FakeClock` — injectable monotonic clock; ``sleep`` advances it
  and logs the requested duration instead of blocking.
* Fault actions — :class:`Ok`, :class:`Drop`, :class:`Delay`,
  :class:`Truncate`, :class:`Corrupt`, :class:`BitFlip`; data records
  describing what happens to one request.
* :class:`FaultSchedule` — a queue of actions consumed one per request
  (explicit script, ``drops(n)`` for N-consecutive-failure sequences, or
  :meth:`FaultSchedule.random` from a seed).
* :class:`FaultyTransport` — wraps a :class:`~repro.rpc.transport.Transport`,
  applying the schedule to each ``request``.
* :class:`FaultyBackend` — wraps an object store, applying a schedule to
  ``get_object`` so storage-layer faults are injectable under a real
  :class:`~repro.storage.s3fs.S3FileSystem`.
"""

from __future__ import annotations

import random
from collections import deque
from dataclasses import dataclass, field

from repro.errors import RPCTransportError, StorageError
from repro.rpc.transport import Transport

__all__ = [
    "FakeClock",
    "Ok",
    "Drop",
    "Delay",
    "Truncate",
    "Corrupt",
    "BitFlip",
    "drops",
    "FaultSchedule",
    "FaultyTransport",
    "FaultyBackend",
]


class FakeClock:
    """A monotonic clock tests control explicitly.

    Use the instance itself as the ``clock`` callable and bind
    :meth:`sleep` wherever a sleep function is injected; sleeps advance
    the clock and are logged, never blocking.
    """

    def __init__(self, start: float = 0.0):
        self.now = float(start)
        self.sleeps: list[float] = []

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        assert seconds >= 0
        self.now += seconds

    def sleep(self, seconds: float) -> None:
        self.sleeps.append(seconds)
        self.advance(seconds)


# ---------------------------------------------------------------------------
# Fault actions
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Ok:
    """Pass the request through untouched."""


@dataclass(frozen=True)
class Drop:
    """Fail before any bytes move (connection refused / reset)."""

    message: str = "injected connection drop"


@dataclass(frozen=True)
class Delay:
    """Advance the injected clock by ``seconds``, then apply ``then``.

    Models a slow link or stalled server without real waiting; with
    ``then=Drop()`` it is a hang-then-reset, with the default ``Ok()`` a
    late success (which a deadline may still reject).
    """

    seconds: float = 1.0
    then: object = field(default_factory=Ok)


@dataclass(frozen=True)
class Truncate:
    """Deliver only the first ``keep_bytes`` of the response payload.

    The client's decoder must reject the remainder loudly — the library's
    failure contract is typed errors, never silently wrong data.
    """

    keep_bytes: int = 8


@dataclass(frozen=True)
class Corrupt:
    """XOR one response byte (``offset`` may be negative, Python-style)."""

    offset: int = -1
    mask: int = 0xFF


@dataclass(frozen=True)
class BitFlip:
    """Flip exactly one bit at a seeded-random position in the payload.

    The position is drawn deterministically from ``seed`` and the payload
    length, so a given (seed, object) pair always flips the same bit —
    which is what lets property tests replay a failing case.  This is the
    at-rest corruption model: a single silent bit error anywhere in the
    stored bytes.
    """

    seed: int = 0

    def apply(self, data: bytes) -> bytes:
        if not data:
            return data
        rng = random.Random(self.seed)
        bit = rng.randrange(len(data) * 8)
        mutated = bytearray(data)
        mutated[bit // 8] ^= 1 << (bit % 8)
        return bytes(mutated)


def drops(n: int, message: str = "injected connection drop") -> list:
    """An N-consecutive-failure sequence (then the schedule's default)."""
    return [Drop(message)] * n


class FaultSchedule:
    """A per-request queue of fault actions.

    Each intercepted call consumes the next action; once the script is
    exhausted every call gets ``default`` (pass-through unless a
    permanently-down scenario sets ``default=Drop()``).
    """

    def __init__(self, actions=(), default=None):
        self._queue = deque(actions)
        self.default = default if default is not None else Ok()
        #: every action handed out, in order — assert against this
        self.log: list = []

    def __len__(self) -> int:
        return len(self._queue)

    def next(self):
        action = self._queue.popleft() if self._queue else self.default
        self.log.append(action)
        return action

    def push(self, *actions) -> "FaultSchedule":
        self._queue.extend(actions)
        return self

    @classmethod
    def permanently_down(cls, message: str = "injected: server down") -> "FaultSchedule":
        return cls(default=Drop(message))

    @classmethod
    def random(
        cls,
        seed: int,
        length: int,
        drop: float = 0.3,
        delay: float = 0.2,
        delay_seconds: float = 0.5,
    ) -> "FaultSchedule":
        """A seeded random script of drops/delays/passes.

        Only *retryable* faults are drawn, so a resilient client with a
        fallback configured always completes — which is exactly the
        property the equivalence tests assert.
        """
        rng = random.Random(seed)
        actions = []
        for _ in range(length):
            r = rng.random()
            if r < drop:
                actions.append(Drop())
            elif r < drop + delay:
                actions.append(Delay(rng.uniform(0.0, delay_seconds)))
            else:
                actions.append(Ok())
        return cls(actions)


# ---------------------------------------------------------------------------
# Fault injectors
# ---------------------------------------------------------------------------


class FaultyTransport(Transport):
    """Applies a :class:`FaultSchedule` to every ``request``.

    Drops and delayed drops raise :class:`~repro.errors.RPCTransportError`
    *without* reaching the inner transport (the frame never left);
    truncation and corruption tamper with the inner response on the way
    back.  ``clock`` is required whenever the schedule contains delays.
    """

    def __init__(self, inner: Transport, schedule: FaultSchedule, clock: FakeClock | None = None):
        self.inner = inner
        self.schedule = schedule
        self.clock = clock
        self.attempts = 0

    def request(self, payload: bytes) -> bytes:
        self.attempts += 1
        return self._apply(self.schedule.next(), payload)

    def _apply(self, action, payload: bytes) -> bytes:
        if isinstance(action, Delay):
            if self.clock is None:
                raise AssertionError("Delay fault requires a FakeClock")
            self.clock.advance(action.seconds)
            return self._apply(action.then, payload)
        if isinstance(action, Drop):
            raise RPCTransportError(action.message)
        response = self.inner.request(payload)
        if isinstance(action, Truncate):
            return response[: action.keep_bytes]
        if isinstance(action, Corrupt):
            mutated = bytearray(response)
            mutated[action.offset] ^= action.mask
            return bytes(mutated)
        if isinstance(action, BitFlip):
            return action.apply(response)
        assert isinstance(action, Ok), f"unknown fault action {action!r}"
        return response

    def close(self) -> None:
        self.inner.close()


class FaultyBackend:
    """Object-store wrapper injecting faults into ``get_object``.

    Duck-types the store surface :class:`~repro.storage.s3fs.S3FileSystem`
    needs (``get_object``/``head_object``/``list_objects``/``put_object``),
    so a faulty *storage layer* can sit under real reads.  Drops surface
    as :class:`~repro.errors.StorageError`; truncation and corruption
    tamper with the returned bytes (downstream decoders must reject them).
    """

    def __init__(self, store, schedule: FaultSchedule, clock: FakeClock | None = None):
        self.store = store
        self.schedule = schedule
        self.clock = clock
        self.reads = 0

    def get_object(self, bucket, key, offset=0, length=None):
        self.reads += 1
        action = self.schedule.next()
        while isinstance(action, Delay):
            if self.clock is None:
                raise AssertionError("Delay fault requires a FakeClock")
            self.clock.advance(action.seconds)
            action = action.then
        if isinstance(action, Drop):
            raise StorageError(f"injected backend failure: {action.message}")
        data = self.store.get_object(bucket, key, offset, length)
        if isinstance(action, Truncate):
            return data[: action.keep_bytes]
        if isinstance(action, Corrupt):
            mutated = bytearray(data)
            mutated[action.offset] ^= action.mask
            return bytes(mutated)
        if isinstance(action, BitFlip):
            return action.apply(data)
        assert isinstance(action, Ok), f"unknown fault action {action!r}"
        return data

    # pass-throughs the filesystem layer relies on
    def head_object(self, bucket, key):
        return self.store.head_object(bucket, key)

    def list_objects(self, bucket, prefix=""):
        return self.store.list_objects(bucket, prefix)

    def put_object(self, bucket, key, data):
        return self.store.put_object(bucket, key, data)
