"""Hypothesis property tests: codec round trips on arbitrary bytes."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.compression import get_codec
from repro.compression.lz4 import lz4_compress_block, lz4_decompress_block

LOSSLESS = ("raw", "gzip", "lz4", "rle")


@given(data=st.binary(max_size=4096))
@settings(max_examples=150, deadline=None)
def test_lossless_round_trip_arbitrary_bytes(data):
    for name in LOSSLESS:
        codec = get_codec(name)
        assert codec.decompress(codec.compress(data)) == data


@given(
    chunks=st.lists(
        st.tuples(st.integers(0, 255), st.integers(1, 400)), min_size=0, max_size=30
    )
)
@settings(max_examples=100, deadline=None)
def test_lz4_round_trip_runs(chunks):
    """Runs of repeated bytes exercise the match-emission paths."""
    data = b"".join(bytes([v]) * n for v, n in chunks)
    assert lz4_decompress_block(lz4_compress_block(data)) == data


@given(data=st.binary(min_size=0, max_size=2048), acc=st.integers(1, 64))
@settings(max_examples=100, deadline=None)
def test_lz4_acceleration_round_trip(data, acc):
    assert lz4_decompress_block(lz4_compress_block(data, acceleration=acc)) == data


@given(
    values=st.lists(
        st.floats(
            min_value=-1e6, max_value=1e6, allow_nan=False, allow_infinity=False,
            width=32,
        ),
        min_size=0,
        max_size=500,
    ),
    bound_exp=st.integers(-5, 0),
)
@settings(max_examples=100, deadline=None)
def test_quantizer_error_bound(values, bound_exp):
    from repro.compression import QuantizerCodec

    bound = 10.0 ** bound_exp
    codec = QuantizerCodec(abs_bound=bound)
    x = np.asarray(values, dtype=np.float32)
    y = np.frombuffer(codec.decompress(codec.compress(x.tobytes())), dtype=np.float32)
    assert y.size == x.size
    if x.size:
        # Bound holds in exact arithmetic; float32 storage of the
        # reconstruction adds at most one round-off.
        err = np.abs(x.astype(np.float64) - y.astype(np.float64))
        tol = bound * (1 + 1e-5) + np.abs(x).max() * 1e-6
        assert err.max() <= tol


@given(data=st.binary(max_size=2048))
@settings(max_examples=60, deadline=None)
def test_compression_never_corrupts_compressed_stream(data):
    """Decompressing a fresh compression twice (idempotence check)."""
    codec = get_codec("lz4")
    frame = codec.compress(data)
    assert codec.decompress(frame) == data
    assert codec.decompress(frame) == data  # stateless decoders
