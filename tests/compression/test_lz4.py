"""Unit tests for the from-scratch LZ4 block codec."""

import numpy as np
import pytest

from repro.compression import LZ4Codec, lz4_compress_block, lz4_decompress_block
from repro.errors import CodecError


class TestBlockRoundTrip:
    CASES = [
        b"",
        b"a",
        b"hello world",
        b"0123456789" * 100,
        b"a" * 13,           # exactly past the all-literal threshold
        b"a" * 12,           # at the threshold: must stay all-literal
        b"abababababababababababab",
        bytes(range(256)) * 8,
        b"\x00" * 100_000,
        b"the quick brown fox jumps over the lazy dog " * 50,
    ]

    @pytest.mark.parametrize("data", CASES, ids=range(len(CASES)))
    def test_round_trip(self, data):
        assert lz4_decompress_block(lz4_compress_block(data)) == data

    def test_random_bytes(self, rng):
        data = bytes(rng.integers(0, 256, 50_000, dtype=np.uint8))
        assert lz4_decompress_block(lz4_compress_block(data)) == data

    def test_low_entropy_random(self, rng):
        data = bytes(rng.integers(0, 3, 50_000, dtype=np.uint8))
        block = lz4_compress_block(data)
        assert lz4_decompress_block(block) == data
        assert len(block) < len(data) * 0.75  # actually compresses

    def test_float_array_payload(self, rng):
        data = np.sin(np.linspace(0, 50, 30_000)).astype(np.float32).tobytes()
        assert lz4_decompress_block(lz4_compress_block(data)) == data

    def test_acceleration_levels(self, rng):
        data = bytes(rng.integers(0, 16, 20_000, dtype=np.uint8))
        for acc in (1, 4, 32):
            assert lz4_decompress_block(lz4_compress_block(data, acceleration=acc)) == data

    def test_bad_acceleration(self):
        with pytest.raises(CodecError):
            lz4_compress_block(b"x" * 100, acceleration=0)

    def test_long_match_lengths(self):
        # Forces the 255-run match-length extension encoding.
        data = b"Q" * 5000 + b"tail!"
        block = lz4_compress_block(data)
        assert lz4_decompress_block(block) == data
        assert len(block) < 60

    def test_long_literal_runs(self, rng):
        # > 15 literals forces the literal-length extension encoding.
        data = bytes(rng.integers(0, 256, 300, dtype=np.uint8))
        assert lz4_decompress_block(lz4_compress_block(data)) == data


class TestReferenceVectors:
    """Handcrafted blocks following the LZ4 block-format spec."""

    def test_literals_only(self):
        # token 0x50: 5 literals, no match (terminating sequence).
        assert lz4_decompress_block(bytes([0x50]) + b"hello") == b"hello"

    def test_simple_match(self):
        # 10 literals "0123456789", match offset 10 length 85 (ext 66),
        # then 5 terminating literals "56789" -> "0123456789" * 10.
        vec = (
            bytes([0xAF])
            + b"0123456789"
            + bytes([0x0A, 0x00])
            + bytes([66])
            + bytes([0x50])
            + b"56789"
        )
        assert lz4_decompress_block(vec) == b"0123456789" * 10

    def test_overlapping_match(self):
        # 1 literal "a", match offset 1 length 8, then 5 literals.
        vec = bytes([0x14]) + b"a" + bytes([0x01, 0x00]) + bytes([0x50]) + b"bcdef"
        assert lz4_decompress_block(vec) == b"a" * 9 + b"bcdef"

    def test_literal_length_extension(self):
        # 15+240=255 literals via extension byte 240.
        payload = bytes(range(250)) + b"extra"
        vec = bytes([0xF0]) + bytes([240]) + payload
        assert lz4_decompress_block(vec) == payload

    def test_empty_block(self):
        assert lz4_decompress_block(b"") == b""


class TestMalformedInput:
    def test_zero_offset(self):
        vec = bytes([0x14]) + b"a" + bytes([0x00, 0x00]) + bytes([0x50]) + b"bcdef"
        with pytest.raises(CodecError, match="zero"):
            lz4_decompress_block(vec)

    def test_offset_before_start(self):
        vec = bytes([0x14]) + b"a" + bytes([0x05, 0x00]) + bytes([0x50]) + b"bcdef"
        with pytest.raises(CodecError, match="before start"):
            lz4_decompress_block(vec)

    def test_truncated_literals(self):
        with pytest.raises(CodecError, match="literal"):
            lz4_decompress_block(bytes([0x50]) + b"hi")

    def test_truncated_offset(self):
        with pytest.raises(CodecError, match="offset"):
            lz4_decompress_block(bytes([0x14]) + b"a" + bytes([0x01]))

    def test_truncated_length_extension(self):
        with pytest.raises(CodecError, match="extension"):
            lz4_decompress_block(bytes([0xF0]))

    def test_max_output_guard(self):
        block = lz4_compress_block(b"a" * 10_000)
        with pytest.raises(CodecError, match="max_output"):
            lz4_decompress_block(block, max_output=100)


class TestFramedCodec:
    def test_round_trip(self, rng):
        codec = LZ4Codec()
        data = bytes(rng.integers(0, 10, 30_000, dtype=np.uint8))
        assert codec.decompress(codec.compress(data)) == data

    def test_frame_declares_size(self):
        codec = LZ4Codec()
        frame = codec.compress(b"x" * 1000)
        # Corrupt the declared size.
        bad = frame[:4] + (5).to_bytes(8, "little") + frame[12:]
        with pytest.raises(CodecError):
            codec.decompress(bad)

    def test_bad_magic(self):
        with pytest.raises(CodecError, match="magic"):
            LZ4Codec().decompress(b"NOPE" + b"\x00" * 20)

    def test_short_frame(self):
        with pytest.raises(CodecError, match="short"):
            LZ4Codec().decompress(b"LZ")

    def test_empty(self):
        codec = LZ4Codec()
        assert codec.decompress(codec.compress(b"")) == b""

    def test_bad_acceleration_config(self):
        with pytest.raises(CodecError):
            LZ4Codec(acceleration=0)
