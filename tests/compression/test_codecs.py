"""Unit tests for the codec registry, GZip, RLE, and the lossy quantizer."""

import zlib

import numpy as np
import pytest

from repro.compression import (
    Codec,
    GzipCodec,
    QuantizerCodec,
    RLECodec,
    available_codecs,
    get_codec,
    register_codec,
)
from repro.errors import CodecError


class TestRegistry:
    def test_builtins_registered(self):
        names = available_codecs()
        for name in ("raw", "gzip", "lz4", "rle", "quantizer"):
            assert name in names

    def test_get_unknown(self):
        with pytest.raises(CodecError, match="unknown codec"):
            get_codec("zstd")

    def test_duplicate_rejected(self):
        class Dup(Codec):
            name = "gzip"

            def compress(self, data):
                return data

            def decompress(self, data):
                return data

        with pytest.raises(CodecError, match="already"):
            register_codec(Dup())

    def test_unnamed_rejected(self):
        class NoName(Codec):
            name = ""

            def compress(self, data):
                return data

            def decompress(self, data):
                return data

        with pytest.raises(CodecError, match="no name"):
            register_codec(NoName())

    def test_ratio_helper(self):
        assert get_codec("raw").ratio(b"x" * 100) == pytest.approx(1.0)
        assert get_codec("gzip").ratio(b"\x00" * 10_000) > 50
        assert get_codec("raw").ratio(b"") == 1.0


class TestGzip:
    def test_round_trip(self, rng):
        codec = GzipCodec()
        data = bytes(rng.integers(0, 256, 10_000, dtype=np.uint8))
        assert codec.decompress(codec.compress(data)) == data

    def test_produces_gzip_container(self):
        frame = GzipCodec().compress(b"hello hello hello")
        assert frame[:2] == b"\x1f\x8b"  # gzip magic
        assert zlib.decompress(frame, wbits=31) == b"hello hello hello"

    def test_levels(self):
        data = b"pattern" * 1000
        hi = GzipCodec(level=9).compress(data)
        lo = GzipCodec(level=1).compress(data)
        assert len(hi) <= len(lo)
        assert GzipCodec(level=9).decompress(hi) == data

    def test_bad_level(self):
        with pytest.raises(CodecError):
            GzipCodec(level=0)

    def test_garbage_input(self):
        with pytest.raises(CodecError):
            GzipCodec().decompress(b"not gzip at all")

    def test_empty(self):
        codec = GzipCodec()
        assert codec.decompress(codec.compress(b"")) == b""


class TestRLE:
    def test_round_trip_runs(self):
        codec = RLECodec()
        data = b"a" * 300 + b"b" * 5 + b"c"
        assert codec.decompress(codec.compress(data)) == data

    def test_round_trip_random(self, rng):
        codec = RLECodec()
        data = bytes(rng.integers(0, 256, 5000, dtype=np.uint8))
        assert codec.decompress(codec.compress(data)) == data

    def test_compresses_runs(self):
        codec = RLECodec()
        assert len(codec.compress(b"\x00" * 10_000)) < 100

    def test_long_run_split(self):
        # A run of 255*3+7 bytes must split into 4 chunks.
        codec = RLECodec()
        data = b"z" * (255 * 3 + 7)
        packed = codec.compress(data)
        assert len(packed) == 8
        assert codec.decompress(packed) == data

    def test_empty(self):
        codec = RLECodec()
        assert codec.decompress(codec.compress(b"")) == b""

    def test_odd_payload_rejected(self):
        with pytest.raises(CodecError, match="pairs"):
            RLECodec().decompress(b"\x01\x02\x03")

    def test_zero_count_rejected(self):
        with pytest.raises(CodecError, match="zero"):
            RLECodec().decompress(b"\x00\x41")


class TestQuantizer:
    def test_error_bound_respected(self, rng):
        for bound in (1e-2, 1e-4):
            codec = QuantizerCodec(abs_bound=bound)
            x = rng.normal(scale=10.0, size=5000).astype(np.float32)
            y = np.frombuffer(codec.decompress(codec.compress(x.tobytes())), dtype=np.float32)
            # The bound holds in exact arithmetic; storing the
            # reconstruction as float32 adds at most one ulp.
            ulp = np.abs(x).max() * 2.0 ** -23
            assert np.abs(x - y).max() <= bound + ulp

    def test_lossy_flag(self):
        assert not QuantizerCodec().lossless
        assert GzipCodec().lossless

    def test_compresses_smooth_data(self):
        codec = QuantizerCodec(abs_bound=1e-3)
        x = np.sin(np.linspace(0, 20, 50_000)).astype(np.float32)
        frame = codec.compress(x.tobytes())
        assert len(frame) < x.nbytes / 3

    def test_bad_bound(self):
        with pytest.raises(CodecError):
            QuantizerCodec(abs_bound=0.0)
        with pytest.raises(CodecError):
            QuantizerCodec(abs_bound=float("nan"))

    def test_non_float32_payload_rejected(self):
        with pytest.raises(CodecError, match="float32"):
            QuantizerCodec().compress(b"abc")

    def test_nonfinite_rejected(self):
        data = np.array([1.0, np.inf], dtype=np.float32).tobytes()
        with pytest.raises(CodecError, match="non-finite"):
            QuantizerCodec().compress(data)

    def test_bad_magic(self):
        with pytest.raises(CodecError, match="magic"):
            QuantizerCodec().decompress(b"XXXX" + b"\x00" * 30)

    def test_empty(self):
        codec = QuantizerCodec()
        assert codec.decompress(codec.compress(b"")) == b""

    def test_large_dynamic_range(self, rng):
        codec = QuantizerCodec(abs_bound=1e-2)
        x = (rng.normal(size=1000) * 10.0 ** rng.integers(-2, 4, 1000).astype(np.float64)).astype(np.float32)
        y = np.frombuffer(codec.decompress(codec.compress(x.tobytes())), dtype=np.float32)
        ulp = np.abs(x).max() * 2.0 ** -23
        assert np.abs(x.astype(np.float64) - y).max() <= 1e-2 + ulp
