"""Unit tests for the byte-shuffle preconditioning codec."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.compression import ShuffleCodec, get_codec
from repro.errors import CodecError


class TestRoundTrip:
    @pytest.mark.parametrize("name", ["shuffle-lz4", "shuffle-gzip"])
    def test_registered(self, name):
        codec = get_codec(name)
        data = np.linspace(0, 1, 5000, dtype=np.float32).tobytes()
        assert codec.decompress(codec.compress(data)) == data

    def test_empty(self):
        codec = ShuffleCodec.__new__(ShuffleCodec)
        codec.__init__("lz4")
        assert codec.decompress(codec.compress(b"")) == b""

    def test_tail_preserved(self):
        """Lengths not divisible by itemsize keep their remainder."""
        codec = get_codec("shuffle-lz4")
        data = b"\x01\x02\x03\x04\x05\x06\x07"  # 7 bytes, itemsize 4
        assert codec.decompress(codec.compress(data)) == data

    def test_random_bytes(self, rng):
        codec = get_codec("shuffle-gzip")
        data = bytes(rng.integers(0, 256, 10_001, dtype=np.uint8))
        assert codec.decompress(codec.compress(data)) == data

    @given(data=st.binary(max_size=2000))
    @settings(max_examples=80, deadline=None)
    def test_property_round_trip(self, data):
        for name in ("shuffle-lz4", "shuffle-gzip"):
            codec = get_codec(name)
            assert codec.decompress(codec.compress(data)) == data


class TestEffectiveness:
    def test_improves_smooth_float_compression(self):
        """The reason the codec exists: smooth float32 data compresses
        better after byte-plane transposition."""
        x = np.cumsum(np.random.default_rng(0).normal(size=50_000)).astype(np.float32)
        data = x.tobytes()
        plain = len(get_codec("gzip").compress(data))
        shuffled = len(get_codec("shuffle-gzip").compress(data))
        assert shuffled < plain

    def test_shuffle_is_pure_permutation(self):
        """Shuffling must not change the byte multiset."""
        codec = ShuffleCodec(inner="raw", itemsize=4)
        data = bytes(range(256)) * 4
        frame = codec.compress(data)
        inner_payload = frame[6:]
        assert sorted(inner_payload) == sorted(data)


class TestErrors:
    def test_bad_itemsize(self):
        with pytest.raises(CodecError):
            ShuffleCodec(itemsize=1)
        with pytest.raises(CodecError):
            ShuffleCodec(itemsize=256)

    def test_bad_magic(self):
        with pytest.raises(CodecError, match="frame"):
            get_codec("shuffle-lz4").decompress(b"XXXXxxxxxx")

    def test_itemsize_mismatch(self):
        a = ShuffleCodec(inner="raw", itemsize=4)
        b = ShuffleCodec(inner="raw", itemsize=8)
        frame = a.compress(b"\x00" * 64)
        with pytest.raises(CodecError, match="itemsize"):
            b.decompress(frame)

    def test_truncated(self):
        with pytest.raises(CodecError):
            get_codec("shuffle-lz4").decompress(b"SHFL")
