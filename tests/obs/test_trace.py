"""Unit tests for the span tracer: nesting, ids, clocks, adopt, no-op path."""

import threading

from repro.obs import NULL_TRACER, NullTracer, Span, Tracer, new_id
from repro.storage import SimClock


class TestIds:
    def test_new_id_format(self):
        ident = new_id()
        assert len(ident) == 16
        int(ident, 16)  # valid hex

    def test_new_ids_are_distinct(self):
        assert len({new_id() for _ in range(100)}) == 100


class TestNesting:
    def test_root_span_has_no_parent(self):
        tracer = Tracer()
        with tracer.span("root") as span:
            assert span.parent_id is None
            assert span.trace_id
        assert tracer.finished() == [span]

    def test_child_inherits_trace_and_parents_under_top(self):
        tracer = Tracer()
        with tracer.span("outer") as outer:
            with tracer.span("inner") as inner:
                assert inner.trace_id == outer.trace_id
                assert inner.parent_id == outer.span_id
        names = [s.name for s in tracer.finished()]
        assert names == ["inner", "outer"]  # finish order: inner first

    def test_sequential_roots_get_distinct_traces(self):
        tracer = Tracer()
        with tracer.span("a") as a:
            pass
        with tracer.span("b") as b:
            pass
        assert a.trace_id != b.trace_id

    def test_current_span_tracks_stack(self):
        tracer = Tracer()
        assert tracer.current_span().span_id is None  # null outside spans
        with tracer.span("a") as a:
            assert tracer.current_span() is a
            with tracer.span("b") as b:
                assert tracer.current_span() is b
            assert tracer.current_span() is a

    def test_threads_have_independent_stacks(self):
        tracer = Tracer()
        seen = {}

        def worker():
            with tracer.span("worker-root") as s:
                seen["parent"] = s.parent_id

        with tracer.span("main-root"):
            t = threading.Thread(target=worker)
            t.start()
            t.join()
        # The worker thread's span must NOT parent under main's span.
        assert seen["parent"] is None


class TestClocksAndAttrs:
    def test_wall_duration_non_negative(self):
        tracer = Tracer()
        with tracer.span("t") as span:
            pass
        assert span.end_wall >= span.start_wall
        assert span.wall_duration >= 0.0

    def test_sim_clock_recorded_when_present(self):
        clock = SimClock()
        tracer = Tracer(sim_clock=clock)
        with tracer.span("load") as span:
            clock.advance(2.5)
        assert span.sim_duration == 2.5

    def test_sim_none_without_clock(self):
        tracer = Tracer()
        with tracer.span("t") as span:
            pass
        assert span.start_sim is None and span.sim_duration is None

    def test_attrs_and_events(self):
        tracer = Tracer()
        with tracer.span("req", key="a.vgf") as span:
            tracer.add_event("cache.hit", cache="array")
        assert span.attrs == {"key": "a.vgf"}
        [event] = span.events
        assert event["name"] == "cache.hit"
        assert event["cache"] == "array"
        assert "wall" in event

    def test_exception_marks_error_and_still_records(self):
        tracer = Tracer()
        try:
            with tracer.span("boom"):
                raise ValueError("bad")
        except ValueError:
            pass
        [span] = tracer.finished()
        assert span.error == "ValueError: bad"

    def test_to_dict_roundtrip_is_plain(self):
        tracer = Tracer(process="server")
        with tracer.span("t", n=1) as span:
            span.add_event("e")
        d = span.to_dict()
        assert d["name"] == "t"
        assert d["process"] == "server"
        assert isinstance(d["attrs"], dict) and isinstance(d["events"], list)


class TestRetention:
    def test_max_spans_bounds_history(self):
        tracer = Tracer(max_spans=3)
        for i in range(5):
            with tracer.span(f"s{i}"):
                pass
        assert [s.name for s in tracer.finished()] == ["s2", "s3", "s4"]

    def test_drain_clears(self):
        tracer = Tracer()
        with tracer.span("a"):
            pass
        assert len(tracer.drain()) == 1
        assert tracer.finished() == []


class TestCollect:
    def test_collect_captures_only_inner_spans(self):
        tracer = Tracer()
        with tracer.span("before"):
            pass
        with tracer.collect() as captured:
            with tracer.span("inside"):
                pass
        with tracer.span("after"):
            pass
        assert [s.name for s in captured.spans] == ["inside"]
        # The global record still has everything.
        assert [s.name for s in tracer.finished()] == ["before", "inside", "after"]

    def test_collect_is_thread_local(self):
        tracer = Tracer()
        done = threading.Event()

        def other():
            with tracer.span("other-thread"):
                pass
            done.set()

        with tracer.collect() as captured:
            t = threading.Thread(target=other)
            t.start()
            t.join()
            done.wait(5)
        assert captured.spans == []


class TestInjectActivateAdopt:
    def test_inject_outside_span_is_none(self):
        assert Tracer().inject() is None

    def test_inject_carries_current_ids(self):
        tracer = Tracer()
        with tracer.span("rpc") as span:
            ctx = tracer.inject()
        assert ctx == {"trace_id": span.trace_id, "span_id": span.span_id}

    def test_activate_parents_under_remote_ctx(self):
        client, server = Tracer(process="client"), Tracer(process="server")
        with client.span("call") as call:
            ctx = client.inject()
        with server.activate(ctx, "dispatch") as dispatch:
            pass
        assert dispatch.trace_id == call.trace_id
        assert dispatch.parent_id == call.span_id
        assert dispatch.process == "server"

    def test_activate_malformed_ctx_falls_back_to_root(self):
        server = Tracer(process="server")
        for bad in (None, "junk", {"trace_id": 7}, {}):
            with server.activate(bad, "dispatch") as span:
                assert span.parent_id is None
                assert span.trace_id

    def test_adopt_rebases_remote_walls_onto_anchor(self):
        client = Tracer(process="client")
        with client.span("rpc.call") as anchor:
            pass
        remote = [{
            "trace_id": anchor.trace_id, "span_id": "aa" * 8,
            "parent_id": anchor.span_id, "name": "rpc.dispatch",
            "process": "server", "thread_id": 1,
            # A wildly different perf_counter epoch, 2s wide.
            "start_wall": 1e9, "end_wall": 1e9 + 2.0,
            "start_sim": None, "end_sim": None, "attrs": {}, "events": [],
            "error": None,
        }]
        client.adopt(remote, anchor=anchor)
        adopted = [s for s in client.finished() if s.name == "rpc.dispatch"]
        [span] = adopted
        # Midpoint alignment: remote interval centred in the anchor's.
        anchor_mid = (anchor.start_wall + anchor.end_wall) / 2
        span_mid = (span.start_wall + span.end_wall) / 2
        # 1e9-magnitude doubles keep ~1e-7 s of precision through the shift.
        assert abs(span_mid - anchor_mid) < 1e-6
        assert span.wall_duration == 2.0  # duration preserved
        assert span.parent_id == anchor.span_id

    def test_adopt_preserves_sim_times_unshifted(self):
        client = Tracer()
        with client.span("rpc.call") as anchor:
            pass
        client.adopt([{
            "trace_id": "t", "span_id": "s", "parent_id": None,
            "name": "x", "process": "server", "thread_id": 0,
            "start_wall": 0.0, "end_wall": 1.0,
            "start_sim": 10.0, "end_sim": 12.0, "attrs": {}, "events": [],
            "error": None,
        }], anchor=anchor)
        span = client.finished()[-1]
        assert (span.start_sim, span.end_sim) == (10.0, 12.0)

    def test_adopt_garbage_is_ignored(self):
        tracer = Tracer()
        tracer.adopt(None)
        tracer.adopt(["not-a-dict", 42])
        assert tracer.finished() == []


class TestNullTracer:
    def test_is_falsy_and_inert(self):
        assert not NULL_TRACER
        assert isinstance(NULL_TRACER, NullTracer)
        with NULL_TRACER.span("anything", k=1) as span:
            span.add_event("e")
        NULL_TRACER.add_event("loose")
        assert NULL_TRACER.inject() is None
        assert NULL_TRACER.finished() == [] and NULL_TRACER.drain() == []
        NULL_TRACER.adopt([{"name": "x"}])
        assert NULL_TRACER.finished() == []

    def test_null_span_is_shared_singleton(self):
        a = NULL_TRACER.span("a")
        b = NULL_TRACER.span("b")
        assert a is b  # no allocation on the disabled path

    def test_real_tracer_is_truthy(self):
        assert Tracer()
        assert isinstance(Tracer().span("x").__enter__(), Span)


class TestFork:
    def test_forked_spans_join_the_callers_trace(self):
        tracer = Tracer()
        results = []

        def worker(opener, shard):
            with opener(shard=shard) as span:
                results.append(span)

        with tracer.span("scatter") as root:
            opener = tracer.fork("shard.work", stage="prefilter")
            threads = [
                threading.Thread(target=worker, args=(opener, i))
                for i in range(3)
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join()

        assert len(results) == 3
        for span in results:
            assert span.trace_id == root.trace_id
            assert span.parent_id == root.span_id
            assert span.name == "shard.work"
            assert span.attrs["stage"] == "prefilter"
        # Per-call extras are merged in, and distinct per invocation.
        assert sorted(s.attrs["shard"] for s in results) == [0, 1, 2]
        # Worker spans record the worker's thread, not the forker's.
        assert all(s.thread_id != root.thread_id for s in results)

    def test_fork_outside_any_span_starts_fresh_roots(self):
        tracer = Tracer()
        opener = tracer.fork("loose")
        with opener() as span:
            pass
        assert span.parent_id is None
        assert span.trace_id

    def test_fork_snapshot_survives_caller_span_exit(self):
        tracer = Tracer()
        with tracer.span("short-lived") as root:
            opener = tracer.fork("late")
        with opener() as span:
            pass
        assert span.trace_id == root.trace_id
        assert span.parent_id == root.span_id

    def test_null_tracer_fork_is_inert(self):
        opener = NULL_TRACER.fork("x", a=1)
        with opener(b=2) as span:
            span.add_event("e")
        assert NULL_TRACER.finished() == []
