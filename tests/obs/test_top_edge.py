"""`repro top` / `repro stats` with heterogeneous server kinds.

A fleet can now mix storage shards and edge caches behind one address
list.  The top model must route edge snapshots into EDGE rows (hit rate,
coherence traffic, upstream errors) without disturbing the SHARD table,
and ``merge_snapshots`` must merge a shard snapshot with an edge snapshot
without mangling either's collector tree.
"""

from repro.core import NDPServer
from repro.edge import EdgeCacheServer
from repro.io import write_vgf
from repro.obs.metrics import merge_snapshots
from repro.obs.top import TopModel, render
from repro.rpc import InProcessTransport, RPCClient
from repro.storage import MemoryBackend, ObjectStore, S3FileSystem

from tests.conftest import make_sphere_grid


def make_pair():
    """A live (storage server, edge server) pair with some traffic."""
    store = ObjectStore(MemoryBackend())
    store.create_bucket("sim")
    fs = S3FileSystem(store, "sim")
    fs.write_object("g.vgf", write_vgf(make_sphere_grid(10), codec="lz4"))
    server = NDPServer(fs)
    edge = EdgeCacheServer([InProcessTransport(server.dispatch)])
    client = RPCClient(InProcessTransport(edge.dispatch))
    for _ in range(3):
        client.call("prefilter_contour", "g.vgf", "r", [3.0])
    return server, edge


def polls_for(server, edge):
    return [
        {"address": "shard:1", "snapshot": server.stats_snapshot(),
         "breaker": "none"},
        {"address": "edge:1", "snapshot": edge.stats_snapshot(),
         "breaker": "none"},
    ]


class TestTopModelEdgeRows:
    def test_edge_snapshot_becomes_edge_row(self):
        server, edge = make_pair()
        view = TopModel().view(polls_for(server, edge))
        assert [s["address"] for s in view["shards"]] == ["shard:1"]
        assert [e["address"] for e in view["edges"]] == ["edge:1"]
        row = view["edges"][0]
        assert row["hit_rate"] == 2 / 3
        assert row["revalidations"] == 3
        assert row["upstream_errors"] == 0
        assert view["totals"]["edges"] == 1
        assert view["totals"]["shards"] == 1

    def test_edge_requests_count_into_totals(self):
        server, edge = make_pair()
        view = TopModel().view(polls_for(server, edge))
        shard_requests = view["shards"][0]["requests"]
        assert view["totals"]["requests"] == (
            shard_requests + view["edges"][0]["requests"])

    def test_edge_rate_is_first_difference(self):
        server, edge = make_pair()
        times = iter([0.0, 10.0])
        model = TopModel(clock=lambda: next(times))
        model.view(polls_for(server, edge))
        client = RPCClient(InProcessTransport(edge.dispatch))
        for _ in range(5):
            client.call("prefilter_contour", "g.vgf", "r", [3.0])
        view = model.view(polls_for(server, edge))
        assert view["edges"][0]["rate"] == 5 / 10.0

    def test_unreachable_address_still_a_shard_row(self):
        view = TopModel().view(
            [{"address": "edge:9", "error": "RPCTransportError: refused",
              "breaker": "open"}])
        assert view["shards"][0]["status"] == "unreachable"
        assert view["edges"] == []

    def test_render_draws_edge_table_without_breaking_shard_table(self):
        server, edge = make_pair()
        view = TopModel().view(polls_for(server, edge))
        text = render(view)
        lines = text.splitlines()
        shard_header = next(l for l in lines if l.startswith("SHARD"))
        edge_header = next(l for l in lines if l.startswith("EDGE"))
        # the SHARD header layout is unchanged by the EDGE addition
        assert shard_header.split() == [
            "SHARD", "STATE", "BRKR", "REQ/S", "PEND", "INFL", "SHED",
            "HEDGE", "FO", "CACHE", "P50", "P99"]
        assert edge_header.split() == [
            "EDGE", "STATE", "BRKR", "REQ/S", "HIT", "REVAL", "INVAL",
            "NEG", "STALE", "UPERR", "LOCAL", "P50", "P99"]
        edge_row = lines[lines.index(edge_header) + 1]
        assert edge_row.startswith("edge:1")
        assert "67%" in edge_row

    def test_shard_only_view_unchanged(self):
        server, edge = make_pair()
        view = TopModel().view(polls_for(server, edge)[:1])
        assert view["edges"] == []
        assert not any(l.startswith("EDGE")
                       for l in render(view).splitlines())


class TestHeterogeneousMerge:
    def test_merge_shard_and_edge_snapshots(self):
        server, edge = make_pair()
        merged = merge_snapshots(
            [server.stats_snapshot(), edge.stats_snapshot()])
        counters = merged["counters"]
        # requests sum across kinds (edge served 3, upstream saw 1 miss);
        # kind-specific counters survive
        assert counters["requests"] == 4
        assert "edge_revalidations" in counters
        assert "prefilter_calls" in counters
        collected = merged["collected"]
        assert collected["edge"]["kind"] == "edge"
        assert "admission" in collected
        # latency histograms merged bucket-wise
        hist = merged["histograms"]["request_latency_seconds"]
        assert hist["count"] >= 4

    def test_merge_order_does_not_crash(self):
        server, edge = make_pair()
        a = merge_snapshots([edge.stats_snapshot(), server.stats_snapshot()])
        b = merge_snapshots([server.stats_snapshot(), edge.stats_snapshot()])
        assert a["counters"]["requests"] == b["counters"]["requests"]

    def test_merged_snapshot_renders_as_top_row(self):
        # a merged snapshot is itself a valid snapshot for the model
        server, edge = make_pair()
        merged = merge_snapshots(
            [server.stats_snapshot(), edge.stats_snapshot()])
        view = TopModel().view(
            [{"address": "merged", "snapshot": merged, "breaker": "none"}])
        assert view["edges"] or view["shards"]
        render(view)  # must not raise
