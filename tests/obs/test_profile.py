"""Sampling-profiler tests: lifecycle, collapse format, filtering."""

import threading
import time

import pytest

from repro.obs.profile import NULL_PROFILER, SamplingProfiler, _frame_stack


def _spin_until(predicate, timeout=5.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(0.01)
    return False


class TestFrameStack:
    def test_collapse_format_outer_to_inner(self):
        import sys

        def inner():
            return sys._getframe()

        def outer():
            return inner()

        stack = _frame_stack(outer(), depth_limit=64)
        parts = stack.split(";")
        # Leaf (innermost) is last; this module is the enclosing frames.
        assert parts[-1].endswith(":inner")
        assert parts[-2].endswith(":outer")
        assert all(":" in p for p in parts)

    def test_depth_limit_keeps_the_hot_leaf(self):
        import sys

        def recurse(n):
            if n == 0:
                return sys._getframe()
            return recurse(n - 1)

        stack = _frame_stack(recurse(30), depth_limit=5)
        parts = stack.split(";")
        assert len(parts) == 5
        # Truncated at the OUTER end: the leaf survives.
        assert parts[-1].endswith(":recurse")


class TestLifecycle:
    def test_start_stop_and_running(self):
        prof = SamplingProfiler(hz=200.0)
        assert not prof.running
        prof.start()
        try:
            assert prof.running
            prof.start()  # idempotent
            assert threading.active_count() >= 1
        finally:
            prof.stop()
        assert not prof.running
        prof.stop()  # idempotent

    def test_hz_zero_never_starts(self):
        prof = SamplingProfiler(hz=0)
        prof.start()
        assert not prof.running
        assert prof.snapshot()["samples"] == 0

    def test_negative_hz_rejected(self):
        with pytest.raises(ValueError):
            SamplingProfiler(hz=-1)

    def test_counts_survive_stop_for_final_snapshot(self):
        prof = SamplingProfiler(hz=500.0, skip_idle=False)
        prof.start()
        assert _spin_until(lambda: prof.snapshot()["samples"] >= 3)
        prof.stop()
        snap = prof.snapshot()
        assert snap["samples"] >= 3
        assert snap["elapsed"] > 0.0

    def test_reset_clears_counts(self):
        prof = SamplingProfiler(hz=0)
        prof._stacks["a:b"] = 5
        prof._samples = 5
        prof.reset()
        assert prof.snapshot()["samples"] == 0
        assert prof.snapshot()["stacks"] == {}


class TestSampling:
    def test_busy_thread_shows_up_in_stacks(self):
        stop = threading.Event()

        def burn_cycles():
            while not stop.is_set():
                sum(i * i for i in range(200))

        worker = threading.Thread(target=burn_cycles, name="burner")
        worker.start()
        prof = SamplingProfiler(hz=500.0)
        prof.start()
        try:
            assert _spin_until(
                lambda: any("burn_cycles" in s
                            for s in prof.snapshot()["stacks"]))
        finally:
            prof.stop()
            stop.set()
            worker.join()
        collapsed = prof.collapsed()
        line = next(l for l in collapsed.splitlines() if "burn_cycles" in l)
        stack, count = line.rsplit(" ", 1)
        assert int(count) >= 1
        assert ";" in stack or ":" in stack

    def test_top_limits_stacks_hottest_first(self):
        prof = SamplingProfiler(hz=0)
        prof._stacks.update({"a:a": 5, "b:b": 9, "c:c": 1})
        prof._samples = 15
        snap = prof.snapshot(top=2)
        assert list(snap["stacks"]) == ["b:b", "a:a"]
        assert prof.collapsed(top=1) == "b:b 9"

    def test_idle_leaves_filtered_but_counted(self):
        prof = SamplingProfiler(hz=500.0, skip_idle=True)
        # This main thread will mostly sit in time.sleep — an idle leaf.
        prof.start()
        try:
            assert _spin_until(lambda: prof.snapshot()["samples"] >= 5)
        finally:
            prof.stop()
        snap = prof.snapshot()
        for stack in snap["stacks"]:
            assert stack.rsplit(";", 1)[-1] not in prof._IDLE_LEAVES
        # Raw sample count keeps the idle samples (overhead math stays
        # honest even when every stack is filtered).
        assert snap["samples"] >= 5

    def test_info_shape(self):
        prof = SamplingProfiler(hz=67.0)
        info = prof.info()
        assert info == {
            "enabled": True, "running": False, "hz": 67.0,
            "samples": 0, "distinct_stacks": 0,
        }

    def test_snapshot_msgpack_safe(self):
        from repro.rpc import pack, unpack

        prof = SamplingProfiler(hz=0)
        prof._stacks["mod:fn;mod:leaf"] = 3
        prof._samples = 3
        assert unpack(pack(prof.snapshot())) == prof.snapshot()


class TestNullProfiler:
    def test_inert_surface(self):
        assert not NULL_PROFILER
        NULL_PROFILER.start()
        NULL_PROFILER.stop()
        assert NULL_PROFILER.snapshot(top=5)["enabled"] is False
        assert NULL_PROFILER.collapsed(top=5) == ""
        assert NULL_PROFILER.info() == {"enabled": False}
        assert NULL_PROFILER.running is False
