"""Cross-process trace propagation over the real TCP transport.

The acceptance test for the tracing subsystem: a traced client calling a
traced server over an actual socket must end up holding ONE merged span
tree — the server's ``rpc.dispatch`` subtree grafted under the client's
``rpc.call`` span with correct parent ids — and the extended envelope
must stay compatible with untraced peers in both directions.
"""

import threading

from repro.rpc import RPCClient, RPCServer, pack, unpack
from repro.obs import Tracer


def serve(handlers, tracer=None):
    srv = RPCServer(handlers, tracer=tracer)
    listener = srv.serve_tcp()
    return srv, listener


class TestMergedTreeOverTCP:
    def test_single_call_yields_one_merged_tree(self):
        server_tracer = Tracer(process="server")

        def work(x):
            with server_tracer.span("store.read", key="obj"):
                with server_tracer.span("decompress"):
                    pass
            return x * 2

        srv, listener = serve({"work": work}, tracer=server_tracer)
        client_tracer = Tracer(process="client")
        try:
            cli = RPCClient.connect_tcp(listener.host, listener.port,
                                        tracer=client_tracer)
            try:
                assert cli.call("work", 21) == 42
            finally:
                cli.close()
        finally:
            listener.stop()

        spans = {s.name: s for s in client_tracer.finished()}
        # The client holds the WHOLE tree: its own span plus the adopted
        # server subtree, all under one trace id.
        assert set(spans) == {"rpc.call", "rpc.dispatch", "store.read",
                              "decompress"}
        call = spans["rpc.call"]
        assert call.parent_id is None
        assert {s.trace_id for s in spans.values()} == {call.trace_id}
        assert spans["rpc.dispatch"].parent_id == call.span_id
        assert spans["store.read"].parent_id == spans["rpc.dispatch"].span_id
        assert spans["decompress"].parent_id == spans["store.read"].span_id
        # Processes survive adoption so exporters can split the tracks.
        assert call.process == "client"
        assert spans["store.read"].process == "server"
        # Rebasing put the server subtree inside the client's rpc.call
        # window (midpoint alignment; sub-call durations fit inside it).
        assert spans["rpc.dispatch"].start_wall >= call.start_wall
        assert spans["rpc.dispatch"].end_wall <= call.end_wall

    def test_two_calls_yield_two_distinct_traces(self):
        server_tracer = Tracer(process="server")
        srv, listener = serve({"ping": lambda: "pong"}, tracer=server_tracer)
        client_tracer = Tracer(process="client")
        try:
            cli = RPCClient.connect_tcp(listener.host, listener.port,
                                        tracer=client_tracer)
            try:
                cli.call("ping")
                cli.call("ping")
            finally:
                cli.close()
        finally:
            listener.stop()
        trace_ids = {s.trace_id for s in client_tracer.finished()}
        assert len(trace_ids) == 2

    def test_concurrent_traced_calls_do_not_cross_wires(self):
        server_tracer = Tracer(process="server")

        def work(tag):
            with server_tracer.span("inner", tag=tag):
                pass
            return tag

        srv, listener = serve({"work": work}, tracer=server_tracer)
        tracers = [Tracer(process=f"client{i}") for i in range(4)]
        errors = []

        def one(i):
            try:
                cli = RPCClient.connect_tcp(listener.host, listener.port,
                                            tracer=tracers[i])
                try:
                    for _ in range(5):
                        assert cli.call("work", i) == i
                finally:
                    cli.close()
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        try:
            threads = [threading.Thread(target=one, args=(i,)) for i in range(4)]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
        finally:
            listener.stop()
        assert errors == []
        for i, tracer in enumerate(tracers):
            inners = [s for s in tracer.finished() if s.name == "inner"]
            # Each client adopted exactly its own 5 dispatch subtrees,
            # with its own tag — no leakage between connections.
            assert len(inners) == 5
            assert {s.attrs.get("tag") for s in inners} == {i}
            calls = {s.span_id: s for s in tracer.finished()
                     if s.name == "rpc.call"}
            for s in tracer.finished():
                if s.name == "rpc.dispatch":
                    assert s.parent_id in calls


class TestCompat:
    def test_old_style_request_against_traced_server(self):
        """A plain 4-element frame (pre-tracing client) still dispatches,
        and the response stays 4 elements — no surprise payload for a
        client that cannot parse it."""
        tracer = Tracer(process="server")

        def work():
            with tracer.span("inner"):
                pass
            return "ok"

        srv = RPCServer({"work": work}, tracer=tracer)
        response = unpack(srv.dispatch(pack([0, 7, "work", []])))
        assert response == [1, 7, None, "ok"]

    def test_untraced_client_sends_plain_frames_over_tcp(self):
        seen = []
        srv = RPCServer({"echo": lambda x: x})
        original = srv.dispatch

        def spy(payload):
            seen.append(unpack(payload))
            return original(payload)

        srv.dispatch = spy
        listener = srv.serve_tcp()
        try:
            cli = RPCClient.connect_tcp(listener.host, listener.port)
            try:
                assert cli.call("echo", "x") == "x"
            finally:
                cli.close()
        finally:
            listener.stop()
        [frame] = seen
        assert len(frame) == 4  # byte-compatible with the old protocol

    def test_traced_client_against_untraced_server(self):
        """A server without a tracer ignores the context element and
        returns a plain response; the client's local span still records."""
        client_tracer = Tracer(process="client")
        srv = RPCServer({"add": lambda a, b: a + b})  # no tracer
        listener = srv.serve_tcp()
        try:
            cli = RPCClient.connect_tcp(listener.host, listener.port,
                                        tracer=client_tracer)
            try:
                assert cli.call("add", 2, 3) == 5
            finally:
                cli.close()
        finally:
            listener.stop()
        [span] = client_tracer.finished()
        assert span.name == "rpc.call"
        assert span.attrs["method"] == "add"

    def test_remote_error_still_ships_server_spans(self):
        """Spans from a failing dispatch ride back on the error response,
        so the trace shows WHERE the failure happened."""
        import pytest

        from repro.errors import RPCRemoteError

        server_tracer = Tracer(process="server")

        def fail():
            with server_tracer.span("store.read"):
                raise ValueError("corrupt object")

        srv = RPCServer({"fail": fail}, tracer=server_tracer)
        client_tracer = Tracer(process="client")
        cli = RPCClient.in_process(srv, tracer=client_tracer)
        with pytest.raises(RPCRemoteError, match="corrupt object"):
            cli.call("fail")
        spans = {s.name: s for s in client_tracer.finished()}
        assert "store.read" in spans
        assert spans["store.read"].error == "ValueError: corrupt object"
        assert spans["rpc.dispatch"].error == "ValueError: corrupt object"
        assert spans["rpc.call"].error  # client span marked too
