"""Flight-recorder tests: lock-free ring, triggers, chaos dumps.

The concurrency tests hammer the ring from many threads and assert the
two invariants the lock-free design promises: no torn events (every
snapshotted event is internally consistent) and self-consistent
snapshots (ordered, monotone timelines).  The chaos test drives a real
:class:`~repro.core.ndp_server.NDPServer` over a bit-flipping backend
from :mod:`tests.faults` and asserts the integrity failure triggers a
dump that reconstructs the failing request's phase timeline.
"""

import json
import os
import threading

import pytest

from repro.obs.flightrec import (
    DEFAULT_TRIGGERS,
    NULL_RECORDER,
    FlightRecorder,
    install_signal_dump,
)
from tests.faults import BitFlip, FaultSchedule, FaultyBackend, Ok, drops


class FakeMono:
    """Callable monotonic clock the recorder accepts via ``clock=``."""

    def __init__(self, now=1000.0):
        self.now = now

    def __call__(self):
        return self.now

    def advance(self, dt):
        self.now += dt


class TestRing:
    def test_record_and_snapshot(self):
        rec = FlightRecorder(capacity=16)
        rec.record("request.begin", method="contour", tenant="a")
        rec.record("request.end", method="contour", ok=True)
        events = rec.snapshot()
        assert [e["kind"] for e in events] == ["request.begin", "request.end"]
        assert events[0]["method"] == "contour"
        assert events[0]["tenant"] == "a"
        assert events[0]["seq"] == 1
        assert events[1]["seq"] == 2

    def test_ring_retains_newest_capacity_events(self):
        rec = FlightRecorder(capacity=8)
        for i in range(20):
            rec.record("tick", i=i)
        events = rec.snapshot()
        assert len(events) == 8
        assert [e["i"] for e in events] == list(range(12, 20))

    def test_reserved_keys_win_over_caller_fields(self):
        # A phase may legitimately carry a field named "kind"; the
        # event's own kind must still be the recorded kind.
        rec = FlightRecorder(capacity=8)
        rec.record("phase", kind="contour", seq="bogus", name="prefilter")
        [event] = rec.snapshot()
        assert event["kind"] == "phase"
        assert event["seq"] == 1
        assert event["name"] == "prefilter"

    def test_window_filtering_with_fake_clock(self):
        clock = FakeMono()
        rec = FlightRecorder(capacity=64, clock=clock)
        rec.record("old")
        clock.advance(100.0)
        rec.record("new")
        recent = rec.snapshot(last_seconds=10.0)
        assert [e["kind"] for e in recent] == ["new"]
        assert len(rec.snapshot()) == 2

    def test_capacity_validated(self):
        with pytest.raises(ValueError):
            FlightRecorder(capacity=0)

    def test_phase_records_duration_and_error(self):
        rec = FlightRecorder(capacity=8)
        with rec.phase("store.read", key="k"):
            pass
        with pytest.raises(RuntimeError):
            with rec.phase("decompress", codec="lz4"):
                raise RuntimeError("boom")
        ok, bad = rec.snapshot()
        assert ok["kind"] == "phase" and ok["name"] == "store.read"
        assert ok["duration"] >= 0.0 and "error" not in ok
        assert bad["name"] == "decompress"
        assert bad["error"] == "RuntimeError: boom"

    def test_info_counts(self):
        rec = FlightRecorder(capacity=4)
        for _ in range(6):
            rec.record("tick")
        info = rec.info()
        assert info["enabled"] is True
        assert info["capacity"] == 4
        assert info["retained"] == 4
        assert info["recorded"] == 6


class TestConcurrency:
    def test_threaded_writers_never_tear_events(self):
        """Each event's fields must match its kind — a torn slot (kind
        from one writer, fields from another) would break the pairing."""
        rec = FlightRecorder(capacity=512)
        n_threads, per_thread = 8, 400
        start = threading.Barrier(n_threads)

        def writer(tid):
            start.wait()
            for i in range(per_thread):
                rec.record(f"t{tid}", tid=tid, i=i, payload=tid * 10_000 + i)

        threads = [threading.Thread(target=writer, args=(t,))
                   for t in range(n_threads)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        events = rec.snapshot()
        assert len(events) == 512
        for e in events:
            tid = e["tid"]
            assert e["kind"] == f"t{tid}"
            assert e["payload"] == tid * 10_000 + e["i"]

    def test_snapshots_self_consistent_while_writing(self):
        """Snapshots taken mid-write are ordered and never torn."""
        rec = FlightRecorder(capacity=256)
        stop = threading.Event()

        def writer(tid):
            i = 0
            while not stop.is_set():
                rec.record("w", tid=tid, i=i)
                i += 1

        threads = [threading.Thread(target=writer, args=(t,))
                   for t in range(4)]
        for t in threads:
            t.start()
        try:
            for _ in range(50):
                events = rec.snapshot()
                keys = [(e["mono"], e["seq"]) for e in events]
                assert keys == sorted(keys)
                for e in events:
                    assert set(e) >= {"seq", "wall", "mono", "thread",
                                      "kind", "tid", "i"}
        finally:
            stop.set()
            for t in threads:
                t.join()

    def test_per_thread_sequences_stay_ordered(self):
        rec = FlightRecorder(capacity=4096)
        n_threads, per_thread = 6, 500

        def writer(tid):
            for i in range(per_thread):
                rec.record("w", tid=tid, i=i)

        threads = [threading.Thread(target=writer, args=(t,))
                   for t in range(n_threads)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        events = rec.snapshot()
        assert len(events) == n_threads * per_thread
        # Global seq is unique, and within one writer i rises with seq.
        assert len({e["seq"] for e in events}) == len(events)
        per_tid: dict = {}
        for e in events:
            per_tid.setdefault(e["tid"], []).append(e["i"])
        for seq in per_tid.values():
            assert seq == sorted(seq)


class TestDumps:
    def test_trigger_kind_dumps_to_dir(self, tmp_path):
        rec = FlightRecorder(capacity=32, dump_dir=str(tmp_path))
        rec.record("request.begin", method="contour")
        rec.record("integrity.failure", key="k.vgf")
        files = os.listdir(tmp_path)
        assert len(files) == 1
        lines = [json.loads(line)
                 for line in (tmp_path / files[0]).read_text().splitlines()]
        header, *events = lines
        assert header["kind"] == "flightrec.header"
        assert header["reason"] == "integrity.failure"
        assert header["events"] == len(events) == 2
        assert [e["kind"] for e in events] == [
            "request.begin", "integrity.failure",
        ]

    def test_non_trigger_kinds_do_not_dump(self, tmp_path):
        rec = FlightRecorder(capacity=32, dump_dir=str(tmp_path))
        rec.record("request.begin")
        rec.record("phase", name="encode", duration=0.1)
        assert os.listdir(tmp_path) == []
        assert set(DEFAULT_TRIGGERS) >= {"request.error", "request.shed"}

    def test_dump_interval_throttles_storms(self, tmp_path):
        clock = FakeMono()
        rec = FlightRecorder(capacity=64, dump_dir=str(tmp_path),
                             dump_interval=5.0, clock=clock)
        for _ in range(10):
            rec.record("request.error", error="boom")
        assert rec.info()["dumps"] == 1
        clock.advance(6.0)
        rec.record("request.error", error="boom")
        assert rec.info()["dumps"] == 2

    def test_explicit_path_dump_without_dump_dir(self, tmp_path):
        rec = FlightRecorder(capacity=8)
        rec.record("tick")
        # No dump_dir and no path: skipped, not an error.
        assert rec.dump(reason="manual") is None
        path = str(tmp_path / "out.jsonl")
        assert rec.dump(reason="manual", path=path) == path
        lines = open(path).read().splitlines()
        assert json.loads(lines[0])["reason"] == "manual"

    def test_on_dump_hook_fires_and_cannot_break_dump(self, tmp_path):
        rec = FlightRecorder(capacity=8, dump_dir=str(tmp_path))
        calls = []
        rec.on_dump(lambda path, reason: calls.append((path, reason)))
        rec.on_dump(lambda path, reason: 1 / 0)
        rec.record("request.error")
        assert len(calls) == 1
        assert calls[0][1] == "request.error"

    def test_signal_install_refused_off_main_thread(self):
        rec = FlightRecorder(capacity=8)
        results = []
        t = threading.Thread(
            target=lambda: results.append(install_signal_dump(rec)))
        t.start()
        t.join()
        assert results == [False]


class TestNullRecorder:
    def test_inert_surface(self):
        assert not NULL_RECORDER
        NULL_RECORDER.record("anything", kind_field=1)
        with NULL_RECORDER.phase("p", kind="x"):
            pass
        assert NULL_RECORDER.snapshot() == []
        assert NULL_RECORDER.dump() is None
        assert NULL_RECORDER.info() == {"enabled": False}


def _server_over(backend, tmp_path, **kwargs):
    from repro.core.ndp_server import NDPServer
    from repro.storage.s3fs import S3FileSystem

    fs = S3FileSystem(backend, "sim")
    rec = FlightRecorder(capacity=1024, dump_dir=str(tmp_path),
                         process="server")
    server = NDPServer(fs, flight_recorder=rec, profiler=None, **kwargs)
    return server, rec


def _seed_store():
    from repro.io import write_vgf
    from repro.storage.object_store import MemoryBackend, ObjectStore
    from repro.storage.s3fs import S3FileSystem

    from tests.conftest import make_sphere_grid

    store = ObjectStore(MemoryBackend())
    store.create_bucket("sim")
    fs = S3FileSystem(store, "sim")
    fs.write_object("sphere.vgf", write_vgf(make_sphere_grid(12),
                                            codec="lz4"))
    return store


@pytest.mark.chaos
class TestChaosDumps:
    """Fault-injected pipelines must leave a dump that explains them."""

    def test_integrity_failure_dumps_phase_timeline(self, tmp_path):
        from repro.errors import IntegrityError, StorageError

        store = _seed_store()
        # First read is bit-flipped, every later read is clean.
        faulty = FaultyBackend(
            store, FaultSchedule([BitFlip(seed=7), Ok()]))
        server, rec = _server_over(faulty, tmp_path, cache_bytes=0)
        with pytest.raises((IntegrityError, StorageError)):
            server.prefilter_contour("sphere.vgf", "r", [0.5])
        dumps = sorted(os.listdir(tmp_path))
        assert len(dumps) == 1
        lines = [json.loads(line)
                 for line in (tmp_path / dumps[0]).read_text().splitlines()]
        header, *events = lines
        assert header["reason"] == "integrity.failure"
        kinds = [e["kind"] for e in events]
        assert "integrity.failure" in kinds
        # The phase timeline of the failing request is reconstructable:
        # the store read recorded itself, with its error, before the
        # integrity event fired.
        phases = [e for e in events if e["kind"] == "phase"]
        read = next(p for p in phases if p["name"] == "store.read")
        assert read["key"] == "sphere.vgf"
        assert "IntegrityError" in read["error"]
        assert read["duration"] >= 0.0
        # And a clean retry afterwards does not dump again (throttle
        # aside, there is simply no trigger event).
        result = server.prefilter_contour("sphere.vgf", "r", [0.5])
        assert result["count"] > 0
        assert len(os.listdir(tmp_path)) == 1

    def test_storage_drop_timeline_survives_in_ring(self, tmp_path):
        from repro.errors import StorageError

        store = _seed_store()
        faulty = FaultyBackend(store, FaultSchedule(drops(1)))
        server, rec = _server_over(faulty, tmp_path, cache_bytes=0)
        with pytest.raises(StorageError):
            server.prefilter_contour("sphere.vgf", "r", [0.5])
        events = rec.snapshot()
        read = next(e for e in events
                    if e["kind"] == "phase" and e["name"] == "store.read")
        assert "StorageError" in read["error"]

    def test_rpc_error_triggers_dump_with_request_context(self, tmp_path):
        """Through the RPC layer a missing key is a request.error trigger
        and the dump carries the request begin/end envelope."""
        from repro.rpc.msgpack import pack, unpack

        store = _seed_store()
        server, rec = _server_over(store, tmp_path, cache_bytes=0)
        raw = server.dispatch(pack([
            0, 1, "prefilter_contour", ["missing.vgf", "r", [0.5]],
            {"tenant": "alice"},
        ]))
        reply = unpack(raw)
        assert reply[2] is not None  # errored
        dumps = os.listdir(tmp_path)
        assert len(dumps) == 1
        lines = [json.loads(line)
                 for line in (tmp_path / dumps[0]).read_text().splitlines()]
        events = lines[1:]
        kinds = [e["kind"] for e in events]
        assert "request.begin" in kinds and "request.error" in kinds
        begin = next(e for e in events if e["kind"] == "request.begin")
        assert begin["method"] == "prefilter_contour"
        assert begin["tenant"] == "alice"
