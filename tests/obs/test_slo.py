"""SLO engine tests: sketches, burn math, and SLO-aware shedding.

Burn-rate math runs on an injected fake clock so windows advance
deterministically.  The integration tests drive the two real shedding
layers — :class:`~repro.rpc.server.RPCServer` pre-acquire and
:class:`~repro.rpc.fairshare.FairScheduler` backlog — and check that a
flood tenant (torching its budget) sheds while a trickle tenant
(inside its objective) does not.
"""

import pytest

from repro.errors import ReproError
from repro.obs.slo import SLO, SLOEngine, RollingSketch
from repro.rpc.msgpack import pack, unpack


class FakeMono:
    def __init__(self, now=10_000.0):
        self.now = now

    def __call__(self):
        return self.now

    def advance(self, dt):
        self.now += dt


class TestRollingSketch:
    def test_observe_and_quantile(self):
        s = RollingSketch(window=60.0, buckets=(0.1, 1.0, 10.0))
        for _ in range(9):
            s.observe(0.05)
        s.observe(5.0)
        assert s.quantile(0.5) == 0.1
        assert s.quantile(1.0) == 10.0
        assert s.merged()["count"] == 10

    def test_window_expiry_is_lazy(self):
        clock = FakeMono()
        s = RollingSketch(window=60.0, slices=6, buckets=(0.1, 1.0),
                          clock=clock)
        s.observe(0.05)
        assert s.merged()["count"] == 1
        clock.advance(61.0)
        assert s.merged()["count"] == 0
        assert s.quantile(0.99) == 0.0

    def test_merge_dicts_sums_identical_bounds(self):
        a = RollingSketch(buckets=(0.1, 1.0))
        b = RollingSketch(buckets=(0.1, 1.0))
        a.observe(0.05)
        a.observe(5.0)
        b.observe(0.05)
        merged = RollingSketch.merge_dicts([a.merged(), b.merged()])
        assert merged["count"] == 3
        assert merged["counts"][0] == 2
        assert merged["sum"] == pytest.approx(5.1)
        # Quantiles work on merged cross-shard data.
        assert a.quantile(0.5, merged) == 0.1

    def test_merge_dicts_skips_foreign_bounds_and_empties(self):
        a = RollingSketch(buckets=(0.1, 1.0))
        a.observe(0.05)
        foreign = RollingSketch(buckets=(0.2, 2.0))
        foreign.observe(0.05)
        merged = RollingSketch.merge_dicts([
            a.merged(), {}, foreign.merged(),
        ])
        assert merged["count"] == 1
        assert RollingSketch.merge_dicts([]) == {
            "buckets": [], "counts": [], "count": 0, "sum": 0.0,
        }

    def test_invalid_specs_rejected(self):
        with pytest.raises(ReproError):
            RollingSketch(window=0)
        with pytest.raises(ReproError):
            RollingSketch(slices=0)
        with pytest.raises(ReproError):
            RollingSketch().quantile(1.5)


class TestSLO:
    def test_budget_falls_out_of_objective(self):
        slo = SLO(latency=0.25, objective=0.99)
        assert slo.budget == pytest.approx(0.01)

    def test_validation(self):
        with pytest.raises(ReproError):
            SLO(objective=1.0)
        with pytest.raises(ReproError):
            SLO(objective=0.0)
        with pytest.raises(ReproError):
            SLO(latency=0.0)


def _engine(clock, **kwargs):
    kwargs.setdefault("slo", SLO(latency=0.25, objective=0.99))
    kwargs.setdefault("fast_window", 30.0)
    kwargs.setdefault("slow_window", 300.0)
    kwargs.setdefault("min_requests", 10)
    return SLOEngine(clock=clock, **kwargs)


class TestBurnMath:
    def test_flood_of_bad_requests_burns(self):
        clock = FakeMono()
        eng = _engine(clock)
        for _ in range(20):
            eng.observe("flood", 0.01, error=True)
        fast, slow = eng.burn_rates("flood")
        # 100% bad on a 1% budget: burning 100x too fast in both windows.
        assert fast == pytest.approx(100.0)
        assert slow == pytest.approx(100.0)
        assert eng.burning("flood") is True

    def test_trickle_within_objective_does_not_burn(self):
        clock = FakeMono()
        eng = _engine(clock)
        for _ in range(50):
            eng.observe("trickle", 0.01)
        assert eng.burn_rates("trickle") == (0.0, 0.0)
        assert eng.burning("trickle") is False

    def test_slow_success_burns_like_an_error(self):
        clock = FakeMono()
        eng = _engine(clock)
        for _ in range(20):
            eng.observe("slowpoke", 1.5)  # no error, but over 250 ms
        assert eng.burning("slowpoke") is True

    def test_min_requests_floor(self):
        clock = FakeMono()
        eng = _engine(clock, min_requests=10)
        for _ in range(9):
            eng.observe("tiny", 0.01, error=True)
        # 100% bad but too few samples to mean anything.
        assert eng.burning("tiny") is False
        eng.observe("tiny", 0.01, error=True)
        assert eng.burning("tiny") is True

    def test_unknown_tenant_is_not_burning(self):
        eng = _engine(FakeMono())
        assert eng.burning("nobody") is False

    def test_fast_window_recovery_clears_burning(self):
        """A past incident outside the fast window stops reporting: the
        multi-window rule needs the problem to be happening *now*."""
        clock = FakeMono()
        eng = _engine(clock)
        for _ in range(20):
            eng.observe("flood", 0.01, error=True)
        assert eng.burning("flood") is True
        clock.advance(31.0)  # past the fast window, inside the slow one
        for _ in range(10):
            eng.observe("flood", 0.01)
        fast, slow = eng.burn_rates("flood")
        assert fast == 0.0
        assert slow > 1.0  # the slow window still remembers
        assert eng.burning("flood") is False

    def test_one_blip_does_not_trip_the_slow_window(self):
        """Fast window alone must not trigger: a short error burst on a
        long-good tenant burns fast but not slow."""
        clock = FakeMono()
        eng = _engine(clock)
        # Long good history filling the slow window.
        for _ in range(12):
            for _ in range(250):
                eng.observe("steady", 0.01)
            clock.advance(25.0)
        # A sudden blip: everything in the current fast window is bad.
        for _ in range(15):
            eng.observe("steady", 0.01, error=True)
        fast, slow = eng.burn_rates("steady")
        assert fast > 1.0
        assert slow < 1.0
        assert eng.burning("steady") is False

    def test_tenant_state_and_snapshot(self):
        clock = FakeMono()
        eng = _engine(clock)
        for _ in range(12):
            eng.observe("flood", 0.5, error=False)
        eng.record_slo_shed("flood")
        state = eng.tenant_state("flood")
        assert state["objective"] == 0.99
        assert state["total"] == 12
        assert state["bad"] == 12  # all over the latency threshold
        assert state["burning"] is True
        assert state["slo_sheds"] == 1
        assert state["p99"] > 0.25
        snap = eng.snapshot()
        assert set(snap["tenants"]) == {"flood"}
        assert snap["fast_window"] == 30.0

    def test_per_tenant_objective_overrides(self):
        clock = FakeMono()
        eng = _engine(clock, objectives={
            "lenient": SLO(latency=10.0, objective=0.5),
        })
        for _ in range(20):
            eng.observe("lenient", 1.0)
            eng.observe("strict", 1.0)
        assert eng.burning("lenient") is False
        assert eng.burning("strict") is True

    def test_window_validation(self):
        with pytest.raises(ReproError):
            SLOEngine(fast_window=60.0, slow_window=30.0)

    def test_snapshot_msgpack_safe(self):
        from repro.rpc import pack as mpack, unpack as munpack

        eng = _engine(FakeMono())
        eng.observe("a", 0.01)
        assert munpack(mpack(eng.snapshot())) == eng.snapshot()


def _frame(tenant, msgid=1, method="echo", params=("hi",)):
    return pack([0, msgid, method, list(params), {"tenant": tenant}])


def _reply_error(raw):
    reply = unpack(raw)
    assert reply[0] == 1
    return reply[2]


class TestRPCServerSLOShed:
    def _server(self, engine, admission):
        from repro.rpc.server import RPCServer

        return RPCServer(
            {"echo": lambda x: x}, admission=admission, slo=engine,
            slo_shed=True,
        )

    def _burn(self, engine, tenant, n=20):
        for _ in range(n):
            engine.observe(tenant, 0.01, error=True)

    def test_burning_tenant_sheds_only_under_saturation(self):
        from repro.rpc.admission import AdmissionController

        clock = FakeMono()
        engine = _engine(clock)
        self._burn(engine, "flood")
        admission = AdmissionController(max_inflight=1, max_pending=0)
        rpc = self._server(engine, admission)

        # Unsaturated: even a burning tenant is served.
        error = _reply_error(rpc.dispatch(_frame("flood")))
        assert error is None

        # Saturate the gate, then the burning tenant is refused with the
        # SLO-specific error, before costing a slot.
        admission.acquire()
        try:
            self._burn(engine, "flood")  # re-burn: the success above counted
            error = _reply_error(rpc.dispatch(_frame("flood")))
            assert error.startswith("ServerOverloadedError")
            assert "burning its error budget" in error
            assert "retry_after=" in error
            assert engine.tenant_state("flood")["slo_sheds"] == 1
        finally:
            admission.release()

    def test_trickle_tenant_sheds_by_capacity_not_slo(self):
        from repro.rpc.admission import AdmissionController

        clock = FakeMono()
        engine = _engine(clock)
        for _ in range(20):
            engine.observe("trickle", 0.01)
        admission = AdmissionController(max_inflight=1, max_pending=0)
        rpc = self._server(engine, admission)
        admission.acquire()
        try:
            error = _reply_error(rpc.dispatch(_frame("trickle")))
            assert error.startswith("ServerOverloadedError")
            assert "burning" not in error  # plain capacity shed
            assert engine.tenant_state("trickle")["slo_sheds"] == 0
        finally:
            admission.release()

    def test_flag_off_means_no_slo_shedding(self):
        from repro.rpc.admission import AdmissionController
        from repro.rpc.server import RPCServer

        clock = FakeMono()
        engine = _engine(clock)
        self._burn(engine, "flood")
        admission = AdmissionController(max_inflight=1, max_pending=0)
        rpc = RPCServer({"echo": lambda x: x}, admission=admission,
                        slo=engine, slo_shed=False)
        admission.acquire()
        try:
            error = _reply_error(rpc.dispatch(_frame("flood")))
            assert "burning" not in error
        finally:
            admission.release()

    def test_sheds_feed_the_engine(self):
        """A shed reply counts as a bad request for the tenant — being
        refused burns budget too, which is what keeps a retry storm
        visibly burning."""
        from repro.rpc.admission import AdmissionController

        clock = FakeMono()
        engine = _engine(clock)
        admission = AdmissionController(max_inflight=1, max_pending=0)
        rpc = self._server(engine, admission)
        admission.acquire()
        try:
            for i in range(12):
                rpc.dispatch(_frame("victim", msgid=i + 1))
        finally:
            admission.release()
        assert engine.tenant_state("victim")["bad"] == 12
        assert engine.burning("victim") is True


class TestFairSchedulerSLOShed:
    def _scheduler(self, engine, **kwargs):
        from repro.rpc.fairshare import FairScheduler

        # Never started: submissions stay queued, so backlog state is
        # fully deterministic.
        return FairScheduler(
            dispatcher=lambda payload: payload, slo=engine, slo_shed=True,
            **kwargs,
        )

    def test_burning_tenant_cannot_grow_backlog(self):
        clock = FakeMono()
        engine = _engine(clock)
        for _ in range(20):
            engine.observe("flood", 0.01, error=True)
        sched = self._scheduler(engine)
        replies = []

        sched.submit(_frame("flood", msgid=1), replies.append)
        assert replies == []  # empty backlog: queued, not shed
        sched.submit(_frame("flood", msgid=2), replies.append)
        assert len(replies) == 1
        error = _reply_error(replies[0])
        assert "burning its error budget" in error
        info = sched.info()
        assert info["slo_shed"] == 1
        assert info["tenants"]["flood"]["slo_shed"] == 1
        assert info["tenants"]["flood"]["pending"] == 1

    def test_flood_vs_trickle_shed_decisions_match_burn_rates(self):
        """The acceptance scenario: under identical backlog pressure the
        burning flood tenant sheds, the in-SLO trickle tenant queues."""
        clock = FakeMono()
        engine = _engine(clock)
        for _ in range(30):
            engine.observe("flood", 0.01, error=True)
        for _ in range(30):
            engine.observe("trickle", 0.01)
        fast_flood, _ = engine.burn_rates("flood")
        fast_trickle, _ = engine.burn_rates("trickle")
        assert fast_flood > 1.0 > fast_trickle

        sched = self._scheduler(engine)
        replies = {"flood": [], "trickle": []}
        for i in range(3):
            sched.submit(_frame("flood", msgid=10 + i),
                         replies["flood"].append)
            sched.submit(_frame("trickle", msgid=20 + i),
                         replies["trickle"].append)
        # Flood: first queued, next two shed.  Trickle: all queued.
        assert len(replies["flood"]) == 2
        assert replies["trickle"] == []
        for raw in replies["flood"]:
            assert "burning its error budget" in _reply_error(raw)
        info = sched.info()
        assert info["tenants"]["flood"]["pending"] == 1
        assert info["tenants"]["trickle"]["pending"] == 3

    def test_served_through_scheduler_when_not_burning(self):
        from repro.rpc.fairshare import FairScheduler

        engine = _engine(FakeMono())
        sched = FairScheduler(
            dispatcher=lambda payload: payload, workers=2, slo=engine,
            slo_shed=True,
        ).start()
        try:
            import threading

            done = threading.Event()
            out = []

            def respond(raw):
                out.append(raw)
                done.set()

            sched.submit(_frame("ok", msgid=7), respond)
            assert done.wait(5.0)
            assert unpack(out[0])[1] == 7  # echoed request frame
        finally:
            sched.stop()
