"""Tests for the `repro top` engine: model, renderer, poll loop.

The model and renderer are pure (snapshots in, rows/text out), so these
tests drive them with dict fixtures and an injected clock; ``run_top``
gets a fake pool, so no test here opens a socket.
"""

import io
import json

from repro.obs.top import TopModel, poll_stats, render, run_top


class FakeMono:
    def __init__(self, now=100.0):
        self.now = now

    def __call__(self):
        return self.now

    def advance(self, dt):
        self.now += dt


def snap(requests=0, pending=0, inflight=0, shed=0, hits=0, misses=0,
         fair_tenants=None, slo_tenants=None, latency=None):
    collected = {
        "admission": {"pending": pending, "inflight": inflight,
                      "shed": shed},
        "array_cache": {"enabled": True, "hits": hits, "misses": misses,
                        "coalesced": 0},
    }
    if fair_tenants is not None:
        collected["fair_queue"] = {
            "pending": pending, "inflight": inflight,
            "tenants": fair_tenants,
        }
    if slo_tenants is not None:
        collected["slo"] = {"tenants": slo_tenants}
    return {
        "counters": {"requests": requests, "integrity_failures": 0},
        "histograms": {"request_latency_seconds": latency or {}},
        "collected": collected,
    }


class TestTopModel:
    def test_rates_are_first_difference(self):
        clock = FakeMono()
        model = TopModel(clock=clock)
        view = model.view([{"address": "a:1", "snapshot": snap(100)}])
        assert view["shards"][0]["rate"] == 0.0  # first poll: no basis
        clock.advance(2.0)
        view = model.view([{"address": "a:1", "snapshot": snap(150)}])
        assert view["shards"][0]["rate"] == 25.0
        assert view["totals"]["rate"] == 25.0
        assert view["shards"][0]["requests"] == 150

    def test_counter_reset_clamps_rate_to_zero(self):
        clock = FakeMono()
        model = TopModel(clock=clock)
        model.view([{"address": "a:1", "snapshot": snap(500)}])
        clock.advance(1.0)
        view = model.view([{"address": "a:1", "snapshot": snap(3)}])
        assert view["shards"][0]["rate"] == 0.0  # restarted shard

    def test_unreachable_rows_kept_and_counted(self):
        model = TopModel(clock=FakeMono())
        view = model.view([
            {"address": "a:1", "snapshot": snap(10)},
            {"address": "b:2", "error": "OSError: refused"},
        ])
        assert view["totals"] == {
            "requests": 10, "rate": 0.0, "pending": 0, "inflight": 0,
            "shed": 0, "reachable": 1, "shards": 2, "edges": 0,
        }
        down = view["shards"][1]
        assert down["status"] == "unreachable"
        assert down["error"] == "OSError: refused"

    def test_tenant_rows_merge_across_shards(self):
        model = TopModel(clock=FakeMono())
        view = model.view([
            {"address": "a:1", "snapshot": snap(
                fair_tenants={"alice": {"served": 5, "pending": 1,
                                        "inflight": 1, "shed": 0,
                                        "weight": 2.0}},
                slo_tenants={"alice": {"burn_fast": 3.0, "burn_slow": 1.5,
                                       "burning": True, "slo_sheds": 2}},
            )},
            {"address": "b:2", "snapshot": snap(
                fair_tenants={"alice": {"served": 7, "pending": 0,
                                        "inflight": 0, "shed": 1}},
                slo_tenants={"alice": {"burn_fast": 1.0, "burn_slow": 0.5,
                                       "burning": False, "slo_sheds": 1}},
            )},
        ])
        [alice] = view["tenants"]
        # Counts sum; burn is a fraction so the worst shard wins.
        assert alice["served"] == 12
        assert alice["shed"] == 1
        assert alice["burn_fast"] == 3.0
        assert alice["burn_slow"] == 1.5
        assert alice["burning"] is True
        assert alice["slo_sheds"] == 3

    def test_slo_only_tenant_still_gets_a_row(self):
        model = TopModel(clock=FakeMono())
        view = model.view([{"address": "a:1", "snapshot": snap(
            slo_tenants={"bob": {"burn_fast": 2.0, "burn_slow": 2.0,
                                 "burning": True, "slo_sheds": 0}},
        )}])
        [bob] = view["tenants"]
        assert bob["tenant"] == "bob"
        assert bob["burning"] is True
        assert bob["served"] == 0

    def test_latency_quantiles_from_histogram(self):
        latency = {
            "count": 100,
            "buckets": [
                {"le": 0.01, "count": 60},
                {"le": 0.1, "count": 39},
                {"le": "+Inf", "count": 1},
            ],
        }
        model = TopModel(clock=FakeMono())
        view = model.view([
            {"address": "a:1", "snapshot": snap(latency=latency)}])
        row = view["shards"][0]
        assert row["p50"] == 0.01
        assert row["p99"] == 0.1

    def test_cache_hit_rate(self):
        model = TopModel(clock=FakeMono())
        view = model.view([
            {"address": "a:1", "snapshot": snap(hits=3, misses=1)}])
        assert view["shards"][0]["cache_hit_rate"] == 0.75
        view = model.view([{"address": "b:2", "snapshot": snap()}])
        assert view["shards"][0]["cache_hit_rate"] is None


class TestRender:
    def _view(self):
        model = TopModel(clock=FakeMono())
        return model.view([
            {"address": "a:1", "snapshot": snap(
                10, pending=2, inflight=1, shed=3,
                fair_tenants={"alice": {"served": 4, "pending": 0,
                                        "inflight": 0, "shed": 0}},
                slo_tenants={"alice": {"burn_fast": 2.5, "burn_slow": 1.1,
                                       "burning": True, "slo_sheds": 2}},
            )},
            {"address": "b:2", "error": "OSError: refused"},
        ])

    def test_tables_carry_all_sections(self):
        text = render(self._view())
        assert "cluster: 1/2 shards up" in text
        assert "SHARD" in text and "REQ/S" in text and "P99" in text
        assert "a:1" in text
        assert "unreachable" in text and "OSError: refused" in text
        assert "TENANT" in text and "BURN(F)" in text
        assert "alice" in text
        assert "BURNING+2" in text

    def test_empty_tenants_omit_tenant_table(self):
        model = TopModel(clock=FakeMono())
        view = model.view([{"address": "a:1", "snapshot": snap(5)}])
        text = render(view)
        assert "TENANT" not in text


class FakeClient:
    def __init__(self, result):
        self._result = result

    def call(self, method):
        assert method == "stats"
        if isinstance(self._result, Exception):
            raise self._result
        return self._result


class FakePool:
    def __init__(self, results):
        self._results = results
        self.closed = False

    def client(self, i):
        return FakeClient(self._results[i])

    def close(self):
        self.closed = True


class TestPollStats:
    def test_errors_become_rows(self):
        pool = FakePool([snap(5), OSError("refused")])
        polls = poll_stats(pool, ["a:1", "b:2"])
        assert polls[0]["snapshot"]["counters"]["requests"] == 5
        assert polls[1]["error"] == "OSError: refused"


class TestRunTop:
    def test_once_json_contract(self):
        pool = FakePool([snap(7)])
        out = io.StringIO()
        rc = run_top(["a:1"], once=True, as_json=True, out=out, pool=pool)
        assert rc == 0
        view = json.loads(out.getvalue())
        assert view["totals"]["requests"] == 7
        assert view["shards"][0]["address"] == "a:1"
        # Injected pools are not closed by run_top — caller owns them.
        assert pool.closed is False

    def test_unreachable_shard_fails_exit_code(self):
        pool = FakePool([snap(7), OSError("refused")])
        out = io.StringIO()
        rc = run_top(["a:1", "b:2"], once=True, as_json=True, out=out,
                     pool=pool)
        assert rc == 1

    def test_iterations_and_sleep_injection(self):
        pool = FakePool([snap(7)])
        out = io.StringIO()
        slept = []
        clock = FakeMono()

        def sleep(dt):
            slept.append(dt)
            clock.advance(dt)

        rc = run_top(["a:1"], interval=0.5, iterations=3, out=out,
                     pool=pool, clock=clock, sleep=sleep)
        assert rc == 0
        assert slept == [0.5, 0.5]  # no sleep after the final round
        assert out.getvalue().count("cluster:") == 3
