"""Exporter tests: JSONL archive, Chrome trace events, Prometheus text."""

import json

from repro.obs import Registry, Tracer, chrome_trace, prometheus_text, write_jsonl
from repro.obs.export import span_dicts, write_chrome_trace


def make_spans():
    client = Tracer(process="client")
    server = Tracer(process="server")
    with client.span("rpc.call", method="prefilter_contour") as call:
        with server.activate(client.inject(), "rpc.dispatch") as dispatch:
            dispatch.add_event("cache.hit", cache="array")
    return client.finished() + server.finished(), call, dispatch


class TestJsonl:
    def test_round_trips_through_json_lines(self, tmp_path):
        spans, call, dispatch = make_spans()
        path = tmp_path / "trace.jsonl"
        assert write_jsonl(spans, str(path)) == 2
        lines = path.read_text().strip().splitlines()
        decoded = [json.loads(line) for line in lines]
        assert {d["name"] for d in decoded} == {"rpc.call", "rpc.dispatch"}
        by_name = {d["name"]: d for d in decoded}
        assert by_name["rpc.dispatch"]["parent_id"] == call.span_id
        assert by_name["rpc.dispatch"]["events"][0]["name"] == "cache.hit"

    def test_accepts_file_handle_and_plain_dicts(self, tmp_path):
        spans, _, _ = make_spans()
        path = tmp_path / "t.jsonl"
        with open(path, "w") as fh:
            assert write_jsonl(span_dicts(spans), fh) == 2


class TestChromeTrace:
    def test_structure_and_process_tracks(self, tmp_path):
        spans, call, dispatch = make_spans()
        trace = chrome_trace(spans)
        assert set(trace) == {"traceEvents", "displayTimeUnit"}
        events = trace["traceEvents"]
        meta = [e for e in events if e["ph"] == "M"]
        complete = [e for e in events if e["ph"] == "X"]
        instants = [e for e in events if e["ph"] == "i"]
        # Two processes, each announced once with its own pid.
        assert {m["args"]["name"] for m in meta} == {"client", "server"}
        assert len({m["pid"] for m in meta}) == 2
        # Both spans present; ids carried in args so the tree is recoverable.
        by_name = {e["name"]: e for e in complete}
        assert by_name["rpc.dispatch"]["args"]["parent_id"] == call.span_id
        assert by_name["rpc.call"]["args"]["method"] == "prefilter_contour"
        assert all(e["dur"] >= 0 for e in complete)
        # The cache hit shows as an instant mark.
        [hit] = instants
        assert hit["name"] == "cache.hit"
        assert hit["args"] == {"cache": "array"}
        # The file form is valid JSON Perfetto can open.
        path = tmp_path / "trace.json"
        assert write_chrome_trace(spans, str(path)) == len(events)
        assert json.loads(path.read_text())["traceEvents"]

    def test_sim_seconds_surface_in_args(self):
        from repro.storage import SimClock

        clock = SimClock()
        tracer = Tracer(process="server", sim_clock=clock)
        with tracer.span("store.read"):
            clock.advance(1.25)
        [event] = [e for e in chrome_trace(tracer.finished())["traceEvents"]
                   if e["ph"] == "X"]
        assert event["args"]["sim_seconds"] == 1.25

    def test_error_span_carries_error_arg(self):
        tracer = Tracer()
        try:
            with tracer.span("bad"):
                raise RuntimeError("nope")
        except RuntimeError:
            pass
        [event] = [e for e in chrome_trace(tracer.finished())["traceEvents"]
                   if e["ph"] == "X"]
        assert event["args"]["error"] == "RuntimeError: nope"


class TestPrometheusText:
    def test_counters_gauges_histograms(self):
        reg = Registry(namespace="repro")
        reg.counter("requests").inc(3)
        reg.gauge("depth").set(2)
        h = reg.histogram("latency_seconds", buckets=(0.1, 1.0))
        h.observe(0.05)
        h.observe(0.5)
        h.observe(5.0)
        text = prometheus_text(reg.snapshot())
        # Counters carry the conventional _total suffix.
        assert ("# TYPE repro_requests_total counter\n"
                "repro_requests_total 3") in text
        assert "# TYPE repro_depth gauge\nrepro_depth 2" in text
        # Buckets must be CUMULATIVE in the exposition format.
        assert 'repro_latency_seconds_bucket{le="0.1"} 1' in text
        assert 'repro_latency_seconds_bucket{le="1.0"} 2' in text
        assert 'repro_latency_seconds_bucket{le="+Inf"} 3' in text
        assert "repro_latency_seconds_count 3" in text
        assert text.endswith("\n")

    def test_collectors_flatten_numeric_only(self):
        reg = Registry()
        reg.register("array_cache", lambda: {"hits": 4, "name": "array"})
        text = prometheus_text(reg.snapshot())
        assert "repro_array_cache_hits 4" in text
        assert "name" not in text  # strings are labels, not samples

    def test_metric_names_sanitized(self):
        reg = Registry(namespace="re pro")
        reg.counter("bad-name.x").inc()
        text = prometheus_text(reg.snapshot())
        assert "re_pro_bad_name_x_total 1" in text

    def test_total_suffix_not_doubled(self):
        reg = Registry()
        reg.counter("bytes_total").inc(7)
        text = prometheus_text(reg.snapshot())
        assert "repro_bytes_total 7" in text
        assert "bytes_total_total" not in text

    def test_help_lines(self):
        reg = Registry()
        reg.counter("requests", help="Requests served.").inc()
        reg.gauge("depth").set(1)
        text = prometheus_text(reg.snapshot())
        # Explicit help text wins; instruments without one get a
        # generated description — every typed family has a HELP line.
        assert "# HELP repro_requests_total Requests served.\n" in text
        assert "# HELP repro_depth Current value of depth.\n" in text

    def test_help_text_escaped(self):
        reg = Registry()
        reg.counter("c", help="line one\nback\\slash").inc()
        text = prometheus_text(reg.snapshot())
        assert "# HELP repro_c_total line one\\nback\\\\slash" in text

    def test_label_value_escaping(self):
        from repro.obs.export import escape_label_value

        assert escape_label_value('a"b') == 'a\\"b'
        assert escape_label_value("a\\b") == "a\\\\b"
        assert escape_label_value("a\nb") == "a\\nb"
        # Backslash escapes first, so escaped quotes don't double-escape.
        assert escape_label_value('\\"') == '\\\\\\"'

    def test_slo_tenant_gauges_labeled_and_escaped(self):
        reg = Registry()
        reg.register("slo", lambda: {
            "fast_window": 30.0,
            "tenants": {
                'we"ird\nco': {
                    "burn_fast": 2.5, "burn_slow": 1.5, "burning": True,
                    "window_total": 20, "window_bad": 10, "slo_sheds": 3,
                    "p50": 0.01, "p99": 0.4,
                },
            },
        })
        text = prometheus_text(reg.snapshot())
        assert 'repro_slo_burn_fast{tenant="we\\"ird\\nco"} 2.5' in text
        assert 'repro_slo_burning{tenant="we\\"ird\\nco"} 1' in text
        assert 'repro_slo_slo_sheds{tenant="we\\"ird\\nco"} 3' in text

    def test_grammar_round_trip(self):
        """Every non-comment line must parse under the exposition grammar.

        A tiny parser implementing the format's line grammar — metric
        name, optional {labels}, float value — rejects anything a real
        scraper would reject (unescaped quotes, bad names, missing
        values), and the label values must unescape back to the
        originals.
        """
        import re

        name_re = r"[a-zA-Z_:][a-zA-Z0-9_:]*"
        line_re = re.compile(
            rf"^({name_re})(\{{(.*)\}})? (\S+)$"
        )
        label_re = re.compile(
            rf'^({name_re})="((?:[^"\\\n]|\\\\|\\"|\\n)*)"$'
        )

        def unescape(v: str) -> str:
            out, i = [], 0
            while i < len(v):
                if v[i] == "\\" and i + 1 < len(v):
                    out.append({"\\": "\\", '"': '"', "n": "\n"}[v[i + 1]])
                    i += 2
                else:
                    out.append(v[i])
                    i += 1
            return "".join(out)

        reg = Registry()
        reg.counter("requests", help="Total requests.").inc(3)
        reg.gauge("depth").set(-2)
        reg.histogram("lat", buckets=(0.1, 1.0)).observe(0.5)
        reg.register("slo", lambda: {"tenants": {
            'evil"\n\\tenant': {"burn_fast": 1.25, "burning": False},
        }})
        reg.register("cache", lambda: {"hits": 4, "name": "array"})
        text = prometheus_text(reg.snapshot())
        assert text.endswith("\n")

        seen_labels = []
        for line in text.splitlines():
            if line.startswith("#"):
                assert re.match(
                    rf"^# (HELP|TYPE) {name_re} .+$", line
                ), line
                continue
            m = line_re.match(line)
            assert m, f"unparseable sample line: {line!r}"
            float("+inf" if m.group(4) == "+Inf" else m.group(4))
            if m.group(3):
                lm = label_re.match(m.group(3))
                assert lm, f"unparseable labels: {m.group(3)!r}"
                seen_labels.append(unescape(lm.group(2)))
        assert 'evil"\n\\tenant' in seen_labels
