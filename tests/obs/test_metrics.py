"""Unit tests for Counter/Gauge/Histogram and the unified Registry."""

import threading

import pytest

from repro.errors import ReproError
from repro.obs import Counter, Gauge, Histogram, Registry, exponential_buckets
from repro.storage.metrics import CacheStats, ResilienceStats


class TestBuckets:
    def test_exponential_defaults(self):
        buckets = exponential_buckets()
        assert len(buckets) == 10
        assert buckets[0] == pytest.approx(1e-4)
        for lo, hi in zip(buckets, buckets[1:]):
            assert hi == pytest.approx(lo * 4.0)

    def test_invalid_specs_rejected(self):
        with pytest.raises(ReproError):
            exponential_buckets(start=0)
        with pytest.raises(ReproError):
            exponential_buckets(factor=1.0)
        with pytest.raises(ReproError):
            exponential_buckets(count=0)


class TestCounter:
    def test_inc_and_value(self):
        c = Counter("requests")
        c.inc()
        c.inc(4)
        assert c.value == 5

    def test_decrease_rejected(self):
        with pytest.raises(ReproError):
            Counter("requests").inc(-1)

    def test_thread_safety(self):
        c = Counter("n")
        threads = [
            threading.Thread(target=lambda: [c.inc() for _ in range(1000)])
            for _ in range(8)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert c.value == 8000


class TestGauge:
    def test_set_inc_dec(self):
        g = Gauge("depth")
        g.set(5)
        g.inc(2)
        g.dec(4)
        assert g.value == 3


class TestHistogram:
    def test_observe_lands_in_correct_bucket(self):
        h = Histogram("lat", buckets=(1.0, 10.0, 100.0))
        h.observe(0.5)    # <= 1.0
        h.observe(1.0)    # boundary: le=1.0 bucket (upper bound inclusive)
        h.observe(50.0)   # <= 100.0
        h.observe(1000.0)  # +Inf
        d = h.as_dict()
        per_bucket = {b["le"]: b["count"] for b in d["buckets"]}
        assert per_bucket == {1.0: 2, 10.0: 0, 100.0: 1, "+Inf": 1}
        assert d["count"] == 4
        assert d["sum"] == pytest.approx(1051.5)

    def test_quantiles(self):
        h = Histogram("lat", buckets=(1.0, 2.0, 4.0))
        for v in (0.5, 0.5, 1.5, 3.0):
            h.observe(v)
        assert h.quantile(0.5) == 1.0
        assert h.quantile(1.0) == 4.0
        assert Histogram("empty").quantile(0.9) == 0.0
        with pytest.raises(ReproError):
            h.quantile(1.5)

    def test_non_increasing_buckets_rejected(self):
        with pytest.raises(ReproError):
            Histogram("h", buckets=(2.0, 1.0))
        with pytest.raises(ReproError):
            Histogram("h", buckets=(1.0, 1.0))

    def test_count_and_sum(self):
        h = Histogram("h")
        h.observe(0.001)
        h.observe(0.002)
        assert h.count == 2
        assert h.sum == pytest.approx(0.003)


class TestExemplars:
    def test_exemplar_attached_to_bucket(self):
        h = Histogram("lat", buckets=(1.0, 10.0))
        h.observe(0.5, exemplar={"trace_id": "t1", "span_id": "s1"})
        h.observe(50.0)  # no exemplar: bucket stays bare
        d = h.as_dict()
        by_le = {b["le"]: b for b in d["buckets"]}
        assert by_le[1.0]["exemplar"] == {
            "value": 0.5, "trace_id": "t1", "span_id": "s1",
        }
        assert "exemplar" not in by_le["+Inf"]

    def test_slowest_observation_wins_per_bucket(self):
        h = Histogram("lat", buckets=(1.0,))
        h.observe(0.2, exemplar={"trace_id": "fast"})
        h.observe(0.9, exemplar={"trace_id": "slow"})
        h.observe(0.5, exemplar={"trace_id": "mid"})
        d = h.as_dict()
        ex = d["buckets"][0]["exemplar"]
        assert ex["trace_id"] == "slow"
        assert ex["value"] == pytest.approx(0.9)

    def test_snapshot_stays_msgpack_safe(self):
        from repro.rpc import pack, unpack

        reg = Registry()
        reg.histogram("lat").observe(0.5, exemplar={"trace_id": "t"})
        assert unpack(pack(reg.snapshot())) == reg.snapshot()


class TestMergeSnapshots:
    def _snap(self, requests, hist_obs=(), collected=None):
        reg = Registry()
        reg.counter("requests").inc(requests)
        h = reg.histogram("lat", buckets=(1.0, 10.0))
        for value, exemplar in hist_obs:
            h.observe(value, exemplar=exemplar)
        for name, fn in (collected or {}).items():
            reg.register(name, fn)
        return reg.snapshot()

    def test_counters_and_histograms_sum(self):
        from repro.obs import merge_snapshots

        merged = merge_snapshots([
            self._snap(3, [(0.5, None)]),
            self._snap(4, [(0.7, None), (50.0, None)]),
        ])
        assert merged["counters"]["requests"] == 7
        assert merged["merged_from"] == 2
        hist = merged["histograms"]["lat"]
        assert hist["count"] == 3
        by_le = {b["le"]: b["count"] for b in hist["buckets"]}
        assert by_le == {1.0: 2, 10.0: 0, "+Inf": 1}
        assert hist["sum"] == pytest.approx(51.2)

    def test_exemplar_merge_keeps_slower(self):
        from repro.obs import merge_snapshots

        merged = merge_snapshots([
            self._snap(1, [(0.4, {"trace_id": "a"})]),
            self._snap(1, [(0.8, {"trace_id": "b"})]),
        ])
        ex = merged["histograms"]["lat"]["buckets"][0]["exemplar"]
        assert ex["trace_id"] == "b"

    def test_collector_trees_sum_numeric_leaves(self):
        from repro.obs import merge_snapshots

        merged = merge_snapshots([
            self._snap(0, collected={"cache": lambda: {
                "hits": 3, "name": "array", "enabled": True,
                "nested": {"bytes": 10},
            }}),
            self._snap(0, collected={"cache": lambda: {
                "hits": 4, "name": "other", "enabled": False,
                "nested": {"bytes": 5},
            }}),
        ])
        cache = merged["collected"]["cache"]
        assert cache["hits"] == 7
        assert cache["nested"]["bytes"] == 15
        # Non-numeric (and bool) leaves keep the first shard's value.
        assert cache["name"] == "array"
        assert cache["enabled"] is True

    def test_empty_and_single_inputs(self):
        from repro.obs import merge_snapshots

        empty = merge_snapshots([])
        assert empty["counters"] == {}
        one = merge_snapshots([self._snap(2)])
        assert one["counters"]["requests"] == 2
        assert one["merged_from"] == 1


class TestRegistry:
    def test_get_or_create_returns_same_instrument(self):
        reg = Registry()
        assert reg.counter("requests") is reg.counter("requests")
        assert reg.gauge("depth") is reg.gauge("depth")
        assert reg.histogram("lat") is reg.histogram("lat")

    def test_snapshot_shape(self):
        reg = Registry(namespace="testns")
        reg.counter("requests").inc(3)
        reg.gauge("depth").set(2)
        reg.histogram("lat").observe(0.01)
        snap = reg.snapshot()
        assert snap["namespace"] == "testns"
        assert snap["counters"] == {"requests": 3}
        assert snap["gauges"] == {"depth": 2}
        assert snap["histograms"]["lat"]["count"] == 1
        assert snap["collected"] == {}

    def test_legacy_collectors_absorbed(self):
        reg = Registry()
        cache = CacheStats("array")
        cache.record("hits", 3)
        resilience = ResilienceStats()
        resilience.record("retries", 2)
        reg.register("array_cache", cache.as_dict)
        reg.register("resilience", resilience.as_dict)
        snap = reg.snapshot()
        assert snap["collected"]["array_cache"]["hits"] == 3
        assert snap["collected"]["resilience"]["retries"] == 2

    def test_broken_collector_does_not_break_snapshot(self):
        reg = Registry()
        reg.counter("ok").inc()

        def sick():
            raise RuntimeError("source down")

        reg.register("sick", sick)
        snap = reg.snapshot()
        assert snap["counters"] == {"ok": 1}
        assert snap["collected"]["sick"] == {"error": "RuntimeError: source down"}

    def test_non_callable_collector_rejected(self):
        with pytest.raises(ReproError):
            Registry().register("x", {"not": "callable"})

    def test_snapshot_is_msgpack_safe(self):
        from repro.rpc import pack, unpack

        reg = Registry()
        reg.counter("requests").inc()
        reg.histogram("lat").observe(0.5)
        reg.register("cache", CacheStats().as_dict)
        assert unpack(pack(reg.snapshot())) == reg.snapshot()
