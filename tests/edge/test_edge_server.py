"""Edge cache server: protocol fidelity, caching, stampedes, failure ladder.

The edge's contract is that a client cannot tell it from a storage-side
NDP server — cold requests relay byte-identical frames both ways, warm
requests replay the identical reply bytes, and local computes mirror the
storage server's encode path bit-for-bit.  These tests drive the edge's
``dispatch`` with raw frames (the same thing the TCP listener feeds it)
next to a direct server and compare bytes.
"""

import threading

import pytest

from repro.core import NDPServer
from repro.edge import EdgeCacheServer
from repro.errors import (
    CircuitOpenError,
    RPCRemoteError,
    RPCTransportError,
    ServerOverloadedError,
)
from repro.io import write_vgf
from repro.rpc import InProcessTransport, RPCClient
from repro.rpc.msgpack import pack, unpack
from repro.storage import MemoryBackend, ObjectStore, S3FileSystem

from tests.conftest import make_sphere_grid, make_wave_grid


class CountingTransport(InProcessTransport):
    """In-process transport that counts frames and can be cut."""

    def __init__(self, dispatcher):
        super().__init__(dispatcher)
        self.requests = 0
        self.methods = []
        self.down = False
        self._lock = threading.Lock()

    def request(self, payload):
        if self.down:
            raise RPCTransportError("link cut")
        with self._lock:
            self.requests += 1
            try:
                message = unpack(payload)
                self.methods.append(message[2])
            except Exception:
                self.methods.append(None)
        return super().request(payload)


def make_env(grid=None, key="g.vgf", codec="lz4", edge_kwargs=None,
             **server_kwargs):
    grid = grid if grid is not None else make_sphere_grid(12)
    store = ObjectStore(MemoryBackend())
    store.create_bucket("sim")
    fs = S3FileSystem(store, "sim")
    fs.write_object(key, write_vgf(grid, codec=codec))
    server = NDPServer(fs, **server_kwargs)
    upstream = CountingTransport(server.dispatch)
    edge = EdgeCacheServer([upstream], **(edge_kwargs or {}))
    return fs, server, upstream, edge


def contour_frame(msgid, key="g.vgf", array="r", values=(3.0,), **extra):
    params = [key, array, list(values)]
    if extra:
        params += [extra.get("mode", "cell-closure"),
                   extra.get("encoding", "auto"),
                   extra.get("wire_codec", "lz4")]
        if "roi" in extra:
            params.append(list(extra["roi"]))
    return pack([0, msgid, "prefilter_contour", params])


class TestProtocolFidelity:
    def test_cold_request_byte_identical_to_direct(self):
        _, server, _, edge = make_env()
        frame = contour_frame(3)
        assert edge.dispatch(frame) == server.dispatch(frame)

    def test_warm_hit_byte_identical_to_direct(self):
        _, server, upstream, edge = make_env()
        frame = contour_frame(9)
        edge.dispatch(frame)
        forwarded = upstream.methods.count("prefilter_contour")
        warm = edge.dispatch(frame)
        assert warm == server.dispatch(frame)
        # the warm serve forwarded nothing — only the coherence probe ran
        assert upstream.methods.count("prefilter_contour") == forwarded

    def test_warm_hit_with_different_msgid_decodes_equal(self):
        _, server, _, edge = make_env()
        edge.dispatch(contour_frame(1))
        warm = unpack(edge.dispatch(contour_frame(2)))
        direct = unpack(server.dispatch(contour_frame(2)))
        assert warm == direct
        assert warm[1] == 2

    def test_noncacheable_methods_pass_through(self):
        _, server, upstream, edge = make_env()
        for method, params in [("describe", ["g.vgf"]),
                               ("list_objects", [""]),
                               ("read_array", ["g.vgf", "r"])]:
            frame = pack([0, 5, method, params])
            assert edge.dispatch(frame) == server.dispatch(frame)
            assert upstream.methods[-1] == method

    def test_local_methods_answered_at_edge(self):
        _, _, upstream, edge = make_env()
        client = RPCClient(InProcessTransport(edge.dispatch))
        health = client.call("health")
        assert health["kind"] == "edge"
        stats = client.call("stats")
        assert stats["collected"]["edge"]["kind"] == "edge"
        assert client.call("server_stats")["kind"] == "edge"
        # none of those touched the upstream except health's probe
        assert "stats" not in upstream.methods
        assert "server_stats" not in upstream.methods

    def test_dump_forwards_upstream(self):
        _, _, upstream, edge = make_env(flight_recorder="auto")
        client = RPCClient(InProcessTransport(edge.dispatch))
        report = client.call("dump", "test")
        assert report["enabled"] is True
        assert "dump" in upstream.methods

    def test_malformed_frame_gets_protocol_error(self):
        _, _, _, edge = make_env()
        out = unpack(edge.dispatch(pack(["nonsense"])))
        assert out[0] == 1 and out[2] is not None


class TestReplyCache:
    def test_repeat_requests_hit_and_count(self):
        _, _, upstream, edge = make_env()
        for msgid in range(1, 5):
            edge.dispatch(contour_frame(msgid))
        assert upstream.methods.count("prefilter_contour") == 1
        info = edge.server_stats()
        assert info["hits"] == 3
        assert info["misses"] == 1
        assert info["revalidations"] == 4  # strict mode probes every serve

    def test_distinct_values_miss_separately(self):
        _, _, upstream, edge = make_env(
            edge_kwargs={"cache_bytes": 0})  # no local compute
        edge.dispatch(contour_frame(1, values=(3.0,)))
        edge.dispatch(contour_frame(2, values=(4.0,)))
        assert upstream.methods.count("prefilter_contour") == 2

    def test_stampede_coalesces_to_one_upstream_fetch(self):
        _, _, upstream, edge = make_env()
        n = 8
        barrier = threading.Barrier(n)
        replies = [None] * n
        errors = []

        def worker(i):
            try:
                barrier.wait(timeout=5)
                replies[i] = edge.dispatch(contour_frame(100 + i))
            except Exception as exc:  # pragma: no cover
                errors.append(exc)

        threads = [threading.Thread(target=worker, args=(i,))
                   for i in range(n)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=10)
        assert not errors
        assert upstream.methods.count("prefilter_contour") == 1
        decoded = [unpack(r) for r in replies]
        results = [d[3] for d in decoded]
        assert all(r == results[0] for r in results)
        assert [d[1] for d in decoded] == list(range(100, 100 + n))

    def test_zero_reply_budget_is_pure_proxy(self):
        _, server, upstream, edge = make_env(
            edge_kwargs={"reply_cache_bytes": 0})
        frame = contour_frame(4)
        assert edge.dispatch(frame) == server.dispatch(frame)
        edge.dispatch(frame)
        assert upstream.methods.count("prefilter_contour") == 2


class TestNegativeCaching:
    def test_deterministic_error_cached(self):
        _, _, upstream, edge = make_env()
        client = RPCClient(InProcessTransport(edge.dispatch))
        for _ in range(3):
            with pytest.raises(RPCRemoteError, match="no array"):
                client.call("prefilter_contour", "g.vgf", "nope", [1.0])
        assert upstream.methods.count("prefilter_contour") == 1
        assert edge.server_stats()["negative_hits"] == 2

    def test_missing_object_error_cached_via_probe_token(self):
        fs, _, upstream, edge = make_env()
        client = RPCClient(InProcessTransport(edge.dispatch))
        with pytest.raises(RPCRemoteError, match="no object"):
            client.call("prefilter_contour", "nope.vgf", "r", [1.0])
        with pytest.raises(RPCRemoteError, match="no object"):
            client.call("prefilter_contour", "nope.vgf", "r", [1.0])
        assert upstream.methods.count("prefilter_contour") == 1
        # writing the object changes the probe outcome -> served for real
        fs.write_object("nope.vgf", write_vgf(make_sphere_grid(8)))
        out = client.call("prefilter_contour", "nope.vgf", "r", [3.0])
        assert out["stats"]["selected_points"] > 0

    def test_transient_errors_never_cached(self):
        calls = {"n": 0}

        def flaky_dispatch(payload):
            message = unpack(payload)
            if message[2] == "prefilter_contour":
                calls["n"] += 1
                return pack([1, message[1],
                             "ServerOverloadedError: shedding", None])
            return pack([1, message[1], None,
                         {"version": ["gen", 1, 10]}])

        edge = EdgeCacheServer([InProcessTransport(flaky_dispatch)])
        client = RPCClient(InProcessTransport(edge.dispatch))
        for _ in range(3):
            with pytest.raises(ServerOverloadedError):
                client.call("prefilter_contour", "g.vgf", "r", [1.0])
        assert calls["n"] == 3  # retried upstream every time
        assert edge.server_stats()["negative_hits"] == 0


class TestFailureLadder:
    def test_upstream_down_surfaces_typed_error(self):
        _, _, upstream, edge = make_env()
        client = RPCClient(InProcessTransport(edge.dispatch))
        client.call("prefilter_contour", "g.vgf", "r", [3.0])
        upstream.down = True
        with pytest.raises(RPCTransportError):
            client.call("prefilter_contour", "g.vgf", "r", [3.0])

    def test_serve_stale_serves_last_known_fresh(self):
        _, _, upstream, edge = make_env(edge_kwargs={"serve_stale": True})
        client = RPCClient(InProcessTransport(edge.dispatch))
        fresh = client.call("prefilter_contour", "g.vgf", "r", [3.0])
        upstream.down = True
        stale = client.call("prefilter_contour", "g.vgf", "r", [3.0])
        assert stale == fresh
        assert edge.server_stats()["stale_served"] == 1
        # but a never-cached request still errors
        with pytest.raises(RPCTransportError):
            client.call("prefilter_contour", "g.vgf", "r", [4.0])

    def test_failover_to_second_upstream(self):
        grid = make_sphere_grid(12)
        store = ObjectStore(MemoryBackend())
        store.create_bucket("sim")
        fs = S3FileSystem(store, "sim")
        fs.write_object("g.vgf", write_vgf(grid, codec="lz4"))
        primary = CountingTransport(NDPServer(fs).dispatch)
        secondary = CountingTransport(NDPServer(fs).dispatch)
        edge = EdgeCacheServer([primary, secondary])
        client = RPCClient(InProcessTransport(edge.dispatch))
        primary.down = True
        out = client.call("prefilter_contour", "g.vgf", "r", [3.0])
        assert out["stats"]["selected_points"] > 0
        assert secondary.requests > 0

    def test_health_degraded_when_upstream_down(self):
        _, _, upstream, edge = make_env()
        upstream.down = True
        health = edge.health()
        assert health["status"] == "degraded"
        assert health["upstream_reachable"] is False

    def test_probe_unsupported_upstream_degrades_to_proxy(self):
        # An upstream that predates object_version: never cache.
        grid = make_sphere_grid(10)
        store = ObjectStore(MemoryBackend())
        store.create_bucket("sim")
        fs = S3FileSystem(store, "sim")
        fs.write_object("g.vgf", write_vgf(grid, codec="lz4"))
        server = NDPServer(fs)
        del server.rpc._handlers["object_version"]
        upstream = CountingTransport(server.dispatch)
        edge = EdgeCacheServer([upstream])
        client = RPCClient(InProcessTransport(edge.dispatch))
        for _ in range(3):
            client.call("prefilter_contour", "g.vgf", "r", [3.0])
        assert upstream.methods.count("prefilter_contour") == 3
        assert edge.server_stats()["hits"] == 0


class TestLocalCompute:
    def test_promotes_block_and_computes_locally(self):
        _, server, upstream, edge = make_env(grid=make_wave_grid(14))
        client = RPCClient(InProcessTransport(edge.dispatch))
        direct = RPCClient(InProcessTransport(server.dispatch))
        client.call("prefilter_contour", "g.vgf", "f", [0.0])
        client.call("prefilter_contour", "g.vgf", "f", [0.2])
        before = upstream.methods.count("prefilter_contour")
        assert upstream.methods.count("read_block") == 1
        # third distinct value: computed at the edge, not forwarded
        local = client.call("prefilter_contour", "g.vgf", "f", [0.4])
        assert upstream.methods.count("prefilter_contour") == before
        assert local == direct.call("prefilter_contour", "g.vgf", "f", [0.4])
        assert edge.server_stats()["local_computes"] >= 1

    def test_local_compute_byte_identical_raw_frames(self):
        _, server, _, edge = make_env(grid=make_wave_grid(14))
        for v, msgid in [((0.0,), 1), ((0.2,), 2)]:
            edge.dispatch(contour_frame(msgid, array="f", values=v))
        frame = contour_frame(7, array="f", values=(0.4,))
        assert edge.dispatch(frame) == server.dispatch(frame)

    def test_nearby_roi_served_from_cached_block(self):
        _, server, upstream, edge = make_env(grid=make_wave_grid(16))
        roi_a = (0.5, 6.0, -1.0, 9.0, 2.0, 10.0)
        roi_b = (1.0, 7.0, 0.0, 10.0, 3.0, 11.0)
        frames = [
            contour_frame(1, array="f", values=(0.0,), roi=roi_a),
            contour_frame(2, array="f", values=(0.0,), roi=roi_b),
        ]
        edge.dispatch(frames[0])
        edge.dispatch(frames[1])  # second miss promotes the block
        before = upstream.methods.count("prefilter_contour")
        roi_c = (1.5, 7.5, 0.5, 10.5, 3.5, 11.5)
        frame = contour_frame(3, array="f", values=(0.0,), roi=roi_c)
        assert edge.dispatch(frame) == server.dispatch(frame)
        assert upstream.methods.count("prefilter_contour") == before

    def test_local_path_disabled_without_block_budget(self):
        _, _, upstream, edge = make_env(edge_kwargs={"cache_bytes": 0})
        client = RPCClient(InProcessTransport(edge.dispatch))
        for v in (3.0, 4.0, 5.0, 6.0):
            client.call("prefilter_contour", "g.vgf", "r", [v])
        assert upstream.methods.count("read_block") == 0
        assert upstream.methods.count("prefilter_contour") == 4
