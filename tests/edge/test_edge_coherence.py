"""Coherence: an upstream overwrite or rebalance is never served stale.

The edge keys every cached entry by the upstream store's version token
plus the cluster ``map_version``, so coherence reduces to "does the edge
learn the new tokens before serving?" — strict mode must *always* (it
probes per serve), watch mode within one :meth:`poll`.  These tests
overwrite objects and bump map generations mid-session and assert the
client observes only fresh bytes.
"""

import pytest

from repro.cluster import ClusterClient, load_manifest, shard_object
from repro.core import NDPServer
from repro.edge import CoherenceTracker, EdgeCacheServer
from repro.errors import ReproError, RPCTransportError
from repro.io import write_vgf
from repro.rpc import InProcessTransport, RPCClient
from repro.rpc.msgpack import pack
from repro.rpc.pool import EndpointPool
from repro.storage import MemoryBackend, ObjectStore, S3FileSystem

from tests.conftest import make_sphere_grid, make_wave_grid


def make_fs():
    store = ObjectStore(MemoryBackend())
    store.create_bucket("sim")
    return S3FileSystem(store, "sim")


class TestCoherenceTracker:
    def test_strict_probes_every_revalidate(self):
        calls = []

        def probe(key):
            calls.append(key)
            return (("gen", len(calls)), None)

        tracker = CoherenceTracker(probe, mode="strict")
        tracker.revalidate("k")
        tracker.revalidate("k")
        assert calls == ["k", "k"]

    def test_watch_probes_once_then_serves_known(self):
        calls = []

        def probe(key):
            calls.append(key)
            return (("gen", 1), None)

        tracker = CoherenceTracker(probe, mode="watch")
        assert tracker.revalidate("k") == tracker.revalidate("k")
        assert calls == ["k"]

    def test_poll_reprobes_and_counts_changes(self):
        state = {"gen": 1}
        tracker = CoherenceTracker(
            lambda key: (("gen", state["gen"]), None), mode="watch")
        tracker.revalidate("a")
        tracker.revalidate("b")
        state["gen"] = 2
        assert tracker.poll() == 2
        assert tracker.revalidate("a") == (("gen", 2), None)

    def test_poll_failure_keeps_old_tokens(self):
        state = {"fail": False}

        def probe(key):
            if state["fail"]:
                raise RPCTransportError("down")
            return (("gen", 1), 7)

        tracker = CoherenceTracker(probe, mode="watch")
        tracker.revalidate("k")
        state["fail"] = True
        assert tracker.poll() == 0
        assert tracker.last_known("k") == (("gen", 1), 7)

    def test_note_map_version_updates_known(self):
        tracker = CoherenceTracker(lambda key: (("gen", 1), 1), mode="watch")
        tracker.revalidate("k")
        tracker.note_map_version("k", 2)
        assert tracker.revalidate("k") == (("gen", 1), 2)

    def test_unknown_mode_rejected(self):
        with pytest.raises(ReproError, match="unknown coherence mode"):
            CoherenceTracker(lambda key: (None, None), mode="ttl")


class TestStrictOverwrite:
    def test_overwrite_never_served_stale(self):
        fs = make_fs()
        grid = make_sphere_grid(12)
        fs.write_object("g.vgf", write_vgf(grid, codec="lz4"))
        server = NDPServer(fs)
        edge = EdgeCacheServer([InProcessTransport(server.dispatch)])
        client = RPCClient(InProcessTransport(edge.dispatch))
        direct = RPCClient(InProcessTransport(server.dispatch))

        old = client.call("prefilter_contour", "g.vgf", "r", [3.0])
        assert old["stats"]["codec"] == "lz4"
        # overwrite with a different codec: same geometry, new bytes
        fs.write_object("g.vgf", write_vgf(grid, codec="gzip"))
        fresh = client.call("prefilter_contour", "g.vgf", "r", [3.0])
        assert fresh["stats"]["codec"] == "gzip"
        assert fresh == direct.call("prefilter_contour", "g.vgf", "r", [3.0])
        assert edge.server_stats()["invalidations"] >= 1

    def test_overwrite_with_different_field_changes_selection(self):
        fs = make_fs()
        fs.write_object("g.vgf", write_vgf(make_sphere_grid(12), codec="lz4"))
        server = NDPServer(fs)
        edge = EdgeCacheServer([InProcessTransport(server.dispatch)])
        client = RPCClient(InProcessTransport(edge.dispatch))
        a = client.call("prefilter_contour", "g.vgf", "r", [3.0])
        fs.write_object(
            "g.vgf",
            write_vgf(make_sphere_grid(12, name="r"), codec="raw"),
        )
        b = client.call("prefilter_contour", "g.vgf", "r", [3.0])
        assert b["stats"]["codec"] == "raw"
        assert a["stats"]["codec"] == "lz4"

    def test_overwrite_invalidates_promoted_block(self):
        # Local compute must key its block by the same version token.
        fs = make_fs()
        grid = make_wave_grid(14)
        fs.write_object("g.vgf", write_vgf(grid, codec="lz4"))
        server = NDPServer(fs)
        edge = EdgeCacheServer([InProcessTransport(server.dispatch)])
        client = RPCClient(InProcessTransport(edge.dispatch))
        direct = RPCClient(InProcessTransport(server.dispatch))
        for v in (0.0, 0.2, 0.4):  # third value computes locally
            client.call("prefilter_contour", "g.vgf", "f", [v])
        assert edge.server_stats()["local_computes"] >= 1
        # overwrite with a *different field*: stale block must not be used
        grid2 = make_wave_grid(14, seed=99)
        fs.write_object("g.vgf", write_vgf(grid2, codec="lz4"))
        fresh = client.call("prefilter_contour", "g.vgf", "f", [0.4])
        assert fresh == direct.call("prefilter_contour", "g.vgf", "f", [0.4])


class TestWatchMode:
    def test_staleness_bounded_by_poll(self):
        fs = make_fs()
        grid = make_sphere_grid(12)
        fs.write_object("g.vgf", write_vgf(grid, codec="lz4"))
        server = NDPServer(fs)
        edge = EdgeCacheServer([InProcessTransport(server.dispatch)],
                               coherence="watch")
        client = RPCClient(InProcessTransport(edge.dispatch))
        client.call("prefilter_contour", "g.vgf", "r", [3.0])
        reval_before = edge.server_stats()["revalidations"]
        fs.write_object("g.vgf", write_vgf(grid, codec="gzip"))
        # before the poll: the edge serves from last-known tokens (no WAN)
        stale = client.call("prefilter_contour", "g.vgf", "r", [3.0])
        assert stale["stats"]["codec"] == "lz4"
        assert edge.server_stats()["revalidations"] == reval_before
        # one poll round learns the new token; next serve is fresh
        assert edge.poll() == 1
        fresh = client.call("prefilter_contour", "g.vgf", "r", [3.0])
        assert fresh["stats"]["codec"] == "gzip"

    def test_watch_warm_serves_without_upstream_traffic(self):
        fs = make_fs()
        fs.write_object("g.vgf", write_vgf(make_sphere_grid(12), codec="lz4"))
        server = NDPServer(fs)

        calls = {"n": 0}

        class Counting(InProcessTransport):
            def request(self, payload):
                calls["n"] += 1
                return super().request(payload)

        edge = EdgeCacheServer([Counting(server.dispatch)],
                               coherence="watch")
        client = RPCClient(InProcessTransport(edge.dispatch))
        client.call("prefilter_contour", "g.vgf", "r", [3.0])
        after_cold = calls["n"]
        for _ in range(5):
            client.call("prefilter_contour", "g.vgf", "r", [3.0])
        assert calls["n"] == after_cold  # zero upstream frames when warm


class TestMapVersionPath:
    def test_map_version_bump_invalidates(self):
        fs = make_fs()
        grid = make_sphere_grid(12)
        fs.write_object("g.vgf", write_vgf(grid, codec="lz4"))
        gen = {"v": 1}
        server = NDPServer(fs, map_version=lambda: gen["v"])
        edge = EdgeCacheServer([InProcessTransport(server.dispatch)])
        client = RPCClient(InProcessTransport(edge.dispatch))
        out = client.call("prefilter_contour", "g.vgf", "r", [3.0])
        assert out["map_version"] == 1
        misses_before = edge.server_stats()["misses"]
        # same request, bumped map generation: must re-fetch, and the
        # reply must advertise the live generation
        gen["v"] = 2
        out = client.call("prefilter_contour", "g.vgf", "r", [3.0])
        assert out["map_version"] == 2
        assert edge.server_stats()["misses"] == misses_before + 1

    def test_cluster_fronting_with_rebalance(self):
        fs = make_fs()
        grid = make_wave_grid(16)
        fs.write_object("g.vgf", write_vgf(grid, codec="lz4"))
        shard_object(fs, "g.vgf", blocks=(1, 2, 2), shards=2,
                     manifest_key="g.manifest")
        manifest = load_manifest(fs, "g.manifest")
        gen = {"v": int(manifest.map_version)}
        servers = [NDPServer(fs, map_version=lambda: gen["v"])
                   for _ in range(2)]
        pool = EndpointPool(
            [InProcessTransport(s.rpc.dispatch) for s in servers])
        cluster = ClusterClient(pool, manifest)
        edge = EdgeCacheServer(cluster=cluster)
        client = RPCClient(InProcessTransport(edge.dispatch))
        single = NDPServer(fs)
        direct = RPCClient(InProcessTransport(single.dispatch))

        out = client.call("prefilter_contour", "g.vgf", "f", [0.0])
        ref = direct.call("prefilter_contour", "g.vgf", "f", [0.0])
        # cluster scatter-gather stitches the same selection the
        # monolithic server computes (payload bytes equal, stats differ)
        assert out["count"] == ref["count"]
        assert out["map_version"] == gen["v"]
        # warm: served from the edge cache
        misses = edge.server_stats()["misses"]
        again = client.call("prefilter_contour", "g.vgf", "f", [0.0])
        assert again == out
        assert edge.server_stats()["misses"] == misses
        # rebalance: generation bump must invalidate coherently
        gen["v"] += 1
        fresh = client.call("prefilter_contour", "g.vgf", "f", [0.0])
        assert fresh["map_version"] == gen["v"]
        assert edge.server_stats()["misses"] == misses + 1

    def test_cluster_front_stampede_single_compute(self):
        import threading

        fs = make_fs()
        fs.write_object("g.vgf", write_vgf(make_wave_grid(16), codec="lz4"))
        shard_object(fs, "g.vgf", blocks=(1, 2, 2), shards=2,
                     manifest_key="g.manifest")
        manifest = load_manifest(fs, "g.manifest")
        servers = [NDPServer(fs, map_version=1) for _ in range(2)]
        pool = EndpointPool(
            [InProcessTransport(s.rpc.dispatch) for s in servers])
        cluster = ClusterClient(pool, manifest)
        edge = EdgeCacheServer(cluster=cluster)

        n = 6
        barrier = threading.Barrier(n)
        outs = [None] * n

        def worker(i):
            barrier.wait(timeout=5)
            outs[i] = edge.dispatch(
                pack([0, i + 1, "prefilter_contour",
                      ["g.vgf", "f", [0.0]]]))

        threads = [threading.Thread(target=worker, args=(i,))
                   for i in range(n)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=10)
        assert all(o is not None for o in outs)
        info = edge.server_stats()
        assert info["misses"] == 1
        assert info["hits"] + info["coalesced"] == n - 1
