"""Unit tests for scalar-to-color mapping and scalar-colored rendering."""

import numpy as np
import pytest

from repro.errors import ReproError
from repro.filters import contour_grid
from repro.render import Scene, available_colormaps, map_scalars

from tests.conftest import make_sphere_grid


class TestMapScalars:
    def test_shape_and_range(self):
        colors = map_scalars(np.linspace(0, 1, 50))
        assert colors.shape == (50, 3)
        assert colors.min() >= 0.0 and colors.max() <= 1.0

    def test_endpoints_hit_anchor_colors(self):
        from repro.render.colormaps import COLORMAPS

        colors = map_scalars(np.array([0.0, 1.0]), "viridis")
        assert np.allclose(colors[0], COLORMAPS["viridis"][0])
        assert np.allclose(colors[1], COLORMAPS["viridis"][-1])

    def test_monotone_ramp_in_gray(self):
        colors = map_scalars(np.linspace(0, 1, 20), "gray")
        lum = colors.mean(axis=1)
        assert (np.diff(lum) > 0).all()

    def test_explicit_range_clamps(self):
        colors = map_scalars(np.array([-10.0, 5.0, 100.0]), "gray", vmin=0, vmax=10)
        assert np.allclose(colors[0], colors[0].mean())  # clamped low end
        assert colors[2].mean() > colors[1].mean() > colors[0].mean()

    def test_constant_values(self):
        colors = map_scalars(np.full(5, 3.3))
        assert np.allclose(colors, colors[0])

    def test_empty(self):
        assert map_scalars(np.zeros(0)).shape == (0, 3)

    def test_unknown_cmap(self):
        with pytest.raises(ReproError, match="unknown colormap"):
            map_scalars(np.zeros(3), "jet3000")

    def test_nonfinite_range_rejected(self):
        with pytest.raises(ReproError):
            map_scalars(np.array([1.0]), vmin=np.nan, vmax=1.0)

    def test_all_registered_maps_work(self):
        for name in available_colormaps():
            colors = map_scalars(np.linspace(0, 1, 7), name)
            assert colors.shape == (7, 3)


class TestScalarColoredScene:
    def test_color_by_contour_value(self):
        grid = make_sphere_grid(14)
        pd = contour_grid(grid, "r", [3.0, 5.5])
        scene = Scene(background=(0, 0, 0))
        scene.add_mesh(pd, scalars="contour_value", cmap="coolwarm")
        img = scene.render(80, 60)
        # Two isovalues -> at least two distinct foreground colors.
        fg = img[img.sum(axis=2) > 0.05]
        assert fg.shape[0] > 50
        uniq = np.unique((fg * 8).astype(int), axis=0)
        assert uniq.shape[0] > 2

    def test_unknown_scalars_rejected_at_add(self):
        grid = make_sphere_grid(8)
        pd = contour_grid(grid, "r", [2.0])
        with pytest.raises(ReproError, match="no point array"):
            Scene().add_mesh(pd, scalars="nope")

    def test_value_range_pins_colors(self):
        grid = make_sphere_grid(12)
        pd = contour_grid(grid, "r", [3.0])
        scene = Scene(background=(0, 0, 0))
        scene.add_mesh(pd, scalars="contour_value", cmap="gray",
                       value_range=(0.0, 6.0))
        img = scene.render(60, 40)
        fg = img[img.sum(axis=2) > 0.05]
        # contour_value 3 of range [0, 6] -> mid-gray, never near white.
        assert fg.max() < 0.85
