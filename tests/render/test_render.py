"""Unit tests for the camera, rasterizer, and scene."""

import numpy as np
import pytest

from repro.errors import ReproError
from repro.filters import contour_grid
from repro.grid import Bounds, CellArray, PolyData
from repro.render import Camera, Scene
from repro.render.rasterizer import Framebuffer, rasterize_mesh
from repro.render.scene import RenderSink

from tests.conftest import make_sphere_grid


class TestCamera:
    def test_center_projects_to_image_center(self):
        cam = Camera(position=(0, 0, 10), target=(0, 0, 0), up=(0, 1, 0))
        xy, depth = cam.project(np.array([[0.0, 0.0, 0.0]]), 200, 100)
        assert xy[0, 0] == pytest.approx(99.5)
        assert xy[0, 1] == pytest.approx(49.5)
        assert depth[0] == pytest.approx(10.0)

    def test_depth_along_view_axis(self):
        cam = Camera(position=(5, 0, 0), target=(0, 0, 0), up=(0, 0, 1))
        _, depth = cam.project(np.array([[1.0, 0, 0], [-1.0, 0, 0]]), 10, 10)
        assert depth[0] == pytest.approx(4.0)
        assert depth[1] == pytest.approx(6.0)

    def test_invalid_configs(self):
        with pytest.raises(ReproError):
            Camera(position=(0, 0, 0), target=(0, 0, 0)).basis()
        with pytest.raises(ReproError):
            Camera(up=(0, 0, 1), position=(0, 0, 5), target=(0, 0, 0)).basis()
        with pytest.raises(ReproError):
            Camera(fov_degrees=0)
        with pytest.raises(ReproError):
            Camera(near=1.0, far=0.5)

    def test_fit_bounds_sees_everything(self):
        bounds = Bounds(0, 1, 0, 1, 0, 1)
        cam = Camera.fit_bounds(bounds)
        corners = np.array(
            [[x, y, z] for x in (0, 1) for y in (0, 1) for z in (0, 1)], dtype=float
        )
        xy, depth = cam.project(corners, 100, 100)
        assert (depth > cam.near).all()
        assert (xy >= 0).all() and (xy <= 99).all()


class TestRasterizer:
    def test_triangle_covers_pixels(self):
        fb = Framebuffer(50, 50, background=(0, 0, 0))
        cam = Camera(position=(0, 0, 5), target=(0, 0, 0), up=(0, 1, 0))
        tri = np.array([[[-1, -1, 0], [1, -1, 0], [0, 1, 0]]], dtype=float)
        rasterize_mesh(fb, cam, tri, color=(1, 0, 0))
        img = fb.image()
        assert img[:, :, 0].max() > 0.2
        assert img[25, 25, 0] > 0.2  # center covered

    def test_depth_occlusion(self):
        fb = Framebuffer(40, 40, background=(0, 0, 0))
        cam = Camera(position=(0, 0, 10), target=(0, 0, 0), up=(0, 1, 0))
        far_tri = np.array([[[-2, -2, -2], [2, -2, -2], [0, 2, -2]]], dtype=float)
        near_tri = np.array([[[-1, -1, 2], [1, -1, 2], [0, 1, 2]]], dtype=float)
        rasterize_mesh(fb, cam, far_tri, color=(1, 0, 0))
        rasterize_mesh(fb, cam, near_tri, color=(0, 1, 0))
        img = fb.image()
        # center pixel shows the nearer (green) triangle
        assert img[20, 20, 1] > img[20, 20, 0]

    def test_behind_camera_culled(self):
        fb = Framebuffer(30, 30, background=(0, 0, 0))
        cam = Camera(position=(0, 0, 5), target=(0, 0, 0), up=(0, 1, 0))
        tri = np.array([[[-1, -1, 20], [1, -1, 20], [0, 1, 20]]], dtype=float)
        rasterize_mesh(fb, cam, tri)
        assert fb.image().max() == 0.0

    def test_empty_input(self):
        fb = Framebuffer(10, 10)
        cam = Camera()
        rasterize_mesh(fb, cam, np.zeros((0, 3, 3)))

    def test_bad_shape(self):
        with pytest.raises(ReproError):
            rasterize_mesh(Framebuffer(10, 10), Camera(), np.zeros((3, 3)))

    def test_bad_framebuffer(self):
        with pytest.raises(ReproError):
            Framebuffer(0, 10)


class TestScene:
    def test_render_sphere_contour(self):
        grid = make_sphere_grid(16)
        pd = contour_grid(grid, "r", [5.0])
        scene = Scene()
        scene.add_mesh(pd, color=(0.2, 0.8, 0.9))
        img = scene.render(80, 60)
        assert img.shape == (60, 80, 3)
        # the sphere must actually appear (some cyan-ish pixels)
        assert (img[:, :, 1] > 0.3).sum() > 50

    def test_two_actors(self):
        grid = make_sphere_grid(16)
        inner = contour_grid(grid, "r", [3.0])
        outer = contour_grid(grid, "r", [5.5])
        scene = Scene(background=(0, 0, 0))
        scene.add_mesh(outer, color=(1, 0, 0))
        scene.add_mesh(inner, color=(0, 1, 0))
        assert scene.num_actors == 2
        img = scene.render(60, 60)
        # outer sphere occludes inner: red visible, green hidden
        red = (img[:, :, 0] > 0.1).sum()
        green = (img[:, :, 1] > 0.1).sum()
        assert red > 100
        assert green == 0

    def test_line_rendering_2d_contour(self):
        from tests.conftest import make_2d_grid

        pd = contour_grid(make_2d_grid(20, 16), "f", [0.0])
        scene = Scene(background=(0, 0, 0))
        scene.add_mesh(pd, color=(1, 1, 0))
        img = scene.render(64, 64)
        assert (img[:, :, 0] > 0.5).sum() > 10

    def test_empty_scene_bounds_error(self):
        with pytest.raises(ReproError):
            Scene().bounds()

    def test_add_non_polydata(self):
        with pytest.raises(ReproError):
            Scene().add_mesh("nope")

    def test_clear(self):
        scene = Scene()
        scene.add_mesh(PolyData(np.zeros((1, 3))))
        scene.clear()
        assert scene.num_actors == 0

    def test_render_sink(self):
        grid = make_sphere_grid(10)
        pd = contour_grid(grid, "r", [3.0])
        sink = RenderSink(color=(0, 0, 1))
        sink.set_input_data(pd)
        sink.update()
        assert sink.scene.num_actors == 1
