"""Unit tests for the synthetic Nyx cosmology dataset."""

import numpy as np
import pytest

from repro.compression import get_codec
from repro.core import selection_rate
from repro.datasets import NyxDataset, NyxParams
from repro.datasets.nyx import HALO_THRESHOLD
from repro.errors import ReproError

DIMS = (48, 48, 48)


@pytest.fixture(scope="module")
def grid():
    return NyxDataset(NyxParams(dims=DIMS)).generate()


class TestStructure:
    def test_six_arrays(self, grid):
        assert set(grid.point_data.names()) == {
            "velocity_x",
            "velocity_y",
            "velocity_z",
            "temperature",
            "dark_matter_density",
            "baryon_density",
        }

    def test_float32(self, grid):
        for arr in grid.point_data:
            assert arr.dtype == np.float32

    def test_deterministic(self):
        a = NyxDataset(NyxParams(dims=DIMS)).generate()
        b = NyxDataset(NyxParams(dims=DIMS)).generate()
        assert a == b

    def test_param_validation(self):
        with pytest.raises(ReproError):
            NyxParams(sigma=-1.0)
        with pytest.raises(ReproError):
            NyxParams(target_selectivity=2.0)


class TestCalibration:
    def test_halo_threshold_selectivity(self, grid):
        """The paper's headline statistic: 0.06% data selectivity at the
        halo-formation threshold 81.66."""
        permille = selection_rate(grid, "baryon_density", [HALO_THRESHOLD])
        assert 0.3 < permille < 1.2  # target 0.6 permille (0.06%)

    def test_threshold_inside_value_range(self, grid):
        lo, hi = grid.point_data.get("baryon_density").range()
        assert lo < HALO_THRESHOLD < hi

    def test_halos_are_rare(self, grid):
        dens = grid.point_data.get("baryon_density").values
        assert (dens >= HALO_THRESHOLD).mean() < 0.01

    def test_density_positive(self, grid):
        assert grid.point_data.get("baryon_density").values.min() > 0


class TestStatisticalCharacter:
    def test_log_density_roughly_gaussian(self, grid):
        logd = np.log(grid.point_data.get("baryon_density").values.astype(np.float64))
        from scipy import stats

        skew = stats.skew(logd)
        assert abs(skew) < 1.0  # log-normal -> log is near-symmetric

    def test_poorly_compressible(self, grid):
        """The paper's Sec. VII finding: GZip cuts Nyx by only ~11%."""
        gz = get_codec("gzip")
        data = grid.point_data.get("baryon_density").values.tobytes()
        ratio = len(data) / len(gz.compress(data))
        assert ratio < 1.5

    def test_dark_matter_correlates_with_baryons(self, grid):
        b = np.log(grid.point_data.get("baryon_density").values.astype(np.float64))
        d = np.log(grid.point_data.get("dark_matter_density").values.astype(np.float64))
        corr = np.corrcoef(b, d)[0, 1]
        assert corr > 0.5

    def test_temperature_density_relation(self, grid):
        b = np.log(grid.point_data.get("baryon_density").values.astype(np.float64))
        t = np.log(grid.point_data.get("temperature").values.astype(np.float64))
        assert np.corrcoef(b, t)[0, 1] > 0.5

    def test_velocities_zero_mean(self, grid):
        for name in ("velocity_x", "velocity_y", "velocity_z"):
            v = grid.point_data.get(name).values
            assert abs(v.mean()) < 0.2 * v.std()


class TestFields:
    def test_fractal_noise_unit_variance(self, rng):
        from repro.datasets import fractal_noise

        field = fractal_noise((32, 32, 32), rng)
        assert field.std() == pytest.approx(1.0, rel=1e-6)
        assert abs(field.mean()) < 0.05

    def test_fractal_noise_spectral_slope(self, rng):
        """Steeper spectra concentrate power at large scales."""
        from repro.datasets import fractal_noise

        smooth = fractal_noise((48, 48, 48), rng, spectral_index=-3.0)
        rough = fractal_noise((48, 48, 48), rng, spectral_index=-1.0)
        # Gradient magnitude is much larger for the rough field.
        gs = np.abs(np.diff(smooth, axis=0)).mean()
        gr = np.abs(np.diff(rough, axis=0)).mean()
        assert gr > 1.5 * gs

    def test_fractal_noise_2d(self, rng):
        from repro.datasets import fractal_noise

        field = fractal_noise((64, 64), rng)
        assert field.shape == (64, 64)

    def test_smoothstep_properties(self):
        from repro.datasets import smoothstep

        assert smoothstep(np.array(-1.0)) == 0.0
        assert smoothstep(np.array(2.0)) == 1.0
        assert smoothstep(np.array(0.5)) == pytest.approx(0.5)

    def test_radial_distance(self):
        from repro.datasets import radial_distance

        d = radial_distance((5, 5, 5), (0.5, 0.5, 0.5))
        assert d.shape == (5, 5, 5)
        assert d[2, 2, 2] == pytest.approx(0.0)
        assert d[0, 0, 0] == pytest.approx(np.sqrt(3) / 2)
