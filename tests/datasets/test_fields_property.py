"""Hypothesis property tests for field-synthesis primitives."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.datasets import fractal_noise, radial_distance, smoothstep


@given(
    shape=st.tuples(st.integers(4, 24), st.integers(4, 24), st.integers(4, 24)),
    seed=st.integers(0, 2**31 - 1),
    index=st.floats(-3.5, -0.5),
)
@settings(max_examples=40, deadline=None)
def test_fractal_noise_normalization(shape, seed, index):
    field = fractal_noise(shape, np.random.default_rng(seed), spectral_index=index)
    assert field.shape == shape
    assert np.isfinite(field).all()
    assert abs(field.std() - 1.0) < 1e-6
    assert abs(field.mean()) < 0.25  # DC killed; small-sample mean noise


@given(seed=st.integers(0, 2**31 - 1))
@settings(max_examples=20, deadline=None)
def test_fractal_noise_deterministic_per_seed(seed):
    a = fractal_noise((8, 8, 8), np.random.default_rng(seed))
    b = fractal_noise((8, 8, 8), np.random.default_rng(seed))
    assert np.array_equal(a, b)


@given(
    x=st.lists(st.floats(-5, 5, allow_nan=False), min_size=1, max_size=50)
)
@settings(max_examples=60, deadline=None)
def test_smoothstep_properties(x):
    arr = np.asarray(x)
    out = smoothstep(arr)
    assert ((out >= 0) & (out <= 1)).all()
    # Monotone: sorting inputs sorts outputs.
    assert np.array_equal(smoothstep(np.sort(arr)), np.sort(out))
    # Fixed points at the clamps.
    assert smoothstep(np.array(0.0)) == 0.0
    assert smoothstep(np.array(1.0)) == 1.0


@given(
    center=st.tuples(st.floats(0, 1), st.floats(0, 1), st.floats(0, 1)),
    dims=st.tuples(st.integers(2, 10), st.integers(2, 10), st.integers(2, 10)),
)
@settings(max_examples=40, deadline=None)
def test_radial_distance_properties(center, dims):
    d = radial_distance(dims, center)
    assert d.shape == (dims[2], dims[1], dims[0])
    assert (d >= 0).all()
    # Triangle bound: nothing farther than the unit cube diagonal.
    assert d.max() <= np.sqrt(3) + 1e-9
