"""Unit tests for the synthetic deep-water asteroid impact dataset."""

import numpy as np
import pytest

from repro.compression import get_codec
from repro.core import selection_rate
from repro.datasets import AsteroidImpactDataset, AsteroidParams
from repro.datasets.asteroid import TABLE_I_ARRAYS
from repro.errors import ReproError

DIMS = (40, 40, 40)  # small but non-trivial for test speed


@pytest.fixture(scope="module")
def dataset():
    return AsteroidImpactDataset(AsteroidParams(dims=DIMS))


@pytest.fixture(scope="module")
def first_last(dataset):
    return (
        dataset.generate(dataset.timesteps[0]),
        dataset.generate(dataset.timesteps[-1]),
    )


class TestStructure:
    def test_table_i_arrays_present(self, dataset, first_last):
        grid, _ = first_last
        assert set(grid.point_data.names()) == set(TABLE_I_ARRAYS)

    def test_all_float32(self, first_last):
        grid, _ = first_last
        for arr in grid.point_data:
            assert arr.dtype == np.float32

    def test_nine_timesteps_spanning_paper_range(self, dataset):
        assert len(dataset.timesteps) == 9
        assert dataset.timesteps[0] == 0
        assert dataset.timesteps[-1] == 48013

    def test_unknown_timestep_rejected(self, dataset):
        with pytest.raises(ReproError):
            dataset.generate(12345)

    def test_generate_arrays_subset(self, dataset):
        grid = dataset.generate_arrays(0, ["v02", "v03"])
        assert grid.point_data.names() == ["v02", "v03"]

    def test_deterministic(self):
        a = AsteroidImpactDataset(AsteroidParams(dims=DIMS)).generate_arrays(0, ["v02"])
        b = AsteroidImpactDataset(AsteroidParams(dims=DIMS)).generate_arrays(0, ["v02"])
        assert a == b

    def test_param_validation(self):
        with pytest.raises(ReproError):
            AsteroidParams(dims=DIMS, timesteps=(1,))
        with pytest.raises(ReproError):
            AsteroidParams(dims=DIMS, ocean_level=1.5)
        with pytest.raises(ReproError):
            AsteroidParams(dims=DIMS, asteroid_radius=-1)


class TestPhysics:
    def test_volume_fractions_in_range(self, first_last):
        for grid in first_last:
            for name in ("v02", "v03"):
                vals = grid.point_data.get(name).values
                assert vals.min() >= 0.0
                assert vals.max() <= 1.0

    def test_ocean_fills_lower_domain(self, first_last):
        grid, _ = first_last
        nx, ny, nz = grid.dims
        v02 = grid.scalar_field("v02")
        assert v02[2].mean() > 0.95       # deep water
        assert v02[-2].mean() < 0.05      # high atmosphere

    def test_asteroid_above_ocean_at_start(self, first_last):
        grid, _ = first_last
        v03 = grid.scalar_field("v03")
        nz = grid.dims[2]
        core_heights = np.nonzero(v03 >= 0.5)[0]
        assert core_heights.size > 0
        assert core_heights.mean() > 0.7 * nz

    def test_asteroid_descends_then_impacts(self, dataset):
        heights = []
        for ts in dataset.timesteps[:5]:
            v03 = dataset.generate_arrays(ts, ["v03"]).scalar_field("v03")
            zs = np.nonzero(v03 >= 0.5)[0]
            heights.append(zs.mean())
        assert all(h1 > h2 for h1, h2 in zip(heights, heights[1:]))

    def test_materials_do_not_overlap_much(self, first_last):
        for grid in first_last:
            v02 = grid.point_data.get("v02").values
            v03 = grid.point_data.get("v03").values
            overlap = ((v02 > 0.5) & (v03 > 0.5)).mean()
            assert overlap < 0.01

    def test_density_tracks_materials(self, first_last):
        grid, _ = first_last
        rho = grid.point_data.get("rho").values
        v03 = grid.point_data.get("v03").values
        v02 = grid.point_data.get("v02").values
        assert rho[v03 > 0.9].mean() > 2.5     # asteroid rock
        assert 0.8 < rho[(v02 > 0.9) & (v03 < 0.1)].mean() < 1.2  # water
        air = (v02 < 0.01) & (v03 < 0.01)
        assert rho[air].mean() < 0.1

    def test_grd_quantized_levels(self, first_last):
        grid, _ = first_last
        grd = np.unique(grid.point_data.get("grd").values)
        assert set(grd) <= {0.0, 1.0, 2.0, 3.0}

    def test_mat_ids(self, first_last):
        grid, _ = first_last
        mat = np.unique(grid.point_data.get("mat").values)
        assert set(mat) <= {0.0, 2.0, 3.0}


class TestEvaluationProperties:
    """The trends the paper's figures depend on."""

    def test_compression_ratio_decays(self, dataset):
        gz = get_codec("gzip")
        ratios = []
        for ts in (dataset.timesteps[0], dataset.timesteps[4], dataset.timesteps[-1]):
            data = dataset.generate_arrays(ts, ["v02"]).point_data.get("v02").values.tobytes()
            ratios.append(len(data) / len(gz.compress(data)))
        assert ratios[0] > 2 * ratios[1] > 2 * ratios[2]

    def test_gzip_beats_lz4_ratio(self, dataset):
        gz, lz = get_codec("gzip"), get_codec("lz4")
        data = dataset.generate_arrays(24006, ["v02"]).point_data.get("v02").values.tobytes()
        assert len(gz.compress(data)) < len(lz.compress(data))

    def test_v03_more_selective_than_v02(self, dataset):
        grid = dataset.generate_arrays(24006, ["v02", "v03"])
        s02 = selection_rate(grid, "v02", [0.1])
        s03 = selection_rate(grid, "v03", [0.1])
        assert s03 < s02 / 2

    def test_selectivity_falls_with_contour_value(self, dataset):
        grid = dataset.generate_arrays(dataset.timesteps[-1], ["v02"])
        s_low = selection_rate(grid, "v02", [0.1])
        s_high = selection_rate(grid, "v02", [0.9])
        assert s_high < s_low

    def test_v02_selectivity_rises_after_impact(self, dataset):
        before = selection_rate(
            dataset.generate_arrays(0, ["v02"]), "v02", [0.1]
        )
        after = selection_rate(
            dataset.generate_arrays(48013, ["v02"]), "v02", [0.1]
        )
        assert after > 1.5 * before

    def test_progress_normalization(self, dataset):
        assert dataset.progress(0) == 0.0
        assert dataset.progress(48013) == 1.0
