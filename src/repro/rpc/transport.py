"""RPC transports: in-process, TCP, and simulated.

A *client transport* exposes one blocking primitive,
:meth:`Transport.request`, mapping a request payload to a response payload.
Three implementations cover the library's needs:

* :class:`InProcessTransport` — calls a dispatcher directly; deterministic
  and dependency-free, used by tests and the benchmark harness,
* :class:`TCPTransport` / :class:`TCPServerTransport` — real sockets with
  length-prefixed frames, proving the protocol works across processes,
* :class:`SimulatedTransport` — wraps another transport and charges every
  byte crossing it to a simulated network link (see
  :mod:`repro.storage.netsim`), which is how benchmarks account for the
  paper's 1 GbE client-storage hop without owning two machines.

Frame format on the wire: ``uint32 BE payload length | payload``.
"""

from __future__ import annotations

import select
import socket
import struct
import threading
import time
from abc import ABC, abstractmethod
from typing import Callable

from repro.errors import RPCTimeoutError, RPCTransportError

__all__ = [
    "Transport",
    "InProcessTransport",
    "TCPTransport",
    "TCPServerTransport",
    "SimulatedTransport",
    "ThrottledTransport",
    "FrameBuffer",
    "read_frame",
    "write_frame",
]

_LEN = struct.Struct(">I")
#: Upper bound on a single frame; guards against garbage length prefixes.
MAX_FRAME = 1 << 31


def write_frame(sock: socket.socket, payload: bytes) -> None:
    """Send one length-prefixed frame."""
    if len(payload) >= MAX_FRAME:
        raise RPCTransportError(f"frame of {len(payload)} bytes exceeds MAX_FRAME")
    sock.sendall(_LEN.pack(len(payload)) + payload)


def _recv_exact(sock: socket.socket, n: int) -> bytes:
    chunks = []
    remaining = n
    while remaining:
        chunk = sock.recv(min(remaining, 1 << 20))
        if not chunk:
            raise RPCTransportError(
                f"connection closed mid-frame ({remaining} of {n} bytes missing)"
            )
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def read_frame(sock: socket.socket) -> bytes:
    """Receive one length-prefixed frame."""
    header = _recv_exact(sock, _LEN.size)
    (length,) = _LEN.unpack(header)
    if length >= MAX_FRAME:
        raise RPCTransportError(f"frame length {length} exceeds MAX_FRAME")
    return _recv_exact(sock, length)


class FrameBuffer:
    """Incremental parser for the ``uint32 BE length | payload`` framing.

    The event-loop server reads whatever the kernel has and feeds it
    here; :meth:`drain` yields every frame that is complete so far and
    keeps the partial tail for the next :meth:`feed`.  A length prefix at
    or beyond :data:`MAX_FRAME` raises
    :class:`~repro.errors.RPCTransportError` — the stream is garbage and
    the connection must be dropped.
    """

    __slots__ = ("_buf",)

    def __init__(self):
        self._buf = bytearray()

    def feed(self, data: bytes) -> None:
        self._buf += data

    def __len__(self) -> int:
        return len(self._buf)

    def drain(self):
        """Yield complete frame payloads accumulated so far."""
        offset = 0
        buf = self._buf
        while len(buf) - offset >= _LEN.size:
            (length,) = _LEN.unpack_from(buf, offset)
            if length >= MAX_FRAME:
                raise RPCTransportError(
                    f"frame length {length} exceeds MAX_FRAME"
                )
            if len(buf) - offset - _LEN.size < length:
                break
            start = offset + _LEN.size
            yield bytes(buf[start : start + length])
            offset = start + length
        if offset:
            del buf[:offset]


class Transport(ABC):
    """Blocking request/response client transport."""

    @abstractmethod
    def request(self, payload: bytes) -> bytes:
        """Send ``payload``; block until the response payload arrives."""

    def send(self, payload: bytes) -> None:
        """One-way send, for NOTIFY frames that get no response.

        The base implementation delegates to :meth:`request` and discards
        the result; transports that would block waiting for a reply that
        never comes (TCP) must override this with a pure write.
        """
        self.request(payload)

    def close(self) -> None:
        """Release transport resources (no-op by default)."""


class InProcessTransport(Transport):
    """Directly invokes a server dispatcher: zero-copy, single-process."""

    def __init__(self, dispatcher: Callable[[bytes], bytes]):
        self._dispatcher = dispatcher

    def request(self, payload: bytes) -> bytes:
        return self._dispatcher(bytes(payload))


class SimulatedTransport(Transport):
    """Wraps a transport, charging traffic to a simulated network link.

    Parameters
    ----------
    inner:
        The transport that actually moves the payload (usually in-process).
    link:
        Any object with ``charge(nbytes)`` — in practice a
        :class:`repro.storage.netsim.LinkModel` bound to a
        :class:`repro.storage.netsim.SimClock`.  Both request and response
        bytes are charged, like the paper's client<->storage hop.
    response_link:
        Optional second link for the server→client direction.  WAN hops
        are asymmetric (see :data:`repro.storage.netsim.WAN_PROFILES`);
        when given, requests charge ``link`` and responses charge
        ``response_link``, each paying its own one-way latency.
    """

    def __init__(self, inner: Transport, link, response_link=None):
        self._inner = inner
        self._link = link
        self._response_link = response_link if response_link is not None else link

    def request(self, payload: bytes) -> bytes:
        self._link.charge(len(payload))
        response = self._inner.request(payload)
        self._response_link.charge(len(response) if response is not None else 0)
        return response

    def send(self, payload: bytes) -> None:
        self._link.charge(len(payload))
        self._inner.send(payload)

    def close(self) -> None:
        self._inner.close()


class ThrottledTransport(Transport):
    """Wraps a transport in *real* wall-clock WAN delay.

    The simulated-clock :class:`SimulatedTransport` keeps benchmarks fast;
    this one actually sleeps, which is what a multi-process CI chain needs
    to demonstrate edge caching over a WAN with nothing but localhost
    sockets.  ``profile`` is anything with ``one_way_latency_s`` /
    ``up_bps`` / ``down_bps`` — in practice a
    :class:`repro.storage.netsim.WanProfile`.
    """

    def __init__(self, inner: Transport, profile, sleep=time.sleep):
        self._inner = inner
        self._profile = profile
        self._sleep = sleep

    def _delay(self, nbytes: int, bps: float) -> None:
        p = self._profile
        self._sleep(p.one_way_latency_s + (nbytes / bps if bps else 0.0))

    def request(self, payload: bytes) -> bytes:
        self._delay(len(payload), self._profile.up_bps)
        response = self._inner.request(payload)
        self._delay(len(response) if response is not None else 0,
                    self._profile.down_bps)
        return response

    def send(self, payload: bytes) -> None:
        self._delay(len(payload), self._profile.up_bps)
        self._inner.send(payload)

    def reconnect(self) -> None:
        reconnect = getattr(self._inner, "reconnect", None)
        if reconnect is not None:
            reconnect()

    def close(self) -> None:
        self._inner.close()


class TCPTransport(Transport):
    """Client-side TCP transport with length-prefixed frames.

    Thread-safe: concurrent callers are serialized over the single
    connection (matching rpclib's default synchronous client behaviour).
    """

    def __init__(self, host: str, port: int, timeout: float | None = 30.0,
                 lazy: bool = False):
        self._host = host
        self._port = port
        self._timeout = timeout
        self._lock = threading.Lock()
        # lazy=True defers the dial to the first frame, so a currently-down
        # endpoint surfaces as a retryable per-call RPCTransportError (which
        # resilient wrappers and the cluster fallback can absorb) instead of
        # failing construction of the whole client/pool.
        self._sock = None if lazy else self._dial()

    def _dial(self) -> socket.socket:
        try:
            sock = socket.create_connection(
                (self._host, self._port), timeout=self._timeout
            )
        except socket.timeout as exc:
            raise RPCTimeoutError(
                f"connect to {self._host}:{self._port} timed out "
                f"after {self._timeout}s"
            ) from exc
        except OSError as exc:
            raise RPCTransportError(
                f"cannot connect to {self._host}:{self._port}: {exc}"
            ) from exc
        sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        return sock

    def reconnect(self) -> None:
        """Drop the current connection and dial a fresh one.

        A failed request leaves the single framed connection in an unknown
        state (half-written frame, server-side close), so retrying over it
        can never succeed; :class:`~repro.rpc.resilience.ResilientTransport`
        calls this between attempts when the wrapped transport offers it.
        """
        with self._lock:
            if self._sock is not None:
                try:
                    self._sock.close()
                except OSError:
                    pass
            self._sock = self._dial()

    def request(self, payload: bytes) -> bytes:
        with self._lock:
            if self._sock is None:
                self._sock = self._dial()
            try:
                write_frame(self._sock, payload)
                return read_frame(self._sock)
            except socket.timeout as exc:
                raise RPCTimeoutError(f"socket timed out: {exc}") from exc
            except OSError as exc:
                raise RPCTransportError(f"socket error: {exc}") from exc

    def send(self, payload: bytes) -> None:
        """Write one frame without awaiting a response (NOTIFY semantics).

        The server sends no response frame for a notification, so reading
        here would either hang or steal the next call's response.
        """
        with self._lock:
            if self._sock is None:
                self._sock = self._dial()
            try:
                write_frame(self._sock, payload)
            except socket.timeout as exc:
                raise RPCTimeoutError(f"socket timed out: {exc}") from exc
            except OSError as exc:
                raise RPCTransportError(f"socket error: {exc}") from exc

    def close(self) -> None:
        if self._sock is None:
            return
        try:
            self._sock.close()
        except OSError:
            pass


class TCPServerTransport:
    """Threaded TCP listener that feeds frames to a dispatcher.

    Each accepted connection gets a handler thread; each received frame is
    passed to ``dispatcher`` and its return value written back.  Binding to
    port 0 picks an ephemeral port, exposed as :attr:`port`.

    Lifecycle: connection threads are tracked (and finished ones pruned on
    every accept, so a long-lived server does not accumulate dead
    ``Thread`` objects) and :meth:`stop` *joins* them.  ``stop()`` closes
    connections immediately; ``stop(drain_timeout=5.0)`` drains first —
    the listener closes at once so new connections are refused, but
    in-flight requests get up to the timeout to finish before sockets are
    force-closed.  ``max_connections`` caps concurrent connections at
    accept time: excess connections are closed immediately, which clients
    see as a retryable transport error.
    """

    def __init__(
        self,
        dispatcher: Callable[[bytes], bytes],
        host: str = "127.0.0.1",
        port: int = 0,
        max_connections: int | None = None,
    ):
        self._dispatcher = dispatcher
        self._listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        self._listener.bind((host, port))
        self._listener.listen(16)
        self.host, self.port = self._listener.getsockname()
        self.max_connections = max_connections
        self._shutdown = threading.Event()
        self._draining = threading.Event()
        self._lock = threading.Lock()
        self._threads: list[threading.Thread] = []
        self._conns: set[socket.socket] = set()
        self._accept_thread: threading.Thread | None = None
        #: lifetime count of connections refused by the max_connections cap
        self.refused = 0

    @property
    def draining(self) -> bool:
        """True between a draining ``stop()`` call and its completion."""
        return self._draining.is_set()

    def start(self) -> "TCPServerTransport":
        """Start accepting connections in a daemon thread."""
        self._accept_thread = threading.Thread(target=self._accept_loop, daemon=True)
        self._accept_thread.start()
        return self

    def _accept_loop(self) -> None:
        self._listener.settimeout(0.2)
        while not self._shutdown.is_set():
            try:
                conn, _addr = self._listener.accept()
            except socket.timeout:
                continue
            except OSError:
                break
            with self._lock:
                self._threads = [t for t in self._threads if t.is_alive()]
                if (
                    self.max_connections is not None
                    and len(self._conns) >= self.max_connections
                ):
                    self.refused += 1
                    try:
                        conn.close()  # client sees a retryable reset/EOF
                    except OSError:
                        pass
                    continue
                self._conns.add(conn)
                thread = threading.Thread(
                    target=self._serve_connection, args=(conn,), daemon=True
                )
                self._threads.append(thread)
            thread.start()

    def _serve_connection(self, conn: socket.socket) -> None:
        conn.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        try:
            while not self._shutdown.is_set():
                # Poll rather than block in read_frame: a draining server
                # must close *idle* connections promptly while still
                # serving any frame that is already arriving.
                try:
                    readable, _, _ = select.select([conn], [], [], 0.2)
                except (OSError, ValueError):
                    return
                if not readable:
                    if self._draining.is_set():
                        return  # idle during drain: close now
                    continue
                try:
                    payload = read_frame(conn)
                except RPCTransportError:
                    return  # client went away
                except OSError:
                    return
                response = self._dispatcher(payload)
                if response is None:
                    if self._draining.is_set():
                        return  # NOTIFY handled; connection ends with drain
                    continue  # NOTIFY: protocol says no response frame
                try:
                    write_frame(conn, response)
                except OSError:
                    return
                if self._draining.is_set():
                    return  # in-flight request finished: that's the drain
        finally:
            try:
                conn.close()
            except OSError:
                pass
            with self._lock:
                self._conns.discard(conn)

    def stop(self, drain_timeout: float | None = None) -> bool:
        """Stop the server; returns True if every thread exited in time.

        ``drain_timeout=None`` (the default, and what every pre-drain
        call site gets) stops immediately: close the listener, signal
        shutdown, force-close connections, join threads.  A float drains
        gracefully: the listener closes at once (new connections refused)
        but in-flight requests get up to ``drain_timeout`` seconds to
        complete before the force-close.
        """
        # Close the listener *before* flagging: once `draining` reads
        # True, new connections are already being refused.
        try:
            self._listener.close()
        except OSError:
            pass
        self._draining.set()
        deadline = time.monotonic() + (drain_timeout or 0.0)
        if drain_timeout is not None:
            with self._lock:
                threads = list(self._threads)
            for thread in threads:
                thread.join(timeout=max(0.0, deadline - time.monotonic()))
        # Whatever is still running now gets the hard stop.
        self._shutdown.set()
        with self._lock:
            conns = list(self._conns)
        for conn in conns:
            try:
                conn.close()
            except OSError:
                pass
        if self._accept_thread is not None:
            self._accept_thread.join(timeout=2.0)
        clean = True
        with self._lock:
            threads = list(self._threads)
        for thread in threads:
            thread.join(timeout=2.0)
            clean = clean and not thread.is_alive()
        self._draining.clear()
        return clean

    def __enter__(self) -> "TCPServerTransport":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()
