"""Per-tenant weighted fair queuing for the multiplexed serving core.

A single flooding tenant must not starve everyone else out of the
storage-side server.  :class:`FairScheduler` sits between the event-loop
listener (:class:`~repro.rpc.mux.AsyncServerTransport`) and
:meth:`~repro.rpc.server.RPCServer.dispatch`:

* every request is classified by the ``"tenant"`` key its ctx map carries
  (the optional 5th frame element — absent means the ``"default"``
  tenant, so classic clients keep working byte-identically),
* each tenant gets its own FIFO queue; workers dequeue by **weighted
  virtual time** (start-time fair queuing: pick the eligible tenant with
  the smallest ``served / weight``), so a tenant with weight 3 gets 3x
  the service of a weight-1 tenant under contention, and *every* backlogged
  tenant advances — no starvation by construction,
* per-tenant ``max_tenant_pending`` / ``max_tenant_inflight`` caps bound
  one tenant's footprint; beyond its pending cap a tenant's requests are
  shed **immediately** with a ``ServerOverloadedError`` reply carrying a
  ``retry_after`` hint, without ever touching a worker — the flooding
  tenant pays for its own flood while the trickle tenant's queue stays
  empty and unshed.

The scheduler *layers on* the existing
:class:`~repro.rpc.admission.AdmissionController` rather than replacing
it: global inflight bounds still apply inside dispatch, sheds are
recorded on the controller so ``health``/``stats`` report one overload
picture, and the controller's ``retry_after`` hint is reused.
"""

from __future__ import annotations

import collections
import threading
import time
from typing import Callable, NamedTuple

from repro.errors import FormatError
from repro.obs.flightrec import NULL_RECORDER
from repro.rpc.msgpack import pack, unpack

__all__ = ["FairScheduler", "sniff_request", "inject_tenant", "DEFAULT_TENANT"]

_REQUEST = 0
_RESPONSE = 1
_NOTIFY = 2

DEFAULT_TENANT = "default"


class RequestInfo(NamedTuple):
    mtype: int | None
    msgid: int | None
    tenant: str


def sniff_request(payload: bytes) -> RequestInfo:
    """Classify one frame: type, msgid, and the tenant its ctx names.

    Tolerant by design — malformed bytes, notifications, and foreign
    frames classify as the default tenant with ``mtype``/``msgid`` of
    ``None``/``None``; they flow through dispatch, which owns the error
    contract.
    """
    try:
        message = unpack(payload)
    except FormatError:
        return RequestInfo(None, None, DEFAULT_TENANT)
    if not isinstance(message, list) or not message:
        return RequestInfo(None, None, DEFAULT_TENANT)
    if message[0] == _NOTIFY:
        return RequestInfo(_NOTIFY, None, DEFAULT_TENANT)
    if message[0] != _REQUEST or len(message) not in (4, 5):
        return RequestInfo(None, None, DEFAULT_TENANT)
    msgid = message[1] if isinstance(message[1], int) else None
    tenant = DEFAULT_TENANT
    if len(message) == 5 and isinstance(message[4], dict):
        t = message[4].get("tenant")
        if isinstance(t, str) and t:
            tenant = t
    return RequestInfo(_REQUEST, msgid, tenant)


def inject_tenant(payload: bytes, tenant: str) -> bytes:
    """Splice a tenant id into a packed request frame's ctx map.

    Mirrors :func:`~repro.rpc.admission.inject_deadline`: best-effort
    sugar for load generators and proxies — non-request frames pass
    through untouched.
    """
    try:
        message = unpack(payload)
    except FormatError:
        return payload
    if (
        not isinstance(message, list)
        or len(message) not in (4, 5)
        or message[0] != _REQUEST
    ):
        return payload
    ctx = message[4] if len(message) == 5 else {}
    if not isinstance(ctx, dict):
        return payload
    merged = dict(ctx)
    merged["tenant"] = tenant
    return pack([message[0], message[1], message[2], message[3], merged])


class _Tenant:
    __slots__ = ("name", "weight", "queue", "inflight", "vtime",
                 "served", "shed", "enqueued", "slo_shed")

    def __init__(self, name: str, weight: float, vtime: float):
        self.name = name
        self.weight = weight
        self.queue: collections.deque = collections.deque()
        self.inflight = 0
        self.vtime = vtime
        self.served = 0
        self.shed = 0
        self.enqueued = 0
        self.slo_shed = 0


class FairScheduler:
    """Weighted fair queue + worker pool feeding a frame dispatcher.

    Parameters
    ----------
    dispatcher:
        ``bytes -> bytes | None`` (normally ``RPCServer.dispatch``).
    workers:
        Worker-thread count — the global dispatch concurrency.
    weights:
        ``{tenant: weight}``; unnamed tenants get ``default_weight``.
        Weights are relative service shares under contention.
    max_tenant_inflight:
        Per-tenant cap on concurrently *dispatching* requests; ``0``
        means no cap.  A tenant at its cap is simply skipped by the
        pickers until a slot frees — queued, not shed.
    max_tenant_pending:
        Per-tenant cap on *queued* requests; beyond it new arrivals are
        shed immediately with a ``retry_after`` reply.  ``0`` = unbounded.
    admission:
        Optional :class:`~repro.rpc.admission.AdmissionController`;
        fair-queue sheds are recorded on it (one overload ledger) and its
        ``retry_after`` is used for shed replies unless overridden.
    retry_after:
        Hint (seconds) carried by shed replies; defaults to the
        controller's hint, else 50 ms.
    recorder:
        Optional :class:`~repro.obs.flightrec.FlightRecorder`; every
        fair-queue shed records a ``tenant.shed`` event.
    slo:
        Optional :class:`~repro.obs.slo.SLOEngine` consulted (with
        ``slo_shed=True``) before queueing a request.
    slo_shed:
        When true, a tenant that is *burning its error budget* loses its
        queueing rights: while it has any backlog, new arrivals are shed
        immediately.  Healthy tenants queue as before — under overload
        the budget-burner sheds first.
    """

    def __init__(
        self,
        dispatcher: Callable[[bytes], bytes | None],
        workers: int = 8,
        weights: dict[str, float] | None = None,
        default_weight: float = 1.0,
        max_tenant_inflight: int = 0,
        max_tenant_pending: int = 0,
        admission=None,
        retry_after: float | None = None,
        recorder=None,
        slo=None,
        slo_shed: bool = False,
    ):
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        self._dispatcher = dispatcher
        self.workers = int(workers)
        self._weights = dict(weights or {})
        self._default_weight = float(default_weight)
        self.max_tenant_inflight = int(max_tenant_inflight)
        self.max_tenant_pending = int(max_tenant_pending)
        self.admission = admission
        if retry_after is not None:
            self.retry_after = float(retry_after)
        elif admission is not None:
            self.retry_after = float(admission.retry_after)
        else:
            self.retry_after = 0.05
        self.recorder = recorder if recorder is not None else NULL_RECORDER
        self.slo = slo
        self.slo_shed = bool(slo_shed)
        self._cond = threading.Condition()
        self._tenants: dict[str, _Tenant] = {}
        self._vclock = 0.0
        self._total_pending = 0
        self._total_inflight = 0
        self._sheds = 0
        self._slo_sheds = 0
        self._served = 0
        self._stopping = False
        self._finish_queue = True
        self._threads: list[threading.Thread] = []

    # -- lifecycle -------------------------------------------------------
    def start(self) -> "FairScheduler":
        with self._cond:
            if self._threads:
                return self
            self._stopping = False
            self._threads = [
                threading.Thread(
                    target=self._worker, daemon=True, name=f"fair-worker-{i}"
                )
                for i in range(self.workers)
            ]
        for thread in self._threads:
            thread.start()
        return self

    def stop(self, timeout: float = 2.0, finish: bool = True) -> bool:
        """Stop workers; ``finish=True`` drains queued work first."""
        with self._cond:
            self._stopping = True
            self._finish_queue = finish
            self._cond.notify_all()
            threads = list(self._threads)
        deadline = time.monotonic() + timeout
        clean = True
        for thread in threads:
            thread.join(timeout=max(0.0, deadline - time.monotonic()))
            clean = clean and not thread.is_alive()
        with self._cond:
            self._threads = []
        return clean

    def quiescent(self) -> bool:
        """True when nothing is queued or dispatching (drain condition)."""
        with self._cond:
            return self._total_pending == 0 and self._total_inflight == 0

    # -- intake ----------------------------------------------------------
    def submit(self, payload: bytes, respond: Callable[[bytes | None], None]) -> None:
        """Queue one frame; ``respond`` is called exactly once with the
        response payload (or ``None`` for notifications), possibly on a
        worker thread, possibly immediately for shed requests."""
        info = sniff_request(payload)
        sheddable = info.mtype == _REQUEST and info.msgid is not None
        # Burn state is read outside the scheduler lock: the SLO engine
        # has its own locking and never calls back into the scheduler.
        burning = (
            self.slo_shed
            and self.slo is not None
            and sheddable
            and self.slo.burning(info.tenant)
        )
        shed_reply = None
        shed_error = None
        slo_decided = False
        with self._cond:
            tenant = self._tenant_locked(info.tenant)
            if (
                sheddable
                and self.max_tenant_pending > 0
                and len(tenant.queue) >= self.max_tenant_pending
            ):
                tenant.shed += 1
                self._sheds += 1
                if self.admission is not None:
                    self.admission.record_shed()
                shed_error = (
                    f"ServerOverloadedError: tenant {tenant.name!r} over "
                    f"fair-share capacity (pending="
                    f"{len(tenant.queue)}/{self.max_tenant_pending}); "
                    f"retry_after={self.retry_after}"
                )
            elif burning and len(tenant.queue) > 0:
                # SLO-aware shedding: a budget-burning tenant keeps its
                # in-flight and queued work but may not grow its backlog.
                tenant.shed += 1
                tenant.slo_shed += 1
                self._sheds += 1
                self._slo_sheds += 1
                if self.admission is not None:
                    self.admission.record_shed()
                slo_decided = True
                shed_error = (
                    f"ServerOverloadedError: tenant {tenant.name!r} is "
                    f"burning its error budget (backlog="
                    f"{len(tenant.queue)}); retry_after={self.retry_after}"
                )
            else:
                tenant.queue.append((payload, respond))
                tenant.enqueued += 1
                self._total_pending += 1
                self._cond.notify()
        if shed_error is not None:
            shed_reply = pack([_RESPONSE, info.msgid, shed_error, None])
            if self.recorder:
                self.recorder.record(
                    "tenant.shed", tenant=info.tenant, msgid=info.msgid,
                    slo=slo_decided, error=shed_error,
                )
            if self.slo is not None:
                if slo_decided:
                    self.slo.record_slo_shed(info.tenant)
                self.slo.observe(info.tenant, 0.0, error=True)
            respond(shed_reply)

    def _tenant_locked(self, name: str) -> _Tenant:
        tenant = self._tenants.get(name)
        if tenant is None:
            # Joining tenants start at the current virtual clock so a
            # newcomer competes fairly instead of replaying history.
            tenant = _Tenant(
                name, float(self._weights.get(name, self._default_weight)),
                self._vclock,
            )
            self._tenants[name] = tenant
        return tenant

    # -- service ---------------------------------------------------------
    def _pick_locked(self) -> _Tenant | None:
        best = None
        for tenant in self._tenants.values():
            if not tenant.queue:
                continue
            if (
                self.max_tenant_inflight > 0
                and tenant.inflight >= self.max_tenant_inflight
            ):
                continue
            if best is None or tenant.vtime < best.vtime:
                best = tenant
        return best

    def _worker(self) -> None:
        while True:
            with self._cond:
                tenant = self._pick_locked()
                while tenant is None:
                    if self._stopping:
                        return
                    self._cond.wait(timeout=0.2)
                    tenant = self._pick_locked()
                if self._stopping and not self._finish_queue:
                    return
                payload, respond = tenant.queue.popleft()
                self._total_pending -= 1
                tenant.inflight += 1
                self._total_inflight += 1
                start = max(tenant.vtime, self._vclock)
                self._vclock = start
                tenant.vtime = start + 1.0 / tenant.weight
            try:
                response = self._dispatcher(payload)
            except Exception as exc:  # dispatch's contract is "never raise"
                info = sniff_request(payload)
                response = (
                    pack([_RESPONSE, info.msgid,
                          f"{type(exc).__name__}: {exc}", None])
                    if info.msgid is not None else None
                )
            finally:
                with self._cond:
                    tenant.inflight -= 1
                    self._total_inflight -= 1
                    tenant.served += 1
                    self._served += 1
                    self._cond.notify()
            try:
                respond(response)
            except Exception:
                pass  # a dead connection must not take down the worker

    # -- stats -----------------------------------------------------------
    @property
    def pending(self) -> int:
        with self._cond:
            return self._total_pending

    @property
    def inflight(self) -> int:
        with self._cond:
            return self._total_inflight

    def info(self) -> dict:
        """Snapshot for the registry / ``health`` / ``server_stats``."""
        with self._cond:
            return {
                "workers": self.workers,
                "pending": self._total_pending,
                "inflight": self._total_inflight,
                "served": self._served,
                "shed": self._sheds,
                "slo_shed": self._slo_sheds,
                "slo_aware": self.slo_shed,
                "max_tenant_inflight": self.max_tenant_inflight,
                "max_tenant_pending": self.max_tenant_pending,
                "tenants": {
                    name: {
                        "weight": t.weight,
                        "pending": len(t.queue),
                        "inflight": t.inflight,
                        "served": t.served,
                        "shed": t.shed,
                        "slo_shed": t.slo_shed,
                    }
                    for name, t in self._tenants.items()
                },
            }
