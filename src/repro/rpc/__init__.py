"""RPC substrate: MessagePack serialization and an rpclib-style call layer.

The paper's prototype uses rpclib + MessagePack "to efficiently marshal and
unmarshal data, alleviating interprocess-communication overhead" (Sec. VI).
This package provides the same two layers from scratch:

* :mod:`repro.rpc.msgpack` — a spec-complete MessagePack encoder/decoder,
* :mod:`repro.rpc.server` / :mod:`repro.rpc.client` — function-registration
  RPC over pluggable transports (in-process for tests, TCP for real
  two-process runs, simulated for benchmark cost accounting),
* :mod:`repro.rpc.resilience` — retry/backoff/deadline/circuit-breaker
  wrapper making the client<->storage hop fault tolerant,
* :mod:`repro.rpc.admission` — server-side admission control / load
  shedding and the deadline-propagation helpers shared by both sides.
"""

from repro.rpc.admission import (
    AdmissionController,
    DeadlineScope,
    check_deadline,
    remaining_budget,
)
from repro.rpc.client import PendingCall, RPCClient
from repro.rpc.fairshare import FairScheduler, inject_tenant
from repro.rpc.msgpack import ExtType, Timestamp, pack, unpack
from repro.rpc.mux import AsyncServerTransport, MuxTransport
from repro.rpc.pool import EndpointPool
from repro.rpc.resilience import CircuitBreaker, ResilientTransport, RetryPolicy
from repro.rpc.server import RPCServer
from repro.rpc.forward import ForwardingHandler
from repro.rpc.transport import (
    FrameBuffer,
    InProcessTransport,
    SimulatedTransport,
    TCPServerTransport,
    TCPTransport,
    ThrottledTransport,
    Transport,
)

__all__ = [
    "pack",
    "unpack",
    "ExtType",
    "Timestamp",
    "RPCServer",
    "RPCClient",
    "PendingCall",
    "Transport",
    "InProcessTransport",
    "TCPTransport",
    "TCPServerTransport",
    "MuxTransport",
    "AsyncServerTransport",
    "FairScheduler",
    "FrameBuffer",
    "inject_tenant",
    "ForwardingHandler",
    "SimulatedTransport",
    "ThrottledTransport",
    "ResilientTransport",
    "EndpointPool",
    "RetryPolicy",
    "CircuitBreaker",
    "AdmissionController",
    "DeadlineScope",
    "check_deadline",
    "remaining_budget",
]
