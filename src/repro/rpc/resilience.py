"""Fault-tolerant transport: deadlines, retries with backoff, circuit breaker.

The paper's NDP split trusts a single synchronous rpclib hop between the
client and the storage node; on the evaluation testbed (two machines, one
1 GbE link) any transport hiccup stalls the whole pipeline.  This module
wraps any :class:`~repro.rpc.transport.Transport` with the recovery layer
remote-viz systems treat as table stakes:

* **per-request deadline** — a time budget covering *all* attempts of one
  request; exceeded budget surfaces as
  :class:`~repro.errors.RPCTimeoutError`,
* **bounded retries** with exponential backoff and deterministic seeded
  jitter (:class:`RetryPolicy`),
* a **circuit breaker** (:class:`CircuitBreaker`) that trips after N
  consecutive failures and rejects requests locally
  (:class:`~repro.errors.CircuitOpenError`) until a reset interval passes,
  then lets a half-open probe through,
* **overload cooperation** — replies shed by server admission control
  (:class:`~repro.errors.ServerOverloadedError`) are retried with the
  server's ``retry_after`` hint as the backoff floor, without tripping
  the breaker or re-dialling a perfectly healthy connection,
* **deadline propagation** — each attempt's request frame carries the
  remaining budget so the server can abandon doomed work
  (see :mod:`repro.rpc.admission`).

Everything time-related goes through injectable ``clock``/``sleep``
callables, so the fault-injection tests exercise every branch without a
single wall-clock sleep; production code just uses the defaults
(``time.monotonic`` / ``time.sleep``).
"""

from __future__ import annotations

import random
import threading
import time
from dataclasses import dataclass

from repro.errors import (
    CircuitOpenError,
    RPCError,
    RPCTimeoutError,
    RPCTransportError,
    ServerOverloadedError,
)
from repro.obs.flightrec import NULL_RECORDER
from repro.obs.trace import NULL_TRACER
from repro.rpc.admission import inject_deadline, sniff_overload
from repro.rpc.transport import Transport

__all__ = ["RetryPolicy", "CircuitBreaker", "ResilientTransport"]


@dataclass(frozen=True)
class RetryPolicy:
    """Retry/backoff/deadline knobs for one :class:`ResilientTransport`.

    Parameters
    ----------
    max_attempts:
        Total tries per request (first attempt + retries), >= 1.
    base_delay, multiplier, max_delay:
        Backoff before retry *k* (0-based) is
        ``min(max_delay, base_delay * multiplier**k)``, minus jitter.
    jitter:
        Fraction of the delay randomized away, in ``[0, 1]``: the actual
        sleep is uniform in ``[(1 - jitter) * d, d]``.  Jitter draws come
        from a seedable RNG so schedules are reproducible in tests.
    deadline:
        Per-request time budget in seconds across all attempts, or
        ``None`` for unbounded.  A retry is abandoned (and
        :class:`~repro.errors.RPCTimeoutError` raised) when its backoff
        sleep would land past the deadline; a response that arrives after
        the deadline is discarded as timed out.
    """

    max_attempts: int = 4
    base_delay: float = 0.05
    multiplier: float = 2.0
    max_delay: float = 2.0
    jitter: float = 0.5
    deadline: float | None = 30.0

    def __post_init__(self):
        if self.max_attempts < 1:
            raise RPCError(f"max_attempts must be >= 1, got {self.max_attempts}")
        if self.base_delay < 0 or self.max_delay < 0:
            raise RPCError("backoff delays must be >= 0")
        if self.multiplier < 1.0:
            raise RPCError(f"multiplier must be >= 1, got {self.multiplier}")
        if not 0.0 <= self.jitter <= 1.0:
            raise RPCError(f"jitter must be in [0, 1], got {self.jitter}")
        if self.deadline is not None and self.deadline <= 0:
            raise RPCError(f"deadline must be > 0, got {self.deadline}")

    def backoff(self, attempt: int, rng: random.Random | None = None) -> float:
        """Delay before retrying after failed attempt ``attempt`` (0-based)."""
        delay = min(self.max_delay, self.base_delay * self.multiplier**attempt)
        if rng is not None and self.jitter > 0:
            delay -= delay * self.jitter * rng.random()
        return delay


class CircuitBreaker:
    """Trips open after N consecutive failures; recovers via half-open probe.

    States (the classic three-state machine):

    * ``closed`` — requests flow; consecutive failures are counted,
    * ``open`` — requests are rejected locally without touching the wire,
    * ``half-open`` — after ``reset_timeout`` seconds open, the next
      request is let through as a probe: success closes the breaker,
      failure re-opens it for another full interval.

    Thread-safe; shared by all requests on one transport.  ``clock`` is
    injectable for deterministic tests.
    """

    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half-open"

    def __init__(
        self,
        failure_threshold: int = 5,
        reset_timeout: float = 30.0,
        clock=time.monotonic,
    ):
        if failure_threshold < 1:
            raise RPCError(f"failure_threshold must be >= 1, got {failure_threshold}")
        if reset_timeout < 0:
            raise RPCError(f"reset_timeout must be >= 0, got {reset_timeout}")
        self.failure_threshold = failure_threshold
        self.reset_timeout = reset_timeout
        self._clock = clock
        self._lock = threading.Lock()
        self._failures = 0
        self._state = self.CLOSED
        self._opened_at = 0.0
        #: lifetime count of closed/half-open -> open transitions
        self.trips = 0

    # ------------------------------------------------------------------
    def _resolve_state(self) -> str:
        """Current state, promoting open -> half-open when the interval passed."""
        if (
            self._state == self.OPEN
            and self._clock() - self._opened_at >= self.reset_timeout
        ):
            self._state = self.HALF_OPEN
        return self._state

    @property
    def state(self) -> str:
        with self._lock:
            return self._resolve_state()

    @property
    def failures(self) -> int:
        with self._lock:
            return self._failures

    def retry_after(self) -> float | None:
        """Seconds until an open breaker will allow a probe (None if not open)."""
        with self._lock:
            if self._resolve_state() != self.OPEN:
                return None
            return max(0.0, self.reset_timeout - (self._clock() - self._opened_at))

    def allow(self) -> bool:
        """May a request proceed right now?"""
        with self._lock:
            return self._resolve_state() != self.OPEN

    def record_success(self) -> None:
        with self._lock:
            self._failures = 0
            self._state = self.CLOSED

    def record_failure(self) -> None:
        with self._lock:
            self._failures += 1
            state = self._resolve_state()
            if state == self.HALF_OPEN or (
                state == self.CLOSED and self._failures >= self.failure_threshold
            ):
                self._state = self.OPEN
                self._opened_at = self._clock()
                self.trips += 1

    def reset(self) -> None:
        """Force-close (administrative reset)."""
        with self._lock:
            self._failures = 0
            self._state = self.CLOSED


class ResilientTransport(Transport):
    """Retry/deadline/breaker wrapper around any blocking transport.

    Parameters
    ----------
    inner:
        The wrapped transport actually moving bytes.
    retry:
        A :class:`RetryPolicy` (default: 4 attempts, exp backoff, 30 s
        deadline).
    breaker:
        A :class:`CircuitBreaker`, or ``None`` to disable breaking.  Pass
        a shared instance to pool failure knowledge across transports to
        the same endpoint.
    clock, sleep:
        Injectable time sources (defaults: ``time.monotonic`` /
        ``time.sleep``).  Tests inject a fake clock so no branch ever
        really sleeps.
    rng:
        ``random.Random`` used only for backoff jitter; seed it for
        reproducible schedules.
    stats:
        Optional recorder with a ``record(event, n=1)`` method — in
        practice a :class:`repro.storage.metrics.ResilienceStats`.  Events
        emitted: ``attempts``, ``retries``, ``reconnects``, ``failures``,
        ``successes``, ``timeouts``, ``overloads``,
        ``breaker_rejections``, ``breaker_trips``.
    retryable:
        Exception classes worth retrying.  Defaults to transport faults
        only: remote handler errors and protocol violations are
        deterministic and re-raised immediately.
    tracer:
        Optional :class:`~repro.obs.trace.Tracer`.  Retries, reconnects,
        deadline timeouts, and breaker activity are recorded as *events*
        on whatever span is current (normally the client's ``rpc.call``),
        so a trace shows not just that a request was slow but that it
        burned two retries and tripped the breaker on the way.
    propagate_deadline:
        When true (default) and the policy has a deadline, each attempt's
        request frame is rewritten to carry the *remaining* budget in its
        ctx map, so a deadline-aware server can reject doomed work early.
        Non-request payloads pass through untouched, and with
        ``deadline=None`` frames stay byte-identical to the wire.
    recorder:
        Optional :class:`~repro.obs.flightrec.FlightRecorder`; retries,
        reconnects, overload backoffs, deadline busts, and breaker flips
        land in the client-side flight ring even with tracing off.
    """

    def __init__(
        self,
        inner: Transport,
        retry: RetryPolicy | None = None,
        breaker: CircuitBreaker | None = None,
        clock=time.monotonic,
        sleep=time.sleep,
        rng: random.Random | None = None,
        stats=None,
        retryable: tuple[type[BaseException], ...] = (RPCTransportError,),
        tracer=None,
        propagate_deadline: bool = True,
        recorder=None,
    ):
        self._inner = inner
        self.retry = retry if retry is not None else RetryPolicy()
        self.breaker = breaker
        self._clock = clock
        self._sleep = sleep
        self._rng = rng if rng is not None else random.Random()
        self._stats = stats
        self._retryable = retryable
        self._tracer = tracer if tracer is not None else NULL_TRACER
        self._propagate_deadline = propagate_deadline
        self._recorder = recorder if recorder is not None else NULL_RECORDER

    # ------------------------------------------------------------------
    def _record(self, event: str, n: int = 1) -> None:
        if self._stats is not None:
            self._stats.record(event, n)

    def _reject_open(self, cause: BaseException | None) -> None:
        self._record("breaker_rejections")
        self._tracer.add_event("breaker.reject", state=self.breaker.state)
        self._recorder.record("breaker.reject", state=self.breaker.state)
        after = self.breaker.retry_after()
        hint = f"; retrying in {after:.3g}s" if after else ""
        raise CircuitOpenError(
            f"circuit breaker open after {self.breaker.failures} consecutive "
            f"failures{hint}",
            retry_after=after,
        ) from cause

    def _reconnect_inner(self) -> None:
        """Give stateful transports a fresh connection before a retry.

        A failed attempt can leave a framed stream connection unusable
        (half-written frame, peer close), so a retry over the same socket
        is doomed.  Transports that can re-dial expose ``reconnect()``
        (:class:`~repro.rpc.transport.TCPTransport` does); failures here
        are swallowed — the next attempt will surface them as its own
        transport error and keep the retry accounting in one place.

        Shared multiplexed transports instead expose
        ``reconnect_if_broken()``, preferred when present: a retry of
        *one* pipelined request must never re-dial the socket out from
        under every other in-flight request, so the transport itself
        decides whether the connection is actually dead (re-dial, all
        pending already failed) or healthy (no-op — the failure was
        request-level, not connection-level).
        """
        guarded = getattr(self._inner, "reconnect_if_broken", None)
        if guarded is not None:
            try:
                if guarded():
                    self._record("reconnects")
                    self._tracer.add_event("rpc.reconnect")
                    self._recorder.record("rpc.reconnect")
            except RPCTransportError:
                pass
            return
        reconnect = getattr(self._inner, "reconnect", None)
        if reconnect is None:
            return
        try:
            reconnect()
            self._record("reconnects")
            self._tracer.add_event("rpc.reconnect")
            self._recorder.record("rpc.reconnect")
        except RPCTransportError:
            pass

    def _breaker_failure(self) -> None:
        if self.breaker is None:
            return
        trips_before = self.breaker.trips
        self.breaker.record_failure()
        if self.breaker.trips > trips_before:
            self._record("breaker_trips")
            self._tracer.add_event(
                "breaker.trip", failures=self.breaker.failures
            )
            self._recorder.record(
                "breaker.open", failures=self.breaker.failures
            )

    def request(self, payload: bytes) -> bytes:
        policy = self.retry
        start = self._clock()
        last_exc: BaseException | None = None
        for attempt in range(policy.max_attempts):
            if self.breaker is not None and not self.breaker.allow():
                self._reject_open(last_exc)
            self._record("attempts")
            wire = payload
            if self._propagate_deadline and policy.deadline is not None:
                # Each attempt ships what is *left* of the budget, so the
                # server stops spending effort exactly when we stop waiting.
                wire = inject_deadline(
                    payload, policy.deadline - (self._clock() - start)
                )
            try:
                response = self._inner.request(wire)
                shed = sniff_overload(response)
                if shed is not None:
                    # A shed reply is a successful *exchange* but a failed
                    # *request*: surface it here so the normal retry path
                    # below handles it (it is an RPCTransportError).
                    raise shed
            except self._retryable as exc:
                last_exc = exc
                overloaded = isinstance(exc, ServerOverloadedError)
                if overloaded:
                    # The server is alive and explicitly asking for backoff:
                    # don't count it against the breaker like a dead link.
                    self._record("overloads")
                    self._tracer.add_event(
                        "rpc.overloaded",
                        attempt=attempt + 1,
                        retry_after=exc.retry_after or 0.0,
                    )
                    self._recorder.record(
                        "rpc.overloaded", attempt=attempt + 1,
                        retry_after=exc.retry_after or 0.0,
                    )
                else:
                    self._record("failures")
                    self._breaker_failure()
                if attempt + 1 >= policy.max_attempts:
                    break
                delay = policy.backoff(attempt, self._rng)
                if overloaded and exc.retry_after:
                    delay = max(delay, exc.retry_after)
                if (
                    policy.deadline is not None
                    and (self._clock() - start) + delay > policy.deadline
                ):
                    self._record("timeouts")
                    self._tracer.add_event(
                        "rpc.deadline_exceeded", attempts=attempt + 1
                    )
                    self._recorder.record(
                        "deadline.expired", attempts=attempt + 1,
                        error=f"{type(exc).__name__}: {exc}",
                    )
                    raise RPCTimeoutError(
                        f"deadline of {policy.deadline}s exhausted after "
                        f"{attempt + 1} attempt(s): {exc}"
                    ) from exc
                self._record("retries")
                self._tracer.add_event(
                    "rpc.retry", attempt=attempt + 1, delay=delay,
                    cause=f"{type(exc).__name__}: {exc}",
                )
                self._recorder.record(
                    "rpc.retry", attempt=attempt + 1, delay=delay,
                    cause=f"{type(exc).__name__}: {exc}",
                )
                self._sleep(delay)
                if not overloaded:
                    # The connection served the shed reply fine; only real
                    # transport faults warrant a re-dial.
                    self._reconnect_inner()
            else:
                elapsed = self._clock() - start
                if policy.deadline is not None and elapsed > policy.deadline:
                    # The reply arrived, but past the budget: the caller
                    # has already been failed over; treat as a timeout so
                    # behaviour does not depend on fault timing.
                    self._record("timeouts")
                    self._breaker_failure()
                    self._tracer.add_event(
                        "rpc.deadline_exceeded", elapsed=elapsed
                    )
                    self._recorder.record("deadline.expired", elapsed=elapsed)
                    raise RPCTimeoutError(
                        f"response arrived after {elapsed:.3g}s, "
                        f"deadline was {policy.deadline}s"
                    )
                self._record("successes")
                if self.breaker is not None:
                    self.breaker.record_success()
                return response
        assert last_exc is not None
        raise last_exc

    def send(self, payload: bytes) -> None:
        """One-way send (NOTIFY): no response to retry on, so pass through.

        The breaker still gates it — a known-dead endpoint should not eat
        writes silently.
        """
        if self.breaker is not None and not self.breaker.allow():
            self._reject_open(None)
        self._inner.send(payload)

    def close(self) -> None:
        self._inner.close()
