"""rpclib-style RPC client over any :class:`~repro.rpc.transport.Transport`."""

from __future__ import annotations

import itertools
from typing import Any

from repro.errors import RPCError, RPCRemoteError
from repro.rpc.msgpack import pack, unpack
from repro.rpc.transport import InProcessTransport, TCPTransport, Transport

__all__ = ["RPCClient"]

_REQUEST = 0
_RESPONSE = 1
_NOTIFY = 2


class RPCClient:
    """Issues msgpack-rpc calls through a transport.

    Construct with a transport, or use :meth:`connect_tcp` /
    :meth:`in_process` conveniences.
    """

    def __init__(self, transport: Transport):
        self._transport = transport
        self._msgid = itertools.count(1)

    @classmethod
    def connect_tcp(cls, host: str, port: int, timeout: float | None = 30.0) -> "RPCClient":
        return cls(TCPTransport(host, port, timeout=timeout))

    @classmethod
    def in_process(cls, server) -> "RPCClient":
        """Client wired straight to an :class:`~repro.rpc.server.RPCServer`."""
        return cls(InProcessTransport(server.dispatch))

    # ------------------------------------------------------------------
    def call(self, method: str, *params: Any) -> Any:
        """Invoke a remote method and return its result.

        Raises
        ------
        RPCRemoteError
            If the remote handler raised; carries the remote error line
            (``ExcType: message`` — the server keeps the traceback).
        RPCError
            On protocol violations (bad frame shape, msgid mismatch).
        """
        msgid = next(self._msgid)
        payload = pack([_REQUEST, msgid, method, list(params)])
        raw = self._transport.request(payload)
        message = unpack(raw)
        if (
            not isinstance(message, list)
            or len(message) != 4
            or message[0] != _RESPONSE
        ):
            raise RPCError(f"invalid rpc response: {message!r}")
        _, rid, error, result = message
        if rid != msgid:
            raise RPCError(f"response msgid {rid} != request msgid {msgid}")
        if error is not None:
            raise RPCRemoteError(method, str(error))
        return result

    def notify(self, method: str, *params: Any) -> None:
        """Fire-and-forget call: per msgpack-rpc, no response frame exists."""
        payload = pack([_NOTIFY, method, list(params)])
        self._transport.send(payload)

    def close(self) -> None:
        self._transport.close()

    def __enter__(self) -> "RPCClient":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
