"""rpclib-style RPC client over any :class:`~repro.rpc.transport.Transport`.

Tracing: constructed with a real :class:`~repro.obs.trace.Tracer`, every
:meth:`RPCClient.call` runs inside an ``rpc.call`` span and appends the
span's trace context as an optional fifth request-frame element,
``[0, msgid, method, params, {"trace_id", "span_id"}]``.  A trace-aware
server opens child spans under that context and returns their summaries
as an optional fifth response element, which the client grafts into its
own tracer — one tree across both processes.  With the default
:data:`~repro.obs.trace.NULL_TRACER` the frames are byte-identical to
the plain 4-element protocol, so an untraced client works against any
server, old or new.
"""

from __future__ import annotations

import itertools
import re
from concurrent.futures import Future
from concurrent.futures import TimeoutError as FutureTimeoutError
from typing import Any

from repro.errors import (
    CircuitOpenError,
    DeadlineExpiredError,
    IntegrityError,
    RPCError,
    RPCRemoteError,
    RPCTimeoutError,
    RPCTransportError,
    ServerOverloadedError,
)
from repro.obs.trace import NULL_TRACER
from repro.rpc.msgpack import pack, unpack
from repro.rpc.transport import InProcessTransport, TCPTransport, Transport

__all__ = ["RPCClient", "PendingCall"]

_REQUEST = 0
_RESPONSE = 1
_NOTIFY = 2

_RETRY_AFTER_RE = re.compile(r"retry_after=([0-9]*\.?[0-9]+(?:[eE][+-]?[0-9]+)?)")


def _raise_remote(method: str, error_line: str) -> None:
    """Map well-known remote error lines back to typed local exceptions.

    The wire carries only ``ExcType: message`` strings; for the error
    types the resilience layer must *react* to (shed → retry with
    backoff, expired deadline → timeout semantics, corruption → re-read)
    the type is reconstructed here.  Everything else stays the generic
    :class:`RPCRemoteError` it always was.
    """
    if error_line.startswith("ServerOverloadedError"):
        match = _RETRY_AFTER_RE.search(error_line)
        raise ServerOverloadedError(
            f"remote call {method!r} shed: {error_line}",
            retry_after=float(match.group(1)) if match else None,
        )
    if error_line.startswith("DeadlineExpiredError"):
        raise DeadlineExpiredError(f"remote call {method!r}: {error_line}")
    if error_line.startswith("IntegrityError"):
        raise IntegrityError(f"remote call {method!r}: {error_line}")
    # A proxy tier (the edge cache) reports *its* upstream transport
    # failures over the error channel; reconstructing the transport types
    # lets a client's fallback ladder react to a dead storage site behind
    # an otherwise-healthy edge exactly as it would to a dead direct link.
    if error_line.startswith("CircuitOpenError"):
        raise CircuitOpenError(f"remote call {method!r}: {error_line}")
    if error_line.startswith("RPCTimeoutError"):
        raise RPCTimeoutError(f"remote call {method!r}: {error_line}")
    if error_line.startswith("RPCTransportError"):
        raise RPCTransportError(f"remote call {method!r}: {error_line}")
    raise RPCRemoteError(method, error_line)


class RPCClient:
    """Issues msgpack-rpc calls through a transport.

    Construct with a transport, or use :meth:`connect_tcp` /
    :meth:`in_process` conveniences.  Pass ``tracer`` (a
    :class:`~repro.obs.trace.Tracer`) to record an ``rpc.call`` span per
    call and propagate trace context to the server.
    """

    def __init__(self, transport: Transport, tracer=None, tenant: str | None = None,
                 zero_copy: bool = False):
        self._transport = transport
        self._msgid = itertools.count(1)
        self.tracer = tracer if tracer is not None else NULL_TRACER
        #: optional fair-queue identity stamped into every request's ctx
        #: map (see :mod:`repro.rpc.fairshare`); ``None`` keeps frames
        #: byte-identical to the classic protocol.
        self.tenant = tenant
        #: decode response bin payloads as :class:`memoryview` slices into
        #: the reply frame (no per-payload copy; ``np.frombuffer`` then
        #: views the frame directly).  Opt-in: callers comparing payloads
        #: with ``isinstance(x, bytes)`` should leave this off.
        self.zero_copy = zero_copy

    @classmethod
    def connect_tcp(cls, host: str, port: int, timeout: float | None = 30.0,
                    tracer=None) -> "RPCClient":
        return cls(TCPTransport(host, port, timeout=timeout), tracer=tracer)

    @classmethod
    def connect_mux(cls, host: str, port: int, timeout: float | None = 30.0,
                    tracer=None, tenant: str | None = None) -> "RPCClient":
        """Client over one multiplexed connection: calls may pipeline.

        Use :meth:`call` as usual (also from many threads at once — each
        caller waits only on its own reply) or :meth:`call_async` to
        pipeline from a single thread.
        """
        from repro.rpc.mux import MuxTransport

        return cls(MuxTransport(host, port, timeout=timeout), tracer=tracer,
                   tenant=tenant)

    @classmethod
    def in_process(cls, server, tracer=None) -> "RPCClient":
        """Client wired straight to an :class:`~repro.rpc.server.RPCServer`."""
        return cls(InProcessTransport(server.dispatch), tracer=tracer)

    # ------------------------------------------------------------------
    def _base_ctx(self) -> dict | None:
        return {"tenant": self.tenant} if self.tenant else None

    def call(self, method: str, *params: Any, ctx_extra: dict | None = None) -> Any:
        """Invoke a remote method and return its result.

        ``ctx_extra`` merges additional keys into the request's optional
        ctx map (the replication layer tags hedge/failover attempts this
        way so servers can count them).  ``None`` — the default — leaves
        frames byte-identical to the classic protocol.

        Raises
        ------
        RPCRemoteError
            If the remote handler raised; carries the remote error line
            (``ExcType: message`` — the server keeps the traceback).
        RPCError
            On protocol violations (bad frame shape, msgid mismatch).
        """
        if not self.tracer:
            ctx = self._base_ctx()
            if ctx_extra:
                ctx = dict(ctx or {}, **ctx_extra)
            return self._roundtrip(
                next(self._msgid), method, list(params), ctx=ctx
            )
        with self.tracer.span("rpc.call", method=method) as span:
            ctx = dict(self.tracer.inject() or {})
            if self.tenant:
                ctx["tenant"] = self.tenant
            if ctx_extra:
                ctx.update(ctx_extra)
            result = self._roundtrip(
                next(self._msgid), method, list(params), ctx=ctx or None,
                anchor=span,
            )
        return result

    def call_async(self, method: str, *params: Any,
                   ctx_extra: dict | None = None) -> "PendingCall":
        """Pipeline a call: returns a :class:`PendingCall` immediately.

        Over a multiplexing transport (one with ``submit``) the request
        is written and the caller is free to issue more before collecting
        any result — responses are rehydrated by correlation id whatever
        order the server returns them in.  Over a plain blocking
        transport the call degrades gracefully: it completes synchronously
        and the :class:`PendingCall` is born resolved, so calling code
        does not need to know which transport it got.

        The ctx map carries the same keys :meth:`call` would send: the
        active trace context (so a handler that re-forwards work while
        pipelining keeps the span tree connected — async calls used to
        drop it), the tenant, and any ``ctx_extra`` overrides.
        """
        msgid = next(self._msgid)
        frame = [_REQUEST, msgid, method, list(params)]
        ctx = dict(self.tracer.inject() or {}) if self.tracer else {}
        if self.tenant:
            ctx["tenant"] = self.tenant
        if ctx_extra:
            ctx.update(ctx_extra)
        if ctx:
            frame.append(ctx)
        payload = pack(frame)
        submit = getattr(self._transport, "submit", None)
        if submit is not None:
            future = submit(payload)
        else:
            future = Future()
            try:
                future.set_result(self._transport.request(payload))
            except Exception as exc:
                future.set_exception(exc)
        return PendingCall(self, msgid, method, future)

    def _roundtrip(self, msgid: int, method: str, params: list,
                   ctx: dict | None = None, anchor=None) -> Any:
        frame = [_REQUEST, msgid, method, params]
        if ctx is not None:
            frame.append(ctx)
        payload = pack(frame)
        raw = self._transport.request(payload)
        return self._decode(raw, msgid, method, anchor=anchor)

    def _decode(self, raw: bytes, msgid: int, method: str, anchor=None) -> Any:
        message = unpack(raw, zero_copy=self.zero_copy)
        if (
            not isinstance(message, list)
            or len(message) not in (4, 5)
            or message[0] != _RESPONSE
        ):
            raise RPCError(f"invalid rpc response: {message!r}")
        rid, error, result = message[1], message[2], message[3]
        if rid != msgid:
            raise RPCError(f"response msgid {rid} != request msgid {msgid}")
        if len(message) == 5 and anchor is not None:
            # The server's span summaries ride back as the 5th element.
            self.tracer.adopt(message[4], anchor=anchor)
        if error is not None:
            _raise_remote(method, str(error))
        return result

    def pipeline(self, calls: list) -> list:
        """Issue ``[(method, *params), ...]`` back-to-back, gather in order.

        All requests go out before any result is awaited, so over a
        multiplexed transport N calls cost roughly one round trip plus
        server time instead of N round trips.
        """
        pending = [self.call_async(call[0], *call[1:]) for call in calls]
        return [p.result() for p in pending]

    def notify(self, method: str, *params: Any) -> None:
        """Fire-and-forget call: per msgpack-rpc, no response frame exists."""
        payload = pack([_NOTIFY, method, list(params)])
        self._transport.send(payload)

    def close(self) -> None:
        self._transport.close()

    def __enter__(self) -> "RPCClient":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class PendingCall:
    """A pipelined call in flight; :meth:`result` blocks for *this* reply.

    Results are rehydrated by correlation id, so pending calls may be
    collected in any order regardless of the order responses arrived.
    """

    __slots__ = ("_client", "msgid", "method", "_future")

    def __init__(self, client: RPCClient, msgid: int, method: str, future: Future):
        self._client = client
        self.msgid = msgid
        self.method = method
        self._future = future

    def done(self) -> bool:
        return self._future.done()

    def result(self, timeout: float | None = None) -> Any:
        """Decoded result of this call; raises what :meth:`RPCClient.call`
        would have raised for the same reply."""
        try:
            raw = self._future.result(timeout=timeout)
        except FutureTimeoutError:
            raise RPCTimeoutError(
                f"no response for pipelined call {self.method!r} "
                f"(msgid {self.msgid}) within {timeout}s"
            ) from None
        return self._client._decode(raw, self.msgid, self.method)
