"""From-scratch MessagePack encoder/decoder.

Implements the complete MessagePack specification
(https://github.com/msgpack/msgpack/blob/master/spec.md):

========================  =========================================
Python type               wire families
========================  =========================================
``None``                  nil
``bool``                  true / false
``int``                   fixint, uint8..uint64, int8..int64
``float``                 float64 (decoder also reads float32)
``str``                   fixstr, str8/16/32
``bytes`` / bytearray     bin8/16/32
``list`` / ``tuple``      fixarray, array16/32
``dict``                  fixmap, map16/32
:class:`ExtType`          fixext1/2/4/8/16, ext8/16/32
========================  =========================================

Encoding always picks the smallest representation, as the spec recommends.
The decoder is strict: truncated input, trailing garbage (in
:func:`unpack`), invalid UTF-8 in str payloads, and unknown first bytes
all raise :class:`~repro.errors.FormatError`.

Large binary payloads (the NDP wire format's array buffers) ride in
bin32, so NumPy buffers round-trip without any per-element cost.
"""

from __future__ import annotations

import struct
from typing import Any, NamedTuple

from repro.errors import FormatError

__all__ = ["pack", "unpack", "Unpacker", "ExtType", "Timestamp"]


class ExtType(NamedTuple):
    """A MessagePack extension value: an application type code plus bytes."""

    code: int
    data: bytes


class Timestamp(NamedTuple):
    """The msgpack timestamp extension (type -1): seconds + nanoseconds.

    The spec's three encodings are all supported: 32-bit (whole seconds in
    uint32 range), 64-bit (34-bit seconds + 30-bit nanoseconds), and
    96-bit (full int64 seconds + uint32 nanoseconds).
    """

    seconds: int
    nanoseconds: int = 0

    def encode(self) -> bytes:
        if not 0 <= self.nanoseconds < 1_000_000_000:
            raise FormatError(
                f"nanoseconds must be in [0, 1e9), got {self.nanoseconds}"
            )
        if self.nanoseconds == 0 and 0 <= self.seconds <= 0xFFFFFFFF:
            return self.seconds.to_bytes(4, "big")
        if 0 <= self.seconds < (1 << 34):
            packed = (self.nanoseconds << 34) | self.seconds
            return packed.to_bytes(8, "big")
        if not -(1 << 63) <= self.seconds < (1 << 63):
            raise FormatError(f"seconds {self.seconds} out of int64 range")
        return self.nanoseconds.to_bytes(4, "big") + self.seconds.to_bytes(
            8, "big", signed=True
        )

    @classmethod
    def decode(cls, data: bytes) -> "Timestamp":
        if len(data) == 4:
            return cls(int.from_bytes(data, "big"), 0)
        if len(data) == 8:
            packed = int.from_bytes(data, "big")
            return cls(packed & ((1 << 34) - 1), packed >> 34)
        if len(data) == 12:
            return cls(
                int.from_bytes(data[4:], "big", signed=True),
                int.from_bytes(data[:4], "big"),
            )
        raise FormatError(f"timestamp ext payload must be 4/8/12 bytes, got {len(data)}")


#: The spec-reserved extension type code for timestamps.
_TIMESTAMP_EXT = -1


_pack_into = struct.pack

# ---------------------------------------------------------------------------
# Encoder
# ---------------------------------------------------------------------------


def _pack_int(out: bytearray, v: int) -> None:
    if 0 <= v <= 0x7F:
        out.append(v)
    elif -32 <= v < 0:
        out.append(v & 0xFF)
    elif 0 < v:
        if v <= 0xFF:
            out += b"\xcc" + v.to_bytes(1, "big")
        elif v <= 0xFFFF:
            out += b"\xcd" + v.to_bytes(2, "big")
        elif v <= 0xFFFFFFFF:
            out += b"\xce" + v.to_bytes(4, "big")
        elif v <= 0xFFFFFFFFFFFFFFFF:
            out += b"\xcf" + v.to_bytes(8, "big")
        else:
            raise FormatError(f"integer {v} out of uint64 range")
    else:
        if v >= -0x80:
            out += b"\xd0" + v.to_bytes(1, "big", signed=True)
        elif v >= -0x8000:
            out += b"\xd1" + v.to_bytes(2, "big", signed=True)
        elif v >= -0x80000000:
            out += b"\xd2" + v.to_bytes(4, "big", signed=True)
        elif v >= -0x8000000000000000:
            out += b"\xd3" + v.to_bytes(8, "big", signed=True)
        else:
            raise FormatError(f"integer {v} out of int64 range")


def _pack_str(out: bytearray, v: str) -> None:
    data = v.encode("utf-8")
    n = len(data)
    if n <= 31:
        out.append(0xA0 | n)
    elif n <= 0xFF:
        out += b"\xd9" + n.to_bytes(1, "big")
    elif n <= 0xFFFF:
        out += b"\xda" + n.to_bytes(2, "big")
    elif n <= 0xFFFFFFFF:
        out += b"\xdb" + n.to_bytes(4, "big")
    else:
        raise FormatError("string too long for str32")
    out += data


def _pack_bin(out: bytearray, v) -> None:
    if isinstance(v, memoryview):
        # Zero-copy framing: flatten a contiguous view to a byte view
        # and append it straight into the output buffer — no intermediate
        # ``bytes(v)`` materialization.  Non-contiguous views can't be
        # appended as-is, so they pay one gather copy.
        if v.contiguous:
            if v.format != "B" or v.ndim != 1:
                v = v.cast("B")
        else:
            v = v.tobytes()
    n = len(v)
    if n <= 0xFF:
        out += b"\xc4" + n.to_bytes(1, "big")
    elif n <= 0xFFFF:
        out += b"\xc5" + n.to_bytes(2, "big")
    elif n <= 0xFFFFFFFF:
        out += b"\xc6" + n.to_bytes(4, "big")
    else:
        raise FormatError("bytes too long for bin32")
    out += v


def _pack_ext(out: bytearray, v: ExtType) -> None:
    if not -128 <= v.code <= 127:
        raise FormatError(f"ext code {v.code} out of int8 range")
    data = bytes(v.data)
    n = len(data)
    code = v.code & 0xFF
    fixed = {1: 0xD4, 2: 0xD5, 4: 0xD6, 8: 0xD7, 16: 0xD8}
    if n in fixed:
        out.append(fixed[n])
        out.append(code)
    elif n <= 0xFF:
        out += b"\xc7" + n.to_bytes(1, "big")
        out.append(code)
    elif n <= 0xFFFF:
        out += b"\xc8" + n.to_bytes(2, "big")
        out.append(code)
    elif n <= 0xFFFFFFFF:
        out += b"\xc9" + n.to_bytes(4, "big")
        out.append(code)
    else:
        raise FormatError("ext payload too long for ext32")
    out += data


def _pack_any(out: bytearray, v: Any) -> None:
    if v is None:
        out.append(0xC0)
    elif v is True:
        out.append(0xC3)
    elif v is False:
        out.append(0xC2)
    elif isinstance(v, int):
        _pack_int(out, v)
    elif isinstance(v, float):
        out += b"\xcb" + _pack_into(">d", v)
    elif isinstance(v, str):
        _pack_str(out, v)
    elif isinstance(v, (bytes, bytearray, memoryview)):
        _pack_bin(out, v)
    elif isinstance(v, Timestamp):
        _pack_ext(out, ExtType(_TIMESTAMP_EXT, v.encode()))
    elif isinstance(v, ExtType):
        _pack_ext(out, v)
    elif isinstance(v, (list, tuple)):
        n = len(v)
        if n <= 15:
            out.append(0x90 | n)
        elif n <= 0xFFFF:
            out += b"\xdc" + n.to_bytes(2, "big")
        elif n <= 0xFFFFFFFF:
            out += b"\xdd" + n.to_bytes(4, "big")
        else:
            raise FormatError("array too long for array32")
        for item in v:
            _pack_any(out, item)
    elif isinstance(v, dict):
        n = len(v)
        if n <= 15:
            out.append(0x80 | n)
        elif n <= 0xFFFF:
            out += b"\xde" + n.to_bytes(2, "big")
        elif n <= 0xFFFFFFFF:
            out += b"\xdf" + n.to_bytes(4, "big")
        else:
            raise FormatError("map too long for map32")
        for key, item in v.items():
            _pack_any(out, key)
            _pack_any(out, item)
    else:
        raise FormatError(
            f"type {type(v).__name__} is not MessagePack-serializable"
        )


def pack(value: Any) -> bytes:
    """Serialize ``value`` to MessagePack bytes."""
    out = bytearray()
    _pack_any(out, value)
    return bytes(out)


# ---------------------------------------------------------------------------
# Decoder
# ---------------------------------------------------------------------------


class Unpacker:
    """Streaming MessagePack decoder over a bytes-like buffer.

    Call :meth:`unpack_one` repeatedly to read consecutive values;
    :attr:`offset` tracks the cursor.

    With ``zero_copy=True`` bin payloads are returned as
    :class:`memoryview` slices into the *input* buffer instead of copied
    ``bytes``: ``np.frombuffer`` over such a slice views the original
    frame with no per-payload copy.  The views keep the input buffer
    alive; everything else (strs, ints, ext payloads) still decodes to
    ordinary owned objects.  Off by default — bin payloads decode to
    ``bytes``, exactly as before.
    """

    #: Guard against pathological nesting in untrusted input.
    MAX_DEPTH = 256

    def __init__(self, data, zero_copy: bool = False):
        self.zero_copy = bool(zero_copy)
        if self.zero_copy:
            mv = data if isinstance(data, memoryview) else memoryview(data)
            if mv.format != "B" or mv.ndim != 1:
                mv = mv.cast("B")
            self._data = mv
        else:
            self._data = bytes(data)
        self.offset = 0

    # -- low-level reads ------------------------------------------------
    def _need(self, n: int) -> None:
        if self.offset + n > len(self._data):
            raise FormatError(
                f"truncated MessagePack data: need {n} bytes at offset "
                f"{self.offset}, have {len(self._data) - self.offset}"
            )

    def _take(self, n: int):
        # Slicing bytes copies; slicing the zero-copy memoryview does not.
        self._need(n)
        chunk = self._data[self.offset : self.offset + n]
        self.offset += n
        return chunk

    def _uint(self, n: int) -> int:
        return int.from_bytes(self._take(n), "big")

    def _int(self, n: int) -> int:
        return int.from_bytes(self._take(n), "big", signed=True)

    def _str(self, n: int) -> str:
        raw = self._take(n)
        try:
            # str(buffer, encoding) decodes bytes and memoryview alike.
            return str(raw, "utf-8")
        except UnicodeDecodeError as exc:
            raise FormatError(f"invalid UTF-8 in str payload: {exc}") from exc

    # -- value decoding ---------------------------------------------------
    def unpack_one(self, _depth: int = 0) -> Any:
        """Decode and return the next value."""
        if _depth > self.MAX_DEPTH:
            raise FormatError("MessagePack nesting exceeds MAX_DEPTH")
        first = self._take(1)[0]
        # fix families
        if first <= 0x7F:
            return first
        if first >= 0xE0:
            return first - 0x100
        if 0x80 <= first <= 0x8F:
            return self._map(first & 0x0F, _depth)
        if 0x90 <= first <= 0x9F:
            return self._array(first & 0x0F, _depth)
        if 0xA0 <= first <= 0xBF:
            return self._str(first & 0x1F)

        if first == 0xC0:
            return None
        if first == 0xC2:
            return False
        if first == 0xC3:
            return True
        if first == 0xC4:
            return self._take(self._uint(1))
        if first == 0xC5:
            return self._take(self._uint(2))
        if first == 0xC6:
            return self._take(self._uint(4))
        if first == 0xC7:
            n = self._uint(1)
            return self._ext(n)
        if first == 0xC8:
            n = self._uint(2)
            return self._ext(n)
        if first == 0xC9:
            n = self._uint(4)
            return self._ext(n)
        if first == 0xCA:
            return struct.unpack(">f", self._take(4))[0]
        if first == 0xCB:
            return struct.unpack(">d", self._take(8))[0]
        if first == 0xCC:
            return self._uint(1)
        if first == 0xCD:
            return self._uint(2)
        if first == 0xCE:
            return self._uint(4)
        if first == 0xCF:
            return self._uint(8)
        if first == 0xD0:
            return self._int(1)
        if first == 0xD1:
            return self._int(2)
        if first == 0xD2:
            return self._int(4)
        if first == 0xD3:
            return self._int(8)
        if first in (0xD4, 0xD5, 0xD6, 0xD7, 0xD8):
            n = 1 << (first - 0xD4)
            return self._ext(n)
        if first == 0xD9:
            return self._str(self._uint(1))
        if first == 0xDA:
            return self._str(self._uint(2))
        if first == 0xDB:
            return self._str(self._uint(4))
        if first == 0xDC:
            return self._array(self._uint(2), _depth)
        if first == 0xDD:
            return self._array(self._uint(4), _depth)
        if first == 0xDE:
            return self._map(self._uint(2), _depth)
        if first == 0xDF:
            return self._map(self._uint(4), _depth)
        raise FormatError(f"invalid MessagePack first byte 0x{first:02x}")

    def _ext(self, n: int):
        code = self._int(1)
        # Ext payloads are tiny and ride in hashable NamedTuples: always
        # own them, even in zero-copy mode.
        data = bytes(self._take(n))
        if code == _TIMESTAMP_EXT:
            return Timestamp.decode(data)
        return ExtType(code, data)

    def _array(self, n: int, depth: int) -> list:
        return [self.unpack_one(depth + 1) for _ in range(n)]

    def _map(self, n: int, depth: int) -> dict:
        out = {}
        for _ in range(n):
            key = self.unpack_one(depth + 1)
            try:
                out[key] = self.unpack_one(depth + 1)
            except TypeError as exc:
                raise FormatError(f"unhashable map key {key!r}") from exc
        return out

    @property
    def exhausted(self) -> bool:
        return self.offset >= len(self._data)


def unpack(data, zero_copy: bool = False) -> Any:
    """Deserialize exactly one value; trailing bytes are an error.

    ``zero_copy=True`` returns bin payloads as :class:`memoryview` slices
    of ``data`` (see :class:`Unpacker`).
    """
    up = Unpacker(data, zero_copy=zero_copy)
    value = up.unpack_one()
    if not up.exhausted:
        raise FormatError(
            f"{len(data) - up.offset} trailing bytes after MessagePack value"
        )
    return value
