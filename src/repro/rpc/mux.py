"""Multiplexed serving core: pipelined client transport + event-loop server.

The threaded :class:`~repro.rpc.transport.TCPServerTransport` is
thread-per-connection with one request in flight per socket — fine for a
handful of viz clients, a bottleneck for the million-user front door the
ROADMAP aims at.  This module replaces both ends:

* :class:`MuxTransport` — a client transport that pipelines many requests
  over **one** TCP connection.  The correlation id is the msgpack-rpc
  ``msgid`` already inside every request frame, so the wire format is
  unchanged: a classic client's 4/5-element frames work byte-identically
  against the new server, and responses may return **out of order** — the
  transport rehydrates them by id.
* :class:`AsyncServerTransport` — a ``selectors``-based event-loop server:
  one I/O thread owns every socket (non-blocking reads, incremental frame
  parsing, non-blocking writes), while dispatch runs on a scheduler's
  worker pool (by default a :class:`~repro.rpc.fairshare.FairScheduler`,
  which adds per-tenant weighted fair queuing).  Responses are written
  back as each dispatch completes, so one slow request never blocks the
  pipeline behind it.

Retry isolation: a multiplexed connection is *shared*.  A resilient
wrapper retrying one failed request must not re-dial the socket out from
under every other in-flight request, so :class:`MuxTransport` exposes
:meth:`MuxTransport.reconnect_if_broken` instead of the unconditional
``reconnect()`` contract — it re-dials only when the connection is
actually dead (at which point every pending future has already failed).

Lifecycle mirrors the threaded listener exactly (``host``/``port``/
``draining``/``refused``/``stop(drain_timeout)``), so ``repro serve`` and
:meth:`~repro.core.ndp_server.NDPServer.health` treat both cores alike.
"""

from __future__ import annotations

import collections
import selectors
import socket
import struct
import threading
import time
from concurrent.futures import Future
from concurrent.futures import TimeoutError as FutureTimeoutError

from repro.errors import FormatError, RPCError, RPCTimeoutError, RPCTransportError
from repro.rpc.transport import MAX_FRAME, FrameBuffer, Transport, write_frame

__all__ = ["peek_frame", "MuxTransport", "AsyncServerTransport"]

_LEN = struct.Struct(">I")
_REQUEST = 0
_RESPONSE = 1
_NOTIFY = 2


def peek_frame(payload: bytes) -> tuple[int, int | None]:
    """Read ``(type, msgid)`` from a packed rpc frame without decoding it.

    Parses only the msgpack array header and the first one/two integer
    elements — O(1) regardless of payload size, which is what lets the
    demultiplexer route multi-megabyte ``read_array`` responses without
    decoding them on the reader thread.  NOTIFY frames have no msgid and
    return ``(2, None)``.  Raises :class:`~repro.errors.FormatError` for
    anything that is not a well-formed rpc frame prefix.
    """
    try:
        b0 = payload[0]
        if 0x90 <= b0 <= 0x9F:
            offset = 1
        elif b0 == 0xDC:  # array16: legal even for small frames
            offset = 3
        else:
            raise FormatError(f"not an rpc frame (first byte 0x{b0:02x})")
        mtype = payload[offset]
        if mtype not in (_REQUEST, _RESPONSE, _NOTIFY):
            raise FormatError(f"unknown rpc frame type {mtype}")
        offset += 1
        if mtype == _NOTIFY:
            return (_NOTIFY, None)
        b = payload[offset]
        offset += 1
        if b <= 0x7F:
            return (mtype, b)
        widths = {0xCC: 1, 0xCD: 2, 0xCE: 4, 0xCF: 8}
        if b not in widths:
            raise FormatError(f"msgid is not an unsigned int (0x{b:02x})")
        n = widths[b]
        return (mtype, int.from_bytes(payload[offset : offset + n], "big"))
    except IndexError as exc:
        raise FormatError("truncated rpc frame prefix") from exc


class MuxTransport(Transport):
    """Pipelined client transport: many requests in flight on one socket.

    :meth:`submit` writes the frame and returns a
    :class:`~concurrent.futures.Future` resolving to the raw response
    payload; a background reader thread demultiplexes responses by msgid,
    so callers — many threads sharing one transport, or one thread
    pipelining via :meth:`~repro.rpc.client.RPCClient.call_async` — wait
    only on their own reply.  :meth:`request` keeps the blocking
    :class:`~repro.rpc.transport.Transport` contract (submit + wait), so
    every existing wrapper (resilient, simulated, pooled) composes.

    Connection death fails **all** pending futures with
    :class:`~repro.errors.RPCTransportError`; the next :meth:`submit`
    auto-redials (each dial bumps :attr:`generation`, which the retry
    isolation test pins down).
    """

    def __init__(self, host: str, port: int, timeout: float | None = 30.0,
                 lazy: bool = False):
        self._host = host
        self._port = port
        self._timeout = timeout
        self._lock = threading.Lock()      # connection + pending-map state
        self._wlock = threading.Lock()     # serializes frame writes
        self._pending: dict[int, tuple[int, Future]] = {}
        self._sock: socket.socket | None = None
        self._reader: threading.Thread | None = None
        self._dead = False
        self._closing = False
        #: dial count; a stable value across a retry proves no re-dial
        self.generation = 0
        if not lazy:
            with self._lock:
                self._redial_locked()

    # -- connection management -----------------------------------------
    def _redial_locked(self) -> None:
        if self._sock is not None:
            try:
                self._sock.close()
            except OSError:
                pass
        try:
            sock = socket.create_connection(
                (self._host, self._port), timeout=self._timeout
            )
        except socket.timeout as exc:
            raise RPCTimeoutError(
                f"connect to {self._host}:{self._port} timed out "
                f"after {self._timeout}s"
            ) from exc
        except OSError as exc:
            raise RPCTransportError(
                f"cannot connect to {self._host}:{self._port}: {exc}"
            ) from exc
        sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        # The reader blocks in recv indefinitely; request timeouts are
        # enforced on the waiting future, and close() unblocks the read.
        sock.settimeout(None)
        self._sock = sock
        self._dead = False
        self.generation += 1
        self._reader = threading.Thread(
            target=self._read_loop, args=(sock, self.generation), daemon=True,
            name=f"mux-reader-{self._host}:{self._port}",
        )
        self._reader.start()

    def _ensure_connected_locked(self) -> tuple[socket.socket, int]:
        if self._sock is None or self._dead:
            self._redial_locked()
        return self._sock, self.generation

    def _read_loop(self, sock: socket.socket, generation: int) -> None:
        try:
            while True:
                frame = _read_frame_blocking(sock)
                try:
                    mtype, msgid = peek_frame(frame)
                except FormatError:
                    raise RPCTransportError(
                        "undecodable response frame on multiplexed connection"
                    )
                if mtype != _RESPONSE or msgid is None:
                    continue  # server never sends these; tolerate garbage
                with self._lock:
                    entry = self._pending.pop(msgid, None)
                    if entry is not None and entry[0] != generation:
                        # A request from a different dial: not ours to answer.
                        self._pending[msgid] = entry
                        entry = None
                if entry is not None:
                    entry[1].set_result(frame)
        except (RPCTransportError, OSError) as exc:
            self._connection_died(sock, generation, exc)

    def _connection_died(self, sock, generation: int, exc: Exception) -> None:
        with self._lock:
            if self._sock is sock:
                self._dead = True
            closing = self._closing
            doomed = [
                (msgid, fut) for msgid, (gen, fut) in self._pending.items()
                if gen == generation
            ]
            for msgid, _ in doomed:
                del self._pending[msgid]
        message = (
            "multiplexed transport closed" if closing
            else f"multiplexed connection lost: {exc}"
        )
        for _, fut in doomed:
            fut.set_exception(RPCTransportError(message))

    # -- request paths ---------------------------------------------------
    def submit(self, payload: bytes) -> Future:
        """Pipeline one request; resolves to the raw response payload."""
        _, fut = self._submit(payload)
        return fut

    def _submit(self, payload: bytes) -> tuple[int, Future]:
        try:
            mtype, msgid = peek_frame(payload)
        except FormatError as exc:
            raise RPCError(f"cannot multiplex frame: {exc}") from exc
        if mtype != _REQUEST or msgid is None:
            raise RPCError(
                "only REQUEST frames can be multiplexed (use send() for NOTIFY)"
            )
        with self._lock:
            if self._closing:
                raise RPCTransportError("multiplexed transport is closed")
            sock, generation = self._ensure_connected_locked()
            if msgid in self._pending:
                raise RPCError(
                    f"msgid {msgid} already in flight on this connection"
                )
            fut: Future = Future()
            self._pending[msgid] = (generation, fut)
        try:
            with self._wlock:
                write_frame(sock, payload)
        except (OSError, RPCTransportError) as exc:
            with self._lock:
                self._pending.pop(msgid, None)
                if self._sock is sock:
                    self._dead = True
            raise RPCTransportError(f"socket error: {exc}") from exc
        return msgid, fut

    def request(self, payload: bytes) -> bytes:
        msgid, fut = self._submit(payload)
        try:
            return fut.result(timeout=self._timeout)
        except FutureTimeoutError:
            # Abandon the slot: a late response finds no future and is
            # discarded, it cannot be delivered to the wrong caller.
            with self._lock:
                self._pending.pop(msgid, None)
            raise RPCTimeoutError(
                f"no response for msgid {msgid} within {self._timeout}s"
            ) from None

    def send(self, payload: bytes) -> None:
        """One-way NOTIFY write: no future, no response expected."""
        with self._lock:
            if self._closing:
                raise RPCTransportError("multiplexed transport is closed")
            sock, _ = self._ensure_connected_locked()
        try:
            with self._wlock:
                write_frame(sock, payload)
        except (OSError, RPCTransportError) as exc:
            with self._lock:
                if self._sock is sock:
                    self._dead = True
            raise RPCTransportError(f"socket error: {exc}") from exc

    # -- lifecycle -------------------------------------------------------
    @property
    def pending(self) -> int:
        """Requests currently awaiting a response (leak-test surface)."""
        with self._lock:
            return len(self._pending)

    @property
    def broken(self) -> bool:
        with self._lock:
            return self._sock is None or self._dead

    def reconnect_if_broken(self) -> bool:
        """Re-dial **only** when the shared connection is actually dead.

        This is the multiplexed replacement for ``reconnect()``: an
        unconditional re-dial between retry attempts would sever every
        other caller's in-flight request over a perfectly healthy socket.
        When the socket *is* dead, all pending futures have already
        failed, so re-dialling harms no one.  Returns whether a re-dial
        happened.
        """
        with self._lock:
            if self._closing:
                raise RPCTransportError("multiplexed transport is closed")
            if self._sock is not None and not self._dead:
                return False
            self._redial_locked()
            return True

    def close(self) -> None:
        with self._lock:
            if self._closing:
                return
            self._closing = True
            sock, reader = self._sock, self._reader
            self._sock = None
            self._dead = True
        if sock is not None:
            try:
                sock.close()  # unblocks the reader, which fails the pending
            except OSError:
                pass
        if reader is not None and reader is not threading.current_thread():
            reader.join(timeout=2.0)
        # A reader that never started (lazy, never dialed) leaves pending
        # empty; a closed one has already drained it via _connection_died.
        with self._lock:
            doomed = [fut for _, fut in self._pending.values()]
            self._pending.clear()
        for fut in doomed:
            if not fut.done():
                fut.set_exception(RPCTransportError("multiplexed transport closed"))


def _read_frame_blocking(sock: socket.socket) -> bytes:
    """``read_frame`` twin that tolerates chunked arrivals on a blocking socket."""
    header = _recv_exact(sock, _LEN.size)
    (length,) = _LEN.unpack(header)
    if length >= MAX_FRAME:
        raise RPCTransportError(f"frame length {length} exceeds MAX_FRAME")
    return _recv_exact(sock, length)


def _recv_exact(sock: socket.socket, n: int) -> bytes:
    chunks = []
    remaining = n
    while remaining:
        chunk = sock.recv(min(remaining, 1 << 20))
        if not chunk:
            raise RPCTransportError(
                f"connection closed mid-frame ({remaining} of {n} bytes missing)"
            )
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


# ---------------------------------------------------------------------------
# Event-loop server
# ---------------------------------------------------------------------------


class _Conn:
    """Per-connection state owned jointly by the loop and worker threads."""

    __slots__ = ("sock", "frames", "out", "inflight", "lock",
                 "closed", "peer_closed")

    def __init__(self, sock: socket.socket):
        self.sock = sock
        self.frames = FrameBuffer()
        self.out: collections.deque = collections.deque()  # (memoryview, offset)
        self.inflight = 0          # frames submitted, response not yet queued
        self.lock = threading.Lock()
        self.closed = False
        self.peer_closed = False

    def idle(self) -> bool:
        with self.lock:
            return self.inflight == 0 and not self.out


class AsyncServerTransport:
    """Event-loop TCP listener: one I/O thread, scheduler-pooled dispatch.

    Drop-in lifecycle twin of the threaded
    :class:`~repro.rpc.transport.TCPServerTransport` (``start``/``stop``/
    ``draining``/``refused``/``max_connections``), but a single
    ``selectors`` loop multiplexes *all* connections: requests pipeline
    per connection, dispatch fans out to the scheduler's workers, and
    each response is written back the moment it is ready — out of order
    when that is faster.  The msgid inside each frame is the correlation
    id, so classic one-at-a-time clients work unchanged.

    Parameters
    ----------
    dispatcher:
        ``bytes -> bytes | None``, normally
        :meth:`repro.rpc.server.RPCServer.dispatch`.  Used only when no
        ``scheduler`` is given.
    scheduler:
        An object with ``submit(payload, respond)``, ``start()``,
        ``stop(timeout, finish)``, and ``info()`` — in practice a
        :class:`~repro.rpc.fairshare.FairScheduler`.  When omitted, a
        plain FIFO scheduler with ``workers`` threads is built.
    workers:
        Worker-thread count for the default scheduler (ignored when a
        scheduler is passed).
    max_connections:
        Accept-time cap; excess connections are closed immediately
        (clients see a retryable transport error), counted in
        :attr:`refused`.
    """

    def __init__(
        self,
        dispatcher,
        host: str = "127.0.0.1",
        port: int = 0,
        max_connections: int | None = None,
        scheduler=None,
        workers: int = 8,
    ):
        if scheduler is None:
            from repro.rpc.fairshare import FairScheduler

            scheduler = FairScheduler(dispatcher, workers=workers)
        self.scheduler = scheduler
        self._listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        self._listener.bind((host, port))
        self._listener.listen(128)
        self._listener.setblocking(False)
        self.host, self.port = self._listener.getsockname()
        self.max_connections = max_connections
        self.refused = 0
        self._sel = selectors.DefaultSelector()
        self._wake_r, self._wake_w = socket.socketpair()
        self._wake_r.setblocking(False)
        self._wake_w.setblocking(False)
        self._conns: set[_Conn] = set()
        self._dirty: set[_Conn] = set()
        self._dirty_lock = threading.Lock()
        self._draining = threading.Event()
        self._drained = threading.Event()
        self._shutdown = threading.Event()
        self._loop_thread: threading.Thread | None = None

    # -- public surface ---------------------------------------------------
    @property
    def draining(self) -> bool:
        return self._draining.is_set()

    @property
    def connections(self) -> int:
        return len(self._conns)

    def start(self) -> "AsyncServerTransport":
        self.scheduler.start()
        self._sel.register(self._listener, selectors.EVENT_READ, "accept")
        self._sel.register(self._wake_r, selectors.EVENT_READ, "wake")
        self._loop_thread = threading.Thread(
            target=self._loop, daemon=True, name=f"mux-loop-:{self.port}"
        )
        self._loop_thread.start()
        return self

    def stop(self, drain_timeout: float | None = None) -> bool:
        """Stop serving; mirrors the threaded listener's drain contract.

        ``None`` force-closes immediately.  A float drains: the listener
        closes first (new connections refused), buffered and in-flight
        requests get up to the timeout to finish and flush, then whatever
        is left is force-closed.  Returns True when the drain completed
        (or nothing was in flight).
        """
        try:
            self._listener.close()
        except OSError:
            pass
        self._draining.set()
        self._wakeup()
        clean = True
        if drain_timeout is not None:
            clean = self._drained.wait(timeout=drain_timeout)
        self._shutdown.set()
        self._wakeup()
        if self._loop_thread is not None:
            self._loop_thread.join(timeout=2.0)
            clean = clean and not self._loop_thread.is_alive()
        clean = self.scheduler.stop(timeout=2.0, finish=False) and clean
        for conn in list(self._conns):
            self._force_close(conn)
        try:
            self._sel.close()
        except Exception:
            pass
        for s in (self._wake_r, self._wake_w):
            try:
                s.close()
            except OSError:
                pass
        self._draining.clear()
        return clean

    def __enter__(self) -> "AsyncServerTransport":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()

    # -- event loop -------------------------------------------------------
    def _wakeup(self) -> None:
        try:
            self._wake_w.send(b"\0")
        except (OSError, BlockingIOError):
            pass

    def _loop(self) -> None:
        while not self._shutdown.is_set():
            try:
                events = self._sel.select(timeout=0.2)
            except OSError:
                break
            for key, mask in events:
                if key.data == "accept":
                    self._accept()
                elif key.data == "wake":
                    self._on_wake()
                else:
                    conn = key.data
                    if mask & selectors.EVENT_WRITE:
                        self._on_writable(conn)
                    if mask & selectors.EVENT_READ and not conn.closed:
                        self._on_readable(conn)
            if self._draining.is_set():
                self._check_drained()

    def _accept(self) -> None:
        while True:
            try:
                sock, _addr = self._listener.accept()
            except (BlockingIOError, OSError):
                return
            if self._draining.is_set() or (
                self.max_connections is not None
                and len(self._conns) >= self.max_connections
            ):
                self.refused += 1
                try:
                    sock.close()
                except OSError:
                    pass
                continue
            sock.setblocking(False)
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            conn = _Conn(sock)
            self._conns.add(conn)
            self._sel.register(sock, selectors.EVENT_READ, conn)

    def _on_readable(self, conn: _Conn) -> None:
        try:
            data = conn.sock.recv(1 << 18)
        except BlockingIOError:
            return
        except OSError:
            self._force_close(conn)
            return
        if not data:
            conn.peer_closed = True
            if conn.idle():
                self._force_close(conn)
            else:
                # Keep writing queued responses; just stop reading.
                self._set_interest(conn, selectors.EVENT_WRITE)
            return
        try:
            conn.frames.feed(data)
            frames = list(conn.frames.drain())
        except RPCTransportError:
            self._force_close(conn)  # garbage length prefix: protocol broken
            return
        for payload in frames:
            with conn.lock:
                conn.inflight += 1
            self.scheduler.submit(payload, self._responder(conn))

    def _responder(self, conn: _Conn):
        def respond(response: bytes | None) -> None:
            # Worker thread: queue the framed bytes, let the loop write.
            with conn.lock:
                conn.inflight -= 1
                if response is not None and not conn.closed:
                    if len(response) >= MAX_FRAME:
                        response = None  # cannot frame; drop like a NOTIFY
                    else:
                        conn.out.append(
                            [memoryview(_LEN.pack(len(response)) + response), 0]
                        )
            with self._dirty_lock:
                self._dirty.add(conn)
            self._wakeup()

        return respond

    def _on_wake(self) -> None:
        try:
            while self._wake_r.recv(4096):
                pass
        except (BlockingIOError, OSError):
            pass
        with self._dirty_lock:
            dirty, self._dirty = self._dirty, set()
        for conn in dirty:
            if conn.closed:
                continue
            with conn.lock:
                has_out = bool(conn.out)
            if has_out:
                events = selectors.EVENT_WRITE
                if not conn.peer_closed and not self._draining.is_set():
                    events |= selectors.EVENT_READ
                self._set_interest(conn, events)
            elif conn.idle() and (conn.peer_closed or self._draining.is_set()):
                self._force_close(conn)

    def _on_writable(self, conn: _Conn) -> None:
        while True:
            with conn.lock:
                if not conn.out:
                    break
                chunk = conn.out[0]
            view, offset = chunk
            try:
                sent = conn.sock.send(view[offset:])
            except BlockingIOError:
                return
            except OSError:
                self._force_close(conn)
                return
            chunk[1] = offset + sent
            if chunk[1] >= len(view):
                with conn.lock:
                    conn.out.popleft()
            else:
                return  # kernel buffer full; wait for the next WRITE event
        # Out queue flushed.
        if conn.idle() and (conn.peer_closed or self._draining.is_set()):
            self._force_close(conn)
        elif not conn.peer_closed and not self._draining.is_set():
            self._set_interest(conn, selectors.EVENT_READ)
        else:
            self._set_interest(conn, 0)

    def _set_interest(self, conn: _Conn, events: int) -> None:
        try:
            if events:
                self._sel.modify(conn.sock, events, conn)
            else:
                self._sel.unregister(conn.sock)
        except (KeyError, ValueError, OSError):
            if events:
                try:
                    self._sel.register(conn.sock, events, conn)
                except (KeyError, ValueError, OSError):
                    pass

    def _force_close(self, conn: _Conn) -> None:
        if conn.closed:
            return
        conn.closed = True
        try:
            self._sel.unregister(conn.sock)
        except (KeyError, ValueError, OSError):
            pass
        try:
            conn.sock.close()
        except OSError:
            pass
        self._conns.discard(conn)

    def _check_drained(self) -> None:
        # During drain: stop reading everywhere, close idle connections,
        # and report drained once nothing is in flight anywhere.
        for conn in list(self._conns):
            if conn.idle():
                self._force_close(conn)
            else:
                with conn.lock:
                    has_out = bool(conn.out)
                self._set_interest(
                    conn, selectors.EVENT_WRITE if has_out else 0
                )
        if not self._conns and self.scheduler.quiescent():
            self._drained.set()
