"""A small pool of independent RPC endpoints for scatter–gather fan-out.

Each shard of an NDP cluster is its own :class:`~repro.rpc.server.RPCServer`
with its own failure domain, so the pool wraps each endpoint transport in
its own :class:`~repro.rpc.resilience.ResilientTransport`: retries and
deadlines are shared policy (stateless), but circuit breakers are strictly
per endpoint — one flapping shard must not open the breaker for its
healthy peers.  Resilience stats aggregate across the pool by default so
the client reports one retry/fallback picture per request.
"""

from __future__ import annotations

import time

from repro.errors import ReproError
from repro.rpc.client import RPCClient
from repro.rpc.resilience import ResilientTransport, RetryPolicy
from repro.rpc.transport import TCPTransport
from repro.storage.metrics import ResilienceStats

__all__ = ["EndpointPool"]


class EndpointPool:
    """N independent RPC endpoints, one resilient client each.

    Parameters
    ----------
    transports:
        One raw transport per endpoint (ordering defines endpoint ids).
    retry:
        Shared :class:`RetryPolicy` (stateless, so sharing is safe);
        defaults to the resilience layer's default policy.
    breaker_factory:
        Zero-arg callable producing a fresh circuit breaker **per
        endpoint**; ``None`` disables breakers.
    stats:
        Shared :class:`ResilienceStats`; a fresh one is created when
        omitted so callers can always read pool-wide counters.
    resilient:
        Set ``False`` to skip the resilience wrapper entirely (tests that
        inject their own wrapped transports).
    """

    def __init__(self, transports, retry: RetryPolicy | None = None,
                 breaker_factory=None, stats: ResilienceStats | None = None,
                 tracer=None, clock=time.monotonic, sleep=time.sleep,
                 resilient: bool = True):
        transports = list(transports)
        if not transports:
            raise ReproError("endpoint pool needs at least one transport")
        self.stats = stats if stats is not None else ResilienceStats()
        self._transports = []
        self._clients = []
        for transport in transports:
            if resilient:
                transport = ResilientTransport(
                    transport,
                    retry=retry,
                    breaker=breaker_factory() if breaker_factory else None,
                    clock=clock,
                    sleep=sleep,
                    stats=self.stats,
                    tracer=tracer,
                )
            self._transports.append(transport)
            self._clients.append(RPCClient(transport, tracer=tracer))

    # ------------------------------------------------------------------
    @classmethod
    def connect_tcp(cls, addresses, timeout: float = 30.0, mux: bool = False,
                    **kwargs):
        """Build a pool from ``host:port`` strings or ``(host, port)`` pairs.

        Endpoints dial lazily (on first use): a shard that is down when
        the pool is built must degrade per the caller's fallback policy,
        not abort construction and take its healthy peers with it.

        ``mux=True`` dials each shard over a multiplexed
        :class:`~repro.rpc.mux.MuxTransport` instead of a blocking
        :class:`TCPTransport`: scatter threads share one pipelined socket
        per shard, and the resilience wrapper's reconnects become
        dead-socket-only (see ``MuxTransport.reconnect_if_broken``).
        """
        from repro.rpc.mux import MuxTransport

        transports = []
        for addr in addresses:
            if isinstance(addr, str):
                host, _, port = addr.rpartition(":")
                if not host or not port.isdigit():
                    raise ReproError(
                        f"bad endpoint address {addr!r} (want host:port)"
                    )
                addr = (host, int(port))
            factory = MuxTransport if mux else TCPTransport
            transports.append(
                factory(addr[0], addr[1], timeout=timeout, lazy=True)
            )
        return cls(transports, **kwargs)

    def client(self, i: int) -> RPCClient:
        return self._clients[i]

    def __len__(self) -> int:
        return len(self._clients)

    def __iter__(self):
        return iter(self._clients)

    def close(self) -> None:
        for transport in self._transports:
            try:
                transport.close()
            except Exception:
                pass

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        self.close()
        return False
