"""A small pool of independent RPC endpoints for scatter–gather fan-out.

Each shard of an NDP cluster is its own :class:`~repro.rpc.server.RPCServer`
with its own failure domain, so the pool wraps each endpoint transport in
its own :class:`~repro.rpc.resilience.ResilientTransport`: retries and
deadlines are shared policy (stateless), but circuit breakers are strictly
per endpoint — one flapping shard must not open the breaker for its
healthy peers.  Resilience stats aggregate across the pool by default so
the client reports one retry/fallback picture per request.

Replication support lives here too:

* :class:`EndpointHealth` — per-endpoint rolling latency (a
  :class:`~repro.obs.slo.RollingSketch`) plus breaker view and
  hedge/failover counters; :meth:`EndpointPool.rank` orders a replica
  chain by it (open breakers last, then by observed latency).
* :class:`HedgedCall` — race one logical call across an ordered replica
  chain: issue to the first replica, start a *hedge* to the next after a
  latency-quantile delay, fail over immediately on errors, take the
  first success and cancel the losers.  Timeouts, breaker-opens, sheds,
  and integrity failures all walk the chain before the caller ever sees
  an error — failover is the fast path, not a degradation.
"""

from __future__ import annotations

import threading
import time

from repro.errors import (
    CircuitOpenError,
    IntegrityError,
    ReproError,
    RPCTransportError,
)
from repro.obs.flightrec import NULL_RECORDER
from repro.obs.slo import RollingSketch
from repro.rpc.client import RPCClient
from repro.rpc.resilience import ResilientTransport, RetryPolicy
from repro.rpc.transport import TCPTransport
from repro.storage.metrics import ResilienceStats

__all__ = ["EndpointPool", "EndpointHealth", "HedgedCall", "HedgedResult",
           "parse_address", "FAILOVER_ERRORS"]

#: Errors that exhaust one replica and move a hedged call down its chain.
#: Everything else (bad params, remote handler bugs) is deterministic —
#: another replica would fail identically, so it propagates immediately.
FAILOVER_ERRORS = (RPCTransportError, CircuitOpenError, IntegrityError)

_PORT_RANGE = (1, 65535)


def parse_address(addr) -> tuple[str, int]:
    """Parse one endpoint address into ``(host, port)``.

    Accepts ``(host, port)`` pairs, ``host:port`` strings, and bracketed
    IPv6 ``[::1]:9000`` (the brackets are required for IPv6 — a bare
    ``::1:9000`` is ambiguous and rejected).  Ports must be plain decimal
    in ``[1, 65535]`` with no leading zeros (``host:007`` is a typo, not
    an endpoint), empty hosts/ports are rejected, all with a typed
    :class:`~repro.errors.ReproError`.
    """
    if isinstance(addr, (tuple, list)):
        if len(addr) != 2:
            raise ReproError(f"bad endpoint address {addr!r} (want (host, port))")
        host, port = addr
        host = str(host)
        try:
            port = int(port)
        except (TypeError, ValueError):
            raise ReproError(
                f"bad endpoint address {addr!r}: port {port!r} is not an integer"
            ) from None
    elif isinstance(addr, str):
        if addr.startswith("["):
            bracket = addr.find("]")
            if bracket < 0:
                raise ReproError(
                    f"bad endpoint address {addr!r}: unclosed IPv6 bracket"
                )
            host = addr[1:bracket]
            rest = addr[bracket + 1:]
            if not rest.startswith(":"):
                raise ReproError(
                    f"bad endpoint address {addr!r} (want [v6-host]:port)"
                )
            port_text = rest[1:]
        else:
            host, sep, port_text = addr.rpartition(":")
            if not sep:
                raise ReproError(
                    f"bad endpoint address {addr!r} (want host:port)"
                )
            if ":" in host:
                raise ReproError(
                    f"bad endpoint address {addr!r}: bracket IPv6 hosts "
                    f"as [host]:port"
                )
        if not host:
            raise ReproError(f"bad endpoint address {addr!r}: empty host")
        if not port_text or not port_text.isascii() or not port_text.isdigit():
            raise ReproError(
                f"bad endpoint address {addr!r}: port {port_text!r} is not "
                f"a decimal number"
            )
        if len(port_text) > 1 and port_text[0] == "0":
            raise ReproError(
                f"bad endpoint address {addr!r}: port {port_text!r} has a "
                f"leading zero"
            )
        port = int(port_text)
    else:
        raise ReproError(f"bad endpoint address {addr!r}")
    if not _PORT_RANGE[0] <= port <= _PORT_RANGE[1]:
        raise ReproError(
            f"bad endpoint address {addr!r}: port {port} outside "
            f"[{_PORT_RANGE[0]}, {_PORT_RANGE[1]}]"
        )
    return host, port


class EndpointHealth:
    """Rolling health for one endpoint: latency sketch + counters.

    Thread-safe; shared between the pool's timed :meth:`EndpointPool.call`
    path (which feeds it) and :class:`HedgedCall` (which reads it to pick
    hedge delays and rank replicas).
    """

    def __init__(self, breaker=None, clock=time.monotonic,
                 window: float = 60.0):
        self.breaker = breaker
        self.sketch = RollingSketch(window=window, clock=clock)
        self._lock = threading.Lock()
        self.calls = 0
        self.errors = 0
        self.hedges = 0
        self.hedge_wins = 0
        self.failovers = 0

    # ------------------------------------------------------------------
    def observe(self, seconds: float) -> None:
        with self._lock:
            self.calls += 1
        self.sketch.observe(seconds)

    def record_error(self) -> None:
        with self._lock:
            self.errors += 1

    def record_hedge(self) -> None:
        with self._lock:
            self.hedges += 1

    def record_hedge_win(self) -> None:
        with self._lock:
            self.hedge_wins += 1

    def record_failover(self) -> None:
        with self._lock:
            self.failovers += 1

    # ------------------------------------------------------------------
    def breaker_state(self) -> str:
        return self.breaker.state if self.breaker is not None else "none"

    def healthy(self) -> bool:
        return self.breaker is None or self.breaker.state != "open"

    def quantile(self, q: float) -> float:
        return self.sketch.quantile(q)

    def rank_key(self) -> tuple:
        """Sort key: open breakers last, then by rolling p50 latency."""
        return (0 if self.healthy() else 1, self.quantile(0.5))

    def snapshot(self) -> dict:
        with self._lock:
            out = {
                "calls": self.calls,
                "errors": self.errors,
                "hedges": self.hedges,
                "hedge_wins": self.hedge_wins,
                "failovers": self.failovers,
            }
        out["breaker"] = self.breaker_state()
        out["p50"] = self.quantile(0.5)
        out["p99"] = self.quantile(0.99)
        return out


class _Ledger:
    """Counts hedge attempts in flight; the chaos suite asserts drain-to-0."""

    def __init__(self):
        self._lock = threading.Lock()
        self._cond = threading.Condition(self._lock)
        self._n = 0

    def inc(self) -> None:
        with self._lock:
            self._n += 1

    def dec(self) -> None:
        with self._cond:
            self._n -= 1
            self._cond.notify_all()

    @property
    def outstanding(self) -> int:
        with self._lock:
            return self._n

    def wait_drained(self, timeout: float | None = None) -> bool:
        with self._cond:
            return self._cond.wait_for(lambda: self._n == 0, timeout=timeout)


class HedgedResult:
    """Outcome of one hedged call: the value plus its failover story."""

    __slots__ = ("value", "winner", "winner_kind", "attempts", "hedges",
                 "failovers", "errors")

    def __init__(self, value, winner, winner_kind, attempts, hedges,
                 failovers, errors):
        self.value = value
        self.winner = winner            # endpoint id that answered
        self.winner_kind = winner_kind  # "primary" | "hedge" | "failover"
        self.attempts = attempts
        self.hedges = hedges
        self.failovers = failovers
        self.errors = errors            # [(endpoint, exc), ...] from losers


class HedgedCall:
    """Race one logical call across an ordered replica chain.

    ``attempt(endpoint, cancel, kind)`` performs the real call; ``cancel``
    is a :class:`threading.Event` set the moment another attempt wins —
    cooperative transports (and every fault-injection transport in the
    test suite) check it to abandon work early, and the result of a
    cancelled attempt is discarded regardless.  ``kind`` tells the
    attempt why it was launched (``"primary"``/``"hedge"``/``"failover"``)
    so it can tag the request ctx for server-side counters.

    The ladder: launch the first replica; if it *errors* with a
    failover-class exception, launch the next immediately; if it is
    merely *slow* — no reply within the hedge delay — launch the next as
    a hedge and let both race.  First success wins and cancels the rest.
    When every replica has failed, the last failover-class error is
    raised (so callers' existing fallback triggers keep working);
    a non-failover error cancels the race and propagates at once.
    """

    def __init__(self, delay_for, *, clock=time.monotonic,
                 recorder=None, ledger: _Ledger | None = None,
                 on_hedge=None, on_failover=None,
                 failover_on=FAILOVER_ERRORS):
        #: ``delay_for(endpoint) -> seconds`` before hedging past it
        self._delay_for = delay_for
        self._clock = clock
        self._recorder = recorder if recorder is not None else NULL_RECORDER
        self._ledger = ledger if ledger is not None else _Ledger()
        self._on_hedge = on_hedge
        self._on_failover = on_failover
        self._failover_on = failover_on

    @property
    def outstanding(self) -> int:
        return self._ledger.outstanding

    def run(self, replicas, attempt) -> HedgedResult:
        replicas = list(replicas)
        if not replicas:
            raise ReproError("hedged call needs at least one replica")
        cond = threading.Condition()
        state = {
            "value": None, "winner": None, "winner_slot": None,
            "winner_kind": None, "fatal": None, "errors": [], "finished": 0,
        }
        cancels: list[threading.Event] = []

        def runner(slot, endpoint, cancel, kind):
            try:
                value = attempt(endpoint, cancel, kind)
            except BaseException as exc:  # noqa: BLE001 — arbitrated below
                with cond:
                    state["finished"] += 1
                    if isinstance(exc, self._failover_on):
                        state["errors"].append((endpoint, exc))
                    elif state["fatal"] is None:
                        state["fatal"] = exc
                    cond.notify_all()
                self._ledger.dec()
                return
            with cond:
                state["finished"] += 1
                if state["winner_slot"] is None and not cancel.is_set():
                    state["value"] = value
                    state["winner"] = endpoint
                    state["winner_slot"] = slot
                    state["winner_kind"] = kind
                cond.notify_all()
            self._ledger.dec()

        def launch(idx, kind):
            endpoint = replicas[idx]
            cancel = threading.Event()
            cancels.append(cancel)
            self._ledger.inc()
            thread = threading.Thread(
                target=runner, args=(idx, endpoint, cancel, kind),
                daemon=True, name=f"hedge-{endpoint}-{kind}",
            )
            thread.start()
            if kind == "hedge":
                self._recorder.record("pool.hedge", endpoint=endpoint)
                if self._on_hedge is not None:
                    self._on_hedge(endpoint)
            elif kind == "failover":
                self._recorder.record("pool.failover", endpoint=endpoint)
                if self._on_failover is not None:
                    self._on_failover(endpoint)

        hedges = failovers = 0
        launch(0, "primary")
        launched = 1
        hedge_deadline = self._clock() + max(0.0, self._delay_for(replicas[0]))
        with cond:
            while True:
                if state["winner_slot"] is not None or state["fatal"] is not None:
                    break
                failed = len(state["errors"])
                exhausted = launched >= len(replicas)
                if state["finished"] >= launched and exhausted:
                    break  # everything failed, nothing left to try
                if not exhausted and failed >= launched:
                    # Every launched attempt has already failed: don't
                    # wait out the hedge timer, fail over immediately.
                    launch(launched, "failover")
                    launched += 1
                    failovers += 1
                    hedge_deadline = self._clock() + max(
                        0.0, self._delay_for(replicas[launched - 1])
                    )
                    continue
                now = self._clock()
                if not exhausted and now >= hedge_deadline:
                    launch(launched, "hedge")
                    launched += 1
                    hedges += 1
                    hedge_deadline = now + max(
                        0.0, self._delay_for(replicas[launched - 1])
                    )
                    continue
                if exhausted:
                    cond.wait()
                else:
                    # Bounded wait: re-check the (injectable) clock often
                    # enough that a hedge fires close to its deadline even
                    # when the clock is not wall time.
                    cond.wait(timeout=min(max(hedge_deadline - now, 0.0), 0.05))
            # Cancel every loser: set their events so cooperative
            # attempts unwind promptly; late results are discarded by
            # the winner-already-set check in the runner.
            for slot, cancel in enumerate(cancels):
                if slot != state["winner_slot"]:
                    cancel.set()
            if state["fatal"] is not None:
                raise state["fatal"]
            if state["winner_slot"] is None:
                endpoint, last = state["errors"][-1]
                raise last
            return HedgedResult(
                state["value"], state["winner"], state["winner_kind"],
                launched, hedges, failovers, list(state["errors"]),
            )


class EndpointPool:
    """N independent RPC endpoints, one resilient client each.

    Parameters
    ----------
    transports:
        One raw transport per endpoint (ordering defines endpoint ids).
    retry:
        Shared :class:`RetryPolicy` (stateless, so sharing is safe);
        defaults to the resilience layer's default policy.
    breaker_factory:
        Zero-arg callable producing a fresh circuit breaker **per
        endpoint**; ``None`` disables breakers.
    stats:
        Shared :class:`ResilienceStats`; a fresh one is created when
        omitted so callers can always read pool-wide counters.
    resilient:
        Set ``False`` to skip the resilience wrapper entirely (tests that
        inject their own wrapped transports).
    recorder:
        Optional :class:`~repro.obs.flightrec.FlightRecorder`; hedges,
        failovers, and transport-close failures land in the flight ring.
    """

    def __init__(self, transports, retry: RetryPolicy | None = None,
                 breaker_factory=None, stats: ResilienceStats | None = None,
                 tracer=None, clock=time.monotonic, sleep=time.sleep,
                 resilient: bool = True, recorder=None, addresses=None):
        transports = list(transports)
        if not transports:
            raise ReproError("endpoint pool needs at least one transport")
        self.stats = stats if stats is not None else ResilienceStats()
        self.recorder = recorder if recorder is not None else NULL_RECORDER
        self._retry = retry
        self._breaker_factory = breaker_factory
        self._tracer = tracer
        self._clock = clock
        self._sleep = sleep
        self._resilient = resilient
        self._dial = None  # (timeout, mux) once connect_tcp configured us
        self._transports = []
        self._clients = []
        self._health: list[EndpointHealth] = []
        self.addresses = list(addresses) if addresses is not None else None
        self._ledger = _Ledger()
        for transport in transports:
            self._add_transport(transport)

    def _add_transport(self, transport) -> int:
        if self._resilient:
            transport = ResilientTransport(
                transport,
                retry=self._retry,
                breaker=(self._breaker_factory()
                         if self._breaker_factory else None),
                clock=self._clock,
                sleep=self._sleep,
                stats=self.stats,
                tracer=self._tracer,
            )
        self._transports.append(transport)
        self._clients.append(RPCClient(transport, tracer=self._tracer))
        self._health.append(EndpointHealth(
            breaker=getattr(transport, "breaker", None), clock=self._clock,
        ))
        return len(self._clients) - 1

    # ------------------------------------------------------------------
    @classmethod
    def connect_tcp(cls, addresses, timeout: float = 30.0, mux: bool = False,
                    **kwargs):
        """Build a pool from ``host:port`` strings or ``(host, port)`` pairs.

        Endpoints dial lazily (on first use): a shard that is down when
        the pool is built must degrade per the caller's fallback policy,
        not abort construction and take its healthy peers with it.
        Addresses go through :func:`parse_address`, so bracketed IPv6
        works and malformed ports fail loudly here rather than at dial
        time.

        ``mux=True`` dials each shard over a multiplexed
        :class:`~repro.rpc.mux.MuxTransport` instead of a blocking
        :class:`TCPTransport`: scatter threads share one pipelined socket
        per shard, and the resilience wrapper's reconnects become
        dead-socket-only (see ``MuxTransport.reconnect_if_broken``).
        """
        from repro.rpc.mux import MuxTransport

        parsed = [parse_address(addr) for addr in addresses]
        factory = MuxTransport if mux else TCPTransport
        transports = [
            factory(host, port, timeout=timeout, lazy=True)
            for host, port in parsed
        ]
        pool = cls(transports,
                   addresses=[f"{host}:{port}" for host, port in parsed],
                   **kwargs)
        pool._dial = (timeout, mux)
        return pool

    def add_address(self, addr) -> int:
        """Dial one more endpoint into a TCP-built pool (live map growth)."""
        if self._dial is None:
            raise ReproError(
                "pool was not built by connect_tcp; cannot add endpoints live"
            )
        from repro.rpc.mux import MuxTransport

        host, port = parse_address(addr)
        timeout, mux = self._dial
        factory = MuxTransport if mux else TCPTransport
        idx = self._add_transport(
            factory(host, port, timeout=timeout, lazy=True)
        )
        if self.addresses is not None:
            self.addresses.append(f"{host}:{port}")
        return idx

    def client(self, i: int) -> RPCClient:
        return self._clients[i]

    def transport(self, i: int):
        """Endpoint ``i``'s (possibly resilience-wrapped) transport.

        Frame-level proxies (:class:`~repro.rpc.forward.ForwardingHandler`)
        relay raw bytes and so need the transport itself, not the client.
        """
        return self._transports[i]

    def health(self, i: int) -> EndpointHealth:
        return self._health[i]

    def endpoint_state(self, i: int) -> str:
        """Breaker state for endpoint ``i`` (``"none"`` without a breaker)."""
        return self._health[i].breaker_state()

    def call(self, i: int, method: str, *params, ctx_extra=None):
        """Timed call through endpoint ``i``, feeding its health sketch."""
        health = self._health[i]
        start = self._clock()
        try:
            result = self._clients[i].call(method, *params,
                                           ctx_extra=ctx_extra)
        except Exception:
            health.record_error()
            raise
        health.observe(max(0.0, self._clock() - start))
        return result

    # ------------------------------------------------------------------
    def rank(self, replicas) -> list[int]:
        """Order a replica chain for dispatch: healthy first, fast first.

        The sort is stable, so replicas with identical health keep their
        manifest order — the primary leads until the breaker or the
        latency sketch says otherwise.
        """
        return sorted(replicas, key=lambda e: self._health[e].rank_key())

    def hedge_delay(self, endpoint: int, quantile: float = 0.95,
                    floor: float = 0.005, cap: float = 1.0) -> float:
        """Seconds to wait on ``endpoint`` before hedging to the next.

        The observed latency quantile, clamped to ``[floor, cap]`` —
        a cold sketch (no observations yet) hedges after ``floor``.
        """
        return min(cap, max(floor, self._health[endpoint].quantile(quantile)))

    def hedged(self, quantile: float = 0.95, floor: float = 0.005,
               cap: float = 1.0) -> HedgedCall:
        """A :class:`HedgedCall` wired to this pool's health + counters."""
        def delay(endpoint: int) -> float:
            return self.hedge_delay(endpoint, quantile, floor, cap)

        def on_hedge(endpoint: int) -> None:
            self._health[endpoint].record_hedge()
            self.stats.record("hedges")

        def on_failover(endpoint: int) -> None:
            self._health[endpoint].record_failover()
            self.stats.record("failovers")

        return HedgedCall(
            delay, clock=self._clock, recorder=self.recorder,
            ledger=self._ledger, on_hedge=on_hedge, on_failover=on_failover,
        )

    @property
    def outstanding(self) -> int:
        """Hedge/failover attempts currently in flight across the pool."""
        return self._ledger.outstanding

    def wait_drained(self, timeout: float | None = None) -> bool:
        return self._ledger.wait_drained(timeout)

    def info(self) -> list[dict]:
        """Per-endpoint health snapshot (what ops tooling renders)."""
        out = []
        for i, health in enumerate(self._health):
            snap = health.snapshot()
            snap["endpoint"] = i
            if self.addresses is not None and i < len(self.addresses):
                snap["address"] = self.addresses[i]
            out.append(snap)
        return out

    def __len__(self) -> int:
        return len(self._clients)

    def __iter__(self):
        return iter(self._clients)

    def close(self) -> None:
        """Close every transport; failures are recorded, never raised.

        A close that throws still must not stop its peers from closing,
        but it is evidence (leaked fd, broken shutdown path) — so it
        lands in the flight ring and the ``close_errors`` counter instead
        of vanishing.
        """
        for i, transport in enumerate(self._transports):
            try:
                transport.close()
            except Exception as exc:
                self.stats.record("close_errors")
                self.recorder.record(
                    "pool.close_error", endpoint=i,
                    error=f"{type(exc).__name__}: {exc}",
                )

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        self.close()
        return False
