"""Admission control, load shedding, and deadline propagation.

The NDP server is the shared storage-side resource the whole design
concentrates load onto: one slow client stampede must not take it down
for everyone else.  This module provides the three mechanisms the server
layers use to survive:

* :class:`AdmissionController` — a counting gate in front of request
  dispatch.  At most ``max_inflight`` requests execute concurrently; up
  to ``max_pending`` more wait (bounded, so memory stays bounded too);
  beyond that the request is *shed* immediately with
  :class:`~repro.errors.ServerOverloadedError` carrying a ``retry_after``
  hint.  Shedding fast is the point — a client that hears "busy, come
  back in 50 ms" within a millisecond is far better off than one queued
  behind a minute of backlog.

* :class:`DeadlineScope` — the server-side half of deadline propagation.
  The client's remaining retry budget rides the request envelope's ctx
  map (key ``"deadline"``, seconds — a *duration*, not a wall-clock
  instant, so client and server clocks never need agreement); the server
  wraps handler execution in a scope and work between phases calls
  :func:`check_deadline` to abandon doomed work early.

* :func:`inject_deadline` / :func:`sniff_overload` — the client-side
  half.  ``ResilientTransport`` hands pre-packed frames to the inner
  transport, so the deadline is spliced into the envelope per attempt by
  rewriting the (small) request frame, and overload replies are detected
  by sniffing response frames so the retry loop can back off.

Wire compatibility: a request without a deadline and a reply without an
overload error are byte-identical to pre-admission frames — both sides
treat the extra ctx key and the typed error line as optional.
"""

from __future__ import annotations

import re
import threading
import time
from typing import Callable

from repro.errors import DeadlineExpiredError, FormatError, ServerOverloadedError
from repro.rpc.msgpack import pack, unpack

__all__ = [
    "AdmissionController",
    "DeadlineScope",
    "current_deadline",
    "remaining_budget",
    "check_deadline",
    "inject_deadline",
    "sniff_overload",
]

_REQUEST = 0
_RESPONSE = 1

_RETRY_AFTER_RE = re.compile(r"retry_after=([0-9]*\.?[0-9]+(?:[eE][+-]?[0-9]+)?)")


class AdmissionController:
    """Bounded-concurrency gate with immediate load shedding.

    Parameters
    ----------
    max_inflight:
        Maximum requests executing concurrently.  ``0`` means unlimited —
        the controller still counts (for stats) but never sheds.
    max_pending:
        How many requests may *wait* for a slot before new arrivals are
        shed outright.  ``0`` (default) sheds as soon as all slots are
        busy: lowest latency-under-overload, which is what a retrying
        client wants.
    queue_timeout:
        How long a pending request waits for a slot before it, too, is
        shed.  ``None`` waits indefinitely (bounded by ``max_pending``
        requests doing so).
    retry_after:
        The hint (seconds) embedded in shed errors; the resilient client
        uses it as a floor for its backoff delay.
    clock:
        Injectable monotonic clock (tests use a fake).
    """

    def __init__(
        self,
        max_inflight: int = 0,
        max_pending: int = 0,
        queue_timeout: float | None = None,
        retry_after: float = 0.05,
        clock: Callable[[], float] = time.monotonic,
    ):
        if max_inflight < 0 or max_pending < 0:
            raise ValueError("max_inflight and max_pending must be >= 0")
        self.max_inflight = int(max_inflight)
        self.max_pending = int(max_pending)
        self.queue_timeout = queue_timeout
        self.retry_after = float(retry_after)
        self._clock = clock
        self._cond = threading.Condition()
        self._inflight = 0
        self._pending = 0
        self._admitted = 0
        self._shed = 0
        self._expired = 0
        self._peak_inflight = 0

    # -- gate ---------------------------------------------------------------

    def __enter__(self):
        self.acquire()
        return self

    def __exit__(self, *exc) -> None:
        self.release()

    def acquire(self) -> None:
        """Admit the calling thread or raise :class:`ServerOverloadedError`."""
        with self._cond:
            if self.max_inflight == 0 or self._inflight < self.max_inflight:
                self._admit_locked()
                return
            if self._pending >= self.max_pending:
                self._shed += 1
                raise self._overloaded()
            self._pending += 1
            deadline = (
                None
                if self.queue_timeout is None
                else self._clock() + self.queue_timeout
            )
            try:
                while self._inflight >= self.max_inflight:
                    if deadline is None:
                        self._cond.wait()
                    else:
                        left = deadline - self._clock()
                        if left <= 0 or not self._cond.wait(timeout=left):
                            if self._inflight < self.max_inflight:
                                break  # slot freed exactly at the timeout
                            self._shed += 1
                            raise self._overloaded(queued=True)
            finally:
                self._pending -= 1
            self._admit_locked()

    def release(self) -> None:
        with self._cond:
            self._inflight -= 1
            self._cond.notify()

    def _admit_locked(self) -> None:
        self._inflight += 1
        self._admitted += 1
        if self._inflight > self._peak_inflight:
            self._peak_inflight = self._inflight

    def _overloaded(self, queued: bool = False) -> ServerOverloadedError:
        where = "pending queue full" if not queued else "queue wait timed out"
        # retry_after= is part of the message so the hint survives the
        # string-only RPC error channel; clients parse it back out.
        return ServerOverloadedError(
            f"server at capacity ({where}: inflight={self._inflight}/"
            f"{self.max_inflight}, pending={self._pending}/{self.max_pending}); "
            f"retry_after={self.retry_after}",
            retry_after=self.retry_after,
        )

    # -- stats --------------------------------------------------------------

    def record_expired(self) -> None:
        """Count a request rejected because its deadline had already passed."""
        with self._cond:
            self._expired += 1

    def record_shed(self) -> None:
        """Count a shed decided by an outer layer (the fair queue).

        The fair scheduler sheds per-tenant *before* requests reach this
        gate; recording here keeps ``health``/``stats`` reporting one
        overload ledger for the whole server.
        """
        with self._cond:
            self._shed += 1

    def saturated(self) -> bool:
        """True when every inflight slot is busy — overload territory,
        where SLO-aware shedding is allowed to refuse burning tenants."""
        with self._cond:
            return self.max_inflight > 0 and self._inflight >= self.max_inflight

    @property
    def inflight(self) -> int:
        with self._cond:
            return self._inflight

    @property
    def pending(self) -> int:
        with self._cond:
            return self._pending

    def info(self) -> dict:
        """Snapshot for ``server_stats`` / obs collectors."""
        with self._cond:
            return {
                "max_inflight": self.max_inflight,
                "max_pending": self.max_pending,
                "inflight": self._inflight,
                "pending": self._pending,
                "admitted": self._admitted,
                "shed": self._shed,
                "expired": self._expired,
                "peak_inflight": self._peak_inflight,
            }


# ---------------------------------------------------------------------------
# Deadline scopes (server side)
# ---------------------------------------------------------------------------

_scope_stack = threading.local()


def _stack() -> list:
    stack = getattr(_scope_stack, "scopes", None)
    if stack is None:
        stack = []
        _scope_stack.scopes = stack
    return stack


class DeadlineScope:
    """A per-request time budget, checkable from anywhere on the thread.

    The budget is converted to an absolute expiry against the injected
    clock at construction, so repeated :meth:`remaining` calls measure
    real elapsed work.  Used as a context manager around handler
    execution; nested scopes see the innermost deadline.
    """

    def __init__(self, budget: float, clock: Callable[[], float] = time.monotonic):
        self.budget = float(budget)
        self._clock = clock
        self.expires_at = clock() + self.budget

    def remaining(self) -> float:
        return self.expires_at - self._clock()

    def expired(self) -> bool:
        return self.remaining() <= 0

    def __enter__(self) -> DeadlineScope:
        _stack().append(self)
        return self

    def __exit__(self, *exc) -> None:
        stack = _stack()
        if stack and stack[-1] is self:
            stack.pop()


def current_deadline() -> DeadlineScope | None:
    """The innermost active scope on this thread, if any."""
    stack = _stack()
    return stack[-1] if stack else None


def remaining_budget() -> float | None:
    """Seconds left in the active scope, or ``None`` outside any scope."""
    scope = current_deadline()
    return None if scope is None else scope.remaining()


def check_deadline(phase: str = "processing") -> None:
    """Abandon doomed work: raise if the active deadline has expired.

    A no-op outside any scope, so pipeline code can call it
    unconditionally — only deadline-carrying requests pay the check.
    """
    scope = current_deadline()
    if scope is not None and scope.expired():
        raise DeadlineExpiredError(
            f"deadline expired before {phase} "
            f"(budget {scope.budget:.3f}s exceeded by "
            f"{-scope.remaining():.3f}s); abandoning request"
        )


# ---------------------------------------------------------------------------
# Client-side frame helpers
# ---------------------------------------------------------------------------


def inject_deadline(payload: bytes, remaining: float) -> bytes:
    """Splice the remaining budget into a packed request frame's ctx map.

    Returns the payload unchanged when it is not a msgpack-rpc REQUEST
    (notifications, hand-rolled test frames, foreign bytes): injection is
    best-effort sugar, never a reason to fail a send.
    """
    try:
        message = unpack(payload)
    except FormatError:
        return payload
    if (
        not isinstance(message, list)
        or len(message) not in (4, 5)
        or message[0] != _REQUEST
    ):
        return payload
    ctx = message[4] if len(message) == 5 else {}
    if not isinstance(ctx, dict):
        return payload
    merged = dict(ctx)
    merged["deadline"] = max(0.0, float(remaining))
    return pack([message[0], message[1], message[2], message[3], merged])


def sniff_overload(payload: bytes | None) -> ServerOverloadedError | None:
    """Detect a shed reply inside a successful transport exchange.

    ``ResilientTransport`` sees packed response bytes, not decoded
    errors, so overload replies would otherwise slip through as
    "success" and fail later at the client with a non-retryable
    :class:`RPCRemoteError`.  Overload replies are tiny; the byte-marker
    pre-check keeps the cost for normal traffic at one ``in`` scan.
    """
    if payload is None or len(payload) > 512:
        return None
    if b"ServerOverloadedError" not in payload:
        return None
    try:
        message = unpack(payload)
    except FormatError:
        return None
    if (
        not isinstance(message, list)
        or len(message) < 4
        or message[0] != _RESPONSE
        or not isinstance(message[2], str)
        or not message[2].startswith("ServerOverloadedError")
    ):
        return None
    retry_after = None
    match = _RETRY_AFTER_RE.search(message[2])
    if match:
        retry_after = float(match.group(1))
    return ServerOverloadedError(message[2], retry_after=retry_after)
