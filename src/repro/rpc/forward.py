"""Frame-level request forwarding: the proxy primitive behind the edge tier.

A proxy that unpacked each request, re-issued it through its own
:class:`~repro.rpc.client.RPCClient`, and re-encoded the reply would burn
CPU on every hop and — worse — could subtly reorder dict keys or rewrite
ctx maps, breaking the byte-identity contract the edge cache promises.
:class:`ForwardingHandler` instead relays the *original frame bytes*
upstream and the *original response bytes* back, so an untraced request
observed by the storage server — and the reply observed by the client —
is bit-for-bit what a direct connection would have carried.  The request
ctx (tenant, deadline, trace, and any future key) rides through without
mutation because the proxy never touches it.

Traced requests take the one deliberate exception: the proxy opens its
own span (tagged ``via``) under the client's context and appends it to
the reply's span list, so a merged trace shows edge time and upstream
time as separate children of the same ``rpc.call`` — requests are still
forwarded verbatim; only the *reply's* optional 5th element grows.

Multiple upstreams form a failover chain: transport-level failures
(connection refused/reset, timeouts, open breakers) advance to the next
upstream; remote *handler* errors are a property of the request, travel
back on the error channel, and are never retried here.
"""

from __future__ import annotations

from repro.errors import CircuitOpenError, RPCError, RPCTransportError
from repro.obs.trace import NULL_TRACER
from repro.rpc.msgpack import pack, unpack

__all__ = ["ForwardingHandler", "classify_frame"]

_REQUEST = 0
_RESPONSE = 1
_NOTIFY = 2

#: Failures that mean "this upstream, right now" rather than "this
#: request": the chain advances instead of reporting them.
FAILOVER_ERRORS = (RPCTransportError, CircuitOpenError)


def classify_frame(payload: bytes):
    """(kind, msgid, method, params, ctx, message) for one request frame.

    ``kind`` is ``"request"``, ``"notify"``, or ``"other"`` (malformed or
    unexpected frames — let the local server produce its usual protocol
    error).  ``ctx`` is the optional 5th-element dict, ``None`` when the
    frame is classic 4-element.
    """
    try:
        message = unpack(payload)
    except Exception:
        return ("other", None, None, None, None, None)
    if not isinstance(message, list) or not message:
        return ("other", None, None, None, None, message)
    if message[0] == _NOTIFY and len(message) == 3:
        return ("notify", None, message[1], message[2], None, message)
    if message[0] == _REQUEST and len(message) in (4, 5):
        ctx = message[4] if len(message) == 5 else None
        if ctx is not None and not isinstance(ctx, dict):
            return ("other", None, None, None, None, message)
        return ("request", message[1], message[2], message[3], ctx, message)
    return ("other", None, None, None, None, message)


class ForwardingHandler:
    """Relays raw request frames across a ranked chain of upstreams.

    Parameters
    ----------
    transports:
        Transport-likes in preference order; each must expose
        ``request(payload) -> bytes`` (and ``send`` for NOTIFY frames).
    tracer:
        Edge-side tracer.  With the default NULL_TRACER every forward is
        a pure byte relay; with a real tracer, *traced* requests gain the
        ``via``-tagged proxy span described in the module docstring.
    via:
        Value of the span's ``via`` attribute (``"edge"`` for the edge
        cache tier).
    counters:
        Optional dict of metric counters; ``forwards`` and
        ``upstream_errors`` are incremented when present.
    """

    def __init__(self, transports, tracer=None, via: str = "edge",
                 counters: dict | None = None):
        if not transports:
            raise RPCError("ForwardingHandler needs at least one upstream")
        self.transports = list(transports)
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.via = via
        self._counters = counters or {}

    # ------------------------------------------------------------------
    def _count(self, name: str) -> None:
        counter = self._counters.get(name)
        if counter is not None:
            counter.inc()

    def _request_upstream(self, payload: bytes) -> bytes:
        last_error = None
        for transport in self.transports:
            try:
                raw = transport.request(payload)
                self._count("forwards")
                return raw
            except FAILOVER_ERRORS as exc:
                self._count("upstream_errors")
                last_error = exc
        raise last_error

    # ------------------------------------------------------------------
    def forward(self, payload: bytes, message=None) -> bytes | None:
        """Relay one frame; returns the raw response (``None`` for NOTIFY).

        ``message`` is the already-unpacked frame when the caller has it
        (the edge dispatcher classifies frames anyway); passing it skips a
        second decode.

        Raises the last upstream transport error when every upstream in
        the chain fails — the caller turns that into a typed error reply.
        """
        if message is None:
            kind, _msgid, _method, _params, ctx, message = classify_frame(payload)
        else:
            ctx = message[4] if len(message) == 5 else None
            kind = "notify" if message[0] == _NOTIFY else "request"
        if kind == "notify":
            last_error = None
            for transport in self.transports:
                try:
                    transport.send(payload)
                    self._count("forwards")
                    return None
                except FAILOVER_ERRORS as exc:
                    self._count("upstream_errors")
                    last_error = exc
            raise last_error
        traced = (
            bool(self.tracer)
            and isinstance(ctx, dict)
            and ctx.get("trace_id") is not None
        )
        if not traced:
            return self._request_upstream(payload)
        method = message[2] if isinstance(message, list) and len(message) > 2 else None
        with self.tracer.activate(
            ctx, "rpc.forward", method=method, via=self.via
        ) as span:
            raw = self._request_upstream(payload)
        return self._append_span(raw, span)

    # ------------------------------------------------------------------
    def _append_span(self, raw: bytes, span) -> bytes:
        """Graft the proxy's span onto a response's span list."""
        span_dict = getattr(span, "to_dict", lambda: None)()
        if span_dict is None:
            return raw
        try:
            response = unpack(raw)
        except Exception:
            return raw
        if (
            not isinstance(response, list)
            or len(response) not in (4, 5)
            or response[0] != _RESPONSE
        ):
            return raw
        spans = list(response[4]) if len(response) == 5 else []
        spans.append(span_dict)
        return pack([response[0], response[1], response[2], response[3], spans])
