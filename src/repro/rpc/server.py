"""rpclib-style RPC server: register functions, dispatch msgpack-rpc frames.

Wire protocol (the msgpack-rpc convention rpclib implements):

* request:  ``[0, msgid, method, params]``
* response: ``[1, msgid, error, result]`` (``error`` is ``None`` on success,
  else a string carrying the remote exception text)
* notify:   ``[2, method, params]`` (no response)
"""

from __future__ import annotations

import traceback
from typing import Any, Callable

from repro.errors import FormatError, RPCError
from repro.rpc.msgpack import pack, unpack
from repro.rpc.transport import TCPServerTransport

__all__ = ["RPCServer"]

_REQUEST = 0
_RESPONSE = 1
_NOTIFY = 2


class RPCServer:
    """Holds a function registry and turns request frames into responses.

    Use :meth:`bind` to register handlers (or pass a dict), then either

    * hand :meth:`dispatch` to an :class:`~repro.rpc.transport.InProcessTransport`, or
    * call :meth:`serve_tcp` to listen on a socket.
    """

    def __init__(self, handlers: dict[str, Callable[..., Any]] | None = None):
        self._handlers: dict[str, Callable[..., Any]] = {}
        if handlers:
            for name, fn in handlers.items():
                self.bind(name, fn)

    def bind(self, name: str, fn: Callable[..., Any]) -> None:
        """Register ``fn`` under ``name`` (rpclib's ``srv.bind``)."""
        if not callable(fn):
            raise RPCError(f"handler for {name!r} is not callable")
        if name in self._handlers:
            raise RPCError(f"handler {name!r} already bound")
        self._handlers[name] = fn

    def handlers(self) -> list[str]:
        return sorted(self._handlers)

    # ------------------------------------------------------------------
    def dispatch(self, payload: bytes) -> bytes:
        """Decode one request frame, invoke the handler, encode the response."""
        try:
            message = unpack(payload)
        except FormatError as exc:
            return pack([_RESPONSE, 0, f"malformed request: {exc}", None])

        if (
            not isinstance(message, list)
            or len(message) < 3
            or message[0] not in (_REQUEST, _NOTIFY)
        ):
            return pack([_RESPONSE, 0, f"invalid rpc message: {message!r}", None])

        if message[0] == _NOTIFY:
            _, method, params = message
            self._invoke(method, params)
            return pack([_RESPONSE, 0, None, None])

        _, msgid, method, params = message
        error, result = self._invoke(method, params)
        return pack([_RESPONSE, msgid, error, result])

    def _invoke(self, method: Any, params: Any) -> tuple[str | None, Any]:
        if not isinstance(method, str) or method not in self._handlers:
            return (f"no such method: {method!r}", None)
        if not isinstance(params, list):
            return (f"params must be an array, got {type(params).__name__}", None)
        try:
            return (None, self._handlers[method](*params))
        except Exception:
            return (traceback.format_exc(limit=8), None)

    # ------------------------------------------------------------------
    def serve_tcp(self, host: str = "127.0.0.1", port: int = 0) -> TCPServerTransport:
        """Start a TCP listener feeding :meth:`dispatch`; returns it started."""
        return TCPServerTransport(self.dispatch, host=host, port=port).start()
