"""rpclib-style RPC server: register functions, dispatch msgpack-rpc frames.

Wire protocol (the msgpack-rpc convention rpclib implements):

* request:  ``[0, msgid, method, params]``, optionally followed by a ctx
  map as a fifth element carrying trace context (``"trace_id"``,
  ``"span_id"``) and/or a ``"deadline"`` budget in seconds
* response: ``[1, msgid, error, result]`` (``error`` is ``None`` on success,
  else a one-line ``ExcType: message`` string); when the request carried
  trace context *and* this server has a tracer, a fifth element lists
  the server-side span summaries for that request
* notify:   ``[2, method, params]`` (exactly 3 elements, **no** response)

Untraced clients send plain 4-element frames and always get 4-element
responses — the classic protocol is the zero-trace special case.  A ctx
map carrying only a deadline likewise gets a classic 4-element response.

Survivability: an optional :class:`~repro.rpc.admission.AdmissionController`
gates REQUEST dispatch — shed requests are answered immediately with a
``ServerOverloadedError`` line instead of queueing unboundedly — and a
request whose propagated deadline has already expired is rejected before
its handler runs (``DeadlineExpiredError``).  While a deadline-carrying
handler runs, the budget is active as a thread-local
:class:`~repro.rpc.admission.DeadlineScope`, so long handlers can abandon
doomed work between phases via ``check_deadline``.

Error contract: handler exceptions cross the wire as the stable
``ExcType: message`` line only.  The full server-side traceback never
leaves the process — it goes to the ``on_error`` hook (default: the
``repro.rpc.server`` logger), so operators keep the detail without
leaking internals (paths, line numbers, local state) to remote clients.
"""

from __future__ import annotations

import contextlib
import logging
import time
import traceback
from typing import Any, Callable

from repro.errors import FormatError, RPCError, ServerOverloadedError
from repro.obs.flightrec import NULL_RECORDER
from repro.obs.trace import NULL_TRACER
from repro.rpc.admission import AdmissionController, DeadlineScope
from repro.rpc.msgpack import pack, unpack
from repro.rpc.transport import TCPServerTransport

__all__ = ["RPCServer"]

_REQUEST = 0
_RESPONSE = 1
_NOTIFY = 2

_log = logging.getLogger("repro.rpc.server")


class RPCServer:
    """Holds a function registry and turns request frames into responses.

    Use :meth:`bind` to register handlers (or pass a dict), then either

    * hand :meth:`dispatch` to an :class:`~repro.rpc.transport.InProcessTransport`, or
    * call :meth:`serve_tcp` to listen on a socket.

    Parameters
    ----------
    handlers:
        Optional initial ``{name: callable}`` registry.
    on_error:
        Server-side sink for handler failures, called as
        ``on_error(method, exc, traceback_text)``.  Defaults to logging
        on the ``repro.rpc.server`` logger.  Hook failures are swallowed:
        observability must never take down the dispatch thread.
    tracer:
        Optional :class:`~repro.obs.trace.Tracer`.  When a request frame
        carries trace context, dispatch runs inside an ``rpc.dispatch``
        span parented under the remote caller, and every span the handler
        produced is shipped back in the response's fifth element.
    admission:
        Optional :class:`~repro.rpc.admission.AdmissionController`
        bounding concurrent REQUEST dispatch.  Shed and already-expired
        requests are answered with typed error lines without running the
        handler.  ``None`` (default) keeps the pre-admission behaviour.
    clock:
        Monotonic clock used for deadline scopes (tests inject a fake).
    recorder:
        Optional :class:`~repro.obs.flightrec.FlightRecorder`; every
        dispatched request records begin/end (or error/shed/expired)
        events with its tenant, so the last seconds of traffic are
        always reconstructable.  Defaults to the inert null recorder.
    slo:
        Optional :class:`~repro.obs.slo.SLOEngine`; every finished
        request feeds its tenant's latency/error windows (sheds count as
        errors — the client asked and was refused).
    slo_shed:
        When true *and* both ``slo`` and ``admission`` are present,
        requests from tenants currently burning their error budget are
        shed pre-dispatch while the admission gate is saturated —
        budget-burning tenants lose first under overload.
    ctx_counters:
        Optional ``{ctx_key: zero-arg callable}`` map.  When a REQUEST
        frame's ctx map carries one of these keys with a truthy value,
        the callable fires before dispatch — how replica-aware clients'
        ``hedge``/``failover`` attempt tags become server-side counters
        without widening any handler signature.
    """

    def __init__(
        self,
        handlers: dict[str, Callable[..., Any]] | None = None,
        on_error: Callable[[str, BaseException, str], None] | None = None,
        tracer=None,
        admission: AdmissionController | None = None,
        clock: Callable[[], float] = time.monotonic,
        recorder=None,
        slo=None,
        slo_shed: bool = False,
        ctx_counters: dict[str, Callable[[], Any]] | None = None,
    ):
        self._handlers: dict[str, Callable[..., Any]] = {}
        self._on_error = on_error
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.admission = admission
        self._clock = clock
        self.recorder = recorder if recorder is not None else NULL_RECORDER
        self.slo = slo
        self.slo_shed = bool(slo_shed)
        self.ctx_counters = dict(ctx_counters or {})
        if handlers:
            for name, fn in handlers.items():
                self.bind(name, fn)

    def bind(self, name: str, fn: Callable[..., Any]) -> None:
        """Register ``fn`` under ``name`` (rpclib's ``srv.bind``)."""
        if not callable(fn):
            raise RPCError(f"handler for {name!r} is not callable")
        if name in self._handlers:
            raise RPCError(f"handler {name!r} already bound")
        self._handlers[name] = fn

    def handlers(self) -> list[str]:
        return sorted(self._handlers)

    # ------------------------------------------------------------------
    def dispatch(self, payload: bytes) -> bytes | None:
        """Decode one frame, invoke the handler, encode the response.

        Returns ``None`` for NOTIFY frames — per msgpack-rpc a
        notification produces *no* response frame, and transports must
        not write one.  Malformed NOTIFY frames (wrong element count)
        are reported to the error hook and dropped instead of killing
        the connection thread.
        """
        try:
            message = unpack(payload)
        except FormatError as exc:
            return pack([_RESPONSE, 0, f"malformed request: {exc}", None])

        if (
            not isinstance(message, list)
            or not message
            or message[0] not in (_REQUEST, _NOTIFY)
        ):
            return pack([_RESPONSE, 0, f"invalid rpc message: {message!r}", None])

        if message[0] == _NOTIFY:
            if len(message) != 3:
                self._report_error(
                    "<notify>",
                    RPCError(f"notify frame must have 3 elements, got {len(message)}"),
                    f"invalid notify frame: {message!r}",
                )
                return None
            _, method, params = message
            self._invoke(method, params)
            return None

        if len(message) not in (4, 5):
            return pack(
                [_RESPONSE, 0,
                 f"request frame must have 4 or 5 elements, got {len(message)}",
                 None]
            )
        msgid, method, params = message[1], message[2], message[3]
        ctx = message[4] if len(message) == 5 else None
        budget = None
        tenant = "default"
        if isinstance(ctx, dict):
            if "deadline" in ctx:
                try:
                    budget = float(ctx["deadline"])
                except (TypeError, ValueError):
                    budget = None
            t = ctx.get("tenant")
            if isinstance(t, str) and t:
                tenant = t
            for flag, count in self.ctx_counters.items():
                if ctx.get(flag):
                    with contextlib.suppress(Exception):
                        count()
        method_name = method if isinstance(method, str) else repr(method)
        if self.recorder:
            self.recorder.record(
                "request.begin", method=method_name, msgid=msgid,
                tenant=tenant,
            )

        if self.admission is None:
            return self._respond(msgid, method, params, ctx, budget, tenant)
        if (
            self.slo_shed
            and self.slo is not None
            and self.admission.saturated()
            and self.slo.burning(tenant)
        ):
            # SLO-aware shedding: under saturation, a tenant torching its
            # error budget is refused before it costs anyone a slot.
            self.admission.record_shed()
            self.slo.record_slo_shed(tenant)
            error = (
                f"ServerOverloadedError: tenant {tenant!r} is burning its "
                f"error budget under overload; "
                f"retry_after={self.admission.retry_after}"
            )
            return self._shed_reply(msgid, method_name, tenant, error)
        try:
            self.admission.acquire()
        except ServerOverloadedError as exc:
            # Shed *before* any work: the whole point is answering fast.
            return self._shed_reply(
                msgid, method_name, tenant, f"ServerOverloadedError: {exc}"
            )
        try:
            return self._respond(msgid, method, params, ctx, budget, tenant)
        finally:
            self.admission.release()

    def _shed_reply(
        self, msgid: Any, method_name: str, tenant: str, error: str
    ) -> bytes:
        if self.recorder:
            self.recorder.record(
                "request.shed", method=method_name, msgid=msgid,
                tenant=tenant, error=error,
            )
        if self.slo is not None:
            self.slo.observe(tenant, 0.0, error=True)
        return pack([_RESPONSE, msgid, error, None])

    def _respond(
        self, msgid: Any, method: Any, params: Any, ctx: Any,
        budget: float | None, tenant: str = "default",
    ) -> bytes:
        """Run one admitted request with begin/end accounting around the
        deadline scope, trace capture, and invoke."""
        t0 = time.perf_counter()
        error, payload = self._respond_inner(msgid, method, params, ctx, budget)
        latency = time.perf_counter() - t0
        if self.recorder:
            method_name = method if isinstance(method, str) else repr(method)
            if error is None:
                self.recorder.record(
                    "request.end", method=method_name, msgid=msgid,
                    tenant=tenant, latency=latency,
                )
            else:
                kind = (
                    "deadline.expired"
                    if error.startswith("DeadlineExpiredError")
                    else "request.error"
                )
                self.recorder.record(
                    kind, method=method_name, msgid=msgid, tenant=tenant,
                    latency=latency, error=error,
                )
        if self.slo is not None:
            self.slo.observe(tenant, latency, error=error is not None)
        return payload

    def _respond_inner(
        self, msgid: Any, method: Any, params: Any, ctx: Any, budget: float | None
    ) -> tuple[str | None, bytes]:
        """Run one admitted request: deadline scope, trace capture, invoke."""
        if budget is not None and budget <= 0:
            self._count_expired()
            error = (
                "DeadlineExpiredError: request deadline already expired on "
                f"arrival (budget {budget:.3f}s); nothing attempted"
            )
            return error, pack([_RESPONSE, msgid, error, None])
        scope = (
            DeadlineScope(budget, clock=self._clock)
            if budget is not None
            else contextlib.nullcontext()
        )
        # Trace path whenever a tracer is present and the ctx is not a
        # plain map lacking trace context: real trace ctx gets a remote
        # parent, malformed ctx gets a fresh local root (tolerated by
        # ``activate``), but a deadline-only map stays on the classic
        # 4-element path — deadline clients aren't opted into spans.
        traced = bool(self.tracer) and ctx is not None and not (
            isinstance(ctx, dict) and "trace_id" not in ctx
        )
        with scope:
            if not traced:
                error, result = self._invoke(method, params)
                if error is not None and error.startswith("DeadlineExpiredError"):
                    self._count_expired()
                return error, pack([_RESPONSE, msgid, error, result])
            with self.tracer.collect() as captured:
                with self.tracer.activate(
                    ctx, "rpc.dispatch",
                    method=method if isinstance(method, str) else repr(method),
                ) as dispatch_span:
                    error, result = self._invoke(method, params)
                    if error is not None:
                        # _invoke swallows handler exceptions into the error
                        # string; mirror it onto the span so the trace shows
                        # the failing dispatch, not a clean one.
                        dispatch_span.error = str(error)
        if error is not None and error.startswith("DeadlineExpiredError"):
            self._count_expired()
        spans = [span.to_dict() for span in captured.spans]
        return error, pack([_RESPONSE, msgid, error, result, spans])

    def _count_expired(self) -> None:
        if self.admission is not None:
            self.admission.record_expired()

    def _invoke(self, method: Any, params: Any) -> tuple[str | None, Any]:
        if not isinstance(method, str) or method not in self._handlers:
            return (f"no such method: {method!r}", None)
        if not isinstance(params, list):
            return (f"params must be an array, got {type(params).__name__}", None)
        try:
            return (None, self._handlers[method](*params))
        except Exception as exc:
            self._report_error(method, exc, traceback.format_exc(limit=8))
            # Stable wire contract: type + message only, never the traceback.
            return (f"{type(exc).__name__}: {exc}", None)

    def _report_error(self, method: str, exc: BaseException, tb_text: str) -> None:
        if self._on_error is not None:
            try:
                self._on_error(method, exc, tb_text)
            except Exception:
                _log.exception("rpc on_error hook failed for %r", method)
            return
        _log.error("handler %r raised:\n%s", method, tb_text)

    # ------------------------------------------------------------------
    def serve_tcp(self, host: str = "127.0.0.1", port: int = 0) -> TCPServerTransport:
        """Start a TCP listener feeding :meth:`dispatch`; returns it started."""
        return TCPServerTransport(self.dispatch, host=host, port=port).start()

    def serve_async_tcp(self, host: str = "127.0.0.1", port: int = 0,
                        workers: int = 8, scheduler=None,
                        max_connections: int | None = None):
        """Event-loop variant of :meth:`serve_tcp`: pipelined, multiplexed.

        One I/O thread owns every connection and ``workers`` threads run
        dispatch (or pass a configured
        :class:`~repro.rpc.fairshare.FairScheduler` for per-tenant fair
        queuing).  Same wire protocol, same handlers — a classic client
        cannot tell the difference except that pipelined requests overlap.
        """
        from repro.rpc.mux import AsyncServerTransport

        return AsyncServerTransport(
            self.dispatch, host=host, port=port, workers=workers,
            scheduler=scheduler, max_connections=max_connections,
        ).start()
