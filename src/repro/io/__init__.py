"""File formats: the VGF grid format, pipeline reader/writer, image output.

VGF ("Visualization Grid Format") is this library's stand-in for VTK data
files: a binary container holding a uniform grid's structure plus named
data arrays, each independently compressed with a registered codec.  Its
two properties the paper's evaluation depends on:

* **array selection** — each array is a separately addressable block, so a
  reader fetches only the arrays a pipeline asks for (paper Sec. I);
* **per-array compression** — blocks are stored through any registered
  codec (``raw``/``gzip``/``lz4``/...), matching VTK's native GZip/LZ4
  support (paper Sec. IV).
"""

from repro.io.catalog import CatalogEntry, ClusterCatalog, TimestepCatalog
from repro.io.checksum import DEFAULT_ALGO, checksum
from repro.io.ppm import write_ppm
from repro.io.reader import GridReader
from repro.io.vgf import (
    VGFInfo,
    read_vgf,
    read_vgf_array,
    read_vgf_info,
    verify_vgf,
    write_vgf,
)
from repro.io.writer import GridWriter

__all__ = [
    "write_vgf",
    "read_vgf",
    "read_vgf_info",
    "read_vgf_array",
    "verify_vgf",
    "checksum",
    "DEFAULT_ALGO",
    "VGFInfo",
    "GridReader",
    "GridWriter",
    "write_ppm",
    "TimestepCatalog",
    "CatalogEntry",
    "ClusterCatalog",
]
