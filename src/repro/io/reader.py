"""Pipeline source that reads VGF grids, with array selection.

The equivalent of the paper's "VTK reader that acts as a source of the
pipeline" (Sec. III), including the array-selection interface that limits
transfer "to just these two arrays".
"""

from __future__ import annotations

from typing import Callable

from repro.errors import PipelineError
from repro.io.vgf import read_vgf
from repro.pipeline.source import Source

__all__ = ["GridReader"]


class GridReader(Source):
    """Reads a :class:`~repro.grid.uniform.UniformGrid` from a VGF source.

    Parameters
    ----------
    opener:
        Zero-argument callable returning bytes or a seekable binary file
        (e.g. ``lambda: fs.open(key)`` over an
        :class:`~repro.storage.s3fs.S3FileSystem`).  A callable rather
        than a handle so every pipeline re-execution re-reads the source.
    array_names:
        Optional array selection; ``None`` loads every array.
    """

    def __init__(self, opener: Callable[[], object] | None = None,
                 array_names: list[str] | None = None):
        super().__init__()
        self._opener = opener
        self._array_names = list(array_names) if array_names is not None else None

    def set_opener(self, opener: Callable[[], object]) -> None:
        self._opener = opener
        self.modified()

    def set_array_selection(self, array_names: list[str] | None) -> None:
        """Restrict (or with ``None``, reset) which arrays are loaded."""
        self._array_names = list(array_names) if array_names is not None else None
        self.modified()

    @property
    def array_selection(self) -> list[str] | None:
        return None if self._array_names is None else list(self._array_names)

    def _execute(self):
        if self._opener is None:
            raise PipelineError("GridReader has no opener configured")
        source = self._opener()
        try:
            return read_vgf(source, self._array_names)
        finally:
            close = getattr(source, "close", None)
            if close is not None and not isinstance(source, (bytes, bytearray)):
                close()
