"""Timestep catalogs: ordered access to a simulation's stored outputs.

The paper's workflows iterate "a series of simulation timesteps" stored
as one file each (Sec. III/VI).  :class:`TimestepCatalog` lifts that
pattern out of string formatting: scan a mount for VGF objects, read
their ``timestep`` metadata, and expose ordered, time-addressed access —
the bookkeeping half of every movie example and bench.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import FormatError, ReproError
from repro.io.vgf import VGFInfo, read_vgf, read_vgf_info

__all__ = ["TimestepCatalog", "CatalogEntry", "ClusterCatalog"]


@dataclass(frozen=True)
class CatalogEntry:
    """One discovered timestep object."""

    key: str
    timestep: int
    info: VGFInfo

    @property
    def array_names(self) -> list[str]:
        return self.info.array_names()


class TimestepCatalog:
    """Scan a mount for VGF timesteps and serve them in time order.

    Parameters
    ----------
    fs:
        An :class:`~repro.storage.s3fs.S3FileSystem` (local or remote).
    prefix:
        Restrict the scan to keys under this prefix.

    Objects without a ``timestep`` entry in their header metadata are
    skipped (they are not simulation outputs); non-VGF objects are skipped
    silently too, so catalogs coexist with precomputed-selection objects
    (``*.sel/...``) in the same bucket.
    """

    def __init__(self, fs, prefix: str = ""):
        self.fs = fs
        self.prefix = prefix
        self._entries: list[CatalogEntry] = []
        self.refresh()

    # ------------------------------------------------------------------
    def refresh(self) -> None:
        """Re-scan the store."""
        entries = []
        for key in self.fs.listdir(self.prefix):
            try:
                with self.fs.open(key) as fh:
                    info = read_vgf_info(fh)
            except FormatError:
                continue  # not a VGF object
            step = info.meta.get("timestep")
            if not isinstance(step, int):
                continue
            entries.append(CatalogEntry(key, step, info))
        entries.sort(key=lambda e: (e.timestep, e.key))
        steps = [e.timestep for e in entries]
        if len(set(steps)) != len(steps):
            dupes = sorted({s for s in steps if steps.count(s) > 1})
            raise ReproError(f"duplicate timesteps in catalog: {dupes}")
        self._entries = entries

    # ------------------------------------------------------------------
    @property
    def timesteps(self) -> list[int]:
        return [e.timestep for e in self._entries]

    def __len__(self) -> int:
        return len(self._entries)

    def __iter__(self):
        return iter(self._entries)

    def entry(self, timestep: int) -> CatalogEntry:
        for e in self._entries:
            if e.timestep == timestep:
                return e
        raise ReproError(
            f"no timestep {timestep} in catalog; have {self.timesteps}"
        )

    def nearest(self, timestep: int) -> CatalogEntry:
        """The entry whose timestep is closest to ``timestep``."""
        if not self._entries:
            raise ReproError("catalog is empty")
        return min(self._entries, key=lambda e: abs(e.timestep - timestep))

    def load(self, timestep: int, array_names: list[str] | None = None):
        """Read the grid for ``timestep`` (with array selection)."""
        entry = self.entry(timestep)
        with self.fs.open(entry.key) as fh:
            return read_vgf(fh, array_names)


class ClusterCatalog:
    """Scan a mount for shard manifests and serve them by key.

    The cluster-side sibling of :class:`TimestepCatalog`: where that one
    discovers monolithic timestep objects, this one discovers sharded
    datasets via their ``*.manifest.json`` objects (see
    :mod:`repro.cluster.manifest`).  Both coexist over one bucket —
    manifests are JSON and fail the VGF sniff, block objects carry no
    ``timestep`` metadata, so neither catalog picks up the other's
    objects.

    Parameters
    ----------
    fs:
        An :class:`~repro.storage.s3fs.S3FileSystem` (local or remote).
    prefix:
        Restrict the scan to keys under this prefix.
    sign_key:
        HMAC key for manifests signed with one; manifests that fail
        verification raise :class:`~repro.errors.IntegrityError` rather
        than being skipped — a tampered manifest is an error, not noise.
    """

    #: Key suffix that marks a manifest object (kept in sync with
    #: :data:`repro.cluster.manifest.MANIFEST_SUFFIX`).
    SUFFIX = ".manifest.json"

    def __init__(self, fs, prefix: str = "", sign_key: bytes | None = None):
        self.fs = fs
        self.prefix = prefix
        self.sign_key = sign_key
        self._manifests: dict = {}
        self.refresh()

    def refresh(self) -> None:
        """Re-scan the store for manifest objects."""
        # Local import: repro.cluster sits above repro.io in the layer
        # stack (it imports the VGF reader), so the io package must not
        # import it at module load.
        from repro.cluster.manifest import load_manifest

        manifests = {}
        for key in self.fs.listdir(self.prefix):
            if not key.endswith(self.SUFFIX):
                continue
            try:
                manifests[key] = load_manifest(
                    self.fs, key, sign_key=self.sign_key
                )
            except FormatError as exc:
                # IntegrityError subclasses FormatError; re-raise it —
                # only genuinely-not-a-manifest objects are skipped.
                from repro.errors import IntegrityError

                if isinstance(exc, IntegrityError):
                    raise
                continue
        self._manifests = manifests

    @property
    def keys(self) -> list[str]:
        return sorted(self._manifests)

    def __len__(self) -> int:
        return len(self._manifests)

    def __iter__(self):
        return iter(self.manifests)

    @property
    def manifests(self) -> list:
        return [self._manifests[k] for k in self.keys]

    def manifest(self, key: str):
        """The manifest stored at ``key``."""
        if key not in self._manifests:
            raise ReproError(
                f"no shard manifest {key!r} in catalog; have {self.keys}"
            )
        return self._manifests[key]
