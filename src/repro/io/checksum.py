"""Checksum engines for at-rest and on-the-wire integrity.

A bit-flip in a stored VGF block or in an encoded pre-filter reply must
surface as a typed :class:`~repro.errors.IntegrityError`, never as
silently-wrong geometry.  Every checksum in the system goes through
:func:`checksum` here, and every stored/wire checksum is tagged with the
*algorithm name* that produced it, so readers verify with whatever the
writer used.

Two engines:

* ``"crc32"`` — :func:`zlib.crc32`; C speed (~GB/s), always available.
* ``"crc32c"`` — the Castagnoli polynomial (what S3, gRPC, and ext4 use).
  Uses the native ``crc32c`` package when the environment has it;
  otherwise a pure-Python table fallback keeps *reading* foreign
  crc32c-tagged files correct (slow, so it is never picked as the
  default writer algorithm without native support).

:data:`DEFAULT_ALGO` is what writers use: ``crc32c`` when a native
implementation is importable, else ``crc32``.  Both detect all
single-bit flips and all burst errors up to 32 bits, which covers the
fault model (seeded bit-flips on backend reads, byte corruption on the
RPC hop).
"""

from __future__ import annotations

import zlib

from repro.errors import IntegrityError

__all__ = ["checksum", "verify", "available", "DEFAULT_ALGO"]


def _crc32(data: bytes, value: int = 0) -> int:
    return zlib.crc32(data, value) & 0xFFFFFFFF


# -- crc32c (Castagnoli), pure-Python fallback ------------------------------

_CRC32C_POLY = 0x82F63B78  # reflected 0x1EDC6F41


def _make_crc32c_table() -> list[int]:
    table = []
    for byte in range(256):
        crc = byte
        for _ in range(8):
            crc = (crc >> 1) ^ _CRC32C_POLY if crc & 1 else crc >> 1
        table.append(crc)
    return table


_CRC32C_TABLE = _make_crc32c_table()


def _crc32c_py(data: bytes, value: int = 0) -> int:
    crc = value ^ 0xFFFFFFFF
    table = _CRC32C_TABLE
    for byte in data:
        crc = table[(crc ^ byte) & 0xFF] ^ (crc >> 8)
    return crc ^ 0xFFFFFFFF


try:  # native implementation, if the environment happens to have one
    import crc32c as _native_crc32c  # type: ignore

    def _crc32c(data: bytes, value: int = 0) -> int:
        return _native_crc32c.crc32c(data, value) & 0xFFFFFFFF

    _HAVE_NATIVE_CRC32C = True
except ImportError:
    _crc32c = _crc32c_py
    _HAVE_NATIVE_CRC32C = False


_ENGINES = {
    "crc32": _crc32,
    "crc32c": _crc32c,
}

#: Writer-side default: fastest engine that is honest about its name.
DEFAULT_ALGO = "crc32c" if _HAVE_NATIVE_CRC32C else "crc32"


def available() -> tuple[str, ...]:
    """Names accepted by :func:`checksum`."""
    return tuple(sorted(_ENGINES))


def checksum(data: bytes, algo: str = DEFAULT_ALGO, value: int = 0) -> int:
    """Checksum ``data`` with the named engine (chainable via ``value``)."""
    try:
        engine = _ENGINES[algo]
    except KeyError:
        raise IntegrityError(
            f"unknown checksum algorithm {algo!r}; available: {available()}"
        ) from None
    return engine(bytes(data) if isinstance(data, (bytearray, memoryview)) else data,
                  value)


def verify(data: bytes, expected: int, algo: str, what: str = "payload") -> None:
    """Raise :class:`~repro.errors.IntegrityError` unless ``data`` matches."""
    actual = checksum(data, algo)
    if actual != int(expected):
        raise IntegrityError(
            f"{what}: {algo} mismatch (stored {int(expected):#010x}, "
            f"computed {actual:#010x}) — data corrupted at rest or in flight"
        )
