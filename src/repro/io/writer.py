"""Pipeline sink that writes grids to VGF through a writer callback."""

from __future__ import annotations

from typing import Callable

from repro.errors import PipelineError
from repro.grid.uniform import UniformGrid
from repro.io.vgf import write_vgf
from repro.pipeline.sink import Sink

__all__ = ["GridWriter"]


class GridWriter(Sink):
    """Serializes incoming grids to VGF and hands the bytes to ``writer``.

    Parameters
    ----------
    writer:
        Callable receiving the serialized bytes, e.g.
        ``lambda data: fs.write_object(key, data)`` or a local-file write.
    codec:
        Codec name or per-array dict, forwarded to
        :func:`~repro.io.vgf.write_vgf`.
    meta:
        Header metadata dict.
    """

    def __init__(self, writer: Callable[[bytes], None] | None = None,
                 codec: str | dict = "raw", meta: dict | None = None):
        super().__init__()
        self._writer = writer
        self._codec = codec
        self._meta = meta

    def set_writer(self, writer: Callable[[bytes], None]) -> None:
        self._writer = writer
        self.modified()

    def set_codec(self, codec: str | dict) -> None:
        self._codec = codec
        self.modified()

    def _consume(self, grid: UniformGrid) -> None:
        if self._writer is None:
            raise PipelineError("GridWriter has no writer configured")
        if not isinstance(grid, UniformGrid):
            raise PipelineError(
                f"GridWriter expects a UniformGrid, got {type(grid).__name__}"
            )
        self._writer(write_vgf(grid, codec=self._codec, meta=self._meta))
