"""VGF: a binary uniform-grid container with per-array compressed blocks.

Layout::

    b"VGF1"                       magic, 4 bytes
    uint32 LE                     header length H
    H bytes                       MessagePack header (see below)
    data section                  concatenated array blocks

Header map::

    {
      "dims":    [nx, ny, nz],
      "origin":  [x, y, z],
      "spacing": [sx, sy, sz],
      "meta":    {...},                       # free-form user metadata
      "arrays":  [ {"name": str, "dtype": str, "components": int,
                    "association": "point"|"cell", "codec": str,
                    "offset": int,            # into the data section
                    "stored_bytes": int,      # compressed block size
                    "raw_bytes": int},        # decompressed payload size
                   ... ]
    }

Reading an array needs only the header plus one ranged read of its block —
which is what makes array selection genuinely cheap through the s3fs
layer: unselected arrays' bytes never leave the store.
"""

from __future__ import annotations

import io as _io
import struct
from dataclasses import dataclass

import numpy as np

from repro.compression import get_codec
from repro.errors import CodecError, FormatError
from repro.grid.array import DataArray
from repro.grid.rectilinear import RectilinearGrid
from repro.grid.uniform import UniformGrid
from repro.rpc.msgpack import pack, unpack

__all__ = [
    "write_vgf",
    "read_vgf",
    "read_vgf_info",
    "read_vgf_array",
    "VGFInfo",
    "ArrayInfo",
]

_MAGIC = b"VGF1"
_LEN = struct.Struct("<I")


@dataclass(frozen=True)
class ArrayInfo:
    """Descriptor of one stored array block."""

    name: str
    dtype: str
    components: int
    association: str
    codec: str
    offset: int
    stored_bytes: int
    raw_bytes: int


@dataclass(frozen=True)
class VGFInfo:
    """Decoded VGF header: grid structure plus array descriptors."""

    dims: tuple[int, int, int]
    origin: tuple[float, float, float]
    spacing: tuple[float, float, float]
    meta: dict
    arrays: tuple[ArrayInfo, ...]
    data_start: int  # absolute file offset of the data section
    axes: tuple | None = None  # rectilinear per-axis coordinates

    def make_grid(self):
        """An empty grid of the stored structure (uniform or rectilinear)."""
        if self.axes is not None:
            return RectilinearGrid(*self.axes)
        return UniformGrid(self.dims, self.origin, self.spacing)

    def array(self, name: str) -> ArrayInfo:
        for info in self.arrays:
            if info.name == name:
                return info
        raise FormatError(
            f"no array {name!r} in file; available: {[a.name for a in self.arrays]}"
        )

    def array_names(self) -> list[str]:
        return [a.name for a in self.arrays]


# ---------------------------------------------------------------------------
# Writing
# ---------------------------------------------------------------------------


def write_vgf(
    grid,
    codec: str | dict[str, str] = "raw",
    meta: dict | None = None,
) -> bytes:
    """Serialize a grid to VGF bytes.

    Parameters
    ----------
    grid:
        The :class:`UniformGrid` or :class:`RectilinearGrid` to store
        (point and cell arrays included).
    codec:
        A codec name applied to every array, or a ``{array_name: codec}``
        dict (unlisted arrays fall back to ``"raw"``).
    meta:
        Free-form metadata stored in the header (e.g. timestep number).
    """

    def codec_for(name: str) -> str:
        if isinstance(codec, str):
            return codec
        return codec.get(name, "raw")

    blocks: list[bytes] = []
    array_entries: list[dict] = []
    offset = 0
    for association, collection in (("point", grid.point_data), ("cell", grid.cell_data)):
        for arr in collection:
            cname = codec_for(arr.name)
            payload = np.ascontiguousarray(arr.values).tobytes()
            stored = get_codec(cname).compress(payload)
            blocks.append(stored)
            array_entries.append(
                {
                    "name": arr.name,
                    "dtype": arr.values.dtype.str,
                    "components": arr.components,
                    "association": association,
                    "codec": cname,
                    "offset": offset,
                    "stored_bytes": len(stored),
                    "raw_bytes": len(payload),
                }
            )
            offset += len(stored)

    header_map = {
        "dims": list(grid.dims),
        "meta": meta or {},
        "arrays": array_entries,
    }
    if isinstance(grid, RectilinearGrid):
        header_map["origin"] = [0.0, 0.0, 0.0]
        header_map["spacing"] = [1.0, 1.0, 1.0]
        header_map["axes"] = [
            np.ascontiguousarray(a, dtype=np.float64).tobytes() for a in grid.axes
        ]
    else:
        header_map["origin"] = list(grid.origin)
        header_map["spacing"] = list(grid.spacing)
    header = pack(header_map)
    return _MAGIC + _LEN.pack(len(header)) + header + b"".join(blocks)


# ---------------------------------------------------------------------------
# Reading
# ---------------------------------------------------------------------------


def _open(source) -> _io.IOBase:
    """Accept bytes or a seekable binary file-like object."""
    if isinstance(source, (bytes, bytearray, memoryview)):
        return _io.BytesIO(bytes(source))
    return source


def read_vgf_info(source) -> VGFInfo:
    """Read and decode the header only (one small read + header read)."""
    fh = _open(source)
    fh.seek(0)
    prefix = fh.read(len(_MAGIC) + _LEN.size)
    if len(prefix) < len(_MAGIC) + _LEN.size or prefix[: len(_MAGIC)] != _MAGIC:
        raise FormatError("not a VGF file (bad magic)")
    (hlen,) = _LEN.unpack(prefix[len(_MAGIC) :])
    header_bytes = fh.read(hlen)
    if len(header_bytes) != hlen:
        raise FormatError("truncated VGF header")
    header = unpack(header_bytes)
    try:
        arrays = tuple(
            ArrayInfo(
                name=e["name"],
                dtype=e["dtype"],
                components=int(e["components"]),
                association=e["association"],
                codec=e["codec"],
                offset=int(e["offset"]),
                stored_bytes=int(e["stored_bytes"]),
                raw_bytes=int(e["raw_bytes"]),
            )
            for e in header["arrays"]
        )
        axes = None
        if "axes" in header:
            axes = tuple(
                np.frombuffer(blob, dtype=np.float64) for blob in header["axes"]
            )
        info = VGFInfo(
            dims=tuple(int(v) for v in header["dims"]),
            origin=tuple(float(v) for v in header["origin"]),
            spacing=tuple(float(v) for v in header["spacing"]),
            meta=header["meta"],
            arrays=arrays,
            data_start=len(_MAGIC) + _LEN.size + hlen,
            axes=axes,
        )
    except (KeyError, TypeError, ValueError) as exc:
        raise FormatError(f"malformed VGF header: {exc}") from exc
    return info


def read_vgf_array(
    source, name: str, info: VGFInfo | None = None
) -> tuple[DataArray, ArrayInfo]:
    """Read one array block (a single ranged read) and decode it."""
    fh = _open(source)
    if info is None:
        info = read_vgf_info(fh)
    entry = info.array(name)
    fh.seek(info.data_start + entry.offset)
    stored = fh.read(entry.stored_bytes)
    if len(stored) != entry.stored_bytes:
        raise FormatError(f"truncated block for array {name!r}")
    try:
        payload = get_codec(entry.codec).decompress(stored)
    except CodecError as exc:
        raise FormatError(
            f"array {name!r}: corrupt {entry.codec} block: {exc}"
        ) from exc
    if len(payload) != entry.raw_bytes:
        raise FormatError(
            f"array {name!r}: decoded {len(payload)} bytes, header says "
            f"{entry.raw_bytes}"
        )
    values = np.frombuffer(payload, dtype=np.dtype(entry.dtype)).copy()
    return DataArray(entry.name, values, components=entry.components), entry


def read_vgf(source, array_names: list[str] | None = None):
    """Read a grid, optionally restricted to selected arrays.

    ``array_names=None`` loads everything; otherwise only the named arrays
    are fetched and decoded — the format's array-selection fast path.
    Returns a :class:`UniformGrid` or :class:`RectilinearGrid` according
    to the stored structure.
    """
    fh = _open(source)
    info = read_vgf_info(fh)
    grid = info.make_grid()
    wanted = info.array_names() if array_names is None else list(array_names)
    for name in wanted:
        arr, entry = read_vgf_array(fh, name, info)
        if entry.association == "cell":
            grid.cell_data.add(arr)
        else:
            grid.point_data.add(arr)
    return grid
