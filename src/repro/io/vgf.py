"""VGF: a binary uniform-grid container with per-array compressed blocks.

Layout::

    b"VGF1"                       magic, 4 bytes
    uint32 LE                     header length H
    H bytes                       MessagePack header (see below)
    data section                  concatenated array blocks

Header map::

    {
      "dims":    [nx, ny, nz],
      "origin":  [x, y, z],
      "spacing": [sx, sy, sz],
      "meta":    {...},                       # free-form user metadata
      "arrays":  [ {"name": str, "dtype": str, "components": int,
                    "association": "point"|"cell", "codec": str,
                    "offset": int,            # into the data section
                    "stored_bytes": int,      # compressed block size
                    "raw_bytes": int,         # decompressed payload size
                    "crc": int,               # checksum of the stored block
                    "crc_algo": str},         # engine that produced it
                   ... ],
      "header_crc": int                       # self-check, see below
    }

Reading an array needs only the header plus one ranged read of its block —
which is what makes array selection genuinely cheap through the s3fs
layer: unselected arrays' bytes never leave the store.

Integrity: each array block carries a checksum over its *stored*
(compressed) bytes — computed before anything crosses a link, verified on
every read — and the header protects itself with ``header_crc``, a
checksum over the canonical MessagePack encoding of the header map minus
that one key (our encoder is deterministic and round-trips its own
output byte-for-byte, so the reader re-packs and compares).  A bit-flip
anywhere in a checksummed file therefore surfaces as
:class:`~repro.errors.IntegrityError` / :class:`~repro.errors.FormatError`,
never as silently-wrong geometry.  Both keys are optional: files written
before checksums existed (or with ``checksums=False``) still load.
"""

from __future__ import annotations

import io as _io
import struct
from dataclasses import dataclass

import numpy as np

from repro.compression import get_codec
from repro.errors import CodecError, FormatError, IntegrityError
from repro.grid.array import DataArray
from repro.grid.rectilinear import RectilinearGrid
from repro.grid.uniform import UniformGrid
from repro.io.checksum import DEFAULT_ALGO, checksum
from repro.io.checksum import verify as verify_bytes
from repro.rpc.msgpack import pack, unpack

__all__ = [
    "write_vgf",
    "read_vgf",
    "read_vgf_info",
    "read_vgf_array",
    "read_vgf_block",
    "verify_vgf",
    "VGFInfo",
    "ArrayInfo",
]

_MAGIC = b"VGF1"
_LEN = struct.Struct("<I")


@dataclass(frozen=True)
class ArrayInfo:
    """Descriptor of one stored array block."""

    name: str
    dtype: str
    components: int
    association: str
    codec: str
    offset: int
    stored_bytes: int
    raw_bytes: int
    checksum: int | None = None  # over the *stored* (compressed) block
    checksum_algo: str | None = None


@dataclass(frozen=True)
class VGFInfo:
    """Decoded VGF header: grid structure plus array descriptors."""

    dims: tuple[int, int, int]
    origin: tuple[float, float, float]
    spacing: tuple[float, float, float]
    meta: dict
    arrays: tuple[ArrayInfo, ...]
    data_start: int  # absolute file offset of the data section
    axes: tuple | None = None  # rectilinear per-axis coordinates

    def make_grid(self):
        """An empty grid of the stored structure (uniform or rectilinear)."""
        if self.axes is not None:
            return RectilinearGrid(*self.axes)
        return UniformGrid(self.dims, self.origin, self.spacing)

    def array(self, name: str) -> ArrayInfo:
        for info in self.arrays:
            if info.name == name:
                return info
        raise FormatError(
            f"no array {name!r} in file; available: {[a.name for a in self.arrays]}"
        )

    def array_names(self) -> list[str]:
        return [a.name for a in self.arrays]


# ---------------------------------------------------------------------------
# Writing
# ---------------------------------------------------------------------------


def write_vgf(
    grid,
    codec: str | dict[str, str] = "raw",
    meta: dict | None = None,
    checksums: bool = True,
) -> bytes:
    """Serialize a grid to VGF bytes.

    Parameters
    ----------
    grid:
        The :class:`UniformGrid` or :class:`RectilinearGrid` to store
        (point and cell arrays included).
    codec:
        A codec name applied to every array, or a ``{array_name: codec}``
        dict (unlisted arrays fall back to ``"raw"``).
    meta:
        Free-form metadata stored in the header (e.g. timestep number).
    checksums:
        Write per-array block checksums plus the header self-check
        (default).  ``False`` reproduces the pre-checksum format
        byte-for-byte — kept for wire/file compatibility tests.
    """

    def codec_for(name: str) -> str:
        if isinstance(codec, str):
            return codec
        return codec.get(name, "raw")

    blocks: list[bytes] = []
    array_entries: list[dict] = []
    offset = 0
    for association, collection in (("point", grid.point_data), ("cell", grid.cell_data)):
        for arr in collection:
            cname = codec_for(arr.name)
            payload = np.ascontiguousarray(arr.values).tobytes()
            stored = get_codec(cname).compress(payload)
            blocks.append(stored)
            entry = {
                "name": arr.name,
                "dtype": arr.values.dtype.str,
                "components": arr.components,
                "association": association,
                "codec": cname,
                "offset": offset,
                "stored_bytes": len(stored),
                "raw_bytes": len(payload),
            }
            if checksums:
                entry["crc"] = checksum(stored)
                entry["crc_algo"] = DEFAULT_ALGO
            array_entries.append(entry)
            offset += len(stored)

    header_map = {
        "dims": list(grid.dims),
        "meta": meta or {},
        "arrays": array_entries,
    }
    if isinstance(grid, RectilinearGrid):
        header_map["origin"] = [0.0, 0.0, 0.0]
        header_map["spacing"] = [1.0, 1.0, 1.0]
        header_map["axes"] = [
            np.ascontiguousarray(a, dtype=np.float64).tobytes() for a in grid.axes
        ]
    else:
        header_map["origin"] = list(grid.origin)
        header_map["spacing"] = list(grid.spacing)
    if checksums:
        # Self-check over the header minus the "header_crc" key: pack,
        # digest, append last.  The reader pops that key, re-packs the rest
        # (our encoder is deterministic) and compares.
        header_map["header_crc_algo"] = DEFAULT_ALGO
        header_map["header_crc"] = checksum(pack(header_map))
    header = pack(header_map)
    return _MAGIC + _LEN.pack(len(header)) + header + b"".join(blocks)


# ---------------------------------------------------------------------------
# Reading
# ---------------------------------------------------------------------------


def _open(source) -> _io.IOBase:
    """Accept bytes or a seekable binary file-like object."""
    if isinstance(source, (bytes, bytearray, memoryview)):
        return _io.BytesIO(bytes(source))
    return source


def read_vgf_info(source) -> VGFInfo:
    """Read and decode the header only (one small read + header read)."""
    fh = _open(source)
    fh.seek(0)
    prefix = fh.read(len(_MAGIC) + _LEN.size)
    if len(prefix) < len(_MAGIC) + _LEN.size or prefix[: len(_MAGIC)] != _MAGIC:
        raise FormatError("not a VGF file (bad magic)")
    (hlen,) = _LEN.unpack(prefix[len(_MAGIC) :])
    header_bytes = fh.read(hlen)
    if len(header_bytes) != hlen:
        raise FormatError("truncated VGF header")
    try:
        # zero_copy: axes blobs decode as views over header_bytes, so
        # np.frombuffer below never duplicates the coordinate arrays.
        header = unpack(header_bytes, zero_copy=True)
    except FormatError as exc:
        raise FormatError(f"undecodable VGF header: {exc}") from exc
    if not isinstance(header, dict):
        raise FormatError("malformed VGF header: not a map")
    if "header_crc" in header:
        # Re-pack everything except the trailing self-check key (dict order
        # is preserved by unpack, and pack round-trips deterministically).
        stated = header.pop("header_crc")
        algo = header.get("header_crc_algo", DEFAULT_ALGO)
        verify_bytes(pack(header), stated, algo, "VGF header")
    try:
        arrays = tuple(
            ArrayInfo(
                name=e["name"],
                dtype=e["dtype"],
                components=int(e["components"]),
                association=e["association"],
                codec=e["codec"],
                offset=int(e["offset"]),
                stored_bytes=int(e["stored_bytes"]),
                raw_bytes=int(e["raw_bytes"]),
                checksum=int(e["crc"]) if "crc" in e else None,
                checksum_algo=e.get("crc_algo"),
            )
            for e in header["arrays"]
        )
        axes = None
        if "axes" in header:
            axes = tuple(
                np.frombuffer(blob, dtype=np.float64) for blob in header["axes"]
            )
        info = VGFInfo(
            dims=tuple(int(v) for v in header["dims"]),
            origin=tuple(float(v) for v in header["origin"]),
            spacing=tuple(float(v) for v in header["spacing"]),
            meta=header["meta"],
            arrays=arrays,
            data_start=len(_MAGIC) + _LEN.size + hlen,
            axes=axes,
        )
    except (KeyError, TypeError, ValueError) as exc:
        raise FormatError(f"malformed VGF header: {exc}") from exc
    return info


def read_vgf_block(
    source, name: str, info: VGFInfo | None = None, verify: bool = True
) -> tuple[bytes, ArrayInfo]:
    """Read one array's *stored* (still-compressed) block, unverified decode.

    The single ranged read shared by :func:`read_vgf_array` and the
    fused streaming scan (which feeds the block to the codec's
    incremental decoder instead of materializing the decoded array).
    Checksum verification over the stored bytes happens here, so every
    consumer gets the same integrity guarantee.
    """
    fh = _open(source)
    if info is None:
        info = read_vgf_info(fh)
    entry = info.array(name)
    fh.seek(info.data_start + entry.offset)
    stored = fh.read(entry.stored_bytes)
    if len(stored) != entry.stored_bytes:
        raise FormatError(f"truncated block for array {name!r}")
    if verify and entry.checksum is not None:
        verify_bytes(
            stored,
            entry.checksum,
            entry.checksum_algo or DEFAULT_ALGO,
            f"array {name!r} block",
        )
    return stored, entry


def read_vgf_array(
    source, name: str, info: VGFInfo | None = None, verify: bool = True,
    copy: bool = True,
) -> tuple[DataArray, ArrayInfo]:
    """Read one array block (a single ranged read) and decode it.

    When the header carries a checksum for the block and ``verify`` is
    true (default), the stored bytes are verified before decompression;
    a mismatch raises :class:`~repro.errors.IntegrityError`.  Files
    written without checksums skip verification.  ``copy=False`` returns
    the values as a zero-copy (read-only) view over the decoded buffer —
    safe for scan-only consumers like the NDP server's pre-filters.
    """
    stored, entry = read_vgf_block(source, name, info, verify=verify)
    try:
        payload = get_codec(entry.codec).decompress(stored)
    except CodecError as exc:
        raise FormatError(
            f"array {name!r}: corrupt {entry.codec} block: {exc}"
        ) from exc
    if len(payload) != entry.raw_bytes:
        raise FormatError(
            f"array {name!r}: decoded {len(payload)} bytes, header says "
            f"{entry.raw_bytes}"
        )
    values = np.frombuffer(payload, dtype=np.dtype(entry.dtype))
    if copy:
        values = values.copy()
    return DataArray(entry.name, values, components=entry.components), entry


def read_vgf(source, array_names: list[str] | None = None, verify: bool = True):
    """Read a grid, optionally restricted to selected arrays.

    ``array_names=None`` loads everything; otherwise only the named arrays
    are fetched and decoded — the format's array-selection fast path.
    Returns a :class:`UniformGrid` or :class:`RectilinearGrid` according
    to the stored structure.
    """
    fh = _open(source)
    info = read_vgf_info(fh)
    grid = info.make_grid()
    wanted = info.array_names() if array_names is None else list(array_names)
    for name in wanted:
        arr, entry = read_vgf_array(fh, name, info, verify=verify)
        if entry.association == "cell":
            grid.cell_data.add(arr)
        else:
            grid.point_data.add(arr)
    return grid


def verify_vgf(source) -> list[str]:
    """Audit a VGF file; return a list of problems (empty ⇒ healthy).

    Checks the magic/header structure, the header self-check, and every
    array block's checksum.  Arrays stored without checksums are reported
    as unverifiable rather than passed silently, so ``repro verify`` is
    honest about coverage.  Never raises for corruption — corruption is
    the *finding* here, not an error.
    """
    problems: list[str] = []
    try:
        info = read_vgf_info(source)
    except FormatError as exc:
        return [f"header: {exc}"]
    for entry in info.arrays:
        if entry.checksum is None:
            problems.append(
                f"array {entry.name!r}: no stored checksum (written before "
                "checksums existed) — unverifiable"
            )
            continue
        try:
            read_vgf_array(source, entry.name, info)
        except FormatError as exc:  # IntegrityError included
            problems.append(str(exc))
    return problems
