"""PPM/PGM image output for the software renderer.

Binary PPM (P6) needs no external imaging dependency and every common
viewer opens it — the examples write their contour "movie" frames here.
"""

from __future__ import annotations

import numpy as np

from repro.errors import FormatError

__all__ = ["write_ppm", "encode_ppm"]


def encode_ppm(image: np.ndarray) -> bytes:
    """Encode an image array to binary PPM (RGB) or PGM (grayscale) bytes.

    ``image`` is ``(h, w, 3)`` or ``(h, w)``, dtype uint8 or float in
    [0, 1] (floats are scaled and clipped).
    """
    arr = np.asarray(image)
    if arr.dtype.kind == "f":
        arr = (np.clip(arr, 0.0, 1.0) * 255.0 + 0.5).astype(np.uint8)
    elif arr.dtype != np.uint8:
        raise FormatError(f"image dtype must be uint8 or float, got {arr.dtype}")
    if arr.ndim == 2:
        h, w = arr.shape
        header = f"P5\n{w} {h}\n255\n".encode("ascii")
    elif arr.ndim == 3 and arr.shape[2] == 3:
        h, w, _ = arr.shape
        header = f"P6\n{w} {h}\n255\n".encode("ascii")
    else:
        raise FormatError(f"image must be (h,w) or (h,w,3); got {arr.shape}")
    return header + np.ascontiguousarray(arr).tobytes()


def write_ppm(path: str, image: np.ndarray) -> None:
    """Write an image to ``path`` as binary PPM/PGM."""
    with open(path, "wb") as fh:
        fh.write(encode_ppm(image))
