"""Perspective look-at camera."""

from __future__ import annotations

import numpy as np

from repro.errors import ReproError

__all__ = ["Camera"]


class Camera:
    """A right-handed perspective camera.

    Parameters
    ----------
    position:
        Eye location in world coordinates.
    target:
        Point the camera looks at.
    up:
        Approximate up direction (re-orthogonalized internally).
    fov_degrees:
        Vertical field of view.
    near, far:
        Clip distances (points outside are culled by the rasterizer).
    """

    def __init__(
        self,
        position=(0.0, 0.0, 5.0),
        target=(0.0, 0.0, 0.0),
        up=(0.0, 0.0, 1.0),
        fov_degrees: float = 40.0,
        near: float = 0.01,
        far: float = 1000.0,
    ):
        self.position = np.asarray(position, dtype=np.float64)
        self.target = np.asarray(target, dtype=np.float64)
        self.up = np.asarray(up, dtype=np.float64)
        if not 0 < fov_degrees < 180:
            raise ReproError(f"fov must be in (0, 180), got {fov_degrees}")
        if not 0 < near < far:
            raise ReproError(f"need 0 < near < far, got {near}, {far}")
        self.fov_degrees = float(fov_degrees)
        self.near = float(near)
        self.far = float(far)

    # ------------------------------------------------------------------
    def basis(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Orthonormal camera axes (right, true_up, forward)."""
        forward = self.target - self.position
        norm = np.linalg.norm(forward)
        if norm == 0:
            raise ReproError("camera position equals target")
        forward = forward / norm
        right = np.cross(forward, self.up)
        rnorm = np.linalg.norm(right)
        if rnorm < 1e-12:
            raise ReproError("camera up vector is parallel to view direction")
        right = right / rnorm
        true_up = np.cross(right, forward)
        return right, true_up, forward

    def project(self, points: np.ndarray, width: int, height: int):
        """Project world points to pixel coordinates + camera depth.

        Returns
        -------
        xy : ndarray (n, 2)
            Pixel coordinates (x right, y down).
        depth : ndarray (n,)
            Distance along the view axis (for z-buffering / clipping).
        """
        pts = np.asarray(points, dtype=np.float64).reshape(-1, 3)
        right, true_up, forward = self.basis()
        rel = pts - self.position
        cx = rel @ right
        cy = rel @ true_up
        cz = rel @ forward
        f = 1.0 / np.tan(np.radians(self.fov_degrees) / 2.0)
        safe_z = np.where(cz > 1e-12, cz, 1e-12)
        ndc_x = f * cx / safe_z * (height / width)
        ndc_y = f * cy / safe_z
        px = (ndc_x * 0.5 + 0.5) * (width - 1)
        py = (1.0 - (ndc_y * 0.5 + 0.5)) * (height - 1)
        return np.stack([px, py], axis=1), cz

    @classmethod
    def fit_bounds(cls, bounds, direction=(1.0, -1.2, 0.8), fov_degrees: float = 35.0,
                   margin: float = 1.35) -> "Camera":
        """Place a camera that frames an axis-aligned bounds object."""
        center = np.asarray(bounds.center)
        d = np.asarray(direction, dtype=np.float64)
        d = d / np.linalg.norm(d)
        radius = bounds.diagonal / 2.0
        dist = margin * radius / np.tan(np.radians(fov_degrees) / 2.0)
        return cls(
            position=center + d * dist,
            target=center,
            up=(0.0, 0.0, 1.0),
            fov_degrees=fov_degrees,
            near=dist / 100.0,
            far=dist * 10.0,
        )
