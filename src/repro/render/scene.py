"""Scene assembly and the render sink.

:class:`Scene` accumulates meshes (e.g. one per contour filter output,
like the paper's cyan water + yellow asteroid in Fig. 4) and renders them
through a shared z-buffer.  :class:`RenderSink` adapts a scene slot to the
pipeline's sink interface.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ReproError
from repro.grid.bounds import Bounds
from repro.grid.polydata import PolyData
from repro.pipeline.sink import Sink
from repro.render.camera import Camera
from repro.render.rasterizer import Framebuffer, rasterize_mesh

__all__ = ["Scene", "RenderSink"]


class Scene:
    """A list of (PolyData, color-or-scalars) actors with one camera."""

    def __init__(self, background=(0.08, 0.09, 0.11)):
        self.background = background
        self._actors: list[tuple[PolyData, tuple, str | None, str, tuple]] = []

    def add_mesh(
        self,
        polydata: PolyData,
        color=(0.2, 0.7, 0.9),
        scalars: str | None = None,
        cmap: str = "viridis",
        value_range: tuple | None = None,
    ) -> None:
        """Add an actor, flat-colored or colored by a point-data array.

        ``scalars`` names a point array of ``polydata`` (e.g.
        ``"contour_value"``) mapped per-triangle through ``cmap`` — the
        ParaView color-by-array behaviour.
        """
        if not isinstance(polydata, PolyData):
            raise ReproError(f"expected PolyData, got {type(polydata).__name__}")
        if scalars is not None and scalars not in polydata.point_data:
            raise ReproError(
                f"no point array {scalars!r} on this PolyData; "
                f"available: {polydata.point_data.names()}"
            )
        self._actors.append(
            (polydata, tuple(color), scalars, cmap,
             tuple(value_range) if value_range else None)
        )

    def clear(self) -> None:
        self._actors.clear()

    @property
    def num_actors(self) -> int:
        return len(self._actors)

    def bounds(self) -> Bounds:
        """Union bounds of all actor geometry."""
        bounds = None
        for pd, *_ in self._actors:
            if pd.num_points == 0:
                continue
            b = pd.bounds
            bounds = b if bounds is None else bounds.union(b)
        if bounds is None:
            raise ReproError("scene has no geometry to bound")
        return bounds

    def render(
        self,
        width: int = 640,
        height: int = 480,
        camera: Camera | None = None,
    ) -> np.ndarray:
        """Render all actors; returns a float RGB image in [0, 1]."""
        if camera is None:
            camera = Camera.fit_bounds(self.bounds())
        fb = Framebuffer(width, height, background=self.background)
        for pd, color, scalars, cmap, value_range in self._actors:
            tris = pd.triangles() if pd.polys.num_cells else None
            if tris is not None and len(tris):
                world = pd.points[tris]
                tri_colors = None
                if scalars is not None:
                    from repro.render.colormaps import map_scalars

                    point_vals = pd.point_data.get(scalars).values
                    per_tri = point_vals[tris].mean(axis=1)
                    vmin, vmax = value_range if value_range else (None, None)
                    tri_colors = map_scalars(per_tri, cmap, vmin, vmax)
                rasterize_mesh(fb, camera, world, color=color, colors=tri_colors)
            # Line geometry (2-D contours): draw as short segments of pixels.
            if pd.lines.num_cells:
                self._draw_lines(fb, camera, pd, color)
        return fb.image()

    @staticmethod
    def _draw_lines(fb: Framebuffer, camera: Camera, pd: PolyData, color) -> None:
        segs = pd.segments()
        if not len(segs):
            return
        pts = pd.points
        xy, depth = camera.project(pts, fb.width, fb.height)
        col = np.asarray(color, dtype=np.float64)
        for a, b in segs:
            if depth[a] <= camera.near or depth[b] <= camera.near:
                continue
            n = int(max(abs(xy[b, 0] - xy[a, 0]), abs(xy[b, 1] - xy[a, 1]))) + 1
            ts = np.linspace(0.0, 1.0, n)
            px = np.round(xy[a, 0] + ts * (xy[b, 0] - xy[a, 0])).astype(int)
            py = np.round(xy[a, 1] + ts * (xy[b, 1] - xy[a, 1])).astype(int)
            ok = (px >= 0) & (px < fb.width) & (py >= 0) & (py < fb.height)
            fb.color[py[ok], px[ok]] = col
            fb.depth[py[ok], px[ok]] = 0.0


class RenderSink(Sink):
    """Pipeline sink feeding one actor slot of a shared :class:`Scene`."""

    def __init__(self, scene: Scene | None = None, color=(0.2, 0.7, 0.9)):
        super().__init__()
        self.scene = scene if scene is not None else Scene()
        self.color = tuple(color)

    def _consume(self, polydata: PolyData) -> None:
        self.scene.add_mesh(polydata, color=self.color)
