"""NumPy z-buffer rasterizer with flat Lambert shading.

Rasterizes a triangle soup into an RGB image: each triangle is projected,
shaded by the angle between its world-space normal and the light, then
scan-converted with barycentric coverage against a shared depth buffer.
The per-triangle Python loop runs NumPy-vectorized pixel work inside, fast
enough for the examples' tens of thousands of triangles.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ReproError
from repro.render.camera import Camera

__all__ = ["rasterize_mesh", "Framebuffer"]


class Framebuffer:
    """An RGB color buffer plus a float depth buffer."""

    def __init__(self, width: int, height: int, background=(0.08, 0.09, 0.11)):
        if width < 1 or height < 1:
            raise ReproError(f"invalid framebuffer size {width}x{height}")
        self.width = width
        self.height = height
        self.color = np.empty((height, width, 3), dtype=np.float64)
        self.color[:] = np.asarray(background, dtype=np.float64)
        self.depth = np.full((height, width), np.inf)

    def image(self) -> np.ndarray:
        """The color buffer as float RGB in [0, 1]."""
        return np.clip(self.color, 0.0, 1.0)


def _shade(normals: np.ndarray, base_color: np.ndarray, light_dir: np.ndarray) -> np.ndarray:
    """Two-sided Lambert shading with an ambient floor."""
    lambert = np.abs(normals @ light_dir)
    intensity = 0.25 + 0.75 * lambert
    return intensity[:, None] * base_color[None, :]


def rasterize_mesh(
    fb: Framebuffer,
    camera: Camera,
    triangles: np.ndarray,
    color=(0.2, 0.7, 0.9),
    light_dir=(0.4, -0.35, 0.85),
    colors: np.ndarray | None = None,
) -> None:
    """Rasterize a world-space triangle soup into ``fb``.

    Parameters
    ----------
    fb:
        Target framebuffer (depth-shared across calls, so multiple meshes
        composite correctly).
    camera:
        Projection camera.
    triangles:
        ``(n, 3, 3)`` world-space triangle array.
    color:
        Base RGB color in [0, 1] (used when ``colors`` is None).
    light_dir:
        World-space directional light (normalized internally).
    colors:
        Optional ``(n, 3)`` per-triangle base colors (scalar coloring).
    """
    tris = np.asarray(triangles, dtype=np.float64)
    if tris.ndim != 3 or tris.shape[1:] != (3, 3):
        raise ReproError(f"triangles must be (n, 3, 3); got {tris.shape}")
    if tris.shape[0] == 0:
        return
    light = np.asarray(light_dir, dtype=np.float64)
    light = light / np.linalg.norm(light)
    base = np.asarray(color, dtype=np.float64)

    # World-space flat normals.
    e1 = tris[:, 1] - tris[:, 0]
    e2 = tris[:, 2] - tris[:, 0]
    normals = np.cross(e1, e2)
    norms = np.linalg.norm(normals, axis=1)
    valid = norms > 1e-20
    normals[valid] = normals[valid] / norms[valid, None]
    if colors is not None:
        colors = np.asarray(colors, dtype=np.float64)
        if colors.shape != (tris.shape[0], 3):
            raise ReproError(
                f"colors must be ({tris.shape[0]}, 3); got {colors.shape}"
            )
        lambert = np.abs(normals @ light)
        shades = (0.25 + 0.75 * lambert)[:, None] * colors
    else:
        shades = _shade(normals, base, light)

    # Project all vertices at once.
    flat = tris.reshape(-1, 3)
    xy, depth = camera.project(flat, fb.width, fb.height)
    xy = xy.reshape(-1, 3, 2)
    depth = depth.reshape(-1, 3)

    # Cull triangles behind the near plane or fully off-screen.
    in_front = (depth > camera.near).all(axis=1) & (depth < camera.far).all(axis=1)
    xs = xy[:, :, 0]
    ys = xy[:, :, 1]
    on_screen = (
        (xs.max(axis=1) >= 0)
        & (xs.min(axis=1) <= fb.width - 1)
        & (ys.max(axis=1) >= 0)
        & (ys.min(axis=1) <= fb.height - 1)
    )
    keep = in_front & on_screen & valid
    idx = np.nonzero(keep)[0]

    width, height = fb.width, fb.height
    colorbuf = fb.color
    depthbuf = fb.depth

    for t in idx:
        v = xy[t]  # (3, 2) pixel coords
        z = depth[t]
        x0 = int(max(np.floor(v[:, 0].min()), 0))
        x1 = int(min(np.ceil(v[:, 0].max()), width - 1))
        y0 = int(max(np.floor(v[:, 1].min()), 0))
        y1 = int(min(np.ceil(v[:, 1].max()), height - 1))
        if x1 < x0 or y1 < y0:
            continue
        # Barycentric coordinates over the bbox.
        px = np.arange(x0, x1 + 1)[None, :] + 0.0
        py = np.arange(y0, y1 + 1)[:, None] + 0.0
        d = (v[1, 1] - v[2, 1]) * (v[0, 0] - v[2, 0]) + (
            v[2, 0] - v[1, 0]
        ) * (v[0, 1] - v[2, 1])
        if abs(d) < 1e-12:
            # Degenerate in screen space: splat the nearest pixel.
            cx = int(round(v[:, 0].mean()))
            cy = int(round(v[:, 1].mean()))
            if 0 <= cx < width and 0 <= cy < height:
                zmid = z.mean()
                if zmid < depthbuf[cy, cx]:
                    depthbuf[cy, cx] = zmid
                    colorbuf[cy, cx] = shades[t]
            continue
        l0 = ((v[1, 1] - v[2, 1]) * (px - v[2, 0]) + (v[2, 0] - v[1, 0]) * (py - v[2, 1])) / d
        l1 = ((v[2, 1] - v[0, 1]) * (px - v[2, 0]) + (v[0, 0] - v[2, 0]) * (py - v[2, 1])) / d
        l2 = 1.0 - l0 - l1
        inside = (l0 >= -1e-9) & (l1 >= -1e-9) & (l2 >= -1e-9)
        if not inside.any():
            continue
        # Interpolate depth (linear in screen space: adequate here).
        pz = l0 * z[0] + l1 * z[1] + l2 * z[2]
        sub_depth = depthbuf[y0 : y1 + 1, x0 : x1 + 1]
        win = inside & (pz < sub_depth)
        if not win.any():
            continue
        sub_depth[win] = pz[win]
        colorbuf[y0 : y1 + 1, x0 : x1 + 1][win] = shades[t]
