"""Software rendering sink: camera, z-buffer rasterizer, scene.

The paper's pipelines end in "an OpenGL subpipeline that renders the
contours ... on the screen" (Sec. III).  This package is the offline
equivalent: a perspective camera, a NumPy z-buffer rasterizer with
Lambert shading, and a :class:`~repro.render.scene.Scene` that renders
:class:`~repro.grid.polydata.PolyData` to images (written out via
:func:`repro.io.ppm.write_ppm`).
"""

from repro.render.camera import Camera
from repro.render.colormaps import available_colormaps, map_scalars
from repro.render.rasterizer import rasterize_mesh
from repro.render.scene import RenderSink, Scene

__all__ = ["Camera", "rasterize_mesh", "Scene", "RenderSink", "map_scalars", "available_colormaps"]
