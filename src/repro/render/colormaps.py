"""Scalar-to-color mapping for rendered geometry.

ParaView colors contours by a data array through a transfer function; this
module provides the same for the software renderer: a handful of built-in
perceptual ramps plus :func:`map_scalars`, which turns a scalar array into
per-element RGB.

Ramps are defined by a few anchor colors and linearly interpolated — small
enough to audit, close enough to the familiar palettes for real use.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ReproError

__all__ = ["map_scalars", "available_colormaps", "COLORMAPS"]

#: Anchor colors (RGB in [0,1]) at evenly spaced positions along [0, 1].
COLORMAPS: dict[str, np.ndarray] = {
    # Blue -> green -> yellow, perceptually-ordered (viridis-like).
    "viridis": np.array(
        [
            (0.267, 0.005, 0.329),
            (0.283, 0.141, 0.458),
            (0.254, 0.265, 0.530),
            (0.207, 0.372, 0.553),
            (0.164, 0.471, 0.558),
            (0.128, 0.567, 0.551),
            (0.135, 0.659, 0.518),
            (0.267, 0.749, 0.441),
            (0.478, 0.821, 0.318),
            (0.741, 0.873, 0.150),
            (0.993, 0.906, 0.144),
        ]
    ),
    # Blue -> white -> red diverging (coolwarm-like).
    "coolwarm": np.array(
        [
            (0.230, 0.299, 0.754),
            (0.552, 0.690, 0.996),
            (0.865, 0.865, 0.865),
            (0.958, 0.647, 0.511),
            (0.706, 0.016, 0.150),
        ]
    ),
    # Black -> red -> yellow -> white (hot).
    "hot": np.array(
        [
            (0.0, 0.0, 0.0),
            (0.8, 0.0, 0.0),
            (1.0, 0.6, 0.0),
            (1.0, 1.0, 0.4),
            (1.0, 1.0, 1.0),
        ]
    ),
    # Uniform gray ramp.
    "gray": np.array([(0.05, 0.05, 0.05), (0.95, 0.95, 0.95)]),
}


def available_colormaps() -> list[str]:
    return sorted(COLORMAPS)


def map_scalars(
    values: np.ndarray,
    cmap: str = "viridis",
    vmin: float | None = None,
    vmax: float | None = None,
) -> np.ndarray:
    """Map scalars to RGB through a named colormap.

    Parameters
    ----------
    values:
        1-D scalar array.
    cmap:
        One of :func:`available_colormaps`.
    vmin, vmax:
        Value range mapped to the ramp's ends; defaults to the data range.
        Values outside clamp to the ends.

    Returns
    -------
    colors : ndarray
        ``(n, 3)`` float RGB in [0, 1].
    """
    try:
        anchors = COLORMAPS[cmap]
    except KeyError:
        raise ReproError(
            f"unknown colormap {cmap!r}; available: {available_colormaps()}"
        ) from None
    vals = np.asarray(values, dtype=np.float64).reshape(-1)
    if vals.size == 0:
        return np.zeros((0, 3))
    lo = float(vals.min()) if vmin is None else float(vmin)
    hi = float(vals.max()) if vmax is None else float(vmax)
    if not np.isfinite([lo, hi]).all():
        raise ReproError("colormap range must be finite")
    if hi <= lo:
        t = np.zeros(vals.size)
    else:
        t = np.clip((vals - lo) / (hi - lo), 0.0, 1.0)
    # Piecewise-linear interpolation between anchors.
    pos = t * (anchors.shape[0] - 1)
    idx = np.minimum(pos.astype(np.int64), anchors.shape[0] - 2)
    frac = (pos - idx)[:, None]
    return anchors[idx] * (1.0 - frac) + anchors[idx + 1] * frac
