"""Pipeline-wide utilities: validation, execution, and description.

The demand-driven update logic lives on
:class:`~repro.pipeline.algorithm.Algorithm` itself; this module adds the
whole-graph operations VTK keeps on its executives: validating that a
pipeline is fully wired, updating a set of sinks together, and describing
the topology for debugging.
"""

from __future__ import annotations

from repro.errors import PipelineError
from repro.pipeline.algorithm import Algorithm

__all__ = ["validate_pipeline", "execute", "describe_pipeline"]


def validate_pipeline(*terminals: Algorithm) -> None:
    """Check that every node upstream of ``terminals`` is fully connected.

    Raises
    ------
    PipelineError
        Naming the first node with an unconnected input port.
    """
    if not terminals:
        raise PipelineError("validate_pipeline needs at least one terminal node")
    for terminal in terminals:
        for node in terminal.upstream_nodes():
            for port in range(node.num_input_ports):
                if node.input_connection(port) is None:
                    raise PipelineError(
                        f"{type(node).__name__} input port {port} is not connected"
                    )


def execute(*terminals: Algorithm) -> list:
    """Validate then update every terminal; returns their output data.

    Sinks (no output ports) contribute ``None`` to the returned list.
    """
    validate_pipeline(*terminals)
    results = []
    for terminal in terminals:
        terminal.update()
        if terminal.num_output_ports:
            results.append(terminal.get_output_data(0))
        else:
            results.append(None)
    return results


def describe_pipeline(terminal: Algorithm) -> str:
    """A one-line-per-node topological description of the upstream graph."""
    lines = []
    for node in terminal.upstream_nodes():
        inputs = []
        for port in range(node.num_input_ports):
            conn = node.input_connection(port)
            if conn is None:
                inputs.append(f"{port}:<unconnected>")
            else:
                inputs.append(f"{port}:{type(conn.algorithm).__name__}[{conn.index}]")
        suffix = f" <- ({', '.join(inputs)})" if inputs else ""
        lines.append(f"{type(node).__name__}{suffix}")
    return "\n".join(lines)
