"""Algorithm base class: ports, connections, and demand-driven execution.

Modelled on VTK's ``vtkAlgorithm`` + executive split, collapsed into one
class sized for this library: each algorithm declares a number of input and
output ports; connections wire an upstream output port to a downstream input
port; ``update()`` re-executes a node iff any upstream node is newer than
its last execution (modified-time propagation).
"""

from __future__ import annotations

import itertools
from typing import Any, Sequence

from repro.errors import PipelineError, PortError

__all__ = ["Algorithm", "OutputPort"]

# Global monotone counter used for modified times, like VTK's MTime.
_mtime_counter = itertools.count(1)


def _next_mtime() -> int:
    return next(_mtime_counter)


class OutputPort:
    """A reference to one output port of an algorithm."""

    __slots__ = ("algorithm", "index")

    def __init__(self, algorithm: "Algorithm", index: int):
        if not 0 <= index < algorithm.num_output_ports:
            raise PortError(
                f"{algorithm!r} has no output port {index} "
                f"(has {algorithm.num_output_ports})"
            )
        self.algorithm = algorithm
        self.index = index

    def __repr__(self) -> str:
        return f"OutputPort({self.algorithm!r}, {self.index})"


class Algorithm:
    """Base class for every pipeline node.

    Subclasses set :attr:`num_input_ports` / :attr:`num_output_ports` and
    implement :meth:`_execute`, which receives one input object per input
    port and must return a tuple with one output object per output port.
    """

    num_input_ports: int = 0
    num_output_ports: int = 1

    def __init__(self):
        self._inputs: list[OutputPort | None] = [None] * self.num_input_ports
        self._outputs: list[Any] = [None] * self.num_output_ports
        self._mtime: int = _next_mtime()
        self._execute_time: int = 0

    # ------------------------------------------------------------------
    # Wiring
    # ------------------------------------------------------------------
    def set_input_connection(self, port: int, upstream: "OutputPort | Algorithm") -> None:
        """Connect ``upstream`` (an algorithm's port 0 by default) to ``port``."""
        if not 0 <= port < self.num_input_ports:
            raise PortError(
                f"{self!r} has no input port {port} (has {self.num_input_ports})"
            )
        if isinstance(upstream, Algorithm):
            upstream = upstream.output_port(0)
        if not isinstance(upstream, OutputPort):
            raise PortError(f"expected OutputPort or Algorithm, got {upstream!r}")
        self._check_cycle(upstream.algorithm)
        self._inputs[port] = upstream
        self.modified()

    def input_connection(self, port: int) -> OutputPort | None:
        if not 0 <= port < self.num_input_ports:
            raise PortError(f"no input port {port}")
        return self._inputs[port]

    def output_port(self, index: int = 0) -> OutputPort:
        return OutputPort(self, index)

    def _check_cycle(self, upstream: "Algorithm") -> None:
        """Reject connections that would create a cycle."""
        stack = [upstream]
        seen: set[int] = set()
        while stack:
            node = stack.pop()
            if node is self:
                raise PipelineError("connection would create a pipeline cycle")
            if id(node) in seen:
                continue
            seen.add(id(node))
            stack.extend(
                conn.algorithm for conn in node._inputs if conn is not None
            )

    # ------------------------------------------------------------------
    # Modified-time machinery
    # ------------------------------------------------------------------
    def modified(self) -> None:
        """Mark this node dirty; the next update() will re-execute it."""
        self._mtime = _next_mtime()

    @property
    def mtime(self) -> int:
        return self._mtime

    def _pipeline_mtime(self) -> int:
        """Newest mtime of this node and everything upstream."""
        newest = self._mtime
        for conn in self._inputs:
            if conn is not None:
                newest = max(newest, conn.algorithm._pipeline_mtime())
        return newest

    @property
    def needs_execute(self) -> bool:
        return self._execute_time < self._pipeline_mtime()

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def update(self) -> None:
        """Bring this node (and its upstream subgraph) up to date."""
        for port, conn in enumerate(self._inputs):
            if conn is None:
                raise PipelineError(
                    f"{type(self).__name__} input port {port} is not connected"
                )
            conn.algorithm.update()
        if self._execute_time >= self._pipeline_mtime():
            return
        inputs = [
            conn.algorithm.get_output_data(conn.index) for conn in self._inputs
        ]
        outputs = self._execute(*inputs)
        if self.num_output_ports == 0:
            if outputs not in (None, ()):
                raise PipelineError(
                    f"{type(self).__name__} has no output ports but returned data"
                )
            outputs = ()
        elif not isinstance(outputs, tuple):
            outputs = (outputs,)
        if len(outputs) != self.num_output_ports:
            raise PipelineError(
                f"{type(self).__name__}._execute returned {len(outputs)} outputs; "
                f"expected {self.num_output_ports}"
            )
        self._outputs = list(outputs)
        self._execute_time = _next_mtime()

    def get_output_data(self, port: int = 0) -> Any:
        """Return the data on an output port (after :meth:`update`)."""
        if not 0 <= port < self.num_output_ports:
            raise PortError(f"no output port {port}")
        return self._outputs[port]

    def output(self, port: int = 0) -> Any:
        """Update then return output data — the common one-call entry point."""
        self.update()
        return self.get_output_data(port)

    def _execute(self, *inputs: Any) -> Any:
        raise NotImplementedError

    # ------------------------------------------------------------------
    def upstream_nodes(self) -> Sequence["Algorithm"]:
        """All transitive upstream algorithms, topologically ordered, self last."""
        order: list[Algorithm] = []
        seen: set[int] = set()

        def visit(node: "Algorithm"):
            if id(node) in seen:
                return
            seen.add(id(node))
            for conn in node._inputs:
                if conn is not None:
                    visit(conn.algorithm)
            order.append(node)

        visit(self)
        return order

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"
