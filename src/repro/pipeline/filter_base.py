"""Filter base class: intermediate pipeline nodes (Fig. 2)."""

from __future__ import annotations

from repro.pipeline.algorithm import Algorithm

__all__ = ["Filter"]


class Filter(Algorithm):
    """Base class for filters: one or more inputs, one or more outputs.

    Subclasses override :meth:`_execute`.  A convenience ``set_input_data``
    wraps raw data objects in a :class:`~repro.pipeline.source.TrivialProducer`
    so filters can be used without building an explicit source.
    """

    num_input_ports = 1
    num_output_ports = 1

    def set_input_data(self, data, port: int = 0) -> None:
        from repro.pipeline.source import TrivialProducer

        self.set_input_connection(port, TrivialProducer(data))
