"""Pipeline sinks: terminal nodes that consume data (Fig. 2).

In the paper's pipelines the sink is an OpenGL render sub-pipeline; in this
library it is the software renderer (:mod:`repro.render`) or a writer.
"""

from __future__ import annotations

from typing import Any

from repro.pipeline.algorithm import Algorithm

__all__ = ["Sink", "CollectSink"]


class Sink(Algorithm):
    """Base class for sinks: one input port, zero output ports.

    Subclasses implement :meth:`_consume`; :meth:`update` drives it.
    """

    num_input_ports = 1
    num_output_ports = 0

    def set_input_data(self, data, port: int = 0) -> None:
        from repro.pipeline.source import TrivialProducer

        self.set_input_connection(port, TrivialProducer(data))

    def _execute(self, data: Any) -> None:
        self._consume(data)
        return None

    def _consume(self, data: Any) -> None:
        raise NotImplementedError


class CollectSink(Sink):
    """A sink that records every data object it consumes (testing aid)."""

    def __init__(self):
        super().__init__()
        self.received: list[Any] = []

    def _consume(self, data: Any) -> None:
        self.received.append(data)

    @property
    def last(self) -> Any:
        if not self.received:
            raise IndexError("CollectSink has not consumed any data")
        return self.received[-1]
