"""Demand-driven pipeline substrate (the library's VTK-executive substitute).

A pipeline is a DAG of :class:`~repro.pipeline.algorithm.Algorithm` objects
— sources, filters, and sinks (Fig. 2 of the paper).  Execution is
demand-driven: calling :meth:`~repro.pipeline.algorithm.Algorithm.update`
on any node pulls fresh data through exactly the stale part of its upstream
subgraph, tracked with modified-time counters as in VTK.
"""

from repro.pipeline.algorithm import Algorithm, OutputPort
from repro.pipeline.filter_base import Filter
from repro.pipeline.sink import CollectSink, Sink
from repro.pipeline.source import ProgrammableSource, Source, TrivialProducer

__all__ = [
    "Algorithm",
    "OutputPort",
    "Source",
    "TrivialProducer",
    "ProgrammableSource",
    "Filter",
    "Sink",
    "CollectSink",
]
