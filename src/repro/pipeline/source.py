"""Pipeline sources: nodes with no inputs that introduce data (Fig. 2)."""

from __future__ import annotations

from typing import Any, Callable

from repro.errors import PipelineError
from repro.pipeline.algorithm import Algorithm

__all__ = ["Source", "TrivialProducer", "ProgrammableSource"]


class Source(Algorithm):
    """Base class for sources: zero input ports, one output port."""

    num_input_ports = 0
    num_output_ports = 1


class TrivialProducer(Source):
    """A source that hands out a pre-built data object.

    The VTK equivalent is ``vtkTrivialProducer``; it is how in-memory data
    enters a pipeline.
    """

    def __init__(self, data: Any = None):
        super().__init__()
        self._data = data

    def set_data(self, data: Any) -> None:
        self._data = data
        self.modified()

    def _execute(self) -> Any:
        if self._data is None:
            raise PipelineError("TrivialProducer has no data set")
        return self._data


class ProgrammableSource(Source):
    """A source whose output is produced by a user callback."""

    def __init__(self, produce: Callable[[], Any] | None = None):
        super().__init__()
        self._produce = produce

    def set_produce(self, produce: Callable[[], Any]) -> None:
        self._produce = produce
        self.modified()

    def _execute(self) -> Any:
        if self._produce is None:
            raise PipelineError("ProgrammableSource has no produce callback")
        return self._produce()
