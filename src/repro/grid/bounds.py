"""Axis-aligned bounding boxes in world coordinates."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import GridError

__all__ = ["Bounds"]


@dataclass(frozen=True)
class Bounds:
    """An axis-aligned box ``[xmin, xmax] x [ymin, ymax] x [zmin, zmax]``."""

    xmin: float
    xmax: float
    ymin: float
    ymax: float
    zmin: float
    zmax: float

    def __post_init__(self):
        if self.xmin > self.xmax or self.ymin > self.ymax or self.zmin > self.zmax:
            raise GridError(f"inverted bounds: {self}")

    @classmethod
    def from_points(cls, points: np.ndarray) -> "Bounds":
        """Bounds of an ``(n, 3)`` point array."""
        pts = np.asarray(points, dtype=np.float64).reshape(-1, 3)
        if pts.shape[0] == 0:
            raise GridError("cannot compute bounds of zero points")
        lo = pts.min(axis=0)
        hi = pts.max(axis=0)
        return cls(lo[0], hi[0], lo[1], hi[1], lo[2], hi[2])

    @property
    def center(self) -> tuple[float, float, float]:
        return (
            0.5 * (self.xmin + self.xmax),
            0.5 * (self.ymin + self.ymax),
            0.5 * (self.zmin + self.zmax),
        )

    @property
    def lengths(self) -> tuple[float, float, float]:
        return (self.xmax - self.xmin, self.ymax - self.ymin, self.zmax - self.zmin)

    @property
    def diagonal(self) -> float:
        dx, dy, dz = self.lengths
        return float(np.sqrt(dx * dx + dy * dy + dz * dz))

    def contains(self, point) -> bool:
        x, y, z = point
        return (
            self.xmin <= x <= self.xmax
            and self.ymin <= y <= self.ymax
            and self.zmin <= z <= self.zmax
        )

    def intersects(self, other: "Bounds") -> bool:
        """True when the closed boxes overlap (touching faces count).

        Closed-interval semantics match the pre-filter's ROI test
        (:func:`~repro.core.interesting.roi_cell_mask` keeps points with
        coordinates in ``[lo, hi]``), so a block whose bounds merely touch
        an ROI can still own ROI-complete cells and must not be pruned.
        """
        return (
            self.xmin <= other.xmax and other.xmin <= self.xmax
            and self.ymin <= other.ymax and other.ymin <= self.ymax
            and self.zmin <= other.zmax and other.zmin <= self.zmax
        )

    def intersection(self, other: "Bounds") -> "Bounds | None":
        """The overlapping box, or ``None`` when disjoint."""
        if not self.intersects(other):
            return None
        return Bounds(
            max(self.xmin, other.xmin),
            min(self.xmax, other.xmax),
            max(self.ymin, other.ymin),
            min(self.ymax, other.ymax),
            max(self.zmin, other.zmin),
            min(self.zmax, other.zmax),
        )

    def union(self, other: "Bounds") -> "Bounds":
        return Bounds(
            min(self.xmin, other.xmin),
            max(self.xmax, other.xmax),
            min(self.ymin, other.ymin),
            max(self.ymax, other.ymax),
            min(self.zmin, other.zmin),
            max(self.zmax, other.zmax),
        )

    def as_tuple(self) -> tuple[float, float, float, float, float, float]:
        return (self.xmin, self.xmax, self.ymin, self.ymax, self.zmin, self.zmax)
