"""Poly data: explicit points plus vertex/line/polygon connectivity.

Contour filters output :class:`PolyData` — line segments in 2-D, triangles
in 3-D (the paper renders "a set of triangles in our case", Sec. III).
Connectivity uses the offset/connectivity encoding modern VTK uses, which
vectorizes cleanly.
"""

from __future__ import annotations

import numpy as np

from repro.errors import GridError
from repro.grid.attributes import AttributeCollection
from repro.grid.bounds import Bounds

__all__ = ["CellArray", "PolyData"]


class CellArray:
    """Cells encoded as ``offsets`` + ``connectivity`` (CSR-style).

    Cell ``c`` uses point ids ``connectivity[offsets[c]:offsets[c+1]]``.
    ``offsets`` has ``num_cells + 1`` entries and starts at 0.
    """

    __slots__ = ("offsets", "connectivity")

    def __init__(self, offsets=None, connectivity=None):
        if offsets is None:
            offsets = np.zeros(1, dtype=np.int64)
        if connectivity is None:
            connectivity = np.zeros(0, dtype=np.int64)
        self.offsets = np.ascontiguousarray(offsets, dtype=np.int64)
        self.connectivity = np.ascontiguousarray(connectivity, dtype=np.int64)
        self._validate()

    def _validate(self):
        if self.offsets.ndim != 1 or self.offsets.size < 1:
            raise GridError("offsets must be a 1-D array with >= 1 entry")
        if self.offsets[0] != 0:
            raise GridError("offsets must start at 0")
        if (np.diff(self.offsets) < 0).any():
            raise GridError("offsets must be non-decreasing")
        if self.offsets[-1] != self.connectivity.size:
            raise GridError(
                f"offsets end at {self.offsets[-1]} but connectivity has "
                f"{self.connectivity.size} entries"
            )

    @classmethod
    def from_uniform(cls, cells: np.ndarray) -> "CellArray":
        """Build from an ``(n, k)`` array of fixed-size cells."""
        cells = np.ascontiguousarray(cells, dtype=np.int64)
        if cells.ndim != 2:
            raise GridError("from_uniform expects an (n, k) array")
        n, k = cells.shape
        offsets = np.arange(n + 1, dtype=np.int64) * k
        return cls(offsets, cells.reshape(-1))

    @property
    def num_cells(self) -> int:
        return self.offsets.size - 1

    def cell(self, index: int) -> np.ndarray:
        if not 0 <= index < self.num_cells:
            raise GridError(f"cell index {index} out of range")
        return self.connectivity[self.offsets[index] : self.offsets[index + 1]]

    def sizes(self) -> np.ndarray:
        return np.diff(self.offsets)

    def as_uniform(self, k: int) -> np.ndarray:
        """View as ``(n, k)`` when every cell has ``k`` points."""
        if self.num_cells and not (self.sizes() == k).all():
            raise GridError(f"cells are not uniformly of size {k}")
        return self.connectivity.reshape(-1, k)

    def __eq__(self, other) -> bool:
        if not isinstance(other, CellArray):
            return NotImplemented
        return np.array_equal(self.offsets, other.offsets) and np.array_equal(
            self.connectivity, other.connectivity
        )

    def __repr__(self) -> str:
        return f"CellArray(num_cells={self.num_cells})"


class PolyData:
    """Points plus vertex / line / polygon cell arrays and point data."""

    def __init__(self, points=None):
        if points is None:
            points = np.zeros((0, 3), dtype=np.float64)
        self.points = np.ascontiguousarray(points, dtype=np.float64)
        if self.points.ndim != 2 or self.points.shape[1] != 3:
            raise GridError("points must be an (n, 3) array")
        self.verts = CellArray()
        self.lines = CellArray()
        self.polys = CellArray()
        self.point_data = AttributeCollection(self.num_points)

    @property
    def num_points(self) -> int:
        return self.points.shape[0]

    @property
    def num_cells(self) -> int:
        return self.verts.num_cells + self.lines.num_cells + self.polys.num_cells

    @property
    def bounds(self) -> Bounds:
        return Bounds.from_points(self.points)

    def set_points(self, points: np.ndarray) -> None:
        self.points = np.ascontiguousarray(points, dtype=np.float64)
        if self.points.ndim != 2 or self.points.shape[1] != 3:
            raise GridError("points must be an (n, 3) array")
        self.point_data = AttributeCollection(self.num_points)

    def triangles(self) -> np.ndarray:
        """The polygon cells as an ``(n, 3)`` triangle array."""
        return self.polys.as_uniform(3)

    def segments(self) -> np.ndarray:
        """The line cells as an ``(n, 2)`` segment array."""
        return self.lines.as_uniform(2)

    def validate(self) -> None:
        """Check that all connectivity references valid point ids."""
        n = self.num_points
        for name, ca in (("verts", self.verts), ("lines", self.lines), ("polys", self.polys)):
            if ca.connectivity.size and (
                ca.connectivity.min() < 0 or ca.connectivity.max() >= n
            ):
                raise GridError(f"{name} connectivity references invalid point ids")

    def __repr__(self) -> str:
        return (
            f"PolyData(points={self.num_points}, verts={self.verts.num_cells}, "
            f"lines={self.lines.num_cells}, polys={self.polys.num_cells})"
        )
