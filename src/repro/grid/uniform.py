"""Uniform rectilinear grids (VTK's ``vtkImageData``).

The paper's prototype "supports uniform rectilinear grids at the moment"
(Sec. VI); this class is that grid type.  Geometry is implicit: a grid is
fully described by ``dims`` (points per axis), ``origin``, and ``spacing``,
so only the attribute arrays occupy memory.
"""

from __future__ import annotations

import numpy as np

from repro.errors import GridError
from repro.grid.attributes import AttributeCollection
from repro.grid.bounds import Bounds
from repro.grid.cells import (
    _check_dims,
    cell_count,
    point_count,
    point_id_to_ijk,
    point_ijk_to_id,
)

__all__ = ["UniformGrid"]


class UniformGrid:
    """A uniform rectilinear grid with point- and cell-attached data arrays.

    Parameters
    ----------
    dims:
        Points per axis, ``(nx, ny, nz)``.  2-D grids use ``nz == 1``.
    origin:
        World coordinates of point ``(0, 0, 0)``.
    spacing:
        Distance between adjacent points along each axis; must be positive.
    """

    def __init__(self, dims, origin=(0.0, 0.0, 0.0), spacing=(1.0, 1.0, 1.0)):
        self.dims = _check_dims(dims)
        self.origin = tuple(float(v) for v in origin)
        self.spacing = tuple(float(v) for v in spacing)
        if len(self.origin) != 3 or len(self.spacing) != 3:
            raise GridError("origin and spacing must have 3 entries")
        if any(s <= 0 for s in self.spacing):
            raise GridError(f"spacing must be positive, got {self.spacing}")
        self.point_data = AttributeCollection(self.num_points)
        self.cell_data = AttributeCollection(self.num_cells)

    # ------------------------------------------------------------------
    # Sizes
    # ------------------------------------------------------------------
    @property
    def num_points(self) -> int:
        return point_count(self.dims)

    @property
    def num_cells(self) -> int:
        return cell_count(self.dims)

    @property
    def is_2d(self) -> bool:
        """True when at least one axis is a single point thick."""
        return 1 in self.dims

    @property
    def bounds(self) -> Bounds:
        hi = [
            o + (d - 1) * s
            for o, d, s in zip(self.origin, self.dims, self.spacing)
        ]
        return Bounds(
            self.origin[0], hi[0], self.origin[1], hi[1], self.origin[2], hi[2]
        )

    # ------------------------------------------------------------------
    # Geometry
    # ------------------------------------------------------------------
    def point_ids_to_coords(self, ids) -> np.ndarray:
        """World ``(n, 3)`` coordinates of flat point ids (vectorized)."""
        ijk = point_id_to_ijk(np.asarray(ids, dtype=np.int64), self.dims)
        ijk = np.atleast_2d(ijk)
        return np.asarray(self.origin) + ijk * np.asarray(self.spacing)

    def ijk_to_id(self, ijk):
        return point_ijk_to_id(ijk, self.dims)

    def id_to_ijk(self, ids):
        return point_id_to_ijk(ids, self.dims)

    def axis_coords(self, axis: int) -> np.ndarray:
        """1-D world coordinates of the lattice planes along ``axis``."""
        if axis not in (0, 1, 2):
            raise GridError(f"axis must be 0..2, got {axis}")
        n = self.dims[axis]
        return self.origin[axis] + self.spacing[axis] * np.arange(n)

    # ------------------------------------------------------------------
    # Array helpers
    # ------------------------------------------------------------------
    def scalar_field(self, name: str) -> np.ndarray:
        """Return the named point array reshaped to ``(nz, ny, nx)``.

        The reshape is a view (zero copy) because arrays are contiguous and
        x varies fastest.  This is the layout all vectorized filters use.
        """
        arr = self.point_data.get(name)
        if arr.components != 1:
            raise GridError(f"array {name!r} is not a scalar field")
        nx, ny, nz = self.dims
        return arr.values.reshape(nz, ny, nx)

    def shallow_copy(self) -> "UniformGrid":
        """Copy structure; share array payloads."""
        out = UniformGrid(self.dims, self.origin, self.spacing)
        for arr in self.point_data:
            out.point_data.add(arr)
        for arr in self.cell_data:
            out.cell_data.add(arr)
        return out

    def structure_equals(self, other: "UniformGrid") -> bool:
        """True when dims/origin/spacing match (arrays not compared)."""
        return (
            isinstance(other, UniformGrid)
            and self.dims == other.dims
            and self.origin == other.origin
            and self.spacing == other.spacing
        )

    def __eq__(self, other) -> bool:
        if not isinstance(other, UniformGrid):
            return NotImplemented
        return (
            self.structure_equals(other)
            and self.point_data == other.point_data
            and self.cell_data == other.cell_data
        )

    def __repr__(self) -> str:
        return (
            f"UniformGrid(dims={self.dims}, origin={self.origin}, "
            f"spacing={self.spacing}, point_arrays={self.point_data.names()})"
        )
