"""Attribute collections: the named-array dictionaries attached to datasets.

VTK datasets carry ``PointData`` and ``CellData`` collections; readers let a
pipeline *select* a subset of arrays to load (the paper's Sec. I "data array
selection").  :class:`AttributeCollection` models both the container and the
selection bookkeeping.
"""

from __future__ import annotations

from typing import Iterator, Sequence

from repro.errors import GridError
from repro.grid.array import DataArray

__all__ = ["AttributeCollection"]


class AttributeCollection:
    """An ordered, name-keyed collection of :class:`DataArray` objects.

    All arrays in a collection must have the same tuple count, fixed by the
    first array added (or by an explicit ``expected_tuples``).
    """

    def __init__(self, expected_tuples: int | None = None):
        self._arrays: dict[str, DataArray] = {}
        self._expected = expected_tuples

    # ------------------------------------------------------------------
    @property
    def expected_tuples(self) -> int | None:
        return self._expected

    def add(self, array: DataArray) -> None:
        """Add (or replace) an array; validates the tuple count."""
        if not isinstance(array, DataArray):
            raise GridError(f"expected DataArray, got {type(array).__name__}")
        if self._expected is None:
            self._expected = array.num_tuples
        elif array.num_tuples != self._expected:
            raise GridError(
                f"array {array.name!r} has {array.num_tuples} tuples; "
                f"collection expects {self._expected}"
            )
        self._arrays[array.name] = array

    def remove(self, name: str) -> None:
        if name not in self._arrays:
            raise GridError(f"no array named {name!r}")
        del self._arrays[name]

    def get(self, name: str) -> DataArray:
        try:
            return self._arrays[name]
        except KeyError:
            raise GridError(
                f"no array named {name!r}; available: {sorted(self._arrays)}"
            ) from None

    def names(self) -> list[str]:
        return list(self._arrays)

    def subset(self, names: Sequence[str]) -> "AttributeCollection":
        """A new collection containing only ``names`` (array-selection)."""
        out = AttributeCollection(self._expected)
        for name in names:
            out.add(self.get(name))
        return out

    def copy(self) -> "AttributeCollection":
        out = AttributeCollection(self._expected)
        for arr in self._arrays.values():
            out.add(arr.copy())
        return out

    @property
    def total_bytes(self) -> int:
        return sum(a.nbytes for a in self._arrays.values())

    # ------------------------------------------------------------------
    def __contains__(self, name: str) -> bool:
        return name in self._arrays

    def __getitem__(self, name: str) -> DataArray:
        return self.get(name)

    def __iter__(self) -> Iterator[DataArray]:
        return iter(self._arrays.values())

    def __len__(self) -> int:
        return len(self._arrays)

    def __eq__(self, other) -> bool:
        if not isinstance(other, AttributeCollection):
            return NotImplemented
        return self.names() == other.names() and all(
            self._arrays[n] == other._arrays[n] for n in self._arrays
        )

    def __repr__(self) -> str:
        return f"AttributeCollection({self.names()!r}, tuples={self._expected})"
