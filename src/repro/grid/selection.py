"""Sparse point selections: the unit of exchange between pre- and post-filters.

The paper's pre-filter "scans the data in memory, identifies all necessary
information to be transferred, and performs the transfer" (Sec. V).  What is
transferred is a sparse subset of grid points: their ids and their values,
together with the implicit grid structure needed to rebuild geometry on the
client.  :class:`PointSelection` is that payload.

Two selection flavours exist in this codebase (see
:mod:`repro.core.prefilter`):

* *edge* selections contain exactly the points incident to at least one
  interesting edge — the quantity the paper reports as "data selection rate"
  (Fig. 6);
* *cell-closure* selections additionally contain every corner of every cell
  that owns an interesting edge, which is the minimal superset that makes
  client-side contour reconstruction **bit-exact** (see DESIGN.md §5,
  invariant 1).
"""

from __future__ import annotations

import numpy as np

from repro.errors import SelectionError
from repro.grid.cells import point_count
from repro.grid.uniform import UniformGrid

__all__ = ["PointSelection"]


def _grid_structure(grid):
    """(origin, spacing, axes) triple for either structured grid type."""
    axes = getattr(grid, "axes", None)
    if axes is not None:
        return (0.0, 0.0, 0.0), (1.0, 1.0, 1.0), axes
    return grid.origin, grid.spacing, None


class PointSelection:
    """A sparse subset of the points of a :class:`UniformGrid`.

    Parameters
    ----------
    dims, origin, spacing:
        Structure of the grid the selection was taken from.
    array_name:
        Name of the scalar array the values belong to.
    ids:
        Sorted, unique flat point ids (int64).
    values:
        Scalar values at ``ids``, same length, any float/int dtype.
    """

    __slots__ = ("dims", "origin", "spacing", "array_name", "ids", "values", "axes")

    def __init__(self, dims, origin, spacing, array_name: str, ids, values,
                 axes=None):
        self.dims = tuple(int(d) for d in dims)
        self.origin = tuple(float(v) for v in origin)
        self.spacing = tuple(float(v) for v in spacing)
        self.array_name = str(array_name)
        self.ids = np.ascontiguousarray(ids, dtype=np.int64)
        self.values = np.ascontiguousarray(values)
        if axes is not None:
            axes = tuple(np.ascontiguousarray(a, dtype=np.float64) for a in axes)
            if len(axes) != 3 or any(
                a.ndim != 1 or a.size != d for a, d in zip(axes, self.dims)
            ):
                raise SelectionError("axes must be three 1-D arrays matching dims")
        self.axes = axes
        self._validate()

    def _validate(self):
        if self.ids.ndim != 1 or self.values.ndim != 1:
            raise SelectionError("ids and values must be 1-D")
        if self.ids.size != self.values.size:
            raise SelectionError(
                f"{self.ids.size} ids but {self.values.size} values"
            )
        n = point_count(self.dims)
        if self.ids.size:
            if self.ids[0] < 0 or self.ids[-1] >= n:
                raise SelectionError("point ids out of grid range")
            if (np.diff(self.ids) <= 0).any():
                raise SelectionError("point ids must be sorted and unique")

    # ------------------------------------------------------------------
    @classmethod
    def from_grid(cls, grid, array_name: str, ids) -> "PointSelection":
        """Gather ``ids`` from a grid's named scalar array.

        Works for uniform and rectilinear grids; rectilinear structure is
        carried in :attr:`axes`.
        """
        ids = np.asarray(ids, dtype=np.int64)
        order = np.argsort(ids, kind="stable")
        ids = ids[order]
        arr = grid.point_data.get(array_name)
        origin, spacing, axes = _grid_structure(grid)
        return cls(
            grid.dims, origin, spacing, array_name, ids, arr.values[ids], axes=axes
        )

    @property
    def count(self) -> int:
        """Number of selected points."""
        return self.ids.size

    @property
    def total_points(self) -> int:
        """Number of points in the full grid."""
        return point_count(self.dims)

    @property
    def selectivity(self) -> float:
        """Selected fraction of the grid, in [0, 1]."""
        return self.count / self.total_points

    @property
    def permillage(self) -> float:
        """Selectivity expressed in permillage (the paper's Fig. 6 unit)."""
        return 1000.0 * self.selectivity

    @property
    def payload_nbytes(self) -> int:
        """Raw (unencoded) payload size: ids + values."""
        return self.ids.nbytes + self.values.nbytes

    # ------------------------------------------------------------------
    def to_dense(self, fill=np.nan) -> tuple[np.ndarray, np.ndarray]:
        """Scatter back to a dense array.

        Returns
        -------
        values : ndarray
            Full-length float array with ``fill`` at unselected points.
        mask : ndarray of bool
            True at selected points.
        """
        n = self.total_points
        dtype = self.values.dtype
        if dtype.kind != "f":
            dtype = np.float64
        dense = np.full(n, fill, dtype=dtype)
        dense[self.ids] = self.values
        mask = np.zeros(n, dtype=bool)
        mask[self.ids] = True
        return dense, mask

    def to_grid(self, fill=np.nan):
        """Rebuild a (mostly hollow) grid carrying the dense scatter.

        Returns a :class:`UniformGrid` — or a
        :class:`~repro.grid.rectilinear.RectilinearGrid` when the selection
        carries axes — plus the presence mask.
        """
        from repro.grid.array import DataArray  # local import: avoid cycle
        from repro.grid.rectilinear import RectilinearGrid

        if self.axes is not None:
            grid = RectilinearGrid(*self.axes)
        else:
            grid = UniformGrid(self.dims, self.origin, self.spacing)
        dense, mask = self.to_dense(fill)
        grid.point_data.add(DataArray(self.array_name, dense))
        return grid, mask

    def _same_structure(self, other: "PointSelection") -> bool:
        if (
            self.dims != other.dims
            or self.origin != other.origin
            or self.spacing != other.spacing
        ):
            return False
        if (self.axes is None) != (other.axes is None):
            return False
        if self.axes is not None:
            return all(np.array_equal(a, b) for a, b in zip(self.axes, other.axes))
        return True

    def rebase(self, dims, offset, origin=None, spacing=None,
               axes=None) -> "PointSelection":
        """Re-index a block-local selection into an enclosing grid.

        ``dims`` is the enclosing lattice; ``offset`` is the per-axis
        point index of this selection's ``(0, 0, 0)`` point within it
        (a block's ``lo`` corner).  Ids are translated; values are kept
        byte-for-byte.  For a uniform enclosing grid, ``origin`` and
        ``spacing`` default to the values implied by shifting this
        selection's origin back by ``offset`` — passing ``axes`` instead
        marks the enclosing grid rectilinear (origin/spacing take the
        conventional ``(0,0,0)``/``(1,1,1)``).

        Because flat ids are x-fastest lexicographic in ``(k, j, i)`` and
        translation preserves that order, the result stays sorted —
        selections from disjoint-cell blocks can be :meth:`union`-ed
        directly (the seam ghost layer deduplicates there).
        """
        from repro.grid.cells import point_id_to_ijk, point_ijk_to_id

        dims = tuple(int(d) for d in dims)
        offset = tuple(int(o) for o in offset)
        if len(dims) != 3 or len(offset) != 3:
            raise SelectionError("dims and offset must each have 3 entries")
        for o, local_d, d in zip(offset, self.dims, dims):
            if o < 0 or o + local_d > d:
                raise SelectionError(
                    f"block of dims {self.dims} at offset {offset} exceeds "
                    f"enclosing dims {dims}"
                )
        if axes is not None:
            origin, spacing = (0.0, 0.0, 0.0), (1.0, 1.0, 1.0)
        else:
            if origin is None:
                origin = tuple(
                    go - o * s
                    for go, o, s in zip(self.origin, offset, self.spacing)
                )
            if spacing is None:
                spacing = self.spacing
        if self.ids.size:
            ijk = np.atleast_2d(point_id_to_ijk(self.ids, self.dims))
            ijk = ijk + np.asarray(offset, dtype=np.int64)
            ids = np.atleast_1d(
                np.asarray(point_ijk_to_id(ijk, dims), dtype=np.int64)
            )
        else:
            ids = self.ids
        return PointSelection(
            dims, origin, spacing, self.array_name, ids, self.values, axes=axes
        )

    def union(self, other: "PointSelection") -> "PointSelection":
        """Merge two selections over the same grid/array."""
        if not self._same_structure(other) or self.array_name != other.array_name:
            raise SelectionError("cannot union selections of different grids/arrays")
        ids = np.concatenate([self.ids, other.ids])
        values = np.concatenate(
            [self.values.astype(np.float64), other.values.astype(np.float64)]
        )
        uniq, first = np.unique(ids, return_index=True)
        return PointSelection(
            self.dims,
            self.origin,
            self.spacing,
            self.array_name,
            uniq,
            values[first].astype(self.values.dtype, copy=False),
            axes=self.axes,
        )

    def __eq__(self, other) -> bool:
        if not isinstance(other, PointSelection):
            return NotImplemented
        return (
            self._same_structure(other)
            and self.array_name == other.array_name
            and np.array_equal(self.ids, other.ids)
            and np.array_equal(self.values, other.values)
        )

    def __repr__(self) -> str:
        return (
            f"PointSelection(array={self.array_name!r}, count={self.count}, "
            f"of={self.total_points}, permillage={self.permillage:.4f})"
        )
