"""Named, typed, NumPy-backed data arrays.

A :class:`DataArray` is the unit the paper reasons about: simulation outputs
contain several named arrays (Table I of the paper lists 11 for the
deep-water asteroid impact dataset), readers can select a subset of them,
codecs compress them individually, and the pre-filter extracts sparse
subsets of one of them.
"""

from __future__ import annotations

from typing import Iterable

import numpy as np

from repro.errors import GridError

__all__ = ["DataArray"]

#: dtypes a DataArray may hold.  Matches the scalar types VTK data files
#: carry in practice; the paper's arrays are all float32.
_SUPPORTED_KINDS = frozenset("iuf")


class DataArray:
    """A named 1-D array of per-point (or per-cell) scalar values.

    Values are stored as a contiguous 1-D NumPy array.  Multi-component
    arrays (e.g. vectors) are stored with ``components > 1`` in row-major
    (point-interleaved) order, mirroring VTK's layout.

    Parameters
    ----------
    name:
        Array name, e.g. ``"v02"``.
    values:
        Anything convertible to a NumPy array of a supported dtype.
    components:
        Number of components per tuple.  ``len(values)`` must be divisible
        by this.
    """

    __slots__ = ("name", "values", "components")

    def __init__(self, name: str, values, components: int = 1):
        if not name:
            raise GridError("DataArray requires a non-empty name")
        arr = np.ascontiguousarray(values)
        if arr.ndim > 1:
            if components == 1 and arr.ndim == 2:
                components = arr.shape[1]
            arr = arr.reshape(-1)
        if arr.dtype.kind not in _SUPPORTED_KINDS:
            raise GridError(
                f"unsupported dtype {arr.dtype} for data array {name!r}; "
                "expected integer or floating point"
            )
        if components < 1:
            raise GridError("components must be >= 1")
        if arr.size % components:
            raise GridError(
                f"array {name!r} has {arr.size} values, not divisible by "
                f"{components} components"
            )
        self.name = name
        self.values = arr
        self.components = components

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def dtype(self) -> np.dtype:
        """The underlying NumPy dtype."""
        return self.values.dtype

    @property
    def num_tuples(self) -> int:
        """Number of tuples (points or cells covered)."""
        return self.values.size // self.components

    @property
    def nbytes(self) -> int:
        """Total payload size in bytes."""
        return self.values.nbytes

    def range(self, component: int = 0) -> tuple[float, float]:
        """Return ``(min, max)`` of one component.

        Raises
        ------
        GridError
            If the array is empty or the component index is out of range.
        """
        if not 0 <= component < self.components:
            raise GridError(
                f"component {component} out of range for array {self.name!r} "
                f"with {self.components} components"
            )
        if self.values.size == 0:
            raise GridError(f"array {self.name!r} is empty; no range")
        view = self.values[component :: self.components]
        return float(view.min()), float(view.max())

    def component(self, index: int) -> np.ndarray:
        """Return a *view* of one component (no copy)."""
        if not 0 <= index < self.components:
            raise GridError(f"component {index} out of range")
        return self.values[index :: self.components]

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    def copy(self) -> "DataArray":
        """Deep copy."""
        out = DataArray.__new__(DataArray)
        out.name = self.name
        out.values = self.values.copy()
        out.components = self.components
        return out

    def astype(self, dtype) -> "DataArray":
        """Return a copy converted to ``dtype``."""
        out = DataArray.__new__(DataArray)
        out.name = self.name
        out.values = np.ascontiguousarray(self.values, dtype=dtype)
        out.components = self.components
        return out

    def take(self, indices: Iterable[int]) -> "DataArray":
        """Gather tuples at ``indices`` into a new array (used by pre-filters)."""
        idx = np.asarray(indices, dtype=np.int64)
        if self.components == 1:
            vals = self.values[idx]
        else:
            base = idx[:, None] * self.components + np.arange(self.components)
            vals = self.values[base.reshape(-1)]
        out = DataArray.__new__(DataArray)
        out.name = self.name
        out.values = np.ascontiguousarray(vals)
        out.components = self.components
        return out

    # ------------------------------------------------------------------
    # Dunder
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return self.num_tuples

    def __eq__(self, other) -> bool:
        if not isinstance(other, DataArray):
            return NotImplemented
        return (
            self.name == other.name
            and self.components == other.components
            and self.values.dtype == other.values.dtype
            and np.array_equal(self.values, other.values)
        )

    def __hash__(self):  # mutable payload; not hashable
        raise TypeError("DataArray is not hashable")

    def __repr__(self) -> str:
        return (
            f"DataArray(name={self.name!r}, dtype={self.dtype}, "
            f"tuples={self.num_tuples}, components={self.components})"
        )
