"""Rectilinear grids: per-axis coordinate arrays (VTK's ``vtkRectilinearGrid``).

The paper's prototype "support[s] uniform rectilinear grids at the moment,
with plans to extend support to more complex grid types in future work"
(Sec. VI).  This class is that extension's first step: the lattice
topology is still structured (so the interesting-edge machinery carries
over unchanged), but spacing may vary per axis — the layout AMR-adjacent
codes like xRage export after flattening.

Geometry is defined by three strictly increasing coordinate arrays; point
``(i, j, k)`` sits at ``(x[i], y[j], z[k])``.
"""

from __future__ import annotations

import numpy as np

from repro.errors import GridError
from repro.grid.attributes import AttributeCollection
from repro.grid.bounds import Bounds
from repro.grid.cells import cell_count, point_count, point_id_to_ijk, point_ijk_to_id

__all__ = ["RectilinearGrid"]


def _check_axis(name: str, coords) -> np.ndarray:
    arr = np.ascontiguousarray(coords, dtype=np.float64)
    if arr.ndim != 1 or arr.size < 1:
        raise GridError(f"{name} coordinates must be a non-empty 1-D array")
    if arr.size > 1 and (np.diff(arr) <= 0).any():
        raise GridError(f"{name} coordinates must be strictly increasing")
    if not np.isfinite(arr).all():
        raise GridError(f"{name} coordinates must be finite")
    return arr


class RectilinearGrid:
    """A structured grid with independent per-axis coordinate arrays.

    Mirrors :class:`~repro.grid.uniform.UniformGrid`'s surface (dims,
    point/cell data, ``scalar_field``, coordinate queries) so filters that
    only need structured *topology* plus per-axis geometry work on both.
    """

    def __init__(self, x_coords, y_coords, z_coords):
        self.x_coords = _check_axis("x", x_coords)
        self.y_coords = _check_axis("y", y_coords)
        self.z_coords = _check_axis("z", z_coords)
        self.dims = (self.x_coords.size, self.y_coords.size, self.z_coords.size)
        self.point_data = AttributeCollection(self.num_points)
        self.cell_data = AttributeCollection(self.num_cells)

    # ------------------------------------------------------------------
    @classmethod
    def from_uniform_params(cls, dims, origin=(0.0, 0.0, 0.0),
                            spacing=(1.0, 1.0, 1.0)) -> "RectilinearGrid":
        """A rectilinear grid equivalent to a uniform one (testing aid)."""
        axes = [
            origin[a] + spacing[a] * np.arange(dims[a]) for a in range(3)
        ]
        return cls(*axes)

    @property
    def num_points(self) -> int:
        return point_count(self.dims)

    @property
    def num_cells(self) -> int:
        return cell_count(self.dims)

    @property
    def is_2d(self) -> bool:
        return 1 in self.dims

    @property
    def axes(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """The three coordinate arrays ``(x, y, z)``."""
        return self.x_coords, self.y_coords, self.z_coords

    @property
    def bounds(self) -> Bounds:
        return Bounds(
            float(self.x_coords[0]), float(self.x_coords[-1]),
            float(self.y_coords[0]), float(self.y_coords[-1]),
            float(self.z_coords[0]), float(self.z_coords[-1]),
        )

    # ------------------------------------------------------------------
    def axis_coords(self, axis: int) -> np.ndarray:
        if axis not in (0, 1, 2):
            raise GridError(f"axis must be 0..2, got {axis}")
        return self.axes[axis]

    def point_ids_to_coords(self, ids) -> np.ndarray:
        ijk = point_id_to_ijk(np.asarray(ids, dtype=np.int64), self.dims)
        ijk = np.atleast_2d(ijk)
        return np.stack(
            [
                self.x_coords[ijk[:, 0]],
                self.y_coords[ijk[:, 1]],
                self.z_coords[ijk[:, 2]],
            ],
            axis=1,
        )

    def ijk_to_id(self, ijk):
        return point_ijk_to_id(ijk, self.dims)

    def id_to_ijk(self, ids):
        return point_id_to_ijk(ids, self.dims)

    def scalar_field(self, name: str) -> np.ndarray:
        """The named point array viewed as ``(nz, ny, nx)`` (zero copy)."""
        arr = self.point_data.get(name)
        if arr.components != 1:
            raise GridError(f"array {name!r} is not a scalar field")
        nx, ny, nz = self.dims
        return arr.values.reshape(nz, ny, nx)

    def shallow_copy(self) -> "RectilinearGrid":
        out = RectilinearGrid(self.x_coords, self.y_coords, self.z_coords)
        for arr in self.point_data:
            out.point_data.add(arr)
        for arr in self.cell_data:
            out.cell_data.add(arr)
        return out

    def structure_equals(self, other) -> bool:
        return (
            isinstance(other, RectilinearGrid)
            and self.dims == other.dims
            and np.array_equal(self.x_coords, other.x_coords)
            and np.array_equal(self.y_coords, other.y_coords)
            and np.array_equal(self.z_coords, other.z_coords)
        )

    def __eq__(self, other) -> bool:
        if not isinstance(other, RectilinearGrid):
            return NotImplemented
        return (
            self.structure_equals(other)
            and self.point_data == other.point_data
            and self.cell_data == other.cell_data
        )

    def __repr__(self) -> str:
        return (
            f"RectilinearGrid(dims={self.dims}, "
            f"bounds={self.bounds.as_tuple()}, "
            f"point_arrays={self.point_data.names()})"
        )
