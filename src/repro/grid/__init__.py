"""Grid data model: arrays, uniform rectilinear grids, poly data, selections.

This subpackage is the library's substitute for VTK's data model.  It
provides:

* :class:`~repro.grid.array.DataArray` — a named, typed, NumPy-backed data
  array with cheap summary statistics,
* :class:`~repro.grid.attributes.AttributeCollection` — the point-data /
  cell-data dictionaries attached to datasets, with array-selection support,
* :class:`~repro.grid.uniform.UniformGrid` — a uniform rectilinear grid
  (VTK's ``vtkImageData``), the grid type the paper's prototype supports,
* :class:`~repro.grid.polydata.PolyData` — points plus vertex/line/polygon
  connectivity, the output type of contour filters,
* :class:`~repro.grid.selection.PointSelection` — a sparse subset of grid
  points, the unit of exchange between the paper's pre- and post-filters.
"""

from repro.grid.array import DataArray
from repro.grid.attributes import AttributeCollection
from repro.grid.bounds import Bounds
from repro.grid.cells import (
    cell_count,
    edge_endpoints,
    point_count,
    point_id_to_ijk,
    point_ijk_to_id,
    structured_edges,
)
from repro.grid.polydata import CellArray, PolyData
from repro.grid.rectilinear import RectilinearGrid
from repro.grid.selection import PointSelection
from repro.grid.uniform import UniformGrid

__all__ = [
    "DataArray",
    "AttributeCollection",
    "Bounds",
    "UniformGrid",
    "RectilinearGrid",
    "PolyData",
    "CellArray",
    "PointSelection",
    "cell_count",
    "point_count",
    "edge_endpoints",
    "structured_edges",
    "point_id_to_ijk",
    "point_ijk_to_id",
]
