"""Vectorized topology helpers for structured (uniform rectilinear) grids.

Point ids follow VTK's convention: x varies fastest, then y, then z, so the
point at integer coordinates ``(i, j, k)`` on a grid with ``dims=(nx,ny,nz)``
has id ``i + j*nx + k*nx*ny``.

The paper's interesting-edge analysis (Sec. II-B) operates on the
axis-aligned edges of this lattice; :func:`structured_edges` enumerates them
without Python loops.
"""

from __future__ import annotations

import numpy as np

from repro.errors import GridError

__all__ = [
    "point_count",
    "cell_count",
    "point_ijk_to_id",
    "point_id_to_ijk",
    "structured_edges",
    "edge_endpoints",
    "axis_edge_counts",
]


def _check_dims(dims) -> tuple[int, int, int]:
    dims = tuple(int(d) for d in dims)
    if len(dims) != 3:
        raise GridError(f"dims must have 3 entries, got {dims!r}")
    if any(d < 1 for d in dims):
        raise GridError(f"dims must be >= 1 in every direction, got {dims!r}")
    return dims


def point_count(dims) -> int:
    """Number of points on a grid with ``dims`` points per axis."""
    nx, ny, nz = _check_dims(dims)
    return nx * ny * nz


def cell_count(dims) -> int:
    """Number of cells (voxels / pixels / line segments) on the grid.

    Degenerate axes (a single point plane) contribute a factor of 1, so a
    ``(nx, ny, 1)`` grid has ``(nx-1)*(ny-1)`` pixel cells.
    """
    nx, ny, nz = _check_dims(dims)
    return max(nx - 1, 1) * max(ny - 1, 1) * max(nz - 1, 1)


def point_ijk_to_id(ijk, dims) -> np.ndarray:
    """Convert integer lattice coordinates to flat point ids.

    ``ijk`` may be a single triple or an ``(n, 3)`` array.
    """
    nx, ny, nz = _check_dims(dims)
    arr = np.asarray(ijk, dtype=np.int64)
    single = arr.ndim == 1
    arr = arr.reshape(-1, 3)
    if (arr < 0).any() or (arr >= np.array([nx, ny, nz])).any():
        raise GridError("ijk coordinates out of grid range")
    ids = arr[:, 0] + arr[:, 1] * nx + arr[:, 2] * (nx * ny)
    return ids[0] if single else ids


def point_id_to_ijk(ids, dims) -> np.ndarray:
    """Convert flat point ids back to ``(n, 3)`` lattice coordinates."""
    nx, ny, nz = _check_dims(dims)
    arr = np.asarray(ids, dtype=np.int64)
    single = arr.ndim == 0
    arr = arr.reshape(-1)
    if (arr < 0).any() or (arr >= nx * ny * nz).any():
        raise GridError("point ids out of grid range")
    k, rem = np.divmod(arr, nx * ny)
    j, i = np.divmod(rem, nx)
    out = np.stack([i, j, k], axis=1)
    return out[0] if single else out


def axis_edge_counts(dims) -> tuple[int, int, int]:
    """Number of lattice edges along each axis direction."""
    nx, ny, nz = _check_dims(dims)
    ex = max(nx - 1, 0) * ny * nz
    ey = nx * max(ny - 1, 0) * nz
    ez = nx * ny * max(nz - 1, 0)
    return ex, ey, ez


def edge_endpoints(dims, axis: int) -> tuple[np.ndarray, np.ndarray]:
    """Flat point-id endpoint arrays ``(a, b)`` of all edges along ``axis``.

    Edge ``m`` connects point ``a[m]`` to ``b[m] = a[m] + stride(axis)``.
    Returned arrays are 1-D int64 and may be empty for degenerate axes.
    """
    nx, ny, nz = _check_dims(dims)
    if axis not in (0, 1, 2):
        raise GridError(f"axis must be 0, 1, or 2, got {axis}")
    ids = np.arange(nx * ny * nz, dtype=np.int64).reshape(nz, ny, nx)
    if axis == 0:
        a = ids[:, :, :-1]
    elif axis == 1:
        a = ids[:, :-1, :]
    else:
        a = ids[:-1, :, :]
    a = a.reshape(-1)
    stride = (1, nx, nx * ny)[axis]
    return a, a + stride


def structured_edges(dims) -> tuple[np.ndarray, np.ndarray]:
    """All axis-aligned lattice edges of the grid as ``(a, b)`` id arrays."""
    parts_a = []
    parts_b = []
    for axis in range(3):
        a, b = edge_endpoints(dims, axis)
        parts_a.append(a)
        parts_b.append(b)
    return np.concatenate(parts_a), np.concatenate(parts_b)
