"""Array calculator: derive new point arrays from existing ones.

The equivalent of ParaView's Calculator filter, restricted to NumPy
ufunc-style expressions supplied as Python callables (no string parsing —
callables keep the filter safe and fast).
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from repro.errors import FilterError
from repro.grid.array import DataArray
from repro.grid.uniform import UniformGrid
from repro.pipeline.filter_base import Filter

__all__ = ["ArrayCalculator"]


class ArrayCalculator(Filter):
    """Compute ``result = func(*input_arrays)`` as a new point array.

    Parameters
    ----------
    result_name:
        Name of the array added to the output grid.
    input_names:
        Names of the point arrays passed (as NumPy arrays) to ``func``.
    func:
        Vectorized callable returning an array of the same length.
    """

    def __init__(
        self,
        result_name: str,
        input_names: Sequence[str],
        func: Callable[..., np.ndarray],
    ):
        super().__init__()
        if not result_name:
            raise FilterError("result_name must be non-empty")
        if not input_names:
            raise FilterError("at least one input array name is required")
        self._result_name = result_name
        self._input_names = tuple(input_names)
        self._func = func

    def _execute(self, grid: UniformGrid) -> UniformGrid:
        if not isinstance(grid, UniformGrid):
            raise FilterError(
                f"ArrayCalculator expects a UniformGrid, got {type(grid).__name__}"
            )
        inputs = [grid.point_data.get(n).values for n in self._input_names]
        result = np.asarray(self._func(*inputs))
        if result.shape != inputs[0].shape:
            raise FilterError(
                f"calculator produced shape {result.shape}; expected {inputs[0].shape}"
            )
        out = grid.shallow_copy()
        out.point_data.add(DataArray(self._result_name, result))
        return out
