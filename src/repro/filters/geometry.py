"""Geometry post-processing for contour output.

Contour kernels emit a *triangle soup* (each triangle owns its three
vertices).  These utilities turn that into analysis-ready form:

* :func:`weld_points` — merge coincident vertices into an indexed mesh,
* :func:`surface_area` / :func:`segment_length` — measure the output,
* :func:`connected_components` — split the mesh into its separate
  surfaces, which is how the Nyx example counts halo candidates
  (each closed isosurface around a density peak is one candidate).
"""

from __future__ import annotations

import numpy as np

from repro.errors import FilterError
from repro.grid.polydata import CellArray, PolyData

__all__ = [
    "weld_points",
    "surface_area",
    "segment_length",
    "connected_components",
    "component_sizes",
]


def weld_points(polydata: PolyData, decimals: int = 9) -> PolyData:
    """Merge vertices that coincide (after rounding) into an indexed mesh.

    Rounding to ``decimals`` places makes vertices produced by the same
    lattice edge in adjacent cells compare equal despite float noise.
    Point data is taken from the first occurrence of each welded point.
    """
    if polydata.num_points == 0:
        return PolyData()
    rounded = polydata.points.round(decimals)
    uniq, first_idx, inverse = np.unique(
        rounded, axis=0, return_index=True, return_inverse=True
    )
    out = PolyData(polydata.points[first_idx])
    for name, cells in (("verts", polydata.verts), ("lines", polydata.lines),
                        ("polys", polydata.polys)):
        remapped = CellArray(cells.offsets, inverse[cells.connectivity])
        setattr(out, name, remapped)
    for arr in polydata.point_data:
        out.point_data.add(arr.take(first_idx))
    return out


def surface_area(polydata: PolyData) -> float:
    """Total area of the polygon (triangle) cells."""
    tris = polydata.triangles()
    if tris.shape[0] == 0:
        return 0.0
    pts = polydata.points[tris]
    e1 = pts[:, 1] - pts[:, 0]
    e2 = pts[:, 2] - pts[:, 0]
    return float(0.5 * np.linalg.norm(np.cross(e1, e2), axis=1).sum())


def segment_length(polydata: PolyData) -> float:
    """Total length of the line cells (2-D contour output)."""
    segs = polydata.segments()
    if segs.shape[0] == 0:
        return 0.0
    pts = polydata.points
    return float(np.linalg.norm(pts[segs[:, 1]] - pts[segs[:, 0]], axis=1).sum())


def _union_find_components(n_points: int, edges: np.ndarray) -> np.ndarray:
    """Label points 0..n-1 by connected component, given (m, 2) edges."""
    parent = np.arange(n_points, dtype=np.int64)

    def find(a: int) -> int:
        root = a
        while parent[root] != root:
            root = parent[root]
        while parent[a] != root:  # path compression
            parent[a], a = root, parent[a]
        return root

    for a, b in edges:
        ra, rb = find(int(a)), find(int(b))
        if ra != rb:
            parent[rb] = ra
    roots = np.array([find(int(i)) for i in range(n_points)], dtype=np.int64)
    _, labels = np.unique(roots, return_inverse=True)
    return labels


def connected_components(polydata: PolyData, weld_decimals: int = 9) -> np.ndarray:
    """Component label per *welded* point of the mesh.

    The soup is welded first (component analysis on unwelded soup would
    see every triangle as its own island).  Returns an int label array
    over ``weld_points(polydata)``'s points.
    """
    welded = weld_points(polydata, weld_decimals)
    if welded.num_points == 0:
        return np.zeros(0, dtype=np.int64)
    edge_list = []
    tris = welded.triangles() if welded.polys.num_cells else None
    if tris is not None and len(tris):
        edge_list.append(tris[:, [0, 1]])
        edge_list.append(tris[:, [1, 2]])
        edge_list.append(tris[:, [2, 0]])
    if welded.lines.num_cells:
        edge_list.append(welded.segments())
    edges = (
        np.concatenate(edge_list) if edge_list else np.zeros((0, 2), dtype=np.int64)
    )
    return _union_find_components(welded.num_points, edges)


def component_sizes(polydata: PolyData, weld_decimals: int = 9,
                    min_points: int = 1) -> list[int]:
    """Point counts of each connected component, largest first.

    ``min_points`` drops tiny fragments (isolated degenerate triangles).
    """
    if min_points < 1:
        raise FilterError(f"min_points must be >= 1, got {min_points}")
    labels = connected_components(polydata, weld_decimals)
    if labels.size == 0:
        return []
    counts = np.bincount(labels)
    counts = counts[counts >= min_points]
    return sorted((int(c) for c in counts), reverse=True)
