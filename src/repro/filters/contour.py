"""The contour filter: the pipeline stage the paper splits in half.

:func:`contour_grid` is the functional kernel; :class:`ContourFilter` wraps
it as a pipeline filter equivalent to ``vtkContourFilter`` on image data.
Both support:

* multiple simultaneous contour values (paper Sec. VI: "generating contours
  at multiple contour values at the same time"),
* 2-D grids (line output) and 3-D grids (triangle output),
* an optional *cell mask* restricting extraction to complete cells, which is
  how the post-filter consumes sparse reconstructions.

Output is a :class:`~repro.grid.polydata.PolyData` whose point data carries
a ``"contour_value"`` array recording which isovalue produced each vertex.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.errors import FilterError
from repro.filters.marching_squares import marching_squares
from repro.filters.marching_tets import marching_tetrahedra
from repro.grid.array import DataArray
from repro.grid.polydata import CellArray, PolyData
from repro.grid.rectilinear import RectilinearGrid
from repro.grid.uniform import UniformGrid
from repro.pipeline.filter_base import Filter

#: Grid types the contour filter accepts (structured topology + per-axis
#: geometry).  The paper's prototype supports uniform grids; rectilinear
#: support is this library's implementation of its stated future work.
STRUCTURED_GRID_TYPES = (UniformGrid, RectilinearGrid)

__all__ = ["ContourFilter", "contour_grid", "normalize_values"]


def normalize_values(values) -> tuple[float, ...]:
    """Validate and canonicalize contour values: a sorted, unique tuple.

    Accepts a scalar, any iterable of numbers, or a numpy array — including
    0-d arrays and numpy scalar types, which ``np.isscalar`` rejects and
    plain iteration would crash on ("iteration over a 0-d array").
    """
    if isinstance(values, np.ndarray):
        values = np.atleast_1d(values).ravel().tolist()
    elif np.isscalar(values) or isinstance(values, np.generic):
        values = [values]
    vals = sorted({float(v) for v in values})
    if not vals:
        raise FilterError("at least one contour value is required")
    for v in vals:
        if not np.isfinite(v):
            raise FilterError(f"contour value must be finite, got {v}")
    return tuple(vals)


def _values_unset(values) -> bool:
    """True when a ``values`` argument means "not configured".

    ``None`` and empty sequences/arrays are unset; scalars (including 0.0)
    and non-empty collections are values.
    """
    if values is None:
        return True
    if isinstance(values, np.ndarray):
        return values.size == 0
    if np.isscalar(values) or isinstance(values, np.generic):
        return False
    try:
        return len(values) == 0
    except TypeError:
        return False  # a non-sized iterable: let normalize_values decide


def _squeeze_2d(grid: UniformGrid, field3d: np.ndarray):
    """Map a 2-D grid (one degenerate axis) to a (ny, nx) field + axes info.

    Returns (field2d, axis_u, axis_v, flat_axis) where axis_u/axis_v are the
    world axes spanned by the columns/rows of field2d.
    """
    dims = grid.dims
    flat_axis = dims.index(1)
    # field3d is (nz, ny, nx) == axes (2, 1, 0)
    if flat_axis == 2:  # nz == 1: xy plane
        f2 = field3d[0]
        return f2, 0, 1, flat_axis
    if flat_axis == 1:  # ny == 1: xz plane
        f2 = field3d[:, 0, :]
        return f2, 0, 2, flat_axis
    # nx == 1: yz plane
    f2 = field3d[:, :, 0]
    return f2, 1, 2, flat_axis


def _combine_roi(grid, cell_mask, roi):
    """Fold a region-of-interest bounds into the cell mask."""
    if roi is None:
        return cell_mask
    from repro.core.interesting import roi_cell_mask

    mask3 = roi_cell_mask(grid, roi)
    if grid.is_2d:
        flat_axis = grid.dims.index(1)
        mask = (mask3[0] if flat_axis == 2
                else mask3[:, 0, :] if flat_axis == 1
                else mask3[:, :, 0])
    else:
        mask = mask3
    if cell_mask is not None:
        mask = mask & np.asarray(cell_mask, dtype=bool)
    return mask


def contour_grid(
    grid,
    array_name: str,
    values,
    cell_mask: np.ndarray | None = None,
    roi=None,
) -> PolyData:
    """Contour a grid's named scalar array at one or more values.

    Parameters
    ----------
    grid:
        The input :class:`UniformGrid` or :class:`RectilinearGrid`.
    array_name:
        Name of a scalar point-data array on ``grid``.
    values:
        One value or an iterable of values.
    cell_mask:
        Optional boolean cell mask (``(nz-1, ny-1, nx-1)`` shaped for 3-D
        grids, squeezed 2-D shape for 2-D grids); False cells are skipped.
    roi:
        Optional :class:`~repro.grid.bounds.Bounds` region of interest:
        only cells fully inside the box are contoured.

    Returns
    -------
    PolyData
        Line segments (2-D input) or a triangle soup (3-D input), with a
        ``"contour_value"`` point-data array.
    """
    vals = normalize_values(values)
    field = grid.scalar_field(array_name)
    cell_mask = _combine_roi(grid, cell_mask, roi)

    if grid.is_2d:
        return _contour_2d(grid, field, vals, cell_mask)
    return _contour_3d(grid, field, vals, cell_mask)


def _contour_3d(grid, field, vals, cell_mask) -> PolyData:
    axes = tuple(grid.axis_coords(a) for a in range(3))
    tri_parts: list[np.ndarray] = []
    val_parts: list[np.ndarray] = []
    for v in vals:
        tris = marching_tetrahedra(field, v, cell_mask=cell_mask, axes=axes)
        if tris.shape[0]:
            tri_parts.append(tris)
            val_parts.append(np.full(tris.shape[0] * 3, v, dtype=np.float64))
    if tri_parts:
        all_tris = np.concatenate(tri_parts)
        points = all_tris.reshape(-1, 3)
        conn = np.arange(points.shape[0], dtype=np.int64).reshape(-1, 3)
        cvals = np.concatenate(val_parts)
    else:
        points = np.zeros((0, 3), dtype=np.float64)
        conn = np.zeros((0, 3), dtype=np.int64)
        cvals = np.zeros(0, dtype=np.float64)
    out = PolyData(points)
    out.polys = CellArray.from_uniform(conn)
    out.point_data.add(DataArray("contour_value", cvals))
    return out


def _contour_2d(grid, field, vals, cell_mask) -> PolyData:
    f2, au, av, _ = _squeeze_2d(grid, field)
    axes2 = (grid.axis_coords(au), grid.axis_coords(av))
    seg_parts: list[np.ndarray] = []
    val_parts: list[np.ndarray] = []
    for v in vals:
        segs = marching_squares(f2, v, cell_mask=cell_mask, axes=axes2)
        if segs.shape[0]:
            seg_parts.append(segs)
            val_parts.append(np.full(segs.shape[0] * 2, v, dtype=np.float64))
    if seg_parts:
        segs = np.concatenate(seg_parts)
        pts2 = segs.reshape(-1, 2)
        points = np.zeros((pts2.shape[0], 3), dtype=np.float64)
        points[:, au] = pts2[:, 0]
        points[:, av] = pts2[:, 1]
        flat_axis = grid.dims.index(1)
        points[:, flat_axis] = grid.axis_coords(flat_axis)[0]
        conn = np.arange(points.shape[0], dtype=np.int64).reshape(-1, 2)
        cvals = np.concatenate(val_parts)
    else:
        points = np.zeros((0, 3), dtype=np.float64)
        conn = np.zeros((0, 2), dtype=np.int64)
        cvals = np.zeros(0, dtype=np.float64)
    out = PolyData(points)
    out.lines = CellArray.from_uniform(conn)
    out.point_data.add(DataArray("contour_value", cvals))
    return out


class ContourFilter(Filter):
    """Pipeline filter: :class:`UniformGrid` in, contour :class:`PolyData` out.

    Mirrors ``vtkContourFilter``'s configuration surface for the features
    the paper uses: a target array and a set of contour values.  A pipeline
    may hold several instances, "each dedicated to processing a specific
    data array" (paper Sec. VI).
    """

    def __init__(self, array_name: str | None = None, values: Sequence[float] | float = ()):
        super().__init__()
        self._array_name = array_name
        self._values: tuple[float, ...] = ()
        # ``values != ()`` would be an elementwise comparison for ndarray
        # inputs (ambiguous truth value); test emptiness explicitly instead.
        if not _values_unset(values):
            self.set_values(values)

    # ------------------------------------------------------------------
    def set_array_name(self, name: str) -> None:
        self._array_name = name
        self.modified()

    @property
    def array_name(self) -> str | None:
        return self._array_name

    def set_values(self, values) -> None:
        self._values = normalize_values(values)
        self.modified()

    @property
    def values(self) -> tuple[float, ...]:
        return self._values

    # ------------------------------------------------------------------
    def _execute(self, grid) -> PolyData:
        if not isinstance(grid, STRUCTURED_GRID_TYPES):
            raise FilterError(
                f"ContourFilter expects a UniformGrid or RectilinearGrid, "
                f"got {type(grid).__name__}"
            )
        if self._array_name is None:
            raise FilterError("ContourFilter has no array name configured")
        if not self._values:
            raise FilterError("ContourFilter has no contour values configured")
        return contour_grid(grid, self._array_name, self._values)
